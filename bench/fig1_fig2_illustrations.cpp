// Fig. 1 and Fig. 2 — the paper's two illustration figures, regenerated from
// the library's primitives.
//
// Fig. 1: two clocks with both an initial offset and different but constant
//         drifts (local time vs. true time diverging linearly).
// Fig. 2: (a) consistent / (b) inconsistent message-passing traces and
//         (c) consistent / (d) inconsistent shared-memory barrier traces.
#include <algorithm>
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "clockmodel/sim_clock.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "topology/cluster.hpp"
#include "trace/timeline.hpp"

using namespace chronosync;

namespace {

Trace mpi_pair(Time send_ts, Time recv_ts) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
          "illustration");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.msg_id = 0;
  s.local_ts = s.true_ts = send_ts;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = r.true_ts = recv_ts;
  t.events(1).push_back(r);
  return t;
}

Trace omp_barrier(Time enter0, Time exit0, Time enter1, Time exit1) {
  Trace t(Placement({{0, 0, 0}}), {0.01e-6, 0.02e-6, 1e-6}, "illustration");
  auto ev = [&](EventType ty, ThreadId th, Time time) {
    Event e;
    e.type = ty;
    e.thread = th;
    e.local_ts = e.true_ts = time;
    e.omp_instance = 0;
    t.events(0).push_back(e);
  };
  ev(EventType::BarrierEnter, 0, enter0);
  ev(EventType::BarrierExit, 0, exit0);
  ev(EventType::BarrierEnter, 1, enter1);
  ev(EventType::BarrierExit, 1, exit1);
  std::sort(t.events(0).begin(), t.events(0).end(),
            [](const Event& a, const Event& b) { return a.true_ts < b.true_ts; });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig1_fig2_illustrations", {1, 0});

  // ----------------------------------------------------------------- Fig. 1
  SimClock a(0.0, std::make_shared<ConstantDrift>(0.0), 0.0, {}, Rng(1));
  SimClock b(0.4, std::make_shared<ConstantDrift>(60 * units::ppm), 0.0, {}, Rng(2));
  AsciiTable fig1({"true time [s]", "clock A [s]", "clock B [s]", "offset B-A [ms]"});
  for (Time t = 0.0; t <= 1000.0; t += 200.0) {
    fig1.add_row({AsciiTable::num(t, 0), AsciiTable::num(a.local_time(t), 4),
                  AsciiTable::num(b.local_time(t), 4),
                  AsciiTable::num(to_ms(b.local_time(t) - a.local_time(t)), 3)});
  }
  std::cout << "FIG. 1 -- two clocks with an initial offset and different constant drifts\n\n"
            << fig1.render()
            << "(the offset grows linearly: constant relative drift)\n\n";
  harness.metric("fig1_constant_drift", {{"drift_ppm", "60"}},
                 {{"offset_ms_at_1000s", to_ms(b.local_time(1000.0) - a.local_time(1000.0))}});

  // ----------------------------------------------------------------- Fig. 2
  TimelineOptions opt;
  opt.width = 64;
  opt.max_messages = 2;

  std::string panels[4];
  harness.time("render_panels", {}, 4, [&] {
    Trace a2 = mpi_pair(10e-6, 30e-6);
    panels[0] = render_timeline(a2, TimestampArray::from_local(a2), opt);
    Trace b2 = mpi_pair(30e-6, 10e-6);
    panels[1] = render_timeline(b2, TimestampArray::from_local(b2), opt);
    TimelineOptions omp_opt = opt;
    omp_opt.max_messages = 0;
    Trace c2 = omp_barrier(10e-6, 30e-6, 15e-6, 32e-6);
    panels[2] = render_timeline(c2, TimestampArray::from_local(c2), omp_opt);
    Trace d2 = omp_barrier(10e-6, 15e-6, 20e-6, 25e-6);
    panels[3] = render_timeline(d2, TimestampArray::from_local(d2), omp_opt);
  });

  std::cout << "FIG. 2(a) -- consistent message-passing trace:\n" << panels[0] << '\n';
  std::cout << "FIG. 2(b) -- inconsistent: received before it was sent:\n" << panels[1] << '\n';
  std::cout << "FIG. 2(c) -- consistent shared-memory barrier (executions overlap):\n"
            << panels[2] << '\n';
  std::cout << "FIG. 2(d) -- inconsistent: thread 0 leaves before thread 1 entered\n"
               "(b = BARRIER ENTER, e = BARRIER EXIT):\n"
            << panels[3];
  return 0;
}
