// Performance — CLC throughput (events/s), sequential vs. parallel replay
// (ref. [31] parallelized the algorithm for large-scale traces).
#include <benchmark/benchmark.h>

#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

// ReplaySchedule keeps a pointer into the trace, so members are initialized
// in declaration order against the trace's final location.
struct Fixture {
  Trace trace;
  std::vector<MessageRecord> msgs;
  std::vector<LogicalMessage> logical;
  ReplaySchedule schedule;
  TimestampArray input;

  explicit Fixture(AppRunResult res)
      : trace(std::move(res.trace)),
        msgs(trace.match_messages()),
        logical(derive_logical_messages(trace)),
        schedule(trace, msgs, logical),
        input(apply_correction(trace, LinearInterpolation::from_store(res.offsets))) {}

  static AppRunResult run(int ranks, int rounds) {
    SweepConfig cfg;
    cfg.rounds = rounds;
    cfg.gap_mean = 0.01;
    cfg.collective_every = 50;
    JobConfig job;
    job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
    job.timer = timer_specs::intel_tsc();
    job.seed = 42;
    return run_sweep(cfg, std::move(job));
  }
};

const Fixture& fixture() {
  static Fixture fx(Fixture::run(16, 800));
  return fx;
}

void BM_ClcSequential(benchmark::State& state) {
  const Fixture& fx = fixture();
  for (auto _ : state) {
    auto result = controlled_logical_clock(fx.trace, fx.schedule, fx.input);
    benchmark::DoNotOptimize(result.violations_repaired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.schedule.events()));
}
BENCHMARK(BM_ClcSequential)->Unit(benchmark::kMillisecond);

void BM_ClcParallel(benchmark::State& state) {
  const Fixture& fx = fixture();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input, {}, threads);
    benchmark::DoNotOptimize(result.violations_repaired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.schedule.events()));
}
BENCHMARK(BM_ClcParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ReplayScheduleBuild(benchmark::State& state) {
  const Fixture& fx = fixture();
  for (auto _ : state) {
    ReplaySchedule schedule(fx.trace, fx.msgs, fx.logical);
    benchmark::DoNotOptimize(schedule.events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.schedule.events()));
}
BENCHMARK(BM_ReplayScheduleBuild)->Unit(benchmark::kMillisecond);

void BM_MessageMatching(benchmark::State& state) {
  const Fixture& fx = fixture();
  for (auto _ : state) {
    auto msgs = fx.trace.match_messages();
    benchmark::DoNotOptimize(msgs.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.trace.total_events()));
}
BENCHMARK(BM_MessageMatching)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronosync

BENCHMARK_MAIN();
