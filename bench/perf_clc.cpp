// Performance — CLC throughput (events/s), sequential vs. parallel replay
// (ref. [31] parallelized the algorithm for large-scale traces).
//
// The measurement matrix is the cross product of --ranks and --events (both
// accept comma-separated sweeps, e.g. `--ranks 64,256 --events 100000`): the
// parallel CLC only pays off once the trace is large enough to amortize
// thread startup and cross-thread handoffs, so the crossover is only visible
// when the matrix reaches realistic sizes.  --events derives the round count
// per point (the sweep workload emits ~4 events per rank and round); without
// it a single --rounds config is measured, as before.
//
// --stream-events N additionally measures the out-of-core windowed streaming
// CLC over an N-event v2 file.  That section runs FIRST: peak RSS is a
// process-wide high-water mark, so the bounded-memory correction must be
// metered before any matrix point materializes an in-memory fixture.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/clock_condition.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/clc_stream.hpp"
#include "sync/interpolation.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

// ReplaySchedule keeps a pointer into the trace, so members are initialized
// in declaration order against the trace's final location.
struct Fixture {
  Trace trace;
  std::vector<MessageRecord> msgs;
  std::vector<LogicalMessage> logical;
  ReplaySchedule schedule;
  TimestampArray input;

  explicit Fixture(AppRunResult res)
      : trace(std::move(res.trace)),
        msgs(trace.match_messages()),
        logical(derive_logical_messages(trace)),
        schedule(trace, msgs, logical),
        input(apply_correction(trace, LinearInterpolation::from_store(res.offsets))) {}

  static AppRunResult run(int ranks, int rounds, std::uint64_t seed) {
    SweepConfig cfg;
    cfg.rounds = rounds;
    cfg.gap_mean = 0.01;
    cfg.collective_every = 50;
    JobConfig job;
    // One rank per node while the cluster has enough nodes (the paper's
    // inter-node setting); larger sweeps fill cores block-wise instead.
    const ClusterSpec spec = clusters::xeon_rwth();
    job.placement = ranks <= spec.nodes ? pinning::inter_node(spec, ranks)
                                        : pinning::block(spec, ranks);
    job.timer = timer_specs::intel_tsc();
    job.seed = seed;
    return run_sweep(cfg, std::move(job));
  }
};

/// One (ranks, rounds) matrix point.
struct MatrixPoint {
  int ranks = 0;
  int rounds = 0;
};

/// Writes a synthetic ~`total`-event trace rank-by-rank through TraceWriter
/// without ever materializing a Trace (perf_trace's generator shape): every
/// tenth event pair is a matched ring message (rank r sends to r+1), and one
/// message in 16 arrives before it was sent, so the CLC has real violations
/// to repair.
std::uint64_t write_synthetic_stream(const std::string& path, int ranks,
                                     std::uint64_t total) {
  TraceMeta meta;
  meta.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  meta.domain_min_latency = {0.47e-6, 0.86e-6, 4.29e-6};
  meta.timer_name = "synthetic-stream";
  meta.regions = {"compute"};

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  CS_REQUIRE(f.good(), "cannot open streaming bench file: " + path);
  // Small chunks keep the correction's read-ahead window (whole chunks) a
  // tiny fraction of the trace, so the resident-memory bound is visible.
  TraceWriter w(f, meta, /*events_per_chunk=*/4096);
  const std::uint64_t per_rank = total / static_cast<std::uint64_t>(ranks);
  constexpr double kStep = 1e-5;  // > inter-node l_min, so matched pairs obey Eq. 1
  for (int r = 0; r < ranks; ++r) {
    const int prev = (r + ranks - 1) % ranks;
    for (std::uint64_t i = 0; i < per_rank; ++i) {
      Event e;
      e.local_ts = static_cast<double>(i) * kStep;
      e.thread = 0;
      switch (i % 10) {
        case 8:
          e.type = EventType::Send;
          e.peer = (r + 1) % ranks;
          e.tag = 1;
          e.bytes = 8192;
          e.msg_id = static_cast<std::int64_t>(per_rank) * r + static_cast<std::int64_t>(i);
          break;
        case 9:
          e.type = EventType::Recv;
          e.peer = prev;
          e.msg_id =
              static_cast<std::int64_t>(per_rank) * prev + static_cast<std::int64_t>(i - 1);
          // Every 16th message arrives before it was sent (a reversal).
          if ((i / 10) % 16 == 0) e.local_ts = static_cast<double>(i - 1) * kStep - 1e-7;
          break;
        default:
          e.type = (i % 2 == 0) ? EventType::Enter : EventType::Exit;
          e.region = 0;
          break;
      }
      e.true_ts = e.local_ts;
      w.append(r, e);
    }
  }
  w.finish();
  return w.events_written();
}

/// Out-of-core section: wall clock and resident memory of the windowed
/// streaming correction, plus the in-memory CLC over the same file for the
/// RSS-fraction gate.  Must run before anything else materializes a trace.
void run_streaming_section(benchkit::Harness& harness, std::uint64_t stream_events) {
  using benchkit::allocation_totals;
  using benchkit::sample_resource_usage;

  const int ranks = 8;
  const std::string in_file = "bench_stream_clc_in.v2";
  const std::string out_file = "bench_stream_clc_out.v2";
  const benchkit::ConfigList cfg = {{"stream_events", std::to_string(stream_events)},
                                    {"stream_ranks", std::to_string(ranks)}};

  std::uint64_t written = 0;
  harness.time("clc_stream_write", cfg, static_cast<std::int64_t>(stream_events), [&] {
    written = write_synthetic_stream(in_file, ranks, stream_events);
    benchkit::do_not_optimize(written);
  });

  StreamClcOptions opt;
  // The synthetic reversals are a few microseconds deep, so their
  // amortization ramps span ~1e-4 s of trace time; a millisecond window
  // keeps the run divergence-free while the retention stays tiny.
  opt.backward_window = 1e-3;

  // One metered pass: allocation and RSS of the bounded-memory correction.
  const auto rss_before = sample_resource_usage();
  const auto alloc_before = allocation_totals();
  const StreamClcStats stats = clc_stream_file(in_file, out_file, opt);
  const auto rss_after = sample_resource_usage();
  const auto alloc_after = allocation_totals();
  CS_ENSURE(stats.ramp_clamped == 0 && stats.horizon_dropped == 0 && stats.forced == 0,
            "streaming CLC diverged on the synthetic stream");
  CS_ENSURE(stats.violations_repaired > 0, "synthetic stream exercised no repairs");
  harness.metric(
      "clc_stream_memory", cfg,
      {{"events", static_cast<double>(stats.events)},
       {"alloc_bytes", static_cast<double>(alloc_after.bytes - alloc_before.bytes)},
       {"current_rss_delta_bytes",
        static_cast<double>(rss_after.current_rss_bytes - rss_before.current_rss_bytes)},
       {"peak_rss_bytes", static_cast<double>(rss_after.peak_rss_bytes)},
       {"peak_resident_events", static_cast<double>(stats.peak_resident_events)},
       {"peak_outstanding_msgs", static_cast<double>(stats.peak_outstanding_msgs)},
       {"spilled_msgs", static_cast<double>(stats.spilled_msgs)},
       {"violations_repaired", static_cast<double>(stats.violations_repaired)}});

  harness.time("clc_stream_correct", cfg, static_cast<std::int64_t>(written), [&] {
    const auto s = clc_stream_file(in_file, out_file, opt);
    benchkit::do_not_optimize(s.violations_repaired);
  });

  // The in-memory pipeline over the same file, metered the same way and run
  // after the streaming samples so its footprint cannot inflate them.  Its
  // timing omits the output write (a head start for the in-memory side — the
  // streaming record includes it), and the whole comparison is skipped past
  // ~2M events: materializing the trace is what the streaming path avoids,
  // and the CI RSS gate compares at 10^6.
  if (stream_events <= 2000000) {
    const auto rss_mem_before = sample_resource_usage();
    const auto alloc_mem_before = allocation_totals();
    const Trace t = read_trace_file(in_file);
    const auto msgs = t.match_messages();
    const auto logical = derive_logical_messages(t);
    const ReplaySchedule schedule(t, msgs, logical);
    const auto input = TimestampArray::from_local(t);
    const ClcResult mem = controlled_logical_clock(t, schedule, input, opt.clc);
    const auto rss_mem_after = sample_resource_usage();
    const auto alloc_mem_after = allocation_totals();
    // With all divergence counters zero the equivalence contract promises
    // bit-identical repair statistics, not just close ones.
    CS_ENSURE(mem.violations_repaired == stats.violations_repaired &&
                  mem.max_jump == stats.max_jump && mem.total_jump == stats.total_jump,
              "streaming CLC repair stats diverge from the in-memory pass");
    harness.metric(
        "clc_inmemory_memory", cfg,
        {{"events", static_cast<double>(t.total_events())},
         {"alloc_bytes",
          static_cast<double>(alloc_mem_after.bytes - alloc_mem_before.bytes)},
         {"current_rss_delta_bytes",
          static_cast<double>(rss_mem_after.current_rss_bytes -
                              rss_mem_before.current_rss_bytes)},
         {"peak_rss_bytes", static_cast<double>(rss_mem_after.peak_rss_bytes)}});

    harness.time("clc_inmemory_correct", cfg, static_cast<std::int64_t>(written), [&] {
      Trace trace = read_trace_file(in_file);
      const auto m = trace.match_messages();
      const auto l = derive_logical_messages(trace);
      const ReplaySchedule sched(trace, m, l);
      auto result =
          controlled_logical_clock(trace, sched, TimestampArray::from_local(trace), opt.clc);
      benchkit::do_not_optimize(result.violations_repaired);
    });
  }

  std::remove(in_file.c_str());
  std::remove(out_file.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "perf_clc");
  obs::ObsSession obs_session(cli, "perf_clc");
  const auto ranks_list = cli.get_int_list("ranks", {16});
  const auto events_list = cli.get_int_list("events", {});
  const int rounds_flag = static_cast<int>(cli.get_int("rounds", 800));
  // --threads N measures the parallel CLC at exactly N threads; the default
  // sweeps the usual ladder.
  const int threads_flag = static_cast<int>(cli.get_int("threads", 0));
  std::vector<int> thread_list = {1, 2, 4, 8};
  if (threads_flag > 0) thread_list = {threads_flag};

  ClcOptions clc_options;
  clc_options.publish_batch =
      static_cast<int>(cli.get_int("publish-batch", clc_options.publish_batch));
  clc_options.min_events_per_thread = static_cast<int>(
      cli.get_int("min-events-per-thread", clc_options.min_events_per_thread));

  // Before any in-memory fixture exists: the peak-RSS comparison needs the
  // streaming stage to run in a small process.
  const auto stream_events = static_cast<std::uint64_t>(cli.get_int("stream-events", 0));
  if (stream_events > 0) run_streaming_section(harness, stream_events);

  // The cross product of the two sweeps; ~4 events per rank and round
  // converts an event target into a round count.
  std::vector<MatrixPoint> points;
  for (const std::int64_t ranks : ranks_list) {
    CS_REQUIRE(ranks > 0, "--ranks entries must be positive");
    if (events_list.empty()) {
      points.push_back({static_cast<int>(ranks), rounds_flag});
    } else {
      for (const std::int64_t events : events_list) {
        CS_REQUIRE(events > 0, "--events entries must be positive");
        const auto rounds = std::max<std::int64_t>(1, events / (4 * ranks));
        points.push_back({static_cast<int>(ranks), static_cast<int>(rounds)});
      }
    }
  }

  for (std::size_t point_idx = 0; point_idx < points.size(); ++point_idx) {
    const MatrixPoint& pt = points[point_idx];
    const Fixture fx(Fixture::run(pt.ranks, pt.rounds, cli.get_seed()));
    const auto events = static_cast<std::int64_t>(fx.schedule.events());
    const benchkit::ConfigList base = {{"ranks", std::to_string(pt.ranks)},
                                       {"rounds", std::to_string(pt.rounds)},
                                       {"events", std::to_string(events)}};

    // Observability overhead, measured once (first matrix point only) before
    // the main records so the forced levels (and the reset below) cannot
    // disturb a --trace-out recording.  Baseline and obs_off are an A/A pair
    // at the same forced-off level: the instrumentation's disabled cost plus
    // run-to-run noise is their relative difference, which the CI gate
    // bounds at 1%.
    if (point_idx == 0) {
      const int obs_threads = threads_flag > 0 ? threads_flag : 8;
      benchkit::ConfigList config = base;
      config.emplace_back("threads", std::to_string(obs_threads));
      const obs::Level session_level = obs::level();
      const auto run_parallel = [&] {
        auto result = controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input,
                                                        clc_options, obs_threads);
        benchkit::do_not_optimize(result.violations_repaired);
      };

      obs::set_level(obs::Level::Off);
      run_parallel();  // one unconditional warmup: the A/A pair must not eat
                       // the thread pool's cold start in its first member
      const auto rec_base =
          harness.time("clc_parallel_obs_baseline", config, events, run_parallel);
      const auto rec_off = harness.time("clc_parallel_obs_off", config, events, run_parallel);

      // Per-call cost of a disabled span: one relaxed load + branch.
      constexpr std::int64_t kProbeCalls = 1 << 20;
      const auto rec_probe = harness.time("obs_disabled_probe", base, kProbeCalls, [&] {
        for (std::int64_t i = 0; i < kProbeCalls; ++i) {
          CS_SPAN("obs.probe");
          benchkit::do_not_optimize(i);
        }
      });

      obs::set_level(obs::Level::Trace);
      const auto stats_before = obs::trace_stats();
      const auto rec_trace = harness.time("clc_parallel_obs_trace", config, events, run_parallel);
      const auto stats_after = obs::trace_stats();
      obs::reset();  // drop the synthetic spans before any --trace-out recording
      obs::set_level(session_level);

      // Deterministic overhead bound (the CI gate): per-call disabled cost from
      // the probe, times the number of gated sites one rep actually executes
      // (spans check twice: construction and destruction), times a 2x margin
      // for the registry-add sites the trace cannot count.  The A/A pair stays
      // in the record as direct evidence, but at smoke scale its percentages
      // carry tens of percent of scheduler noise — don't gate on them.
      const double span_ns = rec_probe.wall_ns_p50 / static_cast<double>(kProbeCalls);
      const double trace_reps = static_cast<double>(harness.warmup() + harness.reps());
      const double checks_per_rep =
          (2.0 * static_cast<double>(stats_after.spans - stats_before.spans) +
           static_cast<double>(stats_after.counter_samples - stats_before.counter_samples)) /
          trace_reps;
      const double bound_pct = 100.0 * 2.0 * span_ns * checks_per_rep / rec_base.wall_ns_p50;

      harness.metric(
          "obs_overhead", config,
          {{"disabled_pct_bound", bound_pct},
           {"disabled_pct_p50", 100.0 * (rec_off.wall_ns_p50 / rec_base.wall_ns_p50 - 1.0)},
           {"disabled_pct_min", 100.0 * (rec_off.wall_ns_min / rec_base.wall_ns_min - 1.0)},
           {"enabled_trace_pct_p50",
            100.0 * (rec_trace.wall_ns_p50 / rec_base.wall_ns_p50 - 1.0)},
           {"disabled_checks_per_rep", checks_per_rep},
           {"disabled_span_ns", span_ns}});
    }

    harness.time("clc_sequential", base, events, [&] {
      auto result = controlled_logical_clock(fx.trace, fx.schedule, fx.input, clc_options);
      benchkit::do_not_optimize(result.violations_repaired);
    });

    for (int threads : thread_list) {
      benchkit::ConfigList config = base;
      config.emplace_back("threads", std::to_string(threads));
      harness.time("clc_parallel", config, events, [&] {
        auto result = controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input,
                                                        clc_options, threads);
        benchkit::do_not_optimize(result.violations_repaired);
      });
    }

    // Trace-wide auxiliary measurements only accompany the first point: they
    // do not depend on the thread ladder, and repeating them per matrix
    // point would dominate large-sweep wall time.
    if (point_idx == 0) {
      harness.time("replay_schedule_build", base, events, [&] {
        ReplaySchedule schedule(fx.trace, fx.msgs, fx.logical);
        benchkit::do_not_optimize(schedule.events());
      });

      harness.time("message_matching", base,
                   static_cast<std::int64_t>(fx.trace.total_events()), [&] {
                     auto msgs = fx.trace.match_messages();
                     benchkit::do_not_optimize(msgs.size());
                   });

      // Violation analysis: the message-(re)matching path vs. the single-pass
      // scan over the schedule's CSR edges.
      harness.time("clock_condition_full", base, events, [&] {
        auto rep = check_clock_condition(fx.trace, fx.input);
        benchkit::do_not_optimize(rep.p2p_violations);
      });
      harness.time("clock_condition_scan", base, events, [&] {
        auto rep = check_clock_condition(fx.trace, fx.input, fx.schedule);
        benchkit::do_not_optimize(rep.p2p_violations);
      });
    }

    // Opt-in invariant audit of the measured results: CLC output must satisfy
    // Eq. 1 exactly, never move an event backward, and serial/parallel must
    // be bit-identical — with the thread clamp disabled so the parallel run
    // really is concurrent, even at smoke scale.
    if (cli.has("verify")) {
      const auto serial = controlled_logical_clock(fx.trace, fx.schedule, fx.input);
      ClcOptions verify_options;
      verify_options.min_events_per_thread = 1;
      const auto parallel =
          controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input, verify_options);
      const verify::InvariantChecker checker(fx.trace, fx.schedule);
      const auto audit = checker.check_correction(fx.input, serial.corrected);
      if (!audit.ok()) std::cerr << audit.summary();
      CS_ENSURE(audit.ok(), "CLC output violates the paper invariants");
      for (Rank r = 0; r < fx.trace.ranks(); ++r) {
        CS_ENSURE(serial.corrected.of_rank(r) == parallel.corrected.of_rank(r),
                  "parallel CLC diverges from the sequential reference");
      }
      std::cerr << "verify: CLC invariants hold (" << audit.events_checked << " events, "
                << audit.edges_checked << " edges)\n";
    }
  }

  obs_session.finish();
  return 0;
}
