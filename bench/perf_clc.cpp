// Performance — CLC throughput (events/s), sequential vs. parallel replay
// (ref. [31] parallelized the algorithm for large-scale traces).
#include <iostream>

#include "analysis/clock_condition.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/expect.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/interpolation.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

// ReplaySchedule keeps a pointer into the trace, so members are initialized
// in declaration order against the trace's final location.
struct Fixture {
  Trace trace;
  std::vector<MessageRecord> msgs;
  std::vector<LogicalMessage> logical;
  ReplaySchedule schedule;
  TimestampArray input;

  explicit Fixture(AppRunResult res)
      : trace(std::move(res.trace)),
        msgs(trace.match_messages()),
        logical(derive_logical_messages(trace)),
        schedule(trace, msgs, logical),
        input(apply_correction(trace, LinearInterpolation::from_store(res.offsets))) {}

  static AppRunResult run(int ranks, int rounds, std::uint64_t seed) {
    SweepConfig cfg;
    cfg.rounds = rounds;
    cfg.gap_mean = 0.01;
    cfg.collective_every = 50;
    JobConfig job;
    job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
    job.timer = timer_specs::intel_tsc();
    job.seed = seed;
    return run_sweep(cfg, std::move(job));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "perf_clc");
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const int rounds = static_cast<int>(cli.get_int("rounds", 800));

  const Fixture fx(Fixture::run(ranks, rounds, cli.get_seed()));
  const auto events = static_cast<std::int64_t>(fx.schedule.events());
  const benchkit::ConfigList base = {{"ranks", std::to_string(ranks)},
                                     {"rounds", std::to_string(rounds)}};

  harness.time("clc_sequential", base, events, [&] {
    auto result = controlled_logical_clock(fx.trace, fx.schedule, fx.input);
    benchkit::do_not_optimize(result.violations_repaired);
  });

  for (int threads : {1, 2, 4, 8}) {
    benchkit::ConfigList config = base;
    config.emplace_back("threads", std::to_string(threads));
    harness.time("clc_parallel", config, events, [&] {
      auto result =
          controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input, {}, threads);
      benchkit::do_not_optimize(result.violations_repaired);
    });
  }

  harness.time("replay_schedule_build", base, events, [&] {
    ReplaySchedule schedule(fx.trace, fx.msgs, fx.logical);
    benchkit::do_not_optimize(schedule.events());
  });

  harness.time("message_matching", base,
               static_cast<std::int64_t>(fx.trace.total_events()), [&] {
                 auto msgs = fx.trace.match_messages();
                 benchkit::do_not_optimize(msgs.size());
               });

  // Violation analysis: the message-(re)matching path vs. the single-pass
  // scan over the schedule's CSR edges.
  harness.time("clock_condition_full", base, events, [&] {
    auto rep = check_clock_condition(fx.trace, fx.input);
    benchkit::do_not_optimize(rep.p2p_violations);
  });
  harness.time("clock_condition_scan", base, events, [&] {
    auto rep = check_clock_condition(fx.trace, fx.input, fx.schedule);
    benchkit::do_not_optimize(rep.p2p_violations);
  });

  // Opt-in invariant audit of the measured results: CLC output must satisfy
  // Eq. 1 exactly, never move an event backward, and serial/parallel must be
  // bit-identical.
  if (cli.has("verify")) {
    const auto serial = controlled_logical_clock(fx.trace, fx.schedule, fx.input);
    const auto parallel =
        controlled_logical_clock_parallel(fx.trace, fx.schedule, fx.input);
    const verify::InvariantChecker checker(fx.trace, fx.schedule);
    const auto audit = checker.check_correction(fx.input, serial.corrected);
    if (!audit.ok()) std::cerr << audit.summary();
    CS_ENSURE(audit.ok(), "CLC output violates the paper invariants");
    for (Rank r = 0; r < fx.trace.ranks(); ++r) {
      CS_ENSURE(serial.corrected.of_rank(r) == parallel.corrected.of_rank(r),
                "parallel CLC diverges from the sequential reference");
    }
    std::cerr << "verify: CLC invariants hold (" << audit.events_checked << " events, "
              << audit.edges_checked << " edges)\n";
  }
  return 0;
}
