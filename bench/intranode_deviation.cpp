// Sec. IV (final Xeon experiment, unnumbered): relative deviations of clocks
// co-located on the same SMP node — without correction, after offset
// alignment, and after linear interpolation — separately for processes on
// different chips and on the same chip.
//
// Paper result: deviations are "essentially noise oscillating around zero
// with a maximum difference of roughly 0.1 us", so MPI message semantics
// within a node survive without postprocessing.
#include <cmath>
#include <iostream>

#include "analysis/deviation.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "measure/offset_probe.hpp"
#include "sync/interpolation.hpp"
#include "sync/offset_alignment.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

namespace {

struct Setup {
  const char* name;
  const char* slug;
  Placement placement;
  CommDomain domain;
};

void run_setup(const Setup& setup, Duration duration, const RngTree& rng,
               benchkit::Harness& harness, AsciiTable& table) {
  const int n = setup.placement.ranks();
  const benchkit::ConfigList config = {{"setup", setup.slug},
                                       {"duration_s", std::to_string(duration)}};
  // Clock reads are stateful (monotone clamping), so probing and each
  // measurement sweep get their own ensemble instance; the same seed
  // reproduces identical clock trajectories.
  auto make_ens = [&] {
    return ClockEnsemble(setup.placement, timer_specs::intel_tsc(), rng.child(setup.name));
  };
  ClockEnsemble ens = make_ens();
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  Rng probe_rng = rng.child(setup.name).stream("probe");

  // Raw (no correction).
  IdentityCorrection raw;

  // Offset alignment at t = 0 (measured).
  std::vector<Duration> offsets(static_cast<std::size_t>(n), 0.0);
  for (Rank w = 1; w < n; ++w) {
    offsets[static_cast<std::size_t>(w)] =
        direct_probe(ens.clock(0), ens.clock(w), lat, setup.domain, 0.01 * w, 20, probe_rng)
            .offset;
  }
  OffsetAlignment align(offsets);

  // Linear interpolation from measurements at both ends.
  std::vector<LinearInterpolation::RankParams> params(static_cast<std::size_t>(n));
  params[0] = {0.0, 0.0, duration, 0.0};
  for (Rank w = 1; w < n; ++w) {
    const auto m1 = direct_probe(ens.clock(0), ens.clock(w), lat, setup.domain,
                                 1.0 + 0.01 * w, 20, probe_rng);
    params[static_cast<std::size_t>(w)].w1 = m1.worker_time;
    params[static_cast<std::size_t>(w)].o1 = m1.offset;
  }
  for (Rank w = 1; w < n; ++w) {
    const auto m2 = direct_probe(ens.clock(0), ens.clock(w), lat, setup.domain,
                                 duration - 1.0 + 0.01 * w, 20, probe_rng);
    params[static_cast<std::size_t>(w)].w2 = m2.worker_time;
    params[static_cast<std::size_t>(w)].o2 = m2.offset;
  }
  LinearInterpolation interp(std::move(params));

  // For the raw case the initial offset dominates; report it separately from
  // the *variation* (max - min per rank), which is the paper's "noise".
  auto measure = [&](const TimestampCorrection& corr) {
    // Through actual clock reads: the paper's intra-node result is about the
    // measured noise, not the (noise-free) underlying clock states.
    ClockEnsemble fresh = make_ens();
    const DeviationSeries s =
        sample_measured_deviations(fresh, corr, duration, duration / 200.0);
    Duration max_abs = 0.0, max_swing = 0.0;
    for (std::size_t r = 1; r < s.per_rank.size(); ++r) {
      Duration lo = kTimeInfinity, hi = -kTimeInfinity;
      for (Duration d : s.per_rank[r]) {
        max_abs = std::max(max_abs, std::abs(d));
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
      max_swing = std::max(max_swing, hi - lo);
    }
    return std::make_pair(max_abs, max_swing);
  };

  std::pair<Duration, Duration> raw_m, al_m, in_m;
  harness.time("measure_deviations", config, 0, [&] {
    raw_m = measure(raw);
    al_m = measure(align);
    in_m = measure(interp);
  });
  harness.metric("deviation_summary", config,
                 {{"raw_max_abs_us", to_us(raw_m.first)},
                  {"raw_swing_us", to_us(raw_m.second)},
                  {"aligned_max_abs_us", to_us(al_m.first)},
                  {"interpolated_max_abs_us", to_us(in_m.first)}});
  table.add_row({setup.name, AsciiTable::num(to_us(raw_m.first), 3),
                 AsciiTable::num(to_us(raw_m.second), 3), AsciiTable::num(to_us(al_m.first), 3),
                 AsciiTable::num(to_us(in_m.first), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "intranode_deviation", {1, 0});
  const Duration duration = cli.get_double("duration", 3600.0);
  const RngTree rng(cli.get_seed());
  const ClusterSpec xeon = clusters::xeon_rwth();

  AsciiTable table({"co-location", "raw max |dev| [us]", "raw swing [us]",
                    "aligned max |dev| [us]", "interpolated max |dev| [us]"});
  run_setup({"same chip (4 cores)", "same_chip", pinning::inter_core(xeon, 4),
             CommDomain::SameChip},
            duration, rng, harness, table);
  run_setup({"same node, 2 chips", "same_node", pinning::inter_chip(xeon, 2),
             CommDomain::SameNode},
            duration, rng, harness, table);

  std::cout << "INTRA-NODE DEVIATIONS -- Xeon cluster, Intel TSC, " << duration
            << " s run\n\n"
            << table.render()
            << "\nPaper: co-located clocks differ only by noise around zero with a\n"
               "maximum difference of roughly 0.1 us (here: 'swing'), so intra-node\n"
               "MPI semantics survive without timestamp postprocessing.  Compare the\n"
               "~0.1 us scale here against the tens of microseconds across nodes\n"
               "(Fig. 5).\n";
  return 0;
}
