// Table II — Xeon cluster: measured message and collective latencies for the
// three pinning setups.
//
// Paper values:  inter node 4.29 us, inter chip 0.86 us, inter core 0.47 us,
// inter-node 4-rank allreduce 12.86 us; std-devs are the spread of repeated
// *averaged* estimates and therefore orders of magnitude below the means.
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "measure/latency_probe.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

namespace {

LatencyProbeResult probe(Placement placement, const LatencyProbeConfig& cfg, bool collective,
                         std::uint64_t seed) {
  JobConfig job;
  job.placement = std::move(placement);
  job.seed = seed;
  Job j(std::move(job));
  return collective ? measure_allreduce_latency(j, cfg) : measure_p2p_latency(j, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "table2_latencies", {1, 0});
  const ClusterSpec xeon = clusters::xeon_rwth();
  LatencyProbeConfig cfg;
  cfg.estimates = static_cast<int>(cli.get_int("estimates", 10));
  cfg.reps_per_estimate = static_cast<int>(cli.get_int("probe-reps", 1000));
  const std::uint64_t seed = cli.get_seed();
  const benchkit::ConfigList base = {{"estimates", std::to_string(cfg.estimates)},
                                     {"probe_reps", std::to_string(cfg.reps_per_estimate)}};

  struct Row {
    const char* name;
    const char* slug;
    Placement placement;
    bool collective;
    double paper_mean_us;
  };
  const Row rows[] = {
      {"Inter node message latency", "inter_node_p2p", pinning::inter_node(xeon, 2), false,
       4.29},
      {"Inter chip message latency", "inter_chip_p2p", pinning::inter_chip(xeon, 2), false,
       0.86},
      {"Inter core message latency", "inter_core_p2p", pinning::inter_core(xeon, 2), false,
       0.47},
      {"Inter node collective latency", "inter_node_allreduce", pinning::inter_node(xeon, 4),
       true, 12.86},
  };

  AsciiTable table({"setup", "mean [us]", "std. dev. [us]", "paper mean [us]"});
  for (const auto& row : rows) {
    LatencyProbeResult res;
    harness.time(row.slug, base,
                 static_cast<std::int64_t>(cfg.estimates) * cfg.reps_per_estimate,
                 [&] { res = probe(row.placement, cfg, row.collective, seed); });
    harness.metric(std::string(row.slug) + "_latency", base,
                   {{"mean_us", to_us(res.one_way.mean())},
                    {"stddev_us", to_us(res.one_way.stddev())},
                    {"paper_mean_us", row.paper_mean_us}});
    table.add_row({row.name, AsciiTable::num(to_us(res.one_way.mean()), 2),
                   AsciiTable::sci(to_us(res.one_way.stddev()), 2),
                   AsciiTable::num(row.paper_mean_us, 2)});
  }

  std::cout << "TABLE II -- Xeon cluster: measured message and collective latencies\n"
            << "(" << cfg.estimates << " estimates x " << cfg.reps_per_estimate
            << " averaged operations each)\n\n"
            << table.render()
            << "\nMeasured means include send/recv software overheads on top of the\n"
               "wire floors, as the paper's ping-pong measurements did.\n";
  return 0;
}
