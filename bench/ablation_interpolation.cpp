// Ablation — offset measurement strategy: number of Cristian pings per
// probe, and linear (two-point) vs. piecewise interpolation with mid-run
// measurements (the approach of ref. [17]).
#include <iostream>
#include <optional>

#include "analysis/interval_stats.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "measure/periodic.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

/// Runs a sweep with `batches` offset probe batches spread over the run and
/// returns trace + store.
AppRunResult run_with_batches(int batches, int pings, int rounds, std::uint64_t seed) {
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
  job.timer = timer_specs::gettimeofday_ntp();  // worst-case drift shape
  job.seed = seed;
  Job j(std::move(job));
  OffsetStore store(j.ranks());
  const int blocks = batches - 1;
  j.run([&, pings, rounds, blocks, batches](Proc& p) -> Coro<void> {
    co_await with_periodic_probes(
        p, store, batches,
        [&, rounds, blocks](Proc& q, int) -> Coro<void> {
          for (int r = 0; r < rounds / blocks; ++r) {
            co_await q.compute(3.0);
            co_await q.send((q.rank() + 1) % q.nranks(), 1, 256);
            co_await q.recv((q.rank() + q.nranks() - 1) % q.nranks(), 1);
          }
        },
        pings);
  });
  return {j.take_trace(), std::move(store)};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "ablation_interpolation", {1, 0});
  const int rounds = static_cast<int>(cli.get_int("rounds", 360));
  const benchkit::ConfigList base = {{"rounds", std::to_string(rounds)}};

  std::cout << "ABLATION -- offset measurement strategy (gettimeofday+NTP clocks,\n"
               "8 ranks, ~" << rounds * 3 << " s run)\n\n";

  // Part 1: ping count per probe — the accuracy of a single Cristian
  // measurement against a known static offset (min-RTT selection rejects
  // asymmetric round trips).
  AsciiTable pings_table({"pings per probe", "mean |offset error| [us]", "worst [us]"});
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  for (int pings : {1, 2, 5, 10, 20}) {
    benchkit::ConfigList config = base;
    config.emplace_back("pings", std::to_string(pings));
    RunningStats err;
    harness.time("cristian_probe_accuracy", config, 300, [&] {
      err = RunningStats();
      for (int trial = 0; trial < 300; ++trial) {
        auto drift = std::make_shared<ConstantDrift>(0.0);
        SimClock master(0.0, drift, 0.0, {}, Rng(1));
        SimClock worker(-2 * units::ms, drift, 0.0, {}, Rng(2));
        Rng rng(cli.get_seed() + static_cast<std::uint64_t>(trial) * 31 +
                static_cast<std::uint64_t>(pings));
        const auto m =
            direct_probe(master, worker, lat, CommDomain::CrossNode, 5.0, pings, rng);
        err.add(std::abs(m.offset - 2 * units::ms));
      }
    });
    harness.metric("cristian_probe_error", config,
                   {{"mean_abs_error_us", to_us(err.mean())},
                    {"worst_abs_error_us", to_us(err.max())}});
    pings_table.add_row({std::to_string(pings), AsciiTable::num(to_us(err.mean()), 4),
                         AsciiTable::num(to_us(err.max()), 4)});
  }
  std::cout << "(1) Cristian ping count (Eq. 2 min-RTT selection, static 2 ms offset,\n"
               "    300 trials):\n"
            << pings_table.render() << '\n';

  // Part 2: number of probe batches; linear uses first+last only, piecewise
  // uses all of them.
  AsciiTable batch_table({"probe batches", "linear err [us]", "piecewise err [us]"});
  for (int batches : {2, 3, 5, 9}) {
    benchkit::ConfigList config = base;
    config.emplace_back("batches", std::to_string(batches));
    std::optional<AppRunResult> res;
    harness.time("sweep_with_probe_batches", config, 0,
                 [&] { res = run_with_batches(batches, 10, rounds, cli.get_seed() + 1); });
    const auto msgs = res->trace.match_messages();
    const auto lin =
        apply_correction(res->trace, LinearInterpolation::from_store(res->offsets));
    const auto pw =
        apply_correction(res->trace, PiecewiseInterpolation::from_store(res->offsets));
    const double lin_err = to_us(message_sync_error(res->trace, lin, msgs).mean());
    const double pw_err = to_us(message_sync_error(res->trace, pw, msgs).mean());
    harness.metric("interpolation_error", config,
                   {{"linear_err_us", lin_err}, {"piecewise_err_us", pw_err}});
    batch_table.add_row({std::to_string(batches), AsciiTable::num(lin_err, 3),
                         AsciiTable::num(pw_err, 3)});
  }
  std::cout << "(2) probe batches over the run (ref. [17] style piecewise):\n"
            << batch_table.render()
            << "\nExpected: more pings tighten each estimate; piecewise interpolation\n"
               "exploits mid-run measurements that the two-point linear map ignores.\n";
  return 0;
}
