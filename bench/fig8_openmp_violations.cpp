// Fig. 8 — Intel Itanium SMP node: percentages of parallel regions in an
// OpenMP benchmark exhibiting clock-condition violations across thread
// counts (4, 8, 12, 16), with raw ITC timestamps (no alignment, no
// interpolation), averaged over three measurements.
//
// Expected shape: most regions affected at 4 threads (exit violations most
// frequent), sharply dropping as synchronization latency grows with the
// thread count, to (near) zero at 16 threads.
#include <iostream>

#include "analysis/omp_semantics.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ompsim/omp_bench.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig8_openmp_violations", {1, 0});
  const int regions = static_cast<int>(cli.get_int("regions", 1000));
  const int runs = static_cast<int>(cli.get_int("runs", 3));

  std::cout << "FIG. 8 -- Itanium SMP node (4 chips x 4 cores), raw ITC timestamps,\n"
            << regions << " parallel-for regions, averaged over " << runs << " runs\n\n";

  AsciiTable table({"threads", "any [%]", "entry [%]", "exit [%]", "barrier [%]",
                    "barrier latency [us]"});
  for (int threads : {4, 8, 12, 16}) {
    const benchkit::ConfigList config = {{"threads", std::to_string(threads)},
                                         {"regions", std::to_string(regions)},
                                         {"runs", std::to_string(runs)}};
    double any = 0.0, entry = 0.0, exit_v = 0.0, barrier = 0.0;
    OmpBenchConfig cfg;
    harness.time("omp_violation_scan", config,
                 static_cast<std::int64_t>(regions) * runs, [&] {
                   any = entry = exit_v = barrier = 0.0;
                   for (int run = 0; run < runs; ++run) {
                     cfg = OmpBenchConfig{};
                     cfg.threads = threads;
                     cfg.regions = regions;
                     cfg.seed = cli.get_seed() + static_cast<std::uint64_t>(run) * 7919;
                     const auto res = run_omp_benchmark(cfg);
                     const auto rep = check_omp_semantics(
                         res.trace, TimestampArray::from_local(res.trace));
                     any += rep.any_pct() / runs;
                     entry += rep.entry_pct() / runs;
                     exit_v += rep.exit_pct() / runs;
                     barrier += rep.barrier_pct() / runs;
                   }
                 });
    harness.metric("violation_percentages", config,
                   {{"any_pct", any},
                    {"entry_pct", entry},
                    {"exit_pct", exit_v},
                    {"barrier_pct", barrier},
                    {"barrier_latency_us", to_us(omp_barrier_latency(cfg, threads))}});
    table.add_row({std::to_string(threads), AsciiTable::num(any, 1),
                   AsciiTable::num(entry, 1), AsciiTable::num(exit_v, 1),
                   AsciiTable::num(barrier, 1),
                   AsciiTable::num(to_us(omp_barrier_latency(cfg, threads)), 3)});
  }
  std::cout << table.render()
            << "\nPaper: 83% of regions affected at 4 threads, exit violations most\n"
               "frequent, very few at 12 threads and none at 16 -- because OpenMP\n"
               "synchronization latencies rise with the thread count while the\n"
               "inter-chip clock deviations stay at the ~0.1 us level.\n";
  return 0;
}
