// Fig. 5 — measured clock deviations of two hardware clocks and
// gettimeofday() during long (3600 s) runs after linear offset interpolation.
//
//   (a) Xeon cluster,    Intel timestamp counter
//   (b) PowerPC cluster, IBM time base register
//   (c) Opteron cluster, gettimeofday()
//
// Offsets are probed at the start and the end of the run (Eq. 2), the linear
// map (Eq. 3) is applied, and the residual deviation of every worker against
// the master is sampled.  The paper's observation to reproduce: residuals
// converge at both endpoints but exceed the message latency within minutes;
// gettimeofday() on the Opteron system is worst.
#include <filesystem>
#include <iostream>

#include "analysis/deviation.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "measure/offset_probe.hpp"
#include "sync/interpolation.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

namespace {

struct Panel {
  const char* id;
  const char* cluster_name;
  ClusterSpec cluster;
  TimerSpec timer;
  HierarchicalLatencyModel latency;
};

void run_panel(const Panel& panel, Duration duration, const RngTree& rng,
               benchkit::Harness& harness) {
  const int nranks = 4;
  const benchkit::ConfigList config = {{"panel", panel.id},
                                       {"cluster", panel.cluster_name},
                                       {"timer", panel.timer.name},
                                       {"duration_s", std::to_string(duration)}};

  DeviationSeries series;
  harness.time("panel_residuals", config, 0, [&] {
    const Placement pl = pinning::inter_node(panel.cluster, nranks);
    ClockEnsemble ens(pl, panel.timer, rng.child(panel.id));
    Rng probe_rng = rng.child(panel.id).stream("probe");

    // Offset measurements at both ends (MPI_Init / MPI_Finalize).  All start
    // probes precede all end probes: clock reads are stateful and must only
    // move forward, like the real master process sweeping its workers.
    std::vector<LinearInterpolation::RankParams> params(static_cast<std::size_t>(nranks));
    params[0] = {0.0, 0.0, duration, 0.0};
    for (Rank w = 1; w < nranks; ++w) {
      const auto m1 = direct_probe(ens.clock(0), ens.clock(w), panel.latency,
                                   CommDomain::CrossNode, 1.0 + 0.01 * w, 20, probe_rng);
      params[static_cast<std::size_t>(w)].w1 = m1.worker_time;
      params[static_cast<std::size_t>(w)].o1 = m1.offset;
    }
    for (Rank w = 1; w < nranks; ++w) {
      const auto m2 = direct_probe(ens.clock(0), ens.clock(w), panel.latency,
                                   CommDomain::CrossNode, duration - 1.0 + 0.01 * w, 20,
                                   probe_rng);
      params[static_cast<std::size_t>(w)].w2 = m2.worker_time;
      params[static_cast<std::size_t>(w)].o2 = m2.offset;
    }
    const LinearInterpolation interp(std::move(params));
    series = sample_deviations(ens, interp, duration, duration / 360.0);
  });
  const Duration l_min = panel.latency.min_latency(CommDomain::CrossNode);

  std::filesystem::create_directories("bench_out");
  const std::string csv_path =
      std::string("bench_out/fig5") + panel.id + "_" + panel.timer.name + ".csv";
  {
    std::vector<std::string> header = {"t_s"};
    for (Rank r = 1; r < nranks; ++r) header.push_back("dev_rank" + std::to_string(r) + "_us");
    CsvWriter csv(csv_path, header);
    for (std::size_t k = 0; k < series.at.size(); ++k) {
      std::vector<double> row = {series.at[k]};
      for (Rank r = 1; r < nranks; ++r) {
        row.push_back(to_us(series.per_rank[static_cast<std::size_t>(r)][k]));
      }
      csv.add_row(row);
    }
  }

  const Time exceed = first_exceedance(series, l_min);
  harness.metric("panel_summary", config,
                 {{"max_abs_residual_us", to_us(max_abs_deviation(series))},
                  {"latency_floor_us", to_us(l_min)},
                  {"first_exceedance_s", exceed}});
  std::cout << "Fig. 5(" << panel.id << ")  " << panel.cluster_name << ", "
            << panel.timer.name << ":\n";
  AsciiTable table({"t [s]", "rank1 [us]", "rank2 [us]", "rank3 [us]"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto k = std::min(series.at.size() - 1,
                            static_cast<std::size_t>(frac * (series.at.size() - 1)));
    table.add_row({AsciiTable::num(series.at[k], 0),
                   AsciiTable::num(to_us(series.per_rank[1][k]), 2),
                   AsciiTable::num(to_us(series.per_rank[2][k]), 2),
                   AsciiTable::num(to_us(series.per_rank[3][k]), 2)});
  }
  std::cout << table.render() << "max |residual| "
            << AsciiTable::num(to_us(max_abs_deviation(series)), 1) << " us; latency "
            << AsciiTable::num(to_us(l_min), 2) << " us first exceeded at t = "
            << (exceed < 0 ? std::string("never") : AsciiTable::num(exceed, 0) + " s")
            << "\nseries: " << csv_path << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig5_hardware_clocks", {1, 0});
  const Duration duration = cli.get_double("duration", 3600.0);
  const RngTree rng(cli.get_seed());

  std::cout << "FIG. 5 -- residual deviations after linear offset interpolation ("
            << duration << " s runs)\n\n";
  const Panel panels[] = {
      {"a", "Xeon cluster", clusters::xeon_rwth(), timer_specs::intel_tsc(),
       latencies::xeon_infiniband()},
      {"b", "PowerPC cluster", clusters::powerpc_marenostrum(), timer_specs::ibm_time_base(),
       latencies::powerpc_myrinet()},
      {"c", "Opteron cluster", clusters::opteron_jaguar(), timer_specs::opteron_gettimeofday(),
       latencies::opteron_seastar()},
  };
  for (const auto& p : panels) run_panel(p, duration, rng, harness);

  std::cout << "Expected shapes: residuals ~0 at both endpoints (interpolation anchors),\n"
               "bowed in between, crossing the message latency within minutes; the\n"
               "Opteron gettimeofday() panel shows the largest residuals.\n";
  return 0;
}
