// Ablation — CLC design choices: forward amortization decay rate and the
// backward amortization pass.  Measures repaired violations, interval
// distortion vs. the CLC input, and pairwise sync error.
#include <iostream>
#include <optional>

#include "analysis/clock_condition.hpp"
#include "analysis/interval_stats.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "obs/session.hpp"
#include "common/table.hpp"
#include "common/expect.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "ablation_clc", {1, 0});
  obs::ObsSession obs_session(cli, "ablation_clc");
  SweepConfig workload;
  workload.rounds = static_cast<int>(cli.get_int("rounds", 600));
  workload.gap_mean = cli.get_double("gap", 3.0);
  workload.collective_every = 50;

  JobConfig job;
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();
  const benchkit::ConfigList base = {{"ranks", std::to_string(ranks)},
                                     {"rounds", std::to_string(workload.rounds)}};

  std::optional<AppRunResult> res;
  harness.time("sweep_simulation", base, 0,
               [&] { res = run_sweep(workload, JobConfig(job)); });
  const auto msgs = res->trace.match_messages();
  const auto logical = derive_logical_messages(res->trace);
  const ReplaySchedule schedule(res->trace, msgs, logical);
  const auto input =
      apply_correction(res->trace, LinearInterpolation::from_store(res->offsets));

  std::cout << "ABLATION -- CLC parameters (input: linear interpolation; "
            << msgs.size() << " messages)\n\n";
  AsciiTable table({"forward decay", "backward amort.", "repaired", "max jump [us]",
                    "interval distortion mean [us]", "pair sync err [us]"});

  for (double decay : {0.0, 0.01, 0.05, 0.2, 0.8}) {
    for (bool backward : {false, true}) {
      benchkit::ConfigList config = base;
      config.emplace_back("forward_decay", AsciiTable::num(decay, 2));
      config.emplace_back("backward_amortization", backward ? "on" : "off");
      ClcOptions opt;
      opt.forward_decay = decay;
      opt.backward_amortization = backward;
      std::optional<ClcResult> clc;
      harness.time("clc_variant", config, static_cast<std::int64_t>(schedule.events()),
                   [&] { clc = controlled_logical_clock(res->trace, schedule, input, opt); });
      const auto rep = check_clock_condition(res->trace, clc->corrected, schedule);
      if (rep.violations() != 0) {
        std::cerr << "unexpected: violations remain for decay=" << decay << "\n";
      }
      if (cli.has("verify")) {
        // Every variant, whatever its decay, must restore Eq. 1 exactly and
        // never move an event before its input timestamp.
        const verify::InvariantChecker checker(res->trace, schedule);
        const auto audit = checker.check_correction(input, clc->corrected);
        if (!audit.ok()) std::cerr << audit.summary();
        CS_ENSURE(audit.ok(), "CLC variant violates the paper invariants");
      }
      const auto dist = interval_distortion(res->trace, input, clc->corrected);
      const auto err = message_sync_error(res->trace, clc->corrected, msgs);
      harness.metric("clc_variant_quality", config,
                     {{"violations_repaired", static_cast<double>(clc->violations_repaired)},
                      {"max_jump_us", to_us(clc->max_jump)},
                      {"interval_distortion_mean_us", to_us(dist.absolute.mean())},
                      {"pair_sync_error_us", to_us(err.mean())}});
      table.add_row({AsciiTable::num(decay, 2), backward ? "on" : "off",
                     std::to_string(clc->violations_repaired),
                     AsciiTable::num(to_us(clc->max_jump), 3),
                     AsciiTable::num(to_us(dist.absolute.mean()), 4),
                     AsciiTable::num(to_us(err.mean()), 3)});
    }
  }
  std::cout << table.render()
            << "\nReading: decay 0 keeps the full correction forever (pure offset\n"
               "shift); large decay snaps back to the (wrong) local clock quickly and\n"
               "re-violates repeatedly, repairing more receives.  Backward\n"
               "amortization trades a little interval distortion for removing the\n"
               "artificial idle gap before each jump.\n";
  obs_session.finish();
  return 0;
}
