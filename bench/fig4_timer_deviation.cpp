// Fig. 4 — Xeon cluster: measured clock deviations of different timers during
// short, medium, and long runs after an initial offset alignment.
//
//   (a) MPI_Wtime()     over  300 s: piecewise-linear divergence with abrupt
//                                    slope changes, exceeding 200 us quickly;
//   (b) gettimeofday()  over 1800 s: same morphology (NTP slews);
//   (c) Intel TSC       over 3600 s: nearly constant drift rates.
//
// Four processes on distinct nodes; rank 0 is the master.  Offsets are
// aligned at t=0 via simulated Cristian probing, exactly like step (i) of the
// paper's evaluation.  Full series are written as CSV to bench_out/.
#include <filesystem>
#include <iostream>

#include "analysis/deviation.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "measure/offset_probe.hpp"
#include "sync/offset_alignment.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

namespace {

void run_panel(const char* panel, const TimerSpec& spec, Duration duration,
               const RngTree& rng, benchkit::Harness& harness) {
  const int nranks = 4;
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), nranks);
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  const benchkit::ConfigList config = {{"panel", panel},
                                       {"timer", spec.name},
                                       {"duration_s", std::to_string(duration)}};

  DeviationSeries series;
  harness.time("panel_deviations", config, 0, [&] {
    ClockEnsemble ens(pl, spec, rng.child(spec.name));

    // Initial offset alignment from a measured probe at t ~ 0.
    Rng probe_rng = rng.child(spec.name).stream("probe");
    std::vector<Duration> offsets(static_cast<std::size_t>(nranks), 0.0);
    for (Rank w = 1; w < nranks; ++w) {
      // Workers are probed sequentially (staggered start times), as a master
      // process would: clock reads are stateful and must move forward.
      const Time when = 0.01 * (w - 1);
      offsets[static_cast<std::size_t>(w)] =
          direct_probe(ens.clock(0), ens.clock(w), lat, CommDomain::CrossNode, when, 20,
                       probe_rng)
              .offset;
    }
    const OffsetAlignment align(std::move(offsets));

    const Duration step = duration / 360.0;
    series = sample_deviations(ens, align, duration, step);
  });

  std::filesystem::create_directories("bench_out");
  const std::string csv_path =
      std::string("bench_out/fig4") + panel + "_" + spec.name + ".csv";
  {
    std::vector<std::string> header = {"t_s"};
    for (Rank r = 1; r < nranks; ++r) header.push_back("dev_rank" + std::to_string(r) + "_us");
    CsvWriter csv(csv_path, header);
    for (std::size_t k = 0; k < series.at.size(); ++k) {
      std::vector<double> row = {series.at[k]};
      for (Rank r = 1; r < nranks; ++r) {
        row.push_back(to_us(series.per_rank[static_cast<std::size_t>(r)][k]));
      }
      csv.add_row(row);
    }
  }

  std::cout << "Fig. 4(" << panel << ")  " << spec.name << ", " << duration
            << " s run, deviations vs. master after initial offset alignment\n";
  AsciiTable table({"t [s]", "rank1 [us]", "rank2 [us]", "rank3 [us]"});
  for (double frac : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto k = std::min(series.at.size() - 1,
                            static_cast<std::size_t>(frac * (series.at.size() - 1)));
    table.add_row({AsciiTable::num(series.at[k], 0),
                   AsciiTable::num(to_us(series.per_rank[1][k]), 1),
                   AsciiTable::num(to_us(series.per_rank[2][k]), 1),
                   AsciiTable::num(to_us(series.per_rank[3][k]), 1)});
  }
  std::cout << table.render();

  // Count abrupt slope changes (the paper's "turning points"): a change of
  // the per-step increment by more than 3x the median increment magnitude.
  int turning_points = 0;
  for (Rank r = 1; r < nranks; ++r) {
    const auto& dev = series.per_rank[static_cast<std::size_t>(r)];
    std::vector<double> inc;
    for (std::size_t k = 1; k < dev.size(); ++k) inc.push_back(dev[k] - dev[k - 1]);
    for (std::size_t k = 1; k < inc.size(); ++k) {
      if (std::abs(inc[k] - inc[k - 1]) > 0.2 * units::us) ++turning_points;
    }
  }
  harness.metric("panel_summary", config,
                 {{"max_abs_deviation_us", to_us(max_abs_deviation(series))},
                  {"turning_points", static_cast<double>(turning_points)}});
  std::cout << "max |deviation| " << AsciiTable::num(to_us(max_abs_deviation(series)), 1)
            << " us; slope turning points detected: " << turning_points << "\n"
            << "series: " << csv_path << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig4_timer_deviation", {1, 0});
  const RngTree rng(cli.get_seed());
  std::cout << "FIG. 4 -- Xeon cluster: clock deviations after initial offset alignment\n\n";
  run_panel("a", timer_specs::mpi_wtime(), cli.get_double("short", 300.0), rng, harness);
  run_panel("b", timer_specs::gettimeofday_ntp(), cli.get_double("medium", 1800.0), rng,
            harness);
  run_panel("c", timer_specs::intel_tsc(), cli.get_double("long", 3600.0), rng, harness);
  std::cout << "Expected shapes: (a)/(b) piecewise-linear with abrupt slope changes\n"
               "(NTP slews); (c) nearly straight lines (constant hardware drift).\n";
  return 0;
}
