// Performance — trace subsystem throughput: serialization (binary and text),
// logical-message derivation, and timeline rendering.
#include <sstream>

#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "sync/replay.hpp"
#include "trace/logical_messages.hpp"
#include "trace/otf_text.hpp"
#include "trace/timeline.hpp"
#include "trace/trace_io.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

Trace make_fixture(int ranks, int rounds, std::uint64_t seed) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  cfg.gap_mean = 0.01;
  cfg.collective_every = 25;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job)).trace;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "perf_trace");
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const int rounds = static_cast<int>(cli.get_int("rounds", 500));

  const Trace t = make_fixture(ranks, rounds, cli.get_seed());
  const auto events = static_cast<std::int64_t>(t.total_events());
  const benchkit::ConfigList base = {{"ranks", std::to_string(ranks)},
                                     {"rounds", std::to_string(rounds)}};

  harness.time("binary_write", base, events, [&] {
    std::stringstream buf;
    write_trace(t, buf);
    benchkit::do_not_optimize(buf.tellp());
  });

  {
    std::stringstream buf;
    write_trace(t, buf);
    const std::string blob = buf.str();
    harness.time("binary_round_trip", base, events, [&] {
      std::stringstream in(blob);
      Trace back = read_trace(in);
      benchkit::do_not_optimize(back.total_events());
    });
  }

  {
    std::stringstream buf;
    write_text_trace(t, buf);
    const std::string blob = buf.str();
    harness.time("text_round_trip", base, events, [&] {
      std::stringstream in(blob);
      Trace back = read_text_trace(in);
      benchkit::do_not_optimize(back.total_events());
    });
  }

  harness.time("derive_logical_messages", base, events, [&] {
    auto logical = derive_logical_messages(t);
    benchkit::do_not_optimize(logical.size());
  });

  // Dependency-ordered traversal throughput over the CSR schedule — the
  // common substrate of every replay-based consumer (CLC, logical clocks,
  // violation scans).
  {
    const auto msgs = t.match_messages();
    const auto logical = derive_logical_messages(t);
    const ReplaySchedule schedule(t, msgs, logical);
    harness.time("replay_visit", base, static_cast<std::int64_t>(schedule.events()), [&] {
      std::uint64_t acc = 0;
      schedule.replay([&](std::uint32_t g, EventRef) { acc += g; });
      benchkit::do_not_optimize(acc);
    });
  }

  {
    const auto ts = TimestampArray::from_local(t);
    TimelineOptions opt;
    opt.max_messages = 10;
    harness.time("timeline_render", base, events, [&] {
      const std::string s = render_timeline(t, ts, opt);
      benchkit::do_not_optimize(s.size());
    });
  }
  return 0;
}
