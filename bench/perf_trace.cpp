// Performance — trace subsystem throughput: serialization (binary and text),
// logical-message derivation, and timeline rendering.
#include <benchmark/benchmark.h>

#include <sstream>

#include "trace/logical_messages.hpp"
#include "trace/otf_text.hpp"
#include "trace/timeline.hpp"
#include "trace/trace_io.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

const Trace& fixture() {
  static Trace trace = [] {
    SweepConfig cfg;
    cfg.rounds = 500;
    cfg.gap_mean = 0.01;
    cfg.collective_every = 25;
    JobConfig job;
    job.placement = pinning::inter_node(clusters::xeon_rwth(), 16);
    job.timer = timer_specs::intel_tsc();
    job.seed = 42;
    return run_sweep(cfg, std::move(job)).trace;
  }();
  return trace;
}

void BM_BinaryWrite(benchmark::State& state) {
  const Trace& t = fixture();
  for (auto _ : state) {
    std::stringstream buf;
    write_trace(t, buf);
    benchmark::DoNotOptimize(buf.tellp());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.total_events()));
}
BENCHMARK(BM_BinaryWrite)->Unit(benchmark::kMillisecond);

void BM_BinaryRoundTrip(benchmark::State& state) {
  const Trace& t = fixture();
  std::stringstream buf;
  write_trace(t, buf);
  const std::string blob = buf.str();
  for (auto _ : state) {
    std::stringstream in(blob);
    Trace back = read_trace(in);
    benchmark::DoNotOptimize(back.total_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.total_events()));
}
BENCHMARK(BM_BinaryRoundTrip)->Unit(benchmark::kMillisecond);

void BM_TextRoundTrip(benchmark::State& state) {
  const Trace& t = fixture();
  std::stringstream buf;
  write_text_trace(t, buf);
  const std::string blob = buf.str();
  for (auto _ : state) {
    std::stringstream in(blob);
    Trace back = read_text_trace(in);
    benchmark::DoNotOptimize(back.total_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.total_events()));
}
BENCHMARK(BM_TextRoundTrip)->Unit(benchmark::kMillisecond);

void BM_DeriveLogicalMessages(benchmark::State& state) {
  const Trace& t = fixture();
  for (auto _ : state) {
    auto logical = derive_logical_messages(t);
    benchmark::DoNotOptimize(logical.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.total_events()));
}
BENCHMARK(BM_DeriveLogicalMessages)->Unit(benchmark::kMillisecond);

void BM_TimelineRender(benchmark::State& state) {
  const Trace& t = fixture();
  const auto ts = TimestampArray::from_local(t);
  TimelineOptions opt;
  opt.max_messages = 10;
  for (auto _ : state) {
    const std::string s = render_timeline(t, ts, opt);
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.total_events()));
}
BENCHMARK(BM_TimelineRender)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronosync

BENCHMARK_MAIN();
