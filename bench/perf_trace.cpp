// Performance — trace subsystem throughput: serialization (binary v1/v2 and
// text), logical-message derivation, timeline rendering, and the out-of-core
// streaming scan.
//
// The streaming section runs FIRST and compares resident memory of the two
// clock-condition pipelines over the same ≥1M-event v2 file: peak RSS is a
// process-wide high-water mark, so the bounded-memory stage must be metered
// before anything materializes a large trace.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/clock_condition.hpp"
#include "analysis/clock_condition_stream.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "obs/session.hpp"
#include "common/expect.hpp"
#include "sync/replay.hpp"
#include "trace/logical_messages.hpp"
#include "trace/otf_text.hpp"
#include "trace/stream_io.hpp"
#include "trace/timeline.hpp"
#include "trace/trace_io.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

Trace make_fixture(int ranks, int rounds, std::uint64_t seed) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  cfg.gap_mean = 0.01;
  cfg.collective_every = 25;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job)).trace;
}

/// Writes a synthetic trace of ~`total` events rank-by-rank through
/// TraceWriter without ever materializing a Trace: resident memory stays at
/// one Event regardless of the trace size.  Every tenth event pair is a
/// matched cross-rank message (rank r event i=_8 sends to rank r+1, whose
/// i=_9 receives it), so the streaming scan has real pairing work to do; one
/// message in 16 is timestamped in violation of the clock condition.
std::uint64_t write_synthetic_stream(const std::string& path, int ranks,
                                     std::uint64_t total) {
  TraceMeta meta;
  meta.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  meta.domain_min_latency = {0.47e-6, 0.86e-6, 4.29e-6};
  meta.timer_name = "synthetic-stream";
  meta.regions = {"compute"};

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  CS_REQUIRE(f.good(), "cannot open streaming bench file: " + path);
  TraceWriter w(f, meta);
  const std::uint64_t per_rank = total / static_cast<std::uint64_t>(ranks);
  constexpr double kStep = 1e-5;  // > inter-node l_min, so matched pairs obey Eq. 1
  for (int r = 0; r < ranks; ++r) {
    const int prev = (r + ranks - 1) % ranks;
    for (std::uint64_t i = 0; i < per_rank; ++i) {
      Event e;
      e.local_ts = static_cast<double>(i) * kStep;
      e.thread = 0;
      switch (i % 10) {
        case 8:
          e.type = EventType::Send;
          e.peer = (r + 1) % ranks;
          e.tag = 1;
          e.bytes = 8192;
          e.msg_id = static_cast<std::int64_t>(per_rank) * r + static_cast<std::int64_t>(i);
          break;
        case 9:
          e.type = EventType::Recv;
          e.peer = prev;
          e.msg_id =
              static_cast<std::int64_t>(per_rank) * prev + static_cast<std::int64_t>(i - 1);
          // Every 16th message arrives before it was sent (a reversal).
          if ((i / 10) % 16 == 0) e.local_ts = static_cast<double>(i - 1) * kStep - 1e-7;
          break;
        default:
          e.type = (i % 2 == 0) ? EventType::Enter : EventType::Exit;
          e.region = 0;
          break;
      }
      e.true_ts = e.local_ts;
      w.append(r, e);
    }
  }
  w.finish();
  return w.events_written();
}

void require_reports_equal(const ClockConditionReport& a, const ClockConditionReport& b) {
  CS_ENSURE(a.p2p_messages == b.p2p_messages && a.p2p_reversed == b.p2p_reversed &&
                a.p2p_violations == b.p2p_violations &&
                a.logical_messages == b.logical_messages &&
                a.logical_violations == b.logical_violations &&
                a.total_events == b.total_events && a.message_events == b.message_events,
            "streaming scan diverges from the in-memory pipeline");
}

/// Out-of-core section: generation throughput, streaming-scan throughput, and
/// the resident-memory comparison against the in-memory loader.
void run_streaming_section(benchkit::Harness& harness, std::uint64_t stream_events) {
  using benchkit::allocation_totals;
  using benchkit::sample_resource_usage;

  const int ranks = 8;
  const std::string file = "bench_stream_trace.v2";
  const benchkit::ConfigList cfg = {{"stream_events", std::to_string(stream_events)},
                                    {"stream_ranks", std::to_string(ranks)}};

  std::uint64_t written = 0;
  harness.time("v2_stream_write", cfg, static_cast<std::int64_t>(stream_events), [&] {
    written = write_synthetic_stream(file, ranks, stream_events);
    benchkit::do_not_optimize(written);
  });

  // One metered pass: allocation and RSS deltas of the bounded-memory scan.
  const auto rss_before = sample_resource_usage();
  const auto alloc_before = allocation_totals();
  const ClockConditionReport streamed = scan_clock_condition_file(file);
  const auto rss_after = sample_resource_usage();
  const auto alloc_after = allocation_totals();
  harness.metric(
      "v2_stream_scan_memory", cfg,
      {{"events", static_cast<double>(written)},
       {"alloc_bytes", static_cast<double>(alloc_after.bytes - alloc_before.bytes)},
       {"current_rss_delta_bytes",
        static_cast<double>(rss_after.current_rss_bytes - rss_before.current_rss_bytes)},
       {"peak_rss_bytes", static_cast<double>(rss_after.peak_rss_bytes)},
       {"p2p_messages", static_cast<double>(streamed.p2p_messages)},
       {"p2p_reversed", static_cast<double>(streamed.p2p_reversed)}});

  harness.time("v2_stream_scan", cfg, static_cast<std::int64_t>(written), [&] {
    const auto rep = scan_clock_condition_file(file);
    benchkit::do_not_optimize(rep.p2p_messages);
  });

  // The in-memory pipeline over the same file, metered the same way.  Runs
  // after the streaming stage so its footprint cannot inflate the streaming
  // peak-RSS sample.
  const auto rss_mem_before = sample_resource_usage();
  const auto alloc_mem_before = allocation_totals();
  {
    const Trace t = read_trace_file(file);
    const ClockConditionReport in_memory =
        check_clock_condition(t, TimestampArray::from_local(t));
    const auto rss_mem_after = sample_resource_usage();
    const auto alloc_mem_after = allocation_totals();
    require_reports_equal(streamed, in_memory);
    harness.metric(
        "inmemory_scan_memory", cfg,
        {{"events", static_cast<double>(t.total_events())},
         {"alloc_bytes",
          static_cast<double>(alloc_mem_after.bytes - alloc_mem_before.bytes)},
         {"current_rss_delta_bytes",
          static_cast<double>(rss_mem_after.current_rss_bytes -
                              rss_mem_before.current_rss_bytes)},
         {"peak_rss_bytes", static_cast<double>(rss_mem_after.peak_rss_bytes)}});
  }
  std::remove(file.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "perf_trace");
  obs::ObsSession obs_session(cli, "perf_trace");
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  const int rounds = static_cast<int>(cli.get_int("rounds", 500));
  const auto stream_events =
      static_cast<std::uint64_t>(cli.get_int("stream-events", 1000000));

  // Before any in-memory fixture exists: the peak-RSS comparison needs the
  // streaming stage to run in a small process.
  if (stream_events > 0) run_streaming_section(harness, stream_events);

  const Trace t = make_fixture(ranks, rounds, cli.get_seed());
  const auto events = static_cast<std::int64_t>(t.total_events());
  const benchkit::ConfigList base = {{"ranks", std::to_string(ranks)},
                                     {"rounds", std::to_string(rounds)}};

  harness.time("binary_write", base, events, [&] {
    std::stringstream buf;
    write_trace(t, buf);
    benchkit::do_not_optimize(buf.tellp());
  });

  harness.time("v2_write", base, events, [&] {
    std::stringstream buf;
    write_trace_v2(t, buf);
    benchkit::do_not_optimize(buf.tellp());
  });

  {
    std::stringstream buf;
    write_trace(t, buf);
    const std::string blob = buf.str();
    harness.time("binary_round_trip", base, events, [&] {
      std::stringstream in(blob);
      Trace back = read_trace(in);
      benchkit::do_not_optimize(back.total_events());
    });
  }

  {
    std::stringstream buf;
    write_trace_v2(t, buf);
    const std::string blob = buf.str();
    harness.time("v2_round_trip", base, events, [&] {
      std::stringstream in(blob);
      Trace back = read_trace(in);
      benchkit::do_not_optimize(back.total_events());
    });
  }

  // Encoded-size comparison of the three formats over the same fixture.
  {
    std::stringstream v1;
    std::stringstream v2;
    std::stringstream txt;
    write_trace(t, v1);
    write_trace_v2(t, v2);
    write_text_trace(t, txt);
    const auto v1_bytes = static_cast<double>(v1.str().size());
    const auto v2_bytes = static_cast<double>(v2.str().size());
    harness.metric("format_sizes", base,
                   {{"v1_bytes", v1_bytes},
                    {"v2_bytes", v2_bytes},
                    {"text_bytes", static_cast<double>(txt.str().size())},
                    {"v2_over_v1", v2_bytes / v1_bytes},
                    {"events", static_cast<double>(events)}});
  }

  {
    std::stringstream buf;
    write_text_trace(t, buf);
    const std::string blob = buf.str();
    harness.time("text_round_trip", base, events, [&] {
      std::stringstream in(blob);
      Trace back = read_text_trace(in);
      benchkit::do_not_optimize(back.total_events());
    });
  }

  harness.time("derive_logical_messages", base, events, [&] {
    auto logical = derive_logical_messages(t);
    benchkit::do_not_optimize(logical.size());
  });

  // Dependency-ordered traversal throughput over the CSR schedule — the
  // common substrate of every replay-based consumer (CLC, logical clocks,
  // violation scans).
  {
    const auto msgs = t.match_messages();
    const auto logical = derive_logical_messages(t);
    const ReplaySchedule schedule(t, msgs, logical);
    harness.time("replay_visit", base, static_cast<std::int64_t>(schedule.events()), [&] {
      std::uint64_t acc = 0;
      schedule.replay([&](std::uint32_t g, EventRef) { acc += g; });
      benchkit::do_not_optimize(acc);
    });
  }

  {
    const auto ts = TimestampArray::from_local(t);
    TimelineOptions opt;
    opt.max_messages = 10;
    harness.time("timeline_render", base, events, [&] {
      const std::string s = render_timeline(t, ts, opt);
      benchkit::do_not_optimize(s.size());
    });
  }

  // Opt-in audit: the fixture's local timestamps must be structurally sound
  // (finite, locally ordered) and the three clock-condition scanners must
  // agree on it field-for-field.
  if (cli.has("verify")) {
    const auto msgs = t.match_messages();
    const auto logical = derive_logical_messages(t);
    const ReplaySchedule schedule(t, msgs, logical);
    verify::VerifyOptions vopt;
    vopt.clock_condition_slack = kTimeInfinity;  // raw clocks do violate Eq. 1
    const verify::InvariantChecker checker(t, schedule, vopt);
    const auto audit = checker.check(TimestampArray::from_local(t));
    if (!audit.ok()) std::fprintf(stderr, "%s", audit.summary().c_str());
    CS_ENSURE(audit.ok(), "trace fixture violates structural invariants");
    std::vector<std::string> failures;
    verify::cross_check_scans(t, schedule, failures);
    for (const auto& f : failures) std::fprintf(stderr, "FAIL %s\n", f.c_str());
    CS_ENSURE(failures.empty(), "clock-condition scanners diverge");
    std::fprintf(stderr, "verify: trace invariants + scanner cross-check ok\n");
  }
  obs_session.finish();
  return 0;
}
