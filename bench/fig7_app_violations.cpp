// Fig. 7 — Xeon cluster: percentage of messages with the order of send and
// receive events being reversed, and of message transfer events in relation
// to the total number of events, for SMG2000 and POP (32 processes each).
//
// Setup mirrors the paper: scheduler-chosen placement, Scalasca-style linear
// offset interpolation from measurements at MPI_Init/MPI_Finalize, partial
// tracing (POP: iterations 3500..5500 of 9000; SMG2000: sleep-padded so the
// interpolation interval is ~20 minutes).  Numbers are averaged over three
// runs, as in the paper.
#include <iostream>

#include "analysis/clock_condition.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/interpolation.hpp"
#include "workload/pop.hpp"
#include "workload/smg2000.hpp"

using namespace chronosync;

namespace {

struct AppStats {
  double reversed_pct = 0.0;        // p2p + logical messages reversed
  double p2p_reversed_pct = 0.0;
  double logical_reversed_pct = 0.0;
  double message_event_pct = 0.0;
  double violation_pct = 0.0;
};

AppStats analyze(const AppRunResult& res) {
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto ts = apply_correction(res.trace, interp);
  const auto rep = check_clock_condition(res.trace, ts);
  AppStats s;
  s.reversed_pct = rep.combined_reversed_pct();
  s.p2p_reversed_pct = rep.p2p_reversed_pct();
  s.logical_reversed_pct = rep.logical_reversed_pct();
  s.message_event_pct = rep.message_event_pct();
  s.violation_pct =
      rep.p2p_messages + rep.logical_messages == 0
          ? 0.0
          : 100.0 * static_cast<double>(rep.violations()) /
                static_cast<double>(rep.p2p_messages + rep.logical_messages);
  return s;
}

JobConfig make_job(std::uint64_t seed) {
  JobConfig job;
  Rng pin_rng(seed ^ 0x5deece66dULL);
  job.placement = pinning::scheduler_default(clusters::xeon_rwth(), 32, pin_rng);
  job.timer = timer_specs::intel_tsc();
  job.latency = latencies::xeon_infiniband();
  job.seed = seed;
  job.record_mpi_regions = true;  // PMPI-style tracing, as Scalasca does
  return job;
}

benchkit::MetricList to_metrics(const AppStats& s) {
  return {{"reversed_pct", s.reversed_pct},
          {"p2p_reversed_pct", s.p2p_reversed_pct},
          {"logical_reversed_pct", s.logical_reversed_pct},
          {"message_event_pct", s.message_event_pct},
          {"violation_pct", s.violation_pct}};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig7_app_violations", {1, 0});
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  // Scaled POP window: same ~25 min run shape, configurable for quick tests.
  const int pop_iters = static_cast<int>(cli.get_int("pop-iters", 9000));
  const int traced = static_cast<int>(cli.get_int("pop-traced", 2000));
  const benchkit::ConfigList base = {{"runs", std::to_string(runs)},
                                     {"pop_iters", std::to_string(pop_iters)},
                                     {"pop_traced", std::to_string(traced)},
                                     {"ranks", "32"}};

  AppStats smg_avg{}, pop_avg{};
  for (int run = 0; run < runs; ++run) {
    const std::uint64_t seed = cli.get_seed() + static_cast<std::uint64_t>(run);

    SmgConfig smg;
    smg.px = 8;
    smg.py = 4;
    AppStats s{};
    auto run_one_smg = [&] { s = analyze(run_smg(smg, make_job(seed))); };
    if (run == 0) {
      harness.time("smg2000_run_and_analyze", base, 0, run_one_smg);
    } else {
      run_one_smg();
    }
    smg_avg.reversed_pct += s.reversed_pct / runs;
    smg_avg.p2p_reversed_pct += s.p2p_reversed_pct / runs;
    smg_avg.logical_reversed_pct += s.logical_reversed_pct / runs;
    smg_avg.message_event_pct += s.message_event_pct / runs;
    smg_avg.violation_pct += s.violation_pct / runs;

    PopConfig pop;
    pop.px = 8;
    pop.py = 4;
    pop.total_iterations = pop_iters;
    pop.traced_begin = (pop_iters - traced) / 2;
    pop.traced_end = pop.traced_begin + traced;
    AppStats p{};
    auto run_one_pop = [&] { p = analyze(run_pop(pop, make_job(seed + 1000))); };
    if (run == 0) {
      harness.time("pop_run_and_analyze", base, 0, run_one_pop);
    } else {
      run_one_pop();
    }
    pop_avg.reversed_pct += p.reversed_pct / runs;
    pop_avg.p2p_reversed_pct += p.p2p_reversed_pct / runs;
    pop_avg.logical_reversed_pct += p.logical_reversed_pct / runs;
    pop_avg.message_event_pct += p.message_event_pct / runs;
    pop_avg.violation_pct += p.violation_pct / runs;
    std::cerr << "run " << run + 1 << "/" << runs << " done\n";
  }
  harness.metric("smg2000_averages", base, to_metrics(smg_avg));
  harness.metric("pop_averages", base, to_metrics(pop_avg));

  std::cout << "FIG. 7 -- Xeon cluster, 32 processes, linear interpolation from\n"
               "MPI_Init/MPI_Finalize offset measurements; averages over "
            << runs << " runs\n\n";
  AsciiTable table({"metric", "SMG2000", "POP"});
  table.add_row({"messages reversed [%] (front row)",
                 AsciiTable::num(smg_avg.reversed_pct, 2),
                 AsciiTable::num(pop_avg.reversed_pct, 2)});
  table.add_row({"  p2p messages reversed [%]", AsciiTable::num(smg_avg.p2p_reversed_pct, 2),
                 AsciiTable::num(pop_avg.p2p_reversed_pct, 2)});
  table.add_row({"  logical (collective) reversed [%]",
                 AsciiTable::num(smg_avg.logical_reversed_pct, 2),
                 AsciiTable::num(pop_avg.logical_reversed_pct, 2)});
  table.add_row({"message events / total events [%] (back row)",
                 AsciiTable::num(smg_avg.message_event_pct, 2),
                 AsciiTable::num(pop_avg.message_event_pct, 2)});
  table.add_row({"clock-condition violations [%]", AsciiTable::num(smg_avg.violation_pct, 2),
                 AsciiTable::num(pop_avg.violation_pct, 2)});
  std::cout << table.render()
            << "\nThe paper's claim to reproduce: linear interpolation alone leaves a\n"
               "significant percentage of messages reversed in both applications.\n";
  return 0;
}
