// Fig. 3 — a violation of OpenMP barrier semantics observed on an Itanium
// SMP node: one thread appears to leave the implicit barrier before another
// has entered it.
//
// Runs the POMP benchmark at 4 threads and renders the first violated
// barrier as a text timeline (the paper shows the Vampir screenshot of the
// same situation), contrasting measured local timestamps with ground truth.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/omp_semantics.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ompsim/omp_bench.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig3_barrier_violation", {1, 0});
  OmpBenchConfig cfg;
  cfg.threads = static_cast<int>(cli.get_int("threads", 4));
  cfg.regions = static_cast<int>(cli.get_int("regions", 500));
  cfg.seed = cli.get_seed();
  const benchkit::ConfigList base = {{"threads", std::to_string(cfg.threads)},
                                     {"regions", std::to_string(cfg.regions)}};

  OmpBenchResult res;
  OmpSemanticsReport rep;
  harness.time("omp_benchmark_and_check", base, cfg.regions, [&] {
    res = run_omp_benchmark(cfg);
    rep = check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
  });
  harness.metric("barrier_violations", base,
                 {{"regions_with_barrier_violation", static_cast<double>(rep.with_barrier)},
                  {"regions_with_any_violation", static_cast<double>(rep.with_any)},
                  {"regions_total", static_cast<double>(rep.regions)}});

  std::cout << "FIG. 3 -- OpenMP barrier-semantics violation on the Itanium SMP node\n"
            << "(" << cfg.threads << " threads, " << cfg.regions << " regions, raw "
            << cfg.timer.name << " timestamps)\n\n";

  const OmpRegionCheck* barrier_case = nullptr;
  for (const auto& check : rep.details) {
    if (check.barrier_violation) {
      barrier_case = &check;
      break;
    }
  }
  if (!barrier_case) {
    std::cout << "no barrier violation in this run (try another --seed); "
              << rep.with_any << "/" << rep.regions << " regions had some violation\n";
    return 0;
  }

  std::cout << "region instance " << barrier_case->instance
            << ": a thread's measured BARRIER EXIT precedes another thread's\n"
               "BARRIER ENTER -- impossible under barrier semantics.\n\n";

  struct Line {
    ThreadId thread;
    EventType type;
    Time local;
    Time truth;
  };
  std::vector<Line> lines;
  for (const Event& e : res.trace.events(0)) {
    if (e.omp_instance != barrier_case->instance) continue;
    if (e.type != EventType::BarrierEnter && e.type != EventType::BarrierExit) continue;
    lines.push_back({e.thread, e.type, e.local_ts, e.true_ts});
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.local < b.local; });

  const Time base_ts = lines.front().local;
  const Time tbase = lines.front().truth;
  AsciiTable table({"thread", "event", "measured [us]", "true [us]"});
  for (const auto& l : lines) {
    table.add_row({"1:" + std::to_string(l.thread), to_string(l.type),
                   AsciiTable::num(to_us(l.local - base_ts), 3),
                   AsciiTable::num(to_us(l.truth - tbase), 3)});
  }
  std::cout << table.render()
            << "\n(rows ordered by measured time: note an EXIT sorting before an\n"
               "ENTER while the true-time column stays consistent)\n\n"
            << "summary: " << rep.with_barrier << "/" << rep.regions
            << " regions with barrier violations, " << rep.with_any << " with any.\n";
  return 0;
}
