// Table I — Xeon cluster: process pinning for measurements among SMP nodes,
// chips, and cores.
//
// Reproduces the placement matrix and verifies each pinning yields the
// intended communication domain between every pair of ranks.
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "topology/cluster.hpp"
#include "topology/pinning.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "table1_pinning", {1, 0});
  const ClusterSpec xeon = clusters::xeon_rwth();

  struct Row {
    const char* name;
    Placement placement;
    CommDomain expected;
  };
  const Row rows[] = {
      {"Inter node", pinning::inter_node(xeon, 4), CommDomain::CrossNode},
      {"Inter chip", pinning::inter_chip(xeon, 2), CommDomain::SameNode},
      {"Inter core", pinning::inter_core(xeon, 4), CommDomain::SameChip},
  };

  int verified = 0;
  AsciiTable table({"setup", "process pinning", "pair domain", "verified"});
  for (const auto& row : rows) {
    bool ok = true;
    for (Rank a = 0; a < row.placement.ranks(); ++a) {
      for (Rank b = a + 1; b < row.placement.ranks(); ++b) {
        ok = ok && row.placement.domain(a, b) == row.expected;
      }
    }
    verified += ok ? 1 : 0;
    std::string pinning_desc;
    if (std::string(row.name) == "Inter node") {
      pinning_desc = "4 nodes, 1 process per node";
    } else if (std::string(row.name) == "Inter chip") {
      pinning_desc = "1 node, 2 chips per node, 1 process per chip";
    } else {
      pinning_desc = "1 node, 1 chip per node, 4 processes per chip";
    }
    table.add_row({row.name, pinning_desc, to_string(row.expected), ok ? "yes" : "NO"});
  }

  harness.metric("pinning_domains", {{"cluster", "xeon_rwth"}},
                 {{"setups_verified", static_cast<double>(verified)},
                  {"setups_total", static_cast<double>(std::size(rows))}});

  std::cout << "TABLE I -- Xeon cluster process pinnings (" << xeon.nodes << " nodes x "
            << xeon.chips_per_node << " chips x " << xeon.cores_per_chip << " cores)\n\n"
            << table.render();
  return verified == static_cast<int>(std::size(rows)) ? 0 : 1;
}
