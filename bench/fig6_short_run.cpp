// Fig. 6 — measured clock deviations after linear interpolation during a
// short (300 s) run on the Xeon cluster using the Intel timestamp counter.
// The paper's point: even with the short interpolation interval, the
// residual deviations slightly exceed the message latency.
#include <filesystem>
#include <iostream>

#include "analysis/deviation.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "measure/offset_probe.hpp"
#include "sync/interpolation.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "fig6_short_run", {1, 0});
  const Duration duration = cli.get_double("duration", 300.0);
  const int nranks = 4;
  const int seeds = static_cast<int>(cli.get_int("runs", 5));
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  const Duration l_min = lat.min_latency(CommDomain::CrossNode);
  const benchkit::ConfigList base = {{"duration_s", std::to_string(duration)},
                                     {"runs", std::to_string(seeds)}};

  std::cout << "FIG. 6 -- Xeon cluster, Intel TSC, " << duration
            << " s run after linear interpolation (" << seeds << " runs)\n\n";

  auto simulate = [&](int run) {
    const RngTree rng(cli.get_seed() + static_cast<std::uint64_t>(run));
    const Placement pl = pinning::inter_node(clusters::xeon_rwth(), nranks);
    ClockEnsemble ens(pl, timer_specs::intel_tsc(), rng.child("clocks"));
    Rng probe_rng = rng.stream("probe");

    // All start probes precede all end probes (stateful monotone clocks).
    std::vector<LinearInterpolation::RankParams> params(static_cast<std::size_t>(nranks));
    params[0] = {0.0, 0.0, duration, 0.0};
    for (Rank w = 1; w < nranks; ++w) {
      const auto m1 = direct_probe(ens.clock(0), ens.clock(w), lat, CommDomain::CrossNode,
                                   1.0 + 0.01 * w, 20, probe_rng);
      params[static_cast<std::size_t>(w)].w1 = m1.worker_time;
      params[static_cast<std::size_t>(w)].o1 = m1.offset;
    }
    for (Rank w = 1; w < nranks; ++w) {
      const auto m2 = direct_probe(ens.clock(0), ens.clock(w), lat, CommDomain::CrossNode,
                                   duration - 1.0 + 0.01 * w, 20, probe_rng);
      params[static_cast<std::size_t>(w)].w2 = m2.worker_time;
      params[static_cast<std::size_t>(w)].o2 = m2.offset;
    }
    const LinearInterpolation interp(std::move(params));
    return sample_deviations(ens, interp, duration, 1.0);
  };

  AsciiTable table({"run", "max |residual| [us]", "exceeds 4.29 us?", "first exceed [s]"});
  Duration worst = 0.0;
  std::filesystem::create_directories("bench_out");
  for (int run = 0; run < seeds; ++run) {
    DeviationSeries series;
    if (run == 0) {
      // The first run doubles as the timed sample for the perf trajectory.
      harness.time("simulate_run", base, 0, [&] { series = simulate(run); });
    } else {
      series = simulate(run);
    }

    if (run == 0) {
      std::vector<std::string> header = {"t_s"};
      for (Rank r = 1; r < nranks; ++r) {
        header.push_back("dev_rank" + std::to_string(r) + "_us");
      }
      CsvWriter csv("bench_out/fig6_short_run.csv", header);
      for (std::size_t k = 0; k < series.at.size(); ++k) {
        std::vector<double> row = {series.at[k]};
        for (Rank r = 1; r < nranks; ++r) {
          row.push_back(to_us(series.per_rank[static_cast<std::size_t>(r)][k]));
        }
        csv.add_row(row);
      }
    }

    const Duration mx = max_abs_deviation(series);
    worst = std::max(worst, mx);
    const Time exceed = first_exceedance(series, l_min);
    table.add_row({std::to_string(run), AsciiTable::num(to_us(mx), 2),
                   mx > l_min ? "yes" : "no",
                   exceed < 0 ? "-" : AsciiTable::num(exceed, 0)});
  }
  harness.metric("worst_residual", base,
                 {{"worst_residual_us", to_us(worst)}, {"latency_floor_us", to_us(l_min)}});

  std::cout << table.render() << "\nworst residual across runs: "
            << AsciiTable::num(to_us(worst), 2) << " us vs. inter-node latency "
            << AsciiTable::num(to_us(l_min), 2)
            << " us\n(the paper: deviations \"slightly exceed the latency\" even on a"
               " short run)\nseries of run 0: bench_out/fig6_short_run.csv\n";
  return 0;
}
