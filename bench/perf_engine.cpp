// Performance — discrete-event engine and MPI-simulation throughput: how many
// simulated events/messages per second the substrate sustains.
#include <benchmark/benchmark.h>

#include "mpisim/job.hpp"
#include "sim/engine.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

void BM_EngineDelayChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine e;
    auto proc = [&]() -> Coro<void> {
      for (int i = 0; i < hops; ++i) co_await e.delay(1e-6);
    };
    e.spawn(proc());
    const auto fired = e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EngineDelayChain)->Arg(1000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_EngineManyProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  constexpr int kHops = 100;
  for (auto _ : state) {
    Engine e;
    auto proc = [&]() -> Coro<void> {
      for (int i = 0; i < kHops; ++i) co_await e.delay(1e-6);
    };
    for (int p = 0; p < procs; ++p) e.spawn(proc());
    const auto fired = e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                          kHops);
}
BENCHMARK(BM_EngineManyProcesses)->Arg(32)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_P2PRoundTrips(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 2);
    Job job(std::move(cfg));
    job.run([&](Proc& p) -> Coro<void> {
      p.set_tracing(false);
      if (p.rank() == 0) {
        for (int i = 0; i < rounds; ++i) {
          co_await p.send(1, 1, 64);
          co_await p.recv(1, 1);
        }
      } else {
        for (int i = 0; i < rounds; ++i) {
          co_await p.recv(0, 1);
          co_await p.send(0, 1, 64);
        }
      }
    });
    benchmark::DoNotOptimize(job.engine().now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * state.range(0));
}
BENCHMARK(BM_P2PRoundTrips)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Allreduce32(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 32);
    Job job(std::move(cfg));
    job.run([&](Proc& p) -> Coro<void> {
      p.set_tracing(false);
      for (int i = 0; i < ops; ++i) co_await p.allreduce(8);
    });
    benchmark::DoNotOptimize(job.engine().now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Allreduce32)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_TracedAppEventsPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
    cfg.timer = timer_specs::intel_tsc();
    Job job(std::move(cfg));
    job.run([&](Proc& p) -> Coro<void> {
      for (int i = 0; i < 500; ++i) {
        co_await p.send((p.rank() + 1) % p.nranks(), 1, 256);
        co_await p.recv((p.rank() + p.nranks() - 1) % p.nranks(), 1);
      }
    });
    Trace t = job.take_trace();
    benchmark::DoNotOptimize(t.total_events());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(t.total_events()));
  }
}
BENCHMARK(BM_TracedAppEventsPerSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronosync

BENCHMARK_MAIN();
