// Performance — discrete-event engine and MPI-simulation throughput: how many
// simulated events/messages per second the substrate sustains.
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "obs/session.hpp"
#include "mpisim/job.hpp"
#include "sim/engine.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "perf_engine");
  obs::ObsSession obs_session(cli, "perf_engine");
  const double scale = cli.get_double("scale", 1.0);
  auto scaled = [scale](int n) {
    return std::max(1, static_cast<int>(static_cast<double>(n) * scale));
  };

  for (int hops : {scaled(1000), scaled(100000)}) {
    harness.time("engine_delay_chain", {{"hops", std::to_string(hops)}}, hops, [&] {
      Engine e;
      auto proc = [&]() -> Coro<void> {
        for (int i = 0; i < hops; ++i) co_await e.delay(1e-6);
      };
      e.spawn(proc());
      const auto fired = e.run();
      benchkit::do_not_optimize(fired);
    });
  }

  for (int procs : {scaled(32), scaled(512)}) {
    constexpr int kHops = 100;
    harness.time("engine_many_processes", {{"procs", std::to_string(procs)}},
                 static_cast<std::int64_t>(procs) * kHops, [&] {
                   Engine e;
                   auto proc = [&]() -> Coro<void> {
                     for (int i = 0; i < kHops; ++i) co_await e.delay(1e-6);
                   };
                   for (int p = 0; p < procs; ++p) e.spawn(proc());
                   const auto fired = e.run();
                   benchkit::do_not_optimize(fired);
                 });
  }

  {
    const int rounds = scaled(10000);
    harness.time("p2p_round_trips", {{"rounds", std::to_string(rounds)}},
                 2 * static_cast<std::int64_t>(rounds), [&] {
                   JobConfig cfg;
                   cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 2);
                   Job job(std::move(cfg));
                   job.run([&](Proc& p) -> Coro<void> {
                     p.set_tracing(false);
                     if (p.rank() == 0) {
                       for (int i = 0; i < rounds; ++i) {
                         co_await p.send(1, 1, 64);
                         co_await p.recv(1, 1);
                       }
                     } else {
                       for (int i = 0; i < rounds; ++i) {
                         co_await p.recv(0, 1);
                         co_await p.send(0, 1, 64);
                       }
                     }
                   });
                   benchkit::do_not_optimize(job.engine().now());
                 });
  }

  {
    const int ops = scaled(200);
    harness.time("allreduce_32ranks", {{"ops", std::to_string(ops)}}, ops, [&] {
      JobConfig cfg;
      cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 32);
      Job job(std::move(cfg));
      job.run([&](Proc& p) -> Coro<void> {
        p.set_tracing(false);
        for (int i = 0; i < ops; ++i) co_await p.allreduce(8);
      });
      benchkit::do_not_optimize(job.engine().now());
    });
  }

  {
    const int rounds = scaled(500);
    std::size_t traced_events = 0;
    harness.time("traced_app_events", {{"rounds", std::to_string(rounds)}, {"ranks", "8"}},
                 0, [&] {
                   JobConfig cfg;
                   cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
                   cfg.timer = timer_specs::intel_tsc();
                   Job job(std::move(cfg));
                   job.run([&](Proc& p) -> Coro<void> {
                     for (int i = 0; i < rounds; ++i) {
                       co_await p.send((p.rank() + 1) % p.nranks(), 1, 256);
                       co_await p.recv((p.rank() + p.nranks() - 1) % p.nranks(), 1);
                     }
                   });
                   Trace t = job.take_trace();
                   traced_events = t.total_events();
                   benchkit::do_not_optimize(traced_events);
                 });
    harness.metric("traced_app_events_count", {{"rounds", std::to_string(rounds)}},
                   {{"events", static_cast<double>(traced_events)}});
  }
  obs_session.finish();
  return 0;
}
