// Ablation / extension — CLC with OpenMP semantics.
//
// The paper's conclusion lists the CLC's "non-observance of shared-memory
// clock conditions related to OpenMP constructs" as an open limitation; this
// bench runs the Fig. 8 scenarios through the POMP-semantics CLC extension
// and shows the violations before and after, plus the size of the applied
// corrections.
#include <iostream>
#include <optional>

#include "analysis/omp_semantics.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ompsim/omp_bench.hpp"
#include "sync/omp_clc.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "ablation_omp_clc", {1, 0});
  const int regions = static_cast<int>(cli.get_int("regions", 500));

  std::cout << "ABLATION -- CLC extension to OpenMP (POMP) semantics\n"
            << "(" << regions << " parallel-for regions per configuration)\n\n";

  AsciiTable table({"threads", "violated regions before [%]", "after CLC [%]",
                    "receives moved", "max jump [us]", "max |shift| [us]"});
  for (int threads : {4, 8, 12, 16}) {
    const benchkit::ConfigList config = {{"threads", std::to_string(threads)},
                                         {"regions", std::to_string(regions)}};
    OmpBenchConfig cfg;
    cfg.threads = threads;
    cfg.regions = regions;
    cfg.seed = cli.get_seed();
    const auto res = run_omp_benchmark(cfg);

    const auto before =
        check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
    const Placement pl = omp_thread_placement(cfg.node, threads);
    std::optional<OmpClcResult> fixed;
    harness.time("omp_clc", config, regions,
                 [&] { fixed = omp_controlled_logical_clock(res.trace, pl); });
    const auto after = check_omp_semantics(res.trace, fixed->corrected);

    Duration max_shift = 0.0;
    const auto& events = res.trace.events(0);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      max_shift = std::max(max_shift,
                           std::abs(fixed->corrected.at({0, i}) - events[i].local_ts));
    }

    harness.metric("omp_clc_quality", config,
                   {{"violated_before_pct", before.any_pct()},
                    {"violated_after_pct", after.any_pct()},
                    {"receives_moved", static_cast<double>(fixed->violations_repaired)},
                    {"max_jump_us", to_us(fixed->max_jump)},
                    {"max_shift_us", to_us(max_shift)}});
    table.add_row({std::to_string(threads), AsciiTable::num(before.any_pct(), 1),
                   AsciiTable::num(after.any_pct(), 1),
                   std::to_string(fixed->violations_repaired),
                   AsciiTable::num(to_us(fixed->max_jump), 3),
                   AsciiTable::num(to_us(max_shift), 3)});
  }
  std::cout << table.render()
            << "\nThe extension restores fork-first / join-last / barrier-overlap\n"
               "semantics with sub-microsecond timestamp shifts.\n";
  return 0;
}
