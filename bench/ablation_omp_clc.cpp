// Ablation / extension — CLC with OpenMP semantics.
//
// The paper's conclusion lists the CLC's "non-observance of shared-memory
// clock conditions related to OpenMP constructs" as an open limitation; this
// bench runs the Fig. 8 scenarios through the POMP-semantics CLC extension
// and shows the violations before and after, plus the size of the applied
// corrections.
#include <iostream>

#include "analysis/omp_semantics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ompsim/omp_bench.hpp"
#include "sync/omp_clc.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int regions = static_cast<int>(cli.get_int("regions", 500));

  std::cout << "ABLATION -- CLC extension to OpenMP (POMP) semantics\n"
            << "(" << regions << " parallel-for regions per configuration)\n\n";

  AsciiTable table({"threads", "violated regions before [%]", "after CLC [%]",
                    "receives moved", "max jump [us]", "max |shift| [us]"});
  for (int threads : {4, 8, 12, 16}) {
    OmpBenchConfig cfg;
    cfg.threads = threads;
    cfg.regions = regions;
    cfg.seed = cli.get_seed();
    const auto res = run_omp_benchmark(cfg);

    const auto before =
        check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
    const Placement pl = omp_thread_placement(cfg.node, threads);
    const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
    const auto after = check_omp_semantics(res.trace, fixed.corrected);

    Duration max_shift = 0.0;
    const auto& events = res.trace.events(0);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      max_shift = std::max(max_shift,
                           std::abs(fixed.corrected.at({0, i}) - events[i].local_ts));
    }

    table.add_row({std::to_string(threads), AsciiTable::num(before.any_pct(), 1),
                   AsciiTable::num(after.any_pct(), 1),
                   std::to_string(fixed.violations_repaired),
                   AsciiTable::num(to_us(fixed.max_jump), 3),
                   AsciiTable::num(to_us(max_shift), 3)});
  }
  std::cout << table.render()
            << "\nThe extension restores fork-first / join-last / barrier-overlap\n"
               "semantics with sub-microsecond timestamp shifts.\n";
  return 0;
}
