// Ablation — Sec. V survey: every synchronization approach on one trace.
//
// One drifting-clock run; for each method: remaining violations, reversed
// percentage, pairwise sync error against ground truth, and runtime cost.
#include <cctype>
#include <iostream>
#include <optional>

#include "analysis/clock_condition.hpp"
#include "analysis/interval_stats.hpp"
#include "analysis/order.hpp"
#include "benchkit/benchkit.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/collective_anchor.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/kalman_drift.hpp"
#include "common/expect.hpp"
#include "sync/node_coupling.hpp"
#include "sync/offset_alignment.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

std::string slugify(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  benchkit::Harness harness(cli, "ablation_sync_methods", {1, 0});
  SweepConfig workload;
  workload.rounds = static_cast<int>(cli.get_int("rounds", 600));
  workload.gap_mean = cli.get_double("gap", 3.0);
  workload.collective_every = 50;
  // Mid-run probe batches every k rounds (0 = endpoints only): the model-based
  // methods are only distinguishable from Eq. 3 when they have interior knots.
  workload.probe_every = static_cast<int>(cli.get_int("probe-every", 100));

  JobConfig job;
  const int ranks = static_cast<int>(cli.get_int("ranks", 16));
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();
  const benchkit::ConfigList base = {{"ranks", std::to_string(ranks)},
                                     {"rounds", std::to_string(workload.rounds)}};

  std::cerr << "simulating...\n";
  AppRunResult res = run_sweep(workload, std::move(job));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);

  AsciiTable table({"method", "violations", "reversed [%]", "pair sync err [us]",
                    "misordered [%]", "time [ms]"});

  // Opt-in audits: CLC-family outputs must satisfy Eq. 1 exactly; everything
  // else is only held to the structural invariants (finiteness, local order)
  // since pre-sync methods are allowed to leave clock-condition violations.
  verify::VerifyOptions structural_opt;
  structural_opt.clock_condition_slack = kTimeInfinity;
  const verify::InvariantChecker strict_checker(res.trace, schedule);
  const verify::InvariantChecker structural_checker(res.trace, schedule, structural_opt);

  auto report = [&](const std::string& name, bool restores_clock, auto&& make_ts) {
    benchkit::ConfigList config = base;
    config.emplace_back("method", name);
    std::optional<TimestampArray> ts;
    const auto& timing =
        harness.time(slugify(name), config,
                     static_cast<std::int64_t>(res.trace.total_events()),
                     [&] { ts = make_ts(); });
    const auto rep = check_clock_condition(res.trace, *ts, schedule);
    const auto err = message_sync_error(res.trace, *ts, msgs);
    const auto order = order_consistency(res.trace, *ts);
    harness.metric(slugify(name) + "_quality", config,
                   {{"violations", static_cast<double>(rep.violations())},
                    {"reversed_pct", rep.combined_reversed_pct()},
                    {"pair_sync_error_us", to_us(err.mean())},
                    {"misordered_pct", 100.0 * order.misordered_fraction()}});
    table.add_row({name, std::to_string(rep.violations()),
                   AsciiTable::num(rep.combined_reversed_pct(), 2),
                   AsciiTable::num(to_us(err.mean()), 3),
                   AsciiTable::num(100.0 * order.misordered_fraction(), 3),
                   AsciiTable::num(timing.wall_ns_p50 / 1e6, 1)});
    if (cli.has("verify")) {
      const auto& checker = restores_clock ? strict_checker : structural_checker;
      const auto audit = checker.check(*ts);
      if (!audit.ok()) std::cerr << name << ":\n" << audit.summary();
      CS_ENSURE(audit.ok(), "method \"" + name + "\" violates its invariants");
    }
    return *ts;
  };

  report("raw local clocks", false,
         [&] { return TimestampArray::from_local(res.trace); });
  report("offset alignment", false, [&] {
    return apply_correction(res.trace, OffsetAlignment::from_store(res.offsets));
  });
  const auto interp = report("linear interpolation (Eq. 3)", false, [&] {
    return apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  });
  report("piecewise interpolation", false, [&] {
    return apply_correction(res.trace, PiecewiseInterpolation::from_store(res.offsets));
  });
  report("Kalman drift filter", false, [&] {
    return apply_correction(res.trace, KalmanDriftCorrection::from_store(res.offsets));
  });
  for (auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                      EstimationMethod::MinMax}) {
    report("error estimation: " + to_string(method), false, [&] {
      return apply_correction(res.trace,
                              ErrorEstimationCorrection::build(res.trace, msgs, method));
    });
  }
  report("interpolation + CLC", true, [&] {
    return controlled_logical_clock(res.trace, schedule, interp).corrected;
  });
  report("interpolation + parallel CLC", true, [&] {
    return controlled_logical_clock_parallel(res.trace, schedule, interp).corrected;
  });
  report("collective anchors (Babaoglu)", false, [&] {
    return apply_correction(res.trace, CollectiveAnchorCorrection::build(res.trace));
  });
  report("interpolation + node-coupled CLC", true, [&] {
    return node_coupled_clc(res.trace, schedule, interp).clc.corrected;
  });
  report("CLC on raw clocks (no pre-sync)", true, [&] {
    return controlled_logical_clock(res.trace, schedule,
                                    TimestampArray::from_local(res.trace))
        .corrected;
  });

  std::cout << "\nABLATION -- synchronization methods on one trace ("
            << res.trace.total_events() << " events, " << msgs.size() << " messages, "
            << logical.size() << " logical messages)\n\n"
            << table.render()
            << "\nOnly the CLC variants restore the clock condition exactly; CLC run on\n"
               "raw clocks shows why the paper recommends pre-synchronization (its\n"
               "sync error stays offset-sized even though violations are gone).\n";
  return 0;
}
