// Ablation — Sec. V survey: every synchronization approach on one trace.
//
// One drifting-clock run; for each method: remaining violations, reversed
// percentage, pairwise sync error against ground truth, and runtime cost.
#include <chrono>
#include <iostream>

#include "analysis/clock_condition.hpp"
#include "analysis/interval_stats.hpp"
#include "analysis/order.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/collective_anchor.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/node_coupling.hpp"
#include "sync/offset_alignment.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  SweepConfig workload;
  workload.rounds = static_cast<int>(cli.get_int("rounds", 600));
  workload.gap_mean = cli.get_double("gap", 3.0);
  workload.collective_every = 50;

  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(),
                                      static_cast<int>(cli.get_int("ranks", 16)));
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();

  std::cerr << "simulating...\n";
  AppRunResult res = run_sweep(workload, std::move(job));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);

  AsciiTable table({"method", "violations", "reversed [%]", "pair sync err [us]",
                    "misordered [%]", "time [ms]"});
  auto report = [&](const std::string& name, auto&& make_ts) {
    const auto t0 = std::chrono::steady_clock::now();
    const TimestampArray ts = make_ts();
    const auto t1 = std::chrono::steady_clock::now();
    const auto rep = check_clock_condition(res.trace, ts, msgs, logical);
    const auto err = message_sync_error(res.trace, ts, msgs);
    const auto order = order_consistency(res.trace, ts);
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    table.add_row({name, std::to_string(rep.violations()),
                   AsciiTable::num(rep.combined_reversed_pct(), 2),
                   AsciiTable::num(to_us(err.mean()), 3),
                   AsciiTable::num(100.0 * order.misordered_fraction(), 3),
                   AsciiTable::num(ms, 1)});
    return ts;
  };

  report("raw local clocks", [&] { return TimestampArray::from_local(res.trace); });
  report("offset alignment", [&] {
    return apply_correction(res.trace, OffsetAlignment::from_store(res.offsets));
  });
  const auto interp = report("linear interpolation (Eq. 3)", [&] {
    return apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  });
  for (auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                      EstimationMethod::MinMax}) {
    report("error estimation: " + to_string(method), [&] {
      return apply_correction(res.trace,
                              ErrorEstimationCorrection::build(res.trace, msgs, method));
    });
  }
  report("interpolation + CLC", [&] {
    return controlled_logical_clock(res.trace, schedule, interp).corrected;
  });
  report("interpolation + parallel CLC", [&] {
    return controlled_logical_clock_parallel(res.trace, schedule, interp).corrected;
  });
  report("collective anchors (Babaoglu)", [&] {
    return apply_correction(res.trace, CollectiveAnchorCorrection::build(res.trace));
  });
  report("interpolation + node-coupled CLC", [&] {
    return node_coupled_clc(res.trace, schedule, interp).clc.corrected;
  });
  report("CLC on raw clocks (no pre-sync)", [&] {
    return controlled_logical_clock(res.trace, schedule,
                                    TimestampArray::from_local(res.trace))
        .corrected;
  });

  std::cout << "\nABLATION -- synchronization methods on one trace ("
            << res.trace.total_events() << " events, " << msgs.size() << " messages, "
            << logical.size() << " logical messages)\n\n"
            << table.render()
            << "\nOnly the CLC variants restore the clock condition exactly; CLC run on\n"
               "raw clocks shows why the paper recommends pre-synchronization (its\n"
               "sync error stays offset-sized even though violations are gone).\n";
  return 0;
}
