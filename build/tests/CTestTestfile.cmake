# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_clockmodel[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_ompsim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
