file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim.dir/mpisim/collectives_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/collectives_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/comm_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/comm_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/nonblocking_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/nonblocking_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/os_noise_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/os_noise_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/p2p_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/p2p_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/pmpi_regions_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/pmpi_regions_test.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/mpisim/rendezvous_test.cpp.o"
  "CMakeFiles/test_mpisim.dir/mpisim/rendezvous_test.cpp.o.d"
  "test_mpisim"
  "test_mpisim.pdb"
  "test_mpisim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
