file(REMOVE_RECURSE
  "CMakeFiles/test_ompsim.dir/ompsim/omp_bench_test.cpp.o"
  "CMakeFiles/test_ompsim.dir/ompsim/omp_bench_test.cpp.o.d"
  "test_ompsim"
  "test_ompsim.pdb"
  "test_ompsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
