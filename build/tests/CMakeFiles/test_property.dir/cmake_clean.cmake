file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/clc_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/clc_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/collectives_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/collectives_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/drift_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/drift_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/engine_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/engine_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/ensemble_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/ensemble_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/interpolation_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/interpolation_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/mailbox_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/mailbox_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/omp_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/omp_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/trace_roundtrip_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/trace_roundtrip_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/workload_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/workload_property_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
