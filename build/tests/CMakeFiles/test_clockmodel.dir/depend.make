# Empty dependencies file for test_clockmodel.
# This may be replaced when dependencies are built.
