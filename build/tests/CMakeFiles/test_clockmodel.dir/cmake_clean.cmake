file(REMOVE_RECURSE
  "CMakeFiles/test_clockmodel.dir/clockmodel/drift_model_test.cpp.o"
  "CMakeFiles/test_clockmodel.dir/clockmodel/drift_model_test.cpp.o.d"
  "CMakeFiles/test_clockmodel.dir/clockmodel/ensemble_test.cpp.o"
  "CMakeFiles/test_clockmodel.dir/clockmodel/ensemble_test.cpp.o.d"
  "CMakeFiles/test_clockmodel.dir/clockmodel/ou_drift_test.cpp.o"
  "CMakeFiles/test_clockmodel.dir/clockmodel/ou_drift_test.cpp.o.d"
  "CMakeFiles/test_clockmodel.dir/clockmodel/sim_clock_test.cpp.o"
  "CMakeFiles/test_clockmodel.dir/clockmodel/sim_clock_test.cpp.o.d"
  "test_clockmodel"
  "test_clockmodel.pdb"
  "test_clockmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clockmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
