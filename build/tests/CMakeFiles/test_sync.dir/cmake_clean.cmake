file(REMOVE_RECURSE
  "CMakeFiles/test_sync.dir/sync/clc_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/clc_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/collective_anchor_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/collective_anchor_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/error_estimation_edge_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/error_estimation_edge_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/error_estimation_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/error_estimation_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/interpolation_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/interpolation_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/logical_clock_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/logical_clock_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/node_coupling_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/node_coupling_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/omp_clc_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/omp_clc_test.cpp.o.d"
  "test_sync"
  "test_sync.pdb"
  "test_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
