# Empty compiler generated dependencies file for table2_latencies.
# This may be replaced when dependencies are built.
