
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_latencies.cpp" "bench/CMakeFiles/table2_latencies.dir/table2_latencies.cpp.o" "gcc" "bench/CMakeFiles/table2_latencies.dir/table2_latencies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ompsim/CMakeFiles/cs_ompsim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cs_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cs_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/cs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/clockmodel/CMakeFiles/cs_clockmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
