# Empty dependencies file for table1_pinning.
# This may be replaced when dependencies are built.
