file(REMOVE_RECURSE
  "CMakeFiles/fig8_openmp_violations.dir/fig8_openmp_violations.cpp.o"
  "CMakeFiles/fig8_openmp_violations.dir/fig8_openmp_violations.cpp.o.d"
  "fig8_openmp_violations"
  "fig8_openmp_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_openmp_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
