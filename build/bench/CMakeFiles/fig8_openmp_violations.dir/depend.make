# Empty dependencies file for fig8_openmp_violations.
# This may be replaced when dependencies are built.
