# Empty compiler generated dependencies file for perf_clc.
# This may be replaced when dependencies are built.
