file(REMOVE_RECURSE
  "CMakeFiles/perf_clc.dir/perf_clc.cpp.o"
  "CMakeFiles/perf_clc.dir/perf_clc.cpp.o.d"
  "perf_clc"
  "perf_clc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
