# Empty dependencies file for intranode_deviation.
# This may be replaced when dependencies are built.
