file(REMOVE_RECURSE
  "CMakeFiles/intranode_deviation.dir/intranode_deviation.cpp.o"
  "CMakeFiles/intranode_deviation.dir/intranode_deviation.cpp.o.d"
  "intranode_deviation"
  "intranode_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intranode_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
