# Empty dependencies file for fig3_barrier_violation.
# This may be replaced when dependencies are built.
