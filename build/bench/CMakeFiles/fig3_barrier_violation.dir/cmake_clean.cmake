file(REMOVE_RECURSE
  "CMakeFiles/fig3_barrier_violation.dir/fig3_barrier_violation.cpp.o"
  "CMakeFiles/fig3_barrier_violation.dir/fig3_barrier_violation.cpp.o.d"
  "fig3_barrier_violation"
  "fig3_barrier_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_barrier_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
