# Empty dependencies file for fig4_timer_deviation.
# This may be replaced when dependencies are built.
