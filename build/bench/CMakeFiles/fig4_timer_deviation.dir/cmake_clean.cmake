file(REMOVE_RECURSE
  "CMakeFiles/fig4_timer_deviation.dir/fig4_timer_deviation.cpp.o"
  "CMakeFiles/fig4_timer_deviation.dir/fig4_timer_deviation.cpp.o.d"
  "fig4_timer_deviation"
  "fig4_timer_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_timer_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
