file(REMOVE_RECURSE
  "CMakeFiles/fig6_short_run.dir/fig6_short_run.cpp.o"
  "CMakeFiles/fig6_short_run.dir/fig6_short_run.cpp.o.d"
  "fig6_short_run"
  "fig6_short_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_short_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
