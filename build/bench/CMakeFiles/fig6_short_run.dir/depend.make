# Empty dependencies file for fig6_short_run.
# This may be replaced when dependencies are built.
