# Empty dependencies file for ablation_omp_clc.
# This may be replaced when dependencies are built.
