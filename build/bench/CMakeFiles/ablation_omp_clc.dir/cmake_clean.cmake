file(REMOVE_RECURSE
  "CMakeFiles/ablation_omp_clc.dir/ablation_omp_clc.cpp.o"
  "CMakeFiles/ablation_omp_clc.dir/ablation_omp_clc.cpp.o.d"
  "ablation_omp_clc"
  "ablation_omp_clc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_omp_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
