file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_methods.dir/ablation_sync_methods.cpp.o"
  "CMakeFiles/ablation_sync_methods.dir/ablation_sync_methods.cpp.o.d"
  "ablation_sync_methods"
  "ablation_sync_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
