# Empty dependencies file for ablation_sync_methods.
# This may be replaced when dependencies are built.
