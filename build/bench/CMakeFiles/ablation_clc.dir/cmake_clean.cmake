file(REMOVE_RECURSE
  "CMakeFiles/ablation_clc.dir/ablation_clc.cpp.o"
  "CMakeFiles/ablation_clc.dir/ablation_clc.cpp.o.d"
  "ablation_clc"
  "ablation_clc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
