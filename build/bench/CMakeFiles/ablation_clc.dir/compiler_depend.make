# Empty compiler generated dependencies file for ablation_clc.
# This may be replaced when dependencies are built.
