file(REMOVE_RECURSE
  "CMakeFiles/fig5_hardware_clocks.dir/fig5_hardware_clocks.cpp.o"
  "CMakeFiles/fig5_hardware_clocks.dir/fig5_hardware_clocks.cpp.o.d"
  "fig5_hardware_clocks"
  "fig5_hardware_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hardware_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
