# Empty dependencies file for fig5_hardware_clocks.
# This may be replaced when dependencies are built.
