# Empty compiler generated dependencies file for fig7_app_violations.
# This may be replaced when dependencies are built.
