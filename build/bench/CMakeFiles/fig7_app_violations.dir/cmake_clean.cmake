file(REMOVE_RECURSE
  "CMakeFiles/fig7_app_violations.dir/fig7_app_violations.cpp.o"
  "CMakeFiles/fig7_app_violations.dir/fig7_app_violations.cpp.o.d"
  "fig7_app_violations"
  "fig7_app_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_app_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
