# Empty dependencies file for fig1_fig2_illustrations.
# This may be replaced when dependencies are built.
