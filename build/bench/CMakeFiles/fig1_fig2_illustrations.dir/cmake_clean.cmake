file(REMOVE_RECURSE
  "CMakeFiles/fig1_fig2_illustrations.dir/fig1_fig2_illustrations.cpp.o"
  "CMakeFiles/fig1_fig2_illustrations.dir/fig1_fig2_illustrations.cpp.o.d"
  "fig1_fig2_illustrations"
  "fig1_fig2_illustrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fig2_illustrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
