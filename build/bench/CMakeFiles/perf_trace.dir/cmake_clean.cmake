file(REMOVE_RECURSE
  "CMakeFiles/perf_trace.dir/perf_trace.cpp.o"
  "CMakeFiles/perf_trace.dir/perf_trace.cpp.o.d"
  "perf_trace"
  "perf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
