
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clock_condition.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/clock_condition.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/clock_condition.cpp.o.d"
  "/root/repo/src/analysis/deviation.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/deviation.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/deviation.cpp.o.d"
  "/root/repo/src/analysis/interval_stats.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/interval_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/interval_stats.cpp.o.d"
  "/root/repo/src/analysis/omp_semantics.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/omp_semantics.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/omp_semantics.cpp.o.d"
  "/root/repo/src/analysis/order.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/order.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/order.cpp.o.d"
  "/root/repo/src/analysis/profile.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/profile.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/profile.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/cs_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/clockmodel/CMakeFiles/cs_clockmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cs_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/cs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
