file(REMOVE_RECURSE
  "CMakeFiles/cs_analysis.dir/clock_condition.cpp.o"
  "CMakeFiles/cs_analysis.dir/clock_condition.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/deviation.cpp.o"
  "CMakeFiles/cs_analysis.dir/deviation.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/interval_stats.cpp.o"
  "CMakeFiles/cs_analysis.dir/interval_stats.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/omp_semantics.cpp.o"
  "CMakeFiles/cs_analysis.dir/omp_semantics.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/order.cpp.o"
  "CMakeFiles/cs_analysis.dir/order.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/profile.cpp.o"
  "CMakeFiles/cs_analysis.dir/profile.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/report.cpp.o"
  "CMakeFiles/cs_analysis.dir/report.cpp.o.d"
  "libcs_analysis.a"
  "libcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
