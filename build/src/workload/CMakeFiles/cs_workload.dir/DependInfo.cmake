
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/pop.cpp" "src/workload/CMakeFiles/cs_workload.dir/pop.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/pop.cpp.o.d"
  "/root/repo/src/workload/smg2000.cpp" "src/workload/CMakeFiles/cs_workload.dir/smg2000.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/smg2000.cpp.o.d"
  "/root/repo/src/workload/sweep.cpp" "src/workload/CMakeFiles/cs_workload.dir/sweep.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/sweep.cpp.o.d"
  "/root/repo/src/workload/sweep3d.cpp" "src/workload/CMakeFiles/cs_workload.dir/sweep3d.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/cs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cs_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clockmodel/CMakeFiles/cs_clockmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
