file(REMOVE_RECURSE
  "CMakeFiles/cs_workload.dir/pop.cpp.o"
  "CMakeFiles/cs_workload.dir/pop.cpp.o.d"
  "CMakeFiles/cs_workload.dir/smg2000.cpp.o"
  "CMakeFiles/cs_workload.dir/smg2000.cpp.o.d"
  "CMakeFiles/cs_workload.dir/sweep.cpp.o"
  "CMakeFiles/cs_workload.dir/sweep.cpp.o.d"
  "CMakeFiles/cs_workload.dir/sweep3d.cpp.o"
  "CMakeFiles/cs_workload.dir/sweep3d.cpp.o.d"
  "libcs_workload.a"
  "libcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
