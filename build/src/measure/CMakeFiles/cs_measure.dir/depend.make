# Empty dependencies file for cs_measure.
# This may be replaced when dependencies are built.
