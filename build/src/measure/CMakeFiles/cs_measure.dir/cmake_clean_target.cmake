file(REMOVE_RECURSE
  "libcs_measure.a"
)
