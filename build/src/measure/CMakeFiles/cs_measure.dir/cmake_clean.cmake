file(REMOVE_RECURSE
  "CMakeFiles/cs_measure.dir/latency_probe.cpp.o"
  "CMakeFiles/cs_measure.dir/latency_probe.cpp.o.d"
  "CMakeFiles/cs_measure.dir/offset_probe.cpp.o"
  "CMakeFiles/cs_measure.dir/offset_probe.cpp.o.d"
  "CMakeFiles/cs_measure.dir/periodic.cpp.o"
  "CMakeFiles/cs_measure.dir/periodic.cpp.o.d"
  "libcs_measure.a"
  "libcs_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
