file(REMOVE_RECURSE
  "CMakeFiles/cs_common.dir/cli.cpp.o"
  "CMakeFiles/cs_common.dir/cli.cpp.o.d"
  "CMakeFiles/cs_common.dir/csv.cpp.o"
  "CMakeFiles/cs_common.dir/csv.cpp.o.d"
  "CMakeFiles/cs_common.dir/log.cpp.o"
  "CMakeFiles/cs_common.dir/log.cpp.o.d"
  "CMakeFiles/cs_common.dir/mathutil.cpp.o"
  "CMakeFiles/cs_common.dir/mathutil.cpp.o.d"
  "CMakeFiles/cs_common.dir/rng.cpp.o"
  "CMakeFiles/cs_common.dir/rng.cpp.o.d"
  "CMakeFiles/cs_common.dir/statistics.cpp.o"
  "CMakeFiles/cs_common.dir/statistics.cpp.o.d"
  "CMakeFiles/cs_common.dir/table.cpp.o"
  "CMakeFiles/cs_common.dir/table.cpp.o.d"
  "libcs_common.a"
  "libcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
