file(REMOVE_RECURSE
  "libcs_mpisim.a"
)
