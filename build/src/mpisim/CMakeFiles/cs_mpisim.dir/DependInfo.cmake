
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/collectives.cpp" "src/mpisim/CMakeFiles/cs_mpisim.dir/collectives.cpp.o" "gcc" "src/mpisim/CMakeFiles/cs_mpisim.dir/collectives.cpp.o.d"
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/cs_mpisim.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/cs_mpisim.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/job.cpp" "src/mpisim/CMakeFiles/cs_mpisim.dir/job.cpp.o" "gcc" "src/mpisim/CMakeFiles/cs_mpisim.dir/job.cpp.o.d"
  "/root/repo/src/mpisim/mailbox.cpp" "src/mpisim/CMakeFiles/cs_mpisim.dir/mailbox.cpp.o" "gcc" "src/mpisim/CMakeFiles/cs_mpisim.dir/mailbox.cpp.o.d"
  "/root/repo/src/mpisim/proc.cpp" "src/mpisim/CMakeFiles/cs_mpisim.dir/proc.cpp.o" "gcc" "src/mpisim/CMakeFiles/cs_mpisim.dir/proc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/clockmodel/CMakeFiles/cs_clockmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
