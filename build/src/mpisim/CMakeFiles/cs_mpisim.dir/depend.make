# Empty dependencies file for cs_mpisim.
# This may be replaced when dependencies are built.
