file(REMOVE_RECURSE
  "CMakeFiles/cs_mpisim.dir/collectives.cpp.o"
  "CMakeFiles/cs_mpisim.dir/collectives.cpp.o.d"
  "CMakeFiles/cs_mpisim.dir/comm.cpp.o"
  "CMakeFiles/cs_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/cs_mpisim.dir/job.cpp.o"
  "CMakeFiles/cs_mpisim.dir/job.cpp.o.d"
  "CMakeFiles/cs_mpisim.dir/mailbox.cpp.o"
  "CMakeFiles/cs_mpisim.dir/mailbox.cpp.o.d"
  "CMakeFiles/cs_mpisim.dir/proc.cpp.o"
  "CMakeFiles/cs_mpisim.dir/proc.cpp.o.d"
  "libcs_mpisim.a"
  "libcs_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
