file(REMOVE_RECURSE
  "CMakeFiles/cs_topology.dir/cluster.cpp.o"
  "CMakeFiles/cs_topology.dir/cluster.cpp.o.d"
  "CMakeFiles/cs_topology.dir/latency_model.cpp.o"
  "CMakeFiles/cs_topology.dir/latency_model.cpp.o.d"
  "CMakeFiles/cs_topology.dir/pinning.cpp.o"
  "CMakeFiles/cs_topology.dir/pinning.cpp.o.d"
  "libcs_topology.a"
  "libcs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
