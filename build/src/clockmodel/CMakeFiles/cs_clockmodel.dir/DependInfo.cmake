
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clockmodel/clock_ensemble.cpp" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/clock_ensemble.cpp.o" "gcc" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/clock_ensemble.cpp.o.d"
  "/root/repo/src/clockmodel/drift_model.cpp" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/drift_model.cpp.o" "gcc" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/drift_model.cpp.o.d"
  "/root/repo/src/clockmodel/sim_clock.cpp" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/sim_clock.cpp.o" "gcc" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/sim_clock.cpp.o.d"
  "/root/repo/src/clockmodel/timer_spec.cpp" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/timer_spec.cpp.o" "gcc" "src/clockmodel/CMakeFiles/cs_clockmodel.dir/timer_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
