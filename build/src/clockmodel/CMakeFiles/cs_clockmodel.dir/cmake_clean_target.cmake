file(REMOVE_RECURSE
  "libcs_clockmodel.a"
)
