file(REMOVE_RECURSE
  "CMakeFiles/cs_clockmodel.dir/clock_ensemble.cpp.o"
  "CMakeFiles/cs_clockmodel.dir/clock_ensemble.cpp.o.d"
  "CMakeFiles/cs_clockmodel.dir/drift_model.cpp.o"
  "CMakeFiles/cs_clockmodel.dir/drift_model.cpp.o.d"
  "CMakeFiles/cs_clockmodel.dir/sim_clock.cpp.o"
  "CMakeFiles/cs_clockmodel.dir/sim_clock.cpp.o.d"
  "CMakeFiles/cs_clockmodel.dir/timer_spec.cpp.o"
  "CMakeFiles/cs_clockmodel.dir/timer_spec.cpp.o.d"
  "libcs_clockmodel.a"
  "libcs_clockmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_clockmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
