# Empty dependencies file for cs_clockmodel.
# This may be replaced when dependencies are built.
