file(REMOVE_RECURSE
  "CMakeFiles/cs_trace.dir/logical_messages.cpp.o"
  "CMakeFiles/cs_trace.dir/logical_messages.cpp.o.d"
  "CMakeFiles/cs_trace.dir/otf_text.cpp.o"
  "CMakeFiles/cs_trace.dir/otf_text.cpp.o.d"
  "CMakeFiles/cs_trace.dir/timeline.cpp.o"
  "CMakeFiles/cs_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/cs_trace.dir/trace.cpp.o"
  "CMakeFiles/cs_trace.dir/trace.cpp.o.d"
  "CMakeFiles/cs_trace.dir/trace_io.cpp.o"
  "CMakeFiles/cs_trace.dir/trace_io.cpp.o.d"
  "libcs_trace.a"
  "libcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
