file(REMOVE_RECURSE
  "libcs_trace.a"
)
