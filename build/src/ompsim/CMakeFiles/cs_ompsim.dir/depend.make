# Empty dependencies file for cs_ompsim.
# This may be replaced when dependencies are built.
