file(REMOVE_RECURSE
  "libcs_ompsim.a"
)
