file(REMOVE_RECURSE
  "CMakeFiles/cs_ompsim.dir/omp_bench.cpp.o"
  "CMakeFiles/cs_ompsim.dir/omp_bench.cpp.o.d"
  "libcs_ompsim.a"
  "libcs_ompsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_ompsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
