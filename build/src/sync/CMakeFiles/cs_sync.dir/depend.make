# Empty dependencies file for cs_sync.
# This may be replaced when dependencies are built.
