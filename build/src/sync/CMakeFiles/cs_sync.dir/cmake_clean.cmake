file(REMOVE_RECURSE
  "CMakeFiles/cs_sync.dir/clc.cpp.o"
  "CMakeFiles/cs_sync.dir/clc.cpp.o.d"
  "CMakeFiles/cs_sync.dir/clc_parallel.cpp.o"
  "CMakeFiles/cs_sync.dir/clc_parallel.cpp.o.d"
  "CMakeFiles/cs_sync.dir/collective_anchor.cpp.o"
  "CMakeFiles/cs_sync.dir/collective_anchor.cpp.o.d"
  "CMakeFiles/cs_sync.dir/correction.cpp.o"
  "CMakeFiles/cs_sync.dir/correction.cpp.o.d"
  "CMakeFiles/cs_sync.dir/error_estimation.cpp.o"
  "CMakeFiles/cs_sync.dir/error_estimation.cpp.o.d"
  "CMakeFiles/cs_sync.dir/interpolation.cpp.o"
  "CMakeFiles/cs_sync.dir/interpolation.cpp.o.d"
  "CMakeFiles/cs_sync.dir/logical_clock.cpp.o"
  "CMakeFiles/cs_sync.dir/logical_clock.cpp.o.d"
  "CMakeFiles/cs_sync.dir/node_coupling.cpp.o"
  "CMakeFiles/cs_sync.dir/node_coupling.cpp.o.d"
  "CMakeFiles/cs_sync.dir/offset_alignment.cpp.o"
  "CMakeFiles/cs_sync.dir/offset_alignment.cpp.o.d"
  "CMakeFiles/cs_sync.dir/omp_clc.cpp.o"
  "CMakeFiles/cs_sync.dir/omp_clc.cpp.o.d"
  "CMakeFiles/cs_sync.dir/replay.cpp.o"
  "CMakeFiles/cs_sync.dir/replay.cpp.o.d"
  "libcs_sync.a"
  "libcs_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
