
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clc.cpp" "src/sync/CMakeFiles/cs_sync.dir/clc.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/clc.cpp.o.d"
  "/root/repo/src/sync/clc_parallel.cpp" "src/sync/CMakeFiles/cs_sync.dir/clc_parallel.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/clc_parallel.cpp.o.d"
  "/root/repo/src/sync/collective_anchor.cpp" "src/sync/CMakeFiles/cs_sync.dir/collective_anchor.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/collective_anchor.cpp.o.d"
  "/root/repo/src/sync/correction.cpp" "src/sync/CMakeFiles/cs_sync.dir/correction.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/correction.cpp.o.d"
  "/root/repo/src/sync/error_estimation.cpp" "src/sync/CMakeFiles/cs_sync.dir/error_estimation.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/error_estimation.cpp.o.d"
  "/root/repo/src/sync/interpolation.cpp" "src/sync/CMakeFiles/cs_sync.dir/interpolation.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/interpolation.cpp.o.d"
  "/root/repo/src/sync/logical_clock.cpp" "src/sync/CMakeFiles/cs_sync.dir/logical_clock.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/logical_clock.cpp.o.d"
  "/root/repo/src/sync/node_coupling.cpp" "src/sync/CMakeFiles/cs_sync.dir/node_coupling.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/node_coupling.cpp.o.d"
  "/root/repo/src/sync/offset_alignment.cpp" "src/sync/CMakeFiles/cs_sync.dir/offset_alignment.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/offset_alignment.cpp.o.d"
  "/root/repo/src/sync/omp_clc.cpp" "src/sync/CMakeFiles/cs_sync.dir/omp_clc.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/omp_clc.cpp.o.d"
  "/root/repo/src/sync/replay.cpp" "src/sync/CMakeFiles/cs_sync.dir/replay.cpp.o" "gcc" "src/sync/CMakeFiles/cs_sync.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/cs_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/cs_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clockmodel/CMakeFiles/cs_clockmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
