file(REMOVE_RECURSE
  "libcs_sync.a"
)
