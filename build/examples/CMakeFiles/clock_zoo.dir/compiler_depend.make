# Empty compiler generated dependencies file for clock_zoo.
# This may be replaced when dependencies are built.
