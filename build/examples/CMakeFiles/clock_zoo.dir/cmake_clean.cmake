file(REMOVE_RECURSE
  "CMakeFiles/clock_zoo.dir/clock_zoo.cpp.o"
  "CMakeFiles/clock_zoo.dir/clock_zoo.cpp.o.d"
  "clock_zoo"
  "clock_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
