file(REMOVE_RECURSE
  "CMakeFiles/openmp_smp_study.dir/openmp_smp_study.cpp.o"
  "CMakeFiles/openmp_smp_study.dir/openmp_smp_study.cpp.o.d"
  "openmp_smp_study"
  "openmp_smp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_smp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
