# Empty compiler generated dependencies file for openmp_smp_study.
# This may be replaced when dependencies are built.
