file(REMOVE_RECURSE
  "CMakeFiles/clc_repair.dir/clc_repair.cpp.o"
  "CMakeFiles/clc_repair.dir/clc_repair.cpp.o.d"
  "clc_repair"
  "clc_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
