# Empty dependencies file for clc_repair.
# This may be replaced when dependencies are built.
