file(REMOVE_RECURSE
  "CMakeFiles/trace_pop_analysis.dir/trace_pop_analysis.cpp.o"
  "CMakeFiles/trace_pop_analysis.dir/trace_pop_analysis.cpp.o.d"
  "trace_pop_analysis"
  "trace_pop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_pop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
