# Empty dependencies file for trace_pop_analysis.
# This may be replaced when dependencies are built.
