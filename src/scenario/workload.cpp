#include "scenario/workload.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/expect.hpp"

namespace chronosync::scenario {

namespace {
constexpr Tag kScenarioTag = 404;
}

Coro<void> dynamic_rank(Proc& p, const WorkloadSpec& spec, std::uint64_t shared_seed,
                        OffsetStore& store) {
  const int n = p.nranks();
  CS_REQUIRE(n >= 2, "dynamic workload needs at least two ranks");
  // Identical on every rank by construction: the round's shift, gap, and
  // per-sender sizes come from this stream, so all ranks agree on who talks
  // to whom without exchanging a single control message.
  Rng shared(shared_seed);
  const std::int32_t region = p.region("scenario_round");

  std::vector<std::pair<int, int>> window(static_cast<std::size_t>(n),
                                          {0, 1 << 30});
  for (const MembershipWindow& m : spec.membership) {
    window[static_cast<std::size_t>(m.rank)] = {m.join_round, m.leave_round};
  }
  std::vector<char> always_elephant(static_cast<std::size_t>(n), 0);
  for (const Rank r : spec.elephant.ranks) {
    always_elephant[static_cast<std::size_t>(r)] = 1;
  }

  p.set_tracing(false);
  co_await probe_offsets(p, store, spec.probe_pings);
  p.set_tracing(true);

  std::vector<Rank> active;
  std::vector<std::uint32_t> sizes;
  for (int round = 0; round < spec.rounds; ++round) {
    const Duration gap = shared.uniform(spec.gap_mean * (1.0 - spec.gap_spread),
                                        spec.gap_mean * (1.0 + spec.gap_spread));
    active.clear();
    for (Rank r = 0; r < n; ++r) {
      const auto& [join, leave] = window[static_cast<std::size_t>(r)];
      if (round >= join && round < leave) active.push_back(r);
    }
    const int m = static_cast<int>(active.size());
    const Rank shift = m >= 2 ? static_cast<Rank>(shared.uniform_int(1, m - 1)) : 0;
    // Per-sender size draws consume the shared stream identically on every
    // rank, active or not — determinism over elegance.
    sizes.assign(active.size(), spec.bytes);
    for (int i = 0; i < m; ++i) {
      const bool elephant =
          always_elephant[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])] != 0 ||
          (spec.elephant.probability > 0.0 && shared.bernoulli(spec.elephant.probability));
      if (elephant) sizes[static_cast<std::size_t>(i)] = spec.elephant.bytes;
    }

    const auto me = std::find(active.begin(), active.end(), p.rank());
    p.enter(region);
    co_await p.compute(gap);
    if (me != active.end() && m >= 2) {
      const int idx = static_cast<int>(me - active.begin());
      const Rank dst = active[static_cast<std::size_t>((idx + shift) % m)];
      const Rank src = active[static_cast<std::size_t>((idx - shift + m) % m)];
      // isend + recv + wait: elephants above the rendezvous threshold would
      // deadlock a blocking send ring (everyone waiting for the handshake).
      Request req = p.isend(dst, kScenarioTag, sizes[static_cast<std::size_t>(idx)]);
      co_await p.recv(src, kScenarioTag);
      co_await p.wait(std::move(req));
    }
    if (spec.collective_every > 0 && (round + 1) % spec.collective_every == 0 && m == n) {
      // World collectives only when everyone is present; a collective over a
      // shrinking membership is a different protocol (and paper) entirely.
      co_await p.barrier();
    }
    p.exit(region);
    if (spec.probe_every > 0 && (round + 1) % spec.probe_every == 0 &&
        round + 1 < spec.rounds) {
      // Mid-run probe batch (ref. [17]'s periodic measurements): every rank
      // reaches this point each round — membership only gates traffic — and
      // probe_offsets suspends tracing and ends with a barrier itself.
      co_await probe_offsets(p, store, spec.probe_pings);
    }
  }

  p.set_tracing(false);
  co_await probe_offsets(p, store, spec.probe_pings);
}

AppRunResult run_dynamic_workload(const WorkloadSpec& spec, JobConfig job_cfg) {
  const std::uint64_t shared_seed = RngTree(job_cfg.seed).derive("scenario.shared");
  Job job(std::move(job_cfg));
  OffsetStore store(job.ranks());
  job.run([&](Proc& p) { return dynamic_rank(p, spec, shared_seed, store); });
  return {job.take_trace(), std::move(store)};
}

}  // namespace chronosync::scenario
