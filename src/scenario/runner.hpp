// End-to-end scenario execution: simulate, injure, correct, verify, judge.
//
// run_scenario() drives one ScenarioSpec through the entire correction stack:
//
//   1. build the job (placement, timer preset + overrides, network shaper)
//      and run the configured workload (sweep or dynamic membership);
//   2. apply the post-run clock faults (drift storms, NTP steps, leap
//      seconds) to the recorded trace — exactly what a trace collected on
//      faulty clocks would look like, probes included;
//   3. audit the raw trace (paper invariants, Eq. 1 violation census);
//   4. run every correction method + the pairwise differential suite + the
//      three clock-condition scanners (verify::run_differential_suite);
//   5. run the CLC on the interpolated input and audit its output with zero
//      slack (Eq. 1 exact, amortization never moves events backward);
//   6. cross-check the out-of-core windowed streaming CLC bit-for-bit;
//   7. evaluate the scenario's declared ExpectSpec against the measured
//      outcome and report every breach as a typed failure line.
//
// The outcome carries the measured facts either way, so EXPERIMENTS.md tables
// and the chronocheck battery print what actually happened, not just pass/fail.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "sync/clc_stream.hpp"
#include "verify/differential.hpp"

namespace chronosync::scenario {

struct ScenarioRunOptions {
  std::string work_dir = ".";  ///< scratch space for the streaming round-trip
};

struct ScenarioOutcome {
  std::string name;
  std::size_t events = 0;
  std::size_t raw_violations = 0;        ///< Eq. 1 breaches in the raw trace
  std::size_t raw_structural = 0;        ///< non-finite / order breaches (raw)
  Duration raw_worst = 0.0;              ///< worst Eq. 1 breach in seconds
  bool differential_clean = false;       ///< full suite contract-clean
  std::size_t clc_repairs = 0;           ///< receive events the CLC moved
  std::size_t clc_audit_violations = 0;  ///< zero-slack audit of CLC output
  bool stream_checked = false;
  bool stream_identical = false;         ///< windowed CLC bit-identical
  StreamClcStats stream;
  /// Ground-truth accuracy of every method the differential suite ran (RMS
  /// vs the master clock at each event's true timestamp); feeds the
  /// expect.accuracy[] races and the EXPERIMENTS.md tables.
  std::vector<verify::MethodAccuracy> accuracy;
  std::vector<std::string> failures;     ///< expectation breaches (empty = ok)

  bool ok() const { return failures.empty(); }
  /// One line per measured fact plus every failure, chronocheck-style.
  std::string summary() const;
};

/// Runs one scenario end-to-end and evaluates its declared expectations.
/// Throws only on infrastructure faults (ScenarioError, TraceIoError);
/// expectation breaches and contract failures land in `failures`.
ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioRunOptions& options = {});

}  // namespace chronosync::scenario
