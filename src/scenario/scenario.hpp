// Config-file-driven adversarial scenarios.
//
// A scenario is one named, committed JSON file that composes the failure
// modes production clocks and networks actually exhibit — correlated
// DVFS/thermal drift storms hitting whole nodes, NTP steps and leap-second
// events, random-walk drift, asymmetric and time-varying link latencies,
// heavy-tailed multi-tenant traffic, ranks joining and leaving mid-run — on
// top of the existing clockmodel/topology/mpisim engines, and declares the
// outcome the correction stack must deliver on it ("CLC repairs every Eq. 1
// violation", "streaming == in-memory bit-for-bit").  The committed files
// under scenarios/ are the repository's enumerable answer to "what inputs is
// the correction stack actually guaranteed on?": every one of them runs as a
// `ctest -L scenario` case and in the scenario-battery CI job.
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values all
// raise a typed ScenarioError, never a crash — the config parser is fuzzed by
// the same deterministic mutation battery as the trace readers.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace chronosync::scenario {

enum class ScenarioErrorKind {
  Io,      ///< file missing/unreadable
  Parse,   ///< not valid JSON
  Schema,  ///< valid JSON that is not a valid scenario (keys/types/ranges)
};

std::string to_string(ScenarioErrorKind k);

/// Every failure mode of scenario loading raises exactly this type.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(ScenarioErrorKind kind, const std::string& message)
      : std::runtime_error("scenario error [" + to_string(kind) + "]: " + message),
        kind_(kind) {}

  ScenarioErrorKind kind() const { return kind_; }

 private:
  ScenarioErrorKind kind_;
};

/// One rank's application-level membership window: the rank participates in
/// rounds [join_round, leave_round).  Outside its window the process exists
/// (its clock drifts, it burns compute time) but exchanges no traffic — the
/// ad-hoc clock-network setting.
struct MembershipWindow {
  Rank rank = 0;
  int join_round = 0;
  int leave_round = 1 << 30;
};

/// Heavy-tailed multi-tenant traffic: `ranks` always send elephant-sized
/// messages; every other sender flips a (shared-stream) coin per round.
struct ElephantSpec {
  std::uint32_t bytes = 256 * 1024;  ///< elephant payload (>= rendezvous)
  std::vector<Rank> ranks;           ///< dedicated elephant senders
  double probability = 0.0;          ///< per-round elephant chance elsewhere
};

enum class WorkloadKind {
  Sweep,    ///< the existing randomized-shift sweep (static membership)
  Dynamic,  ///< shift traffic over the round's active set, elephants allowed
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::Sweep;
  int ranks = 8;
  int rounds = 400;
  std::uint32_t bytes = 512;
  Duration gap_mean = 3.0;     ///< long gaps let drift accumulate (Eq. 1 bites)
  double gap_spread = 0.3;
  int collective_every = 50;   ///< 0 = no collectives
  int probe_pings = 10;
  int probe_every = 0;         ///< >0: extra offset probe batch every k rounds
  std::string pinning = "inter-node";  ///< "inter-node" or "block"
  ElephantSpec elephant;
  std::vector<MembershipWindow> membership;
};

/// Correlated storm hitting whole nodes (see verify::with_drift_storm).
struct DriftStormSpec {
  std::vector<int> nodes;
  double start_fraction = 0.25;
  double duration_fraction = 0.5;
  double extra_ppm = 800.0;
};

/// Abrupt clock step (NTP step; a leap second is step = 1.0 s).
struct ClockStepSpec {
  Rank rank = 0;
  double at_fraction = 0.5;  ///< position inside the rank's event span
  Duration step = 50 * units::us;
};

struct ClockSpec {
  std::string timer = "intel-tsc";  ///< timer_specs::by_name preset
  // Optional overrides of the preset (NaN/negative sentinel = keep preset).
  double base_drift_max = -1.0;
  double wander_sigma = -1.0;
  Duration wander_interval = -1.0;
  double wander_clamp = -1.0;
  Duration node_offset_sigma = -1.0;
  std::vector<DriftStormSpec> storms;
  std::vector<ClockStepSpec> steps;
  std::vector<Rank> leap_second_ranks;  ///< 1.0 s step at 60% of the span
};

struct NetworkSpec {
  /// Extra one-way delay (s) on every dst < src link: asymmetric routes.
  Duration asymmetry_extra = 0.0;
  /// Peak of a sinusoidal all-links extra delay (s): time-varying congestion.
  Duration varying_amplitude = 0.0;
  Duration varying_period = 20.0;
};

struct StreamSpec {
  bool enabled = true;
  Duration backward_window = 1e4;  ///< generous: divergence-free by default
  Duration horizon = 1e4;
  int emit_batch = 256;
};

/// One declared accuracy race: `method`'s RMS error vs the simulator's
/// ground-truth master time must satisfy
///
///     rms(method) <= max_rms_ratio * rms(reference) + rms_slack
///
/// so max_rms_ratio < 1 demands a strict win and max_rms_ratio ~ 1 with a
/// small slack demands parity.  Both names must come from
/// verify::all_method_names(); anything else is a Schema error.
struct AccuracyExpectSpec {
  std::string method;
  std::string reference;
  double max_rms_ratio = 1.0;
  double rms_slack = 0.0;  ///< absolute slack in seconds
};

/// Declared expected outcomes; -1 disables a bound.
struct ExpectSpec {
  std::int64_t raw_violations_min = -1;  ///< raw trace must violate Eq. 1 >= n times
  std::int64_t raw_violations_max = -1;  ///< ... and at most n times
  bool structural_clean = true;     ///< raw trace: finite + rank-local order
  bool differential_clean = true;   ///< full differential suite contract-clean
  std::int64_t clc_repairs_min = -1;     ///< CLC must repair >= n receive events
  bool clc_clean_audit = true;      ///< CLC output: Eq. 1 exact + amortization bound
  bool stream_identical = true;     ///< windowed streaming CLC bit-identical
  std::vector<AccuracyExpectSpec> accuracy;  ///< ground-truth accuracy races
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::uint64_t seed = 42;
  WorkloadSpec workload;
  ClockSpec clock;
  NetworkSpec network;
  StreamSpec stream;
  ExpectSpec expect;
};

/// Parses one scenario document.  `origin` names the source (file path) in
/// error messages.  Throws ScenarioError{Parse} on malformed JSON and
/// ScenarioError{Schema} on unknown keys, wrong types, or invalid values.
ScenarioSpec parse_scenario(const std::string& text, const std::string& origin = "<inline>");

/// Reads and parses a scenario file.  Throws ScenarioError{Io} when the file
/// cannot be opened or read.
ScenarioSpec load_scenario_file(const std::string& path);

/// Paths of every `*.json` directly inside `dir`, sorted by name (the
/// committed-battery enumeration).  Throws ScenarioError{Io} if `dir` cannot
/// be listed.
std::vector<std::string> list_scenario_files(const std::string& dir);

}  // namespace chronosync::scenario
