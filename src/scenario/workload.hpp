// Scenario workload: shift traffic over a dynamic membership with a
// heavy-tailed size mix.
//
// The existing sweep workload assumes every rank participates in every round.
// Adversarial scenarios need the ad-hoc setting instead: ranks join and leave
// mid-run, and the traffic mixes many small messages with a few elephants
// (rendezvous-sized payloads from dedicated heavy senders or random bursts).
//
// Deadlock freedom without a coordination protocol: all ranks derive the
// round's active set from the (static, config-declared) membership schedule
// and draw the round's shift and per-sender sizes from one shared seed, so
// every posted send has a receiver that knows to post the matching receive.
// Elephants are sent with isend + recv + wait — the rendezvous handshake of a
// blocking ring send would deadlock, exactly as it does in real MPI codes.
// Inactive ranks keep computing (their clocks keep drifting — that is the
// point) but exchange no traffic and record no events while out.
#pragma once

#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"
#include "scenario/scenario.hpp"
#include "workload/pop.hpp"  // AppRunResult

namespace chronosync::scenario {

/// Runs the dynamic scenario workload described by `spec` on `job_cfg`.
/// Offset probes run at init and finalize with tracing off (every rank
/// participates in probes — the process exists even when the application has
/// not "joined" yet), so the interpolation-based corrections stay available.
AppRunResult run_dynamic_workload(const WorkloadSpec& spec, JobConfig job_cfg);

/// The SPMD body, exposed for direct use on an existing Job.
[[nodiscard]] Coro<void> dynamic_rank(Proc& p, const WorkloadSpec& spec,
                                      std::uint64_t shared_seed, OffsetStore& store);

}  // namespace chronosync::scenario
