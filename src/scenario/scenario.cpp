#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchkit/json.hpp"
#include "verify/differential.hpp"

namespace chronosync::scenario {

using benchkit::JsonValue;

std::string to_string(ScenarioErrorKind k) {
  switch (k) {
    case ScenarioErrorKind::Io: return "io";
    case ScenarioErrorKind::Parse: return "parse";
    case ScenarioErrorKind::Schema: return "schema";
  }
  return "?";
}

namespace {

[[noreturn]] void schema_fail(const std::string& origin, const std::string& what) {
  throw ScenarioError(ScenarioErrorKind::Schema, origin + ": " + what);
}

/// Strict object cursor: every member must be consumed by exactly one typed
/// accessor; finish() rejects whatever is left over, so a typo'd or unknown
/// key can never be silently ignored.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& v, std::string origin, std::string path)
      : origin_(std::move(origin)), path_(std::move(path)) {
    if (!v.is_object()) schema_fail(origin_, path_ + " must be an object");
    for (const auto& [key, value] : v.members()) members_.emplace_back(key, &value);
  }

  const JsonValue* take(const std::string& key) {
    for (auto& [name, value] : members_) {
      if (name == key && value != nullptr) {
        const JsonValue* v = value;
        value = nullptr;
        return v;
      }
    }
    return nullptr;
  }

  double number(const std::string& key, double fallback) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_number() || !std::isfinite(v->as_number())) {
      schema_fail(origin_, member(key) + " must be a finite number");
    }
    return v->as_number();
  }

  std::int64_t integer(const std::string& key, std::int64_t fallback) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_number()) schema_fail(origin_, member(key) + " must be an integer");
    const double d = v->as_number();
    if (!std::isfinite(d) || d != std::floor(d) || std::abs(d) > 9.007199254740992e15) {
      schema_fail(origin_, member(key) + " must be an integer");
    }
    return static_cast<std::int64_t>(d);
  }

  bool boolean(const std::string& key, bool fallback) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->type() != JsonValue::Type::Bool) {
      schema_fail(origin_, member(key) + " must be a boolean");
    }
    return v->as_bool();
  }

  std::string string(const std::string& key, const std::string& fallback) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_string()) schema_fail(origin_, member(key) + " must be a string");
    return v->as_string();
  }

  /// Array member of integers (e.g. rank or node lists); empty when absent.
  std::vector<std::int64_t> int_list(const std::string& key) {
    const JsonValue* v = take(key);
    std::vector<std::int64_t> out;
    if (v == nullptr) return out;
    if (!v->is_array()) schema_fail(origin_, member(key) + " must be an array");
    for (const JsonValue& item : v->items()) {
      const double d = item.is_number() ? item.as_number() : 0.0;
      if (!item.is_number() || !std::isfinite(d) || d != std::floor(d) ||
          std::abs(d) > 9.007199254740992e15) {
        schema_fail(origin_, member(key) + " must contain only integers");
      }
      out.push_back(static_cast<std::int64_t>(d));
    }
    return out;
  }

  const JsonValue* object(const std::string& key) {
    const JsonValue* v = take(key);
    if (v == nullptr) return nullptr;
    if (!v->is_object()) schema_fail(origin_, member(key) + " must be an object");
    return v;
  }

  const JsonValue* array(const std::string& key) {
    const JsonValue* v = take(key);
    if (v == nullptr) return nullptr;
    if (!v->is_array()) schema_fail(origin_, member(key) + " must be an array");
    return v;
  }

  void finish() {
    for (const auto& [name, value] : members_) {
      if (value != nullptr) schema_fail(origin_, "unknown key " + member(name));
    }
  }

  std::string member(const std::string& key) const {
    return path_.empty() ? "\"" + key + "\"" : path_ + ".\"" + key + "\"";
  }
  const std::string& path() const { return path_; }
  const std::string& origin() const { return origin_; }

 private:
  std::string origin_;
  std::string path_;
  std::vector<std::pair<std::string, const JsonValue*>> members_;
};

void require(bool ok, const std::string& origin, const std::string& what) {
  if (!ok) schema_fail(origin, what);
}

WorkloadSpec parse_workload(const JsonValue& v, const std::string& origin) {
  WorkloadSpec w;
  ObjectReader r(v, origin, "workload");
  const std::string kind = r.string("kind", "sweep");
  if (kind == "sweep") {
    w.kind = WorkloadKind::Sweep;
  } else if (kind == "dynamic") {
    w.kind = WorkloadKind::Dynamic;
  } else {
    schema_fail(origin, "workload.\"kind\" must be \"sweep\" or \"dynamic\"");
  }
  w.ranks = static_cast<int>(r.integer("ranks", w.ranks));
  w.rounds = static_cast<int>(r.integer("rounds", w.rounds));
  w.bytes = static_cast<std::uint32_t>(r.integer("bytes", w.bytes));
  w.gap_mean = r.number("gap_mean", w.gap_mean);
  w.gap_spread = r.number("gap_spread", w.gap_spread);
  w.collective_every = static_cast<int>(r.integer("collective_every", w.collective_every));
  w.probe_pings = static_cast<int>(r.integer("probe_pings", w.probe_pings));
  w.probe_every = static_cast<int>(r.integer("probe_every", w.probe_every));
  w.pinning = r.string("pinning", w.pinning);
  require(w.pinning == "inter-node" || w.pinning == "block", origin,
          "workload.\"pinning\" must be \"inter-node\" or \"block\"");
  require(w.ranks >= 2, origin, "workload.\"ranks\" must be >= 2");
  require(w.rounds >= 1, origin, "workload.\"rounds\" must be >= 1");
  require(w.gap_mean > 0.0, origin, "workload.\"gap_mean\" must be > 0");
  require(w.gap_spread >= 0.0 && w.gap_spread < 1.0, origin,
          "workload.\"gap_spread\" must lie in [0, 1)");
  require(w.collective_every >= 0, origin, "workload.\"collective_every\" must be >= 0");
  require(w.probe_pings >= 1, origin, "workload.\"probe_pings\" must be >= 1");
  require(w.probe_every >= 0, origin, "workload.\"probe_every\" must be >= 0");

  if (const JsonValue* e = r.object("elephant")) {
    require(w.kind == WorkloadKind::Dynamic, origin,
            "workload.\"elephant\" requires the dynamic workload");
    ObjectReader er(*e, origin, "workload.elephant");
    w.elephant.bytes = static_cast<std::uint32_t>(er.integer("bytes", w.elephant.bytes));
    w.elephant.probability = er.number("probability", w.elephant.probability);
    for (const std::int64_t rank : er.int_list("ranks")) {
      require(rank >= 0 && rank < w.ranks, origin,
              "workload.elephant.\"ranks\" entries must name valid ranks");
      w.elephant.ranks.push_back(static_cast<Rank>(rank));
    }
    require(w.elephant.probability >= 0.0 && w.elephant.probability <= 1.0, origin,
            "workload.elephant.\"probability\" must lie in [0, 1]");
    er.finish();
  }

  if (const JsonValue* m = r.array("membership")) {
    require(w.kind == WorkloadKind::Dynamic, origin,
            "workload.\"membership\" requires the dynamic workload");
    for (const JsonValue& item : m->items()) {
      ObjectReader mr(item, origin, "workload.membership[]");
      MembershipWindow win;
      win.rank = static_cast<Rank>(mr.integer("rank", -1));
      win.join_round = static_cast<int>(mr.integer("join_round", 0));
      win.leave_round = static_cast<int>(mr.integer("leave_round", win.leave_round));
      mr.finish();
      require(win.rank >= 0 && win.rank < w.ranks, origin,
              "workload.membership[].\"rank\" must name a valid rank");
      require(win.join_round >= 0, origin,
              "workload.membership[].\"join_round\" must be >= 0");
      require(win.leave_round > win.join_round, origin,
              "workload.membership[] window must be non-empty");
      w.membership.push_back(win);
    }
  }
  r.finish();
  return w;
}

ClockSpec parse_clock(const JsonValue& v, const std::string& origin, int ranks) {
  ClockSpec c;
  ObjectReader r(v, origin, "clock");
  c.timer = r.string("timer", c.timer);
  if (const JsonValue* o = r.object("overrides")) {
    ObjectReader orr(*o, origin, "clock.overrides");
    c.base_drift_max = orr.number("base_drift_max", c.base_drift_max);
    c.wander_sigma = orr.number("wander_sigma", c.wander_sigma);
    c.wander_interval = orr.number("wander_interval", c.wander_interval);
    c.wander_clamp = orr.number("wander_clamp", c.wander_clamp);
    c.node_offset_sigma = orr.number("node_offset_sigma", c.node_offset_sigma);
    orr.finish();
  }
  if (const JsonValue* storms = r.array("storms")) {
    for (const JsonValue& item : storms->items()) {
      ObjectReader sr(item, origin, "clock.storms[]");
      DriftStormSpec storm;
      for (const std::int64_t node : sr.int_list("nodes")) {
        require(node >= 0, origin, "clock.storms[].\"nodes\" must be >= 0");
        storm.nodes.push_back(static_cast<int>(node));
      }
      storm.start_fraction = sr.number("start_fraction", storm.start_fraction);
      storm.duration_fraction = sr.number("duration_fraction", storm.duration_fraction);
      storm.extra_ppm = sr.number("extra_ppm", storm.extra_ppm);
      sr.finish();
      require(!storm.nodes.empty(), origin, "clock.storms[] needs a \"nodes\" list");
      require(storm.start_fraction >= 0.0 && storm.start_fraction <= 1.0, origin,
              "clock.storms[].\"start_fraction\" must lie in [0, 1]");
      require(storm.duration_fraction >= 0.0 && storm.duration_fraction <= 1.0, origin,
              "clock.storms[].\"duration_fraction\" must lie in [0, 1]");
      require(storm.extra_ppm > -1e6, origin,
              "clock.storms[].\"extra_ppm\" must stay above -10^6 (rate > -1)");
      c.storms.push_back(std::move(storm));
    }
  }
  if (const JsonValue* steps = r.array("steps")) {
    for (const JsonValue& item : steps->items()) {
      ObjectReader sr(item, origin, "clock.steps[]");
      ClockStepSpec step;
      step.rank = static_cast<Rank>(sr.integer("rank", -1));
      step.at_fraction = sr.number("at_fraction", step.at_fraction);
      step.step = sr.number("step", step.step);
      sr.finish();
      require(step.rank >= 0 && step.rank < ranks, origin,
              "clock.steps[].\"rank\" must name a valid rank");
      require(step.at_fraction >= 0.0 && step.at_fraction <= 1.0, origin,
              "clock.steps[].\"at_fraction\" must lie in [0, 1]");
      require(step.step >= 0.0, origin,
              "clock.steps[].\"step\" must be >= 0 (local monotonicity)");
      c.steps.push_back(step);
    }
  }
  for (const std::int64_t rank : r.int_list("leap_second_ranks")) {
    require(rank >= 0 && rank < ranks, origin,
            "clock.\"leap_second_ranks\" entries must name valid ranks");
    c.leap_second_ranks.push_back(static_cast<Rank>(rank));
  }
  r.finish();
  return c;
}

NetworkSpec parse_network(const JsonValue& v, const std::string& origin) {
  NetworkSpec n;
  ObjectReader r(v, origin, "network");
  n.asymmetry_extra = r.number("asymmetry_extra", n.asymmetry_extra);
  n.varying_amplitude = r.number("varying_amplitude", n.varying_amplitude);
  n.varying_period = r.number("varying_period", n.varying_period);
  r.finish();
  require(n.asymmetry_extra >= 0.0, origin, "network.\"asymmetry_extra\" must be >= 0");
  require(n.varying_amplitude >= 0.0, origin,
          "network.\"varying_amplitude\" must be >= 0");
  require(n.varying_period > 0.0, origin, "network.\"varying_period\" must be > 0");
  return n;
}

StreamSpec parse_stream(const JsonValue& v, const std::string& origin) {
  StreamSpec s;
  ObjectReader r(v, origin, "stream");
  s.enabled = r.boolean("enabled", s.enabled);
  s.backward_window = r.number("backward_window", s.backward_window);
  s.horizon = r.number("horizon", s.horizon);
  s.emit_batch = static_cast<int>(r.integer("emit_batch", s.emit_batch));
  r.finish();
  require(s.backward_window > 0.0, origin, "stream.\"backward_window\" must be > 0");
  require(s.horizon > 0.0, origin, "stream.\"horizon\" must be > 0");
  require(s.emit_batch >= 1, origin, "stream.\"emit_batch\" must be >= 1");
  return s;
}

bool known_method_name(const std::string& name) {
  const auto& names = verify::all_method_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

ExpectSpec parse_expect(const JsonValue& v, const std::string& origin) {
  ExpectSpec e;
  ObjectReader r(v, origin, "expect");
  e.raw_violations_min = r.integer("raw_violations_min", e.raw_violations_min);
  e.raw_violations_max = r.integer("raw_violations_max", e.raw_violations_max);
  e.structural_clean = r.boolean("structural_clean", e.structural_clean);
  e.differential_clean = r.boolean("differential_clean", e.differential_clean);
  e.clc_repairs_min = r.integer("clc_repairs_min", e.clc_repairs_min);
  e.clc_clean_audit = r.boolean("clc_clean_audit", e.clc_clean_audit);
  e.stream_identical = r.boolean("stream_identical", e.stream_identical);
  if (const JsonValue* acc = r.array("accuracy")) {
    for (const JsonValue& item : acc->items()) {
      ObjectReader ar(item, origin, "expect.accuracy[]");
      AccuracyExpectSpec a;
      a.method = ar.string("method", "");
      a.reference = ar.string("reference", "");
      a.max_rms_ratio = ar.number("max_rms_ratio", a.max_rms_ratio);
      a.rms_slack = ar.number("rms_slack", a.rms_slack);
      ar.finish();
      // The method vocabulary is closed: a typo'd name would otherwise make
      // the expectation silently vacuous.
      require(known_method_name(a.method), origin,
              "expect.accuracy[].\"method\" must name a known correction method");
      require(known_method_name(a.reference), origin,
              "expect.accuracy[].\"reference\" must name a known correction method");
      require(a.method != a.reference, origin,
              "expect.accuracy[] method and reference must differ");
      require(a.max_rms_ratio > 0.0, origin,
              "expect.accuracy[].\"max_rms_ratio\" must be > 0");
      require(a.rms_slack >= 0.0, origin, "expect.accuracy[].\"rms_slack\" must be >= 0");
      e.accuracy.push_back(std::move(a));
    }
  }
  r.finish();
  require(e.raw_violations_min >= -1, origin, "expect.\"raw_violations_min\" must be >= -1");
  require(e.raw_violations_max >= -1, origin, "expect.\"raw_violations_max\" must be >= -1");
  require(e.clc_repairs_min >= -1, origin, "expect.\"clc_repairs_min\" must be >= -1");
  if (e.raw_violations_min >= 0 && e.raw_violations_max >= 0) {
    require(e.raw_violations_min <= e.raw_violations_max, origin,
            "expect raw-violation bounds must be ordered");
  }
  return e;
}

}  // namespace

ScenarioSpec parse_scenario(const std::string& text, const std::string& origin) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    throw ScenarioError(ScenarioErrorKind::Parse, origin + ": " + e.what());
  }

  ScenarioSpec spec;
  ObjectReader r(doc, origin, "");
  spec.name = r.string("name", "");
  require(!spec.name.empty(), origin, "scenario needs a non-empty \"name\"");
  spec.description = r.string("description", "");
  const std::int64_t seed = r.integer("seed", 42);
  require(seed >= 0, origin, "\"seed\" must be >= 0");
  spec.seed = static_cast<std::uint64_t>(seed);
  if (const JsonValue* w = r.object("workload")) spec.workload = parse_workload(*w, origin);
  if (const JsonValue* c = r.object("clock")) {
    spec.clock = parse_clock(*c, origin, spec.workload.ranks);
  }
  if (const JsonValue* n = r.object("network")) spec.network = parse_network(*n, origin);
  if (const JsonValue* s = r.object("stream")) spec.stream = parse_stream(*s, origin);
  if (const JsonValue* e = r.object("expect")) spec.expect = parse_expect(*e, origin);
  r.finish();
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    throw ScenarioError(ScenarioErrorKind::Io, "cannot open scenario file: " + path);
  }
  std::ostringstream text;
  text << f.rdbuf();
  if (f.bad()) {
    throw ScenarioError(ScenarioErrorKind::Io, "cannot read scenario file: " + path);
  }
  return parse_scenario(text.str(), path);
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    throw ScenarioError(ScenarioErrorKind::Io,
                        "cannot list scenario directory " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace chronosync::scenario
