#include "scenario/runner.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <utility>

#include "clockmodel/timer_spec.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "scenario/workload.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "topology/cluster.hpp"
#include "topology/pinning.hpp"
#include "trace/logical_messages.hpp"
#include "verify/differential.hpp"
#include "verify/fault_injection.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

namespace chronosync::scenario {

namespace {

TimerSpec build_timer(const ClockSpec& clock, const std::string& origin) {
  TimerSpec spec;
  try {
    spec = timer_specs::by_name(clock.timer);
  } catch (const std::invalid_argument& e) {
    throw ScenarioError(ScenarioErrorKind::Schema, origin + ": " + e.what());
  }
  if (clock.base_drift_max >= 0.0) spec.base_drift_max = clock.base_drift_max;
  if (clock.wander_sigma >= 0.0) spec.wander_sigma = clock.wander_sigma;
  if (clock.wander_interval >= 0.0) spec.wander_interval = clock.wander_interval;
  if (clock.wander_clamp >= 0.0) spec.wander_clamp = clock.wander_clamp;
  if (clock.node_offset_sigma >= 0.0) spec.node_offset_sigma = clock.node_offset_sigma;
  return spec;
}

JobConfig build_job(const ScenarioSpec& spec) {
  JobConfig job;
  const ClusterSpec cluster = clusters::xeon_rwth();
  job.placement = spec.workload.pinning == "block"
                      ? pinning::block(cluster, spec.workload.ranks)
                      : pinning::inter_node(cluster, spec.workload.ranks);
  job.timer = build_timer(spec.clock, spec.name);
  job.seed = spec.seed;

  const NetworkSpec& net = spec.network;
  if (net.asymmetry_extra > 0.0 || net.varying_amplitude > 0.0) {
    job.extra_latency = [net](Rank src, Rank dst, std::uint32_t, Time now) {
      Duration extra = 0.0;
      // Asymmetric routes: the "downlink" direction pays a fixed surcharge.
      if (net.asymmetry_extra > 0.0 && dst < src) extra += net.asymmetry_extra;
      // Time-varying congestion: every link breathes with one global cycle.
      if (net.varying_amplitude > 0.0) {
        const double phase = 2.0 * std::numbers::pi * now / net.varying_period;
        extra += net.varying_amplitude * 0.5 * (1.0 + std::sin(phase));
      }
      return extra;
    };
  }
  return job;
}

AppRunResult run_workload(const ScenarioSpec& spec) {
  if (spec.workload.kind == WorkloadKind::Dynamic) {
    return run_dynamic_workload(spec.workload, build_job(spec));
  }
  SweepConfig cfg;
  cfg.rounds = spec.workload.rounds;
  cfg.bytes = spec.workload.bytes;
  cfg.gap_mean = spec.workload.gap_mean;
  cfg.gap_spread = spec.workload.gap_spread;
  cfg.collective_every = spec.workload.collective_every;
  cfg.probe_pings = spec.workload.probe_pings;
  cfg.probe_every = spec.workload.probe_every;
  return run_sweep(cfg, build_job(spec));
}

Trace apply_clock_faults(Trace trace, const ClockSpec& clock) {
  for (const DriftStormSpec& storm : clock.storms) {
    trace = verify::with_drift_storm(trace, storm.nodes, storm.start_fraction,
                                     storm.duration_fraction, storm.extra_ppm * units::ppm);
  }
  for (const ClockStepSpec& step : clock.steps) {
    const auto& events = trace.events(step.rank);
    if (events.empty()) continue;
    const Time t_min = events.front().local_ts;
    const Time at = t_min + step.at_fraction * (events.back().local_ts - t_min);
    trace = verify::with_clock_step(trace, step.rank, at, step.step);
  }
  for (const Rank rank : clock.leap_second_ranks) {
    const auto& events = trace.events(rank);
    if (events.empty()) continue;
    // A leap second relative to the rest of the job: one full second of step
    // at 60% of the rank's span, the largest discontinuity NTP clocks see.
    const Time t_min = events.front().local_ts;
    const Time at = t_min + 0.6 * (events.back().local_ts - t_min);
    trace = verify::with_clock_step(trace, rank, at, 1.0);
  }
  return trace;
}

void check_expectations(const ExpectSpec& expect, ScenarioOutcome& out) {
  auto fail = [&out](const std::string& what) { out.failures.push_back(what); };
  std::ostringstream os;
  if (expect.raw_violations_min >= 0 &&
      out.raw_violations < static_cast<std::size_t>(expect.raw_violations_min)) {
    os << "expected >= " << expect.raw_violations_min << " raw Eq. 1 violation(s), got "
       << out.raw_violations;
    fail(os.str());
  }
  if (expect.raw_violations_max >= 0 &&
      out.raw_violations > static_cast<std::size_t>(expect.raw_violations_max)) {
    os.str("");
    os << "expected <= " << expect.raw_violations_max << " raw Eq. 1 violation(s), got "
       << out.raw_violations;
    fail(os.str());
  }
  if (expect.structural_clean && out.raw_structural > 0) {
    os.str("");
    os << "raw trace has " << out.raw_structural << " structural invariant violation(s)";
    fail(os.str());
  }
  if (expect.differential_clean && !out.differential_clean) {
    fail("differential suite reported contract failures");
  }
  if (expect.clc_repairs_min >= 0 &&
      out.clc_repairs < static_cast<std::size_t>(expect.clc_repairs_min)) {
    os.str("");
    os << "expected the CLC to repair >= " << expect.clc_repairs_min
       << " event(s), it repaired " << out.clc_repairs;
    fail(os.str());
  }
  if (expect.clc_clean_audit && out.clc_audit_violations > 0) {
    os.str("");
    os << "CLC output failed the zero-slack audit with " << out.clc_audit_violations
       << " violation(s)";
    fail(os.str());
  }
  if (expect.stream_identical && out.stream_checked && !out.stream_identical) {
    fail("windowed streaming CLC diverged from the in-memory CLC");
  }
  for (const AccuracyExpectSpec& a : expect.accuracy) {
    const verify::MethodAccuracy* method = nullptr;
    const verify::MethodAccuracy* reference = nullptr;
    for (const auto& m : out.accuracy) {
      if (m.name == a.method) method = &m;
      if (m.name == a.reference) reference = &m;
    }
    if (method == nullptr || reference == nullptr) {
      os.str("");
      os << "accuracy race " << a.method << " vs " << a.reference
         << ": method did not run (no ground truth or probes unusable)";
      fail(os.str());
      continue;
    }
    const double bound = a.max_rms_ratio * reference->rms_error + a.rms_slack;
    if (!(method->rms_error <= bound)) {
      os.str("");
      os << "accuracy race: rms(" << a.method << ") = " << method->rms_error
         << " s exceeds " << a.max_rms_ratio << " * rms(" << a.reference << ") + "
         << a.rms_slack << " = " << bound << " s";
      fail(os.str());
    }
  }
}

// Phase harness: one span on the trace timeline plus the phase's wall time
// fed into the scenario.phase_seconds quantile histogram (tail-latency view
// across phases and scenarios).  Span names must be string literals.
template <class Fn>
decltype(auto) timed_phase(const char* name, Fn&& fn) {
  obs::Span span(name);
  struct PhaseTimer {
    std::uint64_t t0;
    ~PhaseTimer() {
      if (t0 != 0) {
        obs::quantile_histogram("scenario.phase_seconds")
            .add(static_cast<double>(obs::now_ns() - t0) * 1e-9);
      }
    }
  } timer{obs::metrics_enabled() ? obs::now_ns() : 0};
  return fn();
}

bool probes_usable(const Trace& trace, const OffsetStore& offsets) {
  if (offsets.ranks() != trace.ranks()) return false;
  for (Rank r = 0; r < offsets.ranks(); ++r) {
    if (offsets.of(r).size() < 2) return false;
  }
  return offsets.ranks() > 0;
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioRunOptions& options) {
  CS_SPAN("scenario.run");
  obs::counter("scenario.runs").add(1);

  ScenarioOutcome out;
  out.name = spec.name;

  AppRunResult res = timed_phase("scenario.simulate", [&] { return run_workload(spec); });
  const Trace trace = timed_phase(
      "scenario.inject", [&] { return apply_clock_faults(std::move(res.trace), spec.clock); });
  out.events = trace.total_events();
  obs::counter("scenario.events").add(static_cast<std::int64_t>(out.events));

  const auto messages = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, messages, logical);

  // Raw census: how badly do the recorded timestamps violate the paper's
  // invariants before any correction runs?
  const verify::InvariantChecker strict(trace, schedule, {});
  const verify::VerifyReport raw = timed_phase(
      "scenario.audit_raw", [&] { return strict.check(TimestampArray::from_local(trace)); });
  out.raw_violations = raw.count(verify::InvariantKind::ClockCondition);
  out.raw_worst = raw.worst_slack(verify::InvariantKind::ClockCondition);
  out.raw_structural = raw.total() - out.raw_violations;
  obs::counter("scenario.raw_violations").add(static_cast<std::int64_t>(out.raw_violations));

  // Every method, every pairwise contract, every scanner.
  const verify::DifferentialReport diff = timed_phase(
      "scenario.differential", [&] { return verify::run_differential_suite(trace, res.offsets); });
  out.differential_clean = diff.ok();
  out.accuracy = diff.accuracy;
  if (!diff.ok()) {
    for (const auto& f : diff.failures) out.failures.push_back("differential: " + f);
  }

  // The headline repair path: interpolated input -> CLC -> zero-slack audit.
  auto [input, clc] = timed_phase("scenario.repair", [&] {
    TimestampArray in =
        probes_usable(trace, res.offsets)
            ? apply_correction(trace, LinearInterpolation::from_store(res.offsets))
            : TimestampArray::from_local(trace);
    ClcResult result = controlled_logical_clock(trace, schedule, in);
    return std::pair(std::move(in), std::move(result));
  });
  out.clc_repairs = clc.violations_repaired;
  obs::counter("scenario.clc_repairs").add(static_cast<std::int64_t>(out.clc_repairs));
  const verify::VerifyReport audit = timed_phase(
      "scenario.audit_repair", [&] { return strict.check_correction(input, clc.corrected); });
  out.clc_audit_violations = audit.total();

  if (spec.stream.enabled) {
    timed_phase("scenario.stream_check", [&] {
      StreamClcOptions stream_opt;
      stream_opt.backward_window = spec.stream.backward_window;
      stream_opt.horizon = spec.stream.horizon;
      stream_opt.emit_batch = static_cast<std::size_t>(spec.stream.emit_batch);
      std::vector<std::string> stream_failures;
      verify::cross_check_windowed_clc(trace, options.work_dir, stream_opt, stream_failures);
      out.stream_checked = true;
      out.stream_identical = stream_failures.empty();
      // The cross-check's own stats are not returned; re-derive the headline
      // counters from a direct run only when someone asks for them in summary()
      // — the identity verdict above is what the expectations consume.
      for (const auto& f : stream_failures) out.failures.push_back("stream: " + f);
    });
  }

  // Contract failures above are reported unconditionally; the declared
  // expectations judge the measured outcome on top.
  std::vector<std::string> contract = std::move(out.failures);
  out.failures.clear();
  check_expectations(spec.expect, out);
  // Deduplicate: differential/stream breaches already fail their expectation
  // flags; keep the detailed lines after the expectation verdicts.
  out.failures.insert(out.failures.end(), contract.begin(), contract.end());
  return out;
}

std::string ScenarioOutcome::summary() const {
  std::ostringstream os;
  os << "scenario " << name << ": " << events << " event(s), " << raw_violations
     << " raw Eq. 1 violation(s) (worst " << raw_worst << " s), " << raw_structural
     << " structural; differential " << (differential_clean ? "clean" : "FAILED")
     << "; CLC repaired " << clc_repairs << " with " << clc_audit_violations
     << " audit violation(s)";
  if (stream_checked) {
    os << "; streaming CLC " << (stream_identical ? "bit-identical" : "DIVERGED");
  }
  os << "\n";
  for (const auto& a : accuracy) {
    os << "  accuracy " << a.name << ": rms " << a.rms_error << " s, max |err| "
       << a.max_abs_error << " s\n";
  }
  for (const auto& f : failures) os << "  FAIL " << f << "\n";
  return os.str();
}

}  // namespace chronosync::scenario
