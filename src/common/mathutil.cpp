#include "common/mathutil.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

LinearFit fit_line(const std::vector<Point2>& pts) {
  CS_REQUIRE(pts.size() >= 2, "fit_line needs at least two points");
  double sx = 0.0, sy = 0.0;
  for (const auto& p : pts) {
    sx += p.x;
    sy += p.y;
  }
  const double n = static_cast<double>(pts.size());
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0;
  for (const auto& p : pts) {
    sxx += (p.x - mx) * (p.x - mx);
    sxy += (p.x - mx) * (p.y - my);
  }
  CS_REQUIRE(sxx > 0.0, "fit_line needs two distinct x values");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.n = pts.size();
  double ss = 0.0;
  for (const auto& p : pts) {
    const double r = p.y - f(p.x);
    ss += r * r;
  }
  f.residual_stddev = pts.size() > 2 ? std::sqrt(ss / (n - 2.0)) : 0.0;
  return f;
}

namespace {

double cross(const Point2& o, const Point2& a, const Point2& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

std::vector<Point2> half_hull(std::vector<Point2> pts, bool lower) {
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  // Collapse equal-x runs to the chain's tight extreme (min y for the lower
  // chain, max y for the upper) so the result is strictly increasing in x and
  // directly usable as a PiecewiseLinear envelope.  Duplicate points — and
  // vertical stacks in general — otherwise survive into the chain, because
  // the cross product of coincident-x points is zero.
  std::vector<Point2> filtered;
  filtered.reserve(pts.size());
  for (const auto& p : pts) {
    if (!filtered.empty() && filtered.back().x == p.x) {
      if (!lower) filtered.back() = p;  // sorted by y: last of the run is max
      continue;
    }
    filtered.push_back(p);
  }
  std::vector<Point2> hull;
  for (const auto& p : filtered) {
    while (hull.size() >= 2) {
      const double c = cross(hull[hull.size() - 2], hull.back(), p);
      const bool keep = lower ? c > 0.0 : c < 0.0;
      if (keep) break;
      hull.pop_back();
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace

std::vector<Point2> lower_convex_hull(std::vector<Point2> pts) {
  return half_hull(std::move(pts), /*lower=*/true);
}

std::vector<Point2> upper_convex_hull(std::vector<Point2> pts) {
  return half_hull(std::move(pts), /*lower=*/false);
}

PiecewiseLinear::PiecewiseLinear(std::vector<Point2> knots) : knots_(std::move(knots)) {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    CS_REQUIRE(knots_[i].x > knots_[i - 1].x, "piecewise knots must be strictly increasing in x");
  }
}

void PiecewiseLinear::append(double x, double y) {
  CS_REQUIRE(knots_.empty() || x > knots_.back().x,
             "piecewise knots must be strictly increasing in x");
  knots_.push_back({x, y});
}

double PiecewiseLinear::operator()(double x) const {
  CS_REQUIRE(!knots_.empty(), "evaluating empty piecewise function");
  if (knots_.size() == 1) return knots_.front().y;
  // Find the segment; extrapolate boundary segments outside the range.
  auto it = std::lower_bound(knots_.begin(), knots_.end(), x,
                             [](const Point2& k, double v) { return k.x < v; });
  std::size_t hi = static_cast<std::size_t>(it - knots_.begin());
  hi = std::clamp<std::size_t>(hi, 1, knots_.size() - 1);
  const Point2& a = knots_[hi - 1];
  const Point2& b = knots_[hi];
  const double t = (x - a.x) / (b.x - a.x);
  return lerp(a.y, b.y, t);
}

double PiecewiseLinear::slope_at(double x) const {
  CS_REQUIRE(knots_.size() >= 2, "slope of degenerate piecewise function");
  auto it = std::lower_bound(knots_.begin(), knots_.end(), x,
                             [](const Point2& k, double v) { return k.x < v; });
  std::size_t hi = static_cast<std::size_t>(it - knots_.begin());
  hi = std::clamp<std::size_t>(hi, 1, knots_.size() - 1);
  const Point2& a = knots_[hi - 1];
  const Point2& b = knots_[hi];
  return (b.y - a.y) / (b.x - a.x);
}

}  // namespace chronosync
