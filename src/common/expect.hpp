// Precondition / invariant checking macros.
//
// CS_REQUIRE is for caller-facing preconditions on public APIs and throws
// std::invalid_argument; CS_ENSURE is for internal invariants and throws
// std::logic_error.  Both are always on: the simulator's correctness matters
// more than the last few percent of speed, and a silently-corrupt trace is
// worse than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace chronosync::detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_ensure(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace chronosync::detail

#define CS_REQUIRE(expr, msg)                                                   \
  do {                                                                          \
    if (!(expr)) ::chronosync::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define CS_ENSURE(expr, msg)                                                    \
  do {                                                                          \
    if (!(expr)) ::chronosync::detail::fail_ensure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
