#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace chronosync {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace chronosync
