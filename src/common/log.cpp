#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace chronosync {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::Warn)};
}  // namespace detail

namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  // One formatted line, one stream write, under one mutex: concurrent
  // threads' messages never interleave mid-line.
  std::string line;
  line.reserve(msg.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace chronosync
