#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  CS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  CS_REQUIRE(cells.size() == header_.size(), "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace chronosync
