// Numerical building blocks for synchronization algorithms:
//   * least-squares line fitting (Duda's regression method, Eq. 3 parameters),
//   * convex hulls of point sets (Duda's hull method for one-sided bounds),
//   * piecewise-linear functions (drift integrals, interpolation tables).
#pragma once

#include <cstddef>
#include <vector>

namespace chronosync {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  std::size_t n = 0;
  /// Residual standard deviation around the fitted line.
  double residual_stddev = 0.0;

  double operator()(double x) const { return slope * x + intercept; }
};

/// Ordinary least squares over the given points (requires n >= 2 with at
/// least two distinct x values).
LinearFit fit_line(const std::vector<Point2>& pts);

/// Lower convex hull of a point set, left to right (Andrew monotone chain).
/// The hull supports Duda's bound: all points lie on or above the returned
/// polyline.
std::vector<Point2> lower_convex_hull(std::vector<Point2> pts);

/// Upper convex hull of a point set, left to right.
std::vector<Point2> upper_convex_hull(std::vector<Point2> pts);

/// A continuous piecewise-linear function defined by knots sorted by x.
/// Evaluation outside the knot range extrapolates the boundary segment, which
/// is exactly the behaviour of linear offset interpolation applied outside the
/// measurement interval.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  explicit PiecewiseLinear(std::vector<Point2> knots);

  /// Adds a knot; x must be strictly greater than the last knot's x.
  void append(double x, double y);

  double operator()(double x) const;
  bool empty() const { return knots_.empty(); }
  std::size_t size() const { return knots_.size(); }
  const std::vector<Point2>& knots() const { return knots_; }

  /// Slope of the segment containing x (boundary segments extended).
  double slope_at(double x) const;

 private:
  std::vector<Point2> knots_;
};

/// Linear interpolation helper.
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace chronosync
