// Tiny command-line option parser for the bench and example binaries.
// Supports `--name value`, `--name=value`, and boolean flags `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chronosync {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Comma-separated integer list, e.g. `--ranks 8,64,256`; a single integer
  /// parses as a one-element list.  Empty elements and non-numeric values
  /// fail loudly like get_int.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> fallback) const;
  std::uint64_t get_seed(std::uint64_t fallback = 42) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace chronosync
