#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CS_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  CS_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double percentile(std::vector<double> samples, double p) {
  CS_REQUIRE(!samples.empty(), "percentile of empty sample");
  CS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  CS_REQUIRE(hi > lo, "histogram bounds reversed");
  CS_REQUIRE(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    // NaN compares false against every bound, so it can neither be clamped
    // nor binned; it lands in a dedicated counter instead of vanishing.
    ++invalid_;
    return;
  }
  const double span = hi_ - lo_;
  // Clamp while still in floating point: casting a value outside
  // ptrdiff_t's range (e.g. from an infinite or huge sample) is undefined
  // behavior, flagged by -fsanitize=float-cast-overflow.
  const double pos =
      std::clamp((x - lo_) / span * static_cast<double>(counts_.size()), 0.0,
                 static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

void Histogram::add_bin_count(std::size_t i, std::size_t n) {
  CS_REQUIRE(i < counts_.size(), "histogram bin out of range");
  counts_[i] += n;
  total_ += n;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  CS_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(samples, 99.0);
  return s;
}

}  // namespace chronosync
