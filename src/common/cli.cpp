#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "common/expect.hpp"

namespace chronosync {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` if the next token is not itself an option; else a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      options_[std::string(arg)] = argv[++i];
    } else {
      options_[std::string(arg)] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  // Full-consumption parse: strtoll with a discarded endptr silently returns
  // 0 on garbage and a partial value on trailing junk ("--reps=abc" ran 0
  // reps, "--reps=5x" ran 5).  Malformed numbers must fail loudly, naming
  // the option.
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t v = std::strtoll(s, &end, 10);
  CS_REQUIRE(end != s && *end == '\0',
             "option --" + name + " expects an integer, got \"" + it->second + "\"");
  CS_REQUIRE(errno != ERANGE,
             "option --" + name + " is out of range: \"" + it->second + "\"");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  CS_REQUIRE(end != s && *end == '\0',
             "option --" + name + " expects a number, got \"" + it->second + "\"");
  CS_REQUIRE(errno != ERANGE,
             "option --" + name + " is out of range: \"" + it->second + "\"");
  return v;
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name,
                                            std::vector<std::int64_t> fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& value = it->second;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string elem =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const char* s = elem.c_str();
    char* end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(s, &end, 10);
    CS_REQUIRE(end != s && *end == '\0',
               "option --" + name + " expects comma-separated integers, got \"" + value +
                   "\"");
    CS_REQUIRE(errno != ERANGE, "option --" + name + " is out of range: \"" + value + "\"");
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::uint64_t Cli::get_seed(std::uint64_t fallback) const {
  return static_cast<std::uint64_t>(get_int("seed", static_cast<std::int64_t>(fallback)));
}

}  // namespace chronosync
