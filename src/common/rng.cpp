#include "common/rng.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // One splitmix round to spread low-entropy names across the state space.
  return splitmix64(h);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the 64-bit seed into 256 bits of state; splitmix64 guarantees the
  // state is never all-zero.
  for (auto& s : state_) s = splitmix64(seed);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CS_REQUIRE(lo <= hi, "uniform bounds reversed");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CS_REQUIRE(lo <= hi, "uniform_int bounds reversed");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~static_cast<std::uint64_t>(0)) - (~static_cast<std::uint64_t>(0)) % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: deterministic given the stream, unlike
  // std::normal_distribution whose algorithm is implementation-defined.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  CS_REQUIRE(stddev >= 0.0, "negative stddev");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  CS_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t RngTree::derive(std::string_view name) const {
  std::uint64_t s = seed_ ^ hash_name(name);
  return splitmix64(s);
}

}  // namespace chronosync
