// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding trace container chunks.  Chosen over CRC32 (zlib) for its
// better error-detection properties on short records; computed in software
// with slicing-by-8 tables, fast enough that trace encoding dominates.
#pragma once

#include <cstddef>
#include <cstdint>

namespace chronosync {

/// Extends a running CRC32C over `n` more bytes.  Start from 0; feed the
/// previous return value to continue.  The init/final inversions are handled
/// internally, so partial results compose:
///   crc32c(crc32c(0, a, na), b, nb) == crc32c(0, ab, na + nb).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n);

}  // namespace chronosync
