// Streaming and batch statistics used by latency probes, deviation analyses,
// and the experiment reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chronosync {

/// Numerically stable running mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile over a copy of the samples (linear interpolation between
/// closest ranks, the same convention as numpy's default).
double percentile(std::vector<double> samples, double p);

/// Fixed-bin histogram over [lo, hi); samples outside are clamped to the
/// boundary bins so nothing is silently dropped.  NaN samples cannot be
/// clamped; they are tallied in invalid() instead of a bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Adds `n` samples directly to bin `i` (merging pre-binned data, e.g. a
  /// sharded histogram's shards).  `i` must be a valid bin index.
  void add_bin_count(std::size_t i, std::size_t n);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// NaN samples seen by add(); never counted in total() or any bin.
  std::size_t invalid() const { return invalid_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering (for report output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t invalid_ = 0;
};

/// Summary of a sample vector: n, mean, stddev, min, percentiles, max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace chronosync
