// Minimal CSV writer; the figure-reproduction benches emit their series as CSV
// (alongside the ASCII rendering) so the curves can be plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace chronosync {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row; throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace chronosync
