// ASCII table rendering for the benchmark harness, so every reproduced table
// and figure prints in a shape directly comparable to the paper.
#pragma once

#include <string>
#include <vector>

namespace chronosync {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision for use in add_row.
  static std::string num(double v, int precision = 2);
  /// Scientific notation, as used by the paper's std.dev. columns.
  static std::string sci(double v, int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chronosync
