// Deterministic random number generation.
//
// Every stochastic component in chronosync (clock drift processes, network
// jitter, OS noise, workload variation) draws from its own named stream derived
// from a single master seed, so that
//   * a whole experiment is reproducible from one --seed value,
//   * adding a new consumer of randomness does not perturb existing streams,
//   * parallel replay consumes per-process streams independently.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64 from
// a 64-bit hash of (parent seed, stream name).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace chronosync {

/// splitmix64 step; used for seeding and string hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a style 64-bit hash of a string, mixed through splitmix64.
std::uint64_t hash_name(std::string_view name);

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the built-in helpers below are preferred because their
/// results are identical across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method (deterministic, cached pair).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with given rate (lambda > 0).
  double exponential(double rate);
  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Hierarchical seed derivation: a tree of named streams.
///
///   RngTree root(seed);
///   Rng jitter = root.stream("net.jitter");
///   RngTree clock = root.child("clock");
///   Rng tsc3 = clock.stream("rank3");
class RngTree {
 public:
  explicit RngTree(std::uint64_t seed) : seed_(seed) {}

  /// Seed for a named child stream; stable across runs and insertion order.
  std::uint64_t derive(std::string_view name) const;

  /// A ready-to-use generator for the named stream.
  Rng stream(std::string_view name) const { return Rng(derive(name)); }

  /// A subtree rooted at the derived seed.
  RngTree child(std::string_view name) const { return RngTree(derive(name)); }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace chronosync
