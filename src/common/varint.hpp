// LEB128 variable-length integers and zigzag mapping — the wire primitives of
// the v2 trace container.  Small magnitudes (deltas, ids, ranks) encode in one
// or two bytes instead of the fixed four/eight of the v1 format.
//
// Decoders are total functions over untrusted bytes: they never read past
// `end`, reject overlong encodings (> 10 bytes), and report failure through
// the return value so callers can surface a typed error.
#pragma once

#include <cstdint>
#include <vector>

namespace chronosync {

/// Appends the unsigned LEB128 encoding of `v` (1..10 bytes) to `out`.
inline void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Maps signed to unsigned so small magnitudes of either sign stay short:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1u);
}

inline void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_uvarint(out, zigzag_encode(v));
}

/// Decodes one unsigned LEB128 value from [*cursor, end).  On success advances
/// *cursor past the encoding and returns true; on truncation or an overlong
/// encoding leaves *cursor unspecified and returns false.
inline bool get_uvarint(const std::uint8_t** cursor, const std::uint8_t* end,
                        std::uint64_t& out) {
  const std::uint8_t* p = *cursor;
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const std::uint8_t byte = *p++;
    if (shift == 63 && (byte & 0xFEu)) return false;  // would overflow 64 bits
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if (!(byte & 0x80u)) {
      *cursor = p;
      out = v;
      return true;
    }
  }
  return false;
}

inline bool get_svarint(const std::uint8_t** cursor, const std::uint8_t* end,
                        std::int64_t& out) {
  std::uint64_t u = 0;
  if (!get_uvarint(cursor, end, u)) return false;
  out = zigzag_decode(u);
  return true;
}

}  // namespace chronosync
