#include "common/csv.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

namespace {
std::string join(const std::vector<std::string>& cells) {
  std::string s;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) s += ',';
    s += cells[i];
  }
  return s;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  CS_REQUIRE(out_.good(), "cannot open CSV output: " + path);
  CS_REQUIRE(columns_ > 0, "CSV needs at least one column");
  out_ << join(header) << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  CS_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& values) {
  CS_REQUIRE(values.size() == columns_, "CSV row width mismatch");
  out_ << join(values) << '\n';
}

}  // namespace chronosync
