#include "common/crc32c.hpp"

#include <array>
#include <cstring>

namespace chronosync {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // tab[k][b]: CRC of byte b followed by k zero bytes; slicing-by-8 consumes
  // eight input bytes per iteration with eight independent table lookups.
  std::array<std::array<std::uint32_t, 256>, 8> tab{};

  Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      tab[0][b] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        tab[k][b] = (tab[k - 1][b] >> 8) ^ tab[0][tab[k - 1][b] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) {
  const auto& tab = tables().tab;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tab[7][lo & 0xFFu] ^ tab[6][(lo >> 8) & 0xFFu] ^ tab[5][(lo >> 16) & 0xFFu] ^
          tab[4][lo >> 24] ^ tab[3][hi & 0xFFu] ^ tab[2][(hi >> 8) & 0xFFu] ^
          tab[1][(hi >> 16) & 0xFFu] ^ tab[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) crc = (crc >> 8) ^ tab[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace chronosync
