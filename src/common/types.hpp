// Fundamental scalar types and unit helpers shared across chronosync.
//
// All simulation time is kept in double-precision seconds.  At the scale of the
// reproduced experiments (runs up to 3600 s, effects down to 0.01 us) a double
// retains ~0.4 ns of absolute resolution at t = 3600 s, two orders of magnitude
// below the smallest modeled effect.
#pragma once

#include <cstdint>
#include <limits>

namespace chronosync {

/// Seconds of simulated (true or local) time.
using Time = double;

/// A signed duration in seconds.
using Duration = double;

/// MPI-style process rank within a communicator / job.
using Rank = int;

/// Thread index within an SMP node (OpenMP simulation).
using ThreadId = int;

/// Message tag, matching MPI semantics (>= 0; wildcard below).
using Tag = int;

inline constexpr Rank kAnySource = -1;  ///< MPI_ANY_SOURCE analogue.
inline constexpr Tag kAnyTag = -1;      ///< MPI_ANY_TAG analogue.

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

// -- unit helpers -------------------------------------------------------------
// Literal-style factories keep magnitudes readable: `4.29 * units::us`.
namespace units {
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
/// Parts-per-million, the natural unit for clock drift rates.
inline constexpr double ppm = 1e-6;
}  // namespace units

/// Converts seconds to microseconds for reporting.
inline constexpr double to_us(Duration d) { return d * 1e6; }
/// Converts seconds to milliseconds for reporting.
inline constexpr double to_ms(Duration d) { return d * 1e3; }

}  // namespace chronosync
