// Leveled logging to stderr.  Default level is Warn so library output never
// pollutes the bench tables; binaries raise it with --verbose.
//
// A suppressed CS_LOG_* statement costs one relaxed atomic load and a
// branch: the stream and its operands are only materialized when the level
// passes the threshold.  Each emitted message is written to stderr as one
// write under a process-wide mutex, so concurrent threads cannot interleave
// within a line.
#pragma once

#include <atomic>
#include <optional>
#include <sstream>
#include <string>

namespace chronosync {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
extern std::atomic<int> g_log_level;
}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= detail::g_log_level.load(std::memory_order_relaxed);
}

/// Emits unconditionally-formatted text (the level check already happened at
/// the caller, or the caller wants it regardless); one atomic line write.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {
    if (log_enabled(level)) os_.emplace();
  }
  ~LogLine() {
    if (os_) log_message(level_, os_->str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (os_) *os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> os_;
};
}  // namespace detail

}  // namespace chronosync

#define CS_LOG_DEBUG ::chronosync::detail::LogLine(::chronosync::LogLevel::Debug)
#define CS_LOG_INFO ::chronosync::detail::LogLine(::chronosync::LogLevel::Info)
#define CS_LOG_WARN ::chronosync::detail::LogLine(::chronosync::LogLevel::Warn)
#define CS_LOG_ERROR ::chronosync::detail::LogLine(::chronosync::LogLevel::Error)
