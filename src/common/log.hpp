// Leveled logging to stderr.  Default level is Warn so library output never
// pollutes the bench tables; binaries raise it with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace chronosync {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace chronosync

#define CS_LOG_DEBUG ::chronosync::detail::LogLine(::chronosync::LogLevel::Debug)
#define CS_LOG_INFO ::chronosync::detail::LogLine(::chronosync::LogLevel::Info)
#define CS_LOG_WARN ::chronosync::detail::LogLine(::chronosync::LogLevel::Warn)
#define CS_LOG_ERROR ::chronosync::detail::LogLine(::chronosync::LogLevel::Error)
