// Coroutine task types for simulation processes.
//
// Coro<T> is a lazy task: creating it does not run anything; awaiting it
// starts the body and symmetric-transfers control back to the awaiter when
// the body finishes.  Simulated MPI processes are ordinary functions
//
//     Coro<void> worker(Proc& p) {
//       co_await p.compute(10 * units::us);
//       co_await p.send(1, /*tag=*/0, /*bytes=*/8);
//       Message m = co_await p.recv(1, 0);
//     }
//
// which keeps workload code in the shape of real MPI code.  The discrete-
// event Engine (engine.hpp) owns top-level tasks and resumes them as virtual
// time advances.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/expect.hpp"

namespace chronosync {

template <typename T>
class Coro;

namespace detail {

template <typename T>
struct CoroPromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this task completes
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazy coroutine task returning T.  Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Coro {
 public:
  struct promise_type : detail::CoroPromiseBase<T> {
    std::optional<T> value;
    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Coro() = default;
  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  Coro(Coro&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Coro& operator=(Coro&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  /// Awaiting a Coro starts its body (symmetric transfer) and resumes the
  /// awaiter when the body co_returns.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
        h.promise().continuation = caller;
        return h;
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        CS_ENSURE(h.promise().value.has_value(), "coroutine completed without a value");
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Coro<void> {
 public:
  struct promise_type : detail::CoroPromiseBase<void> {
    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Coro() = default;
  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  Coro(Coro&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Coro& operator=(Coro&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
        h.promise().continuation = caller;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace chronosync
