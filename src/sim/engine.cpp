#include "sim/engine.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync {

// Drives one spawned top-level task: forwards its exception to the engine and
// counts completion.  Frames are destroyed by ~Engine (final_suspend keeps
// them suspended so there is never a self-destroying handle the engine might
// also destroy).
struct Engine::DetachedRunner {
  struct promise_type {
    DetachedRunner get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }  // body catches all
  };
  std::coroutine_handle<promise_type> handle;

  static DetachedRunner start(Engine& e, Coro<void> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      e.record_error(std::current_exception());
    }
    ++e.completed_;
  }
};

Engine::~Engine() {
  // Destroy process frames outermost-first; each frame owns its nested tasks,
  // so destruction cascades through suspended call chains.  Queue and trigger
  // handles are non-owning and must not be destroyed here.
  for (auto h : detached_) h.destroy();
}

void Engine::schedule(Time t, std::coroutine_handle<> h) {
  CS_ENSURE(h != nullptr, "scheduling a null coroutine handle");
  queue_.push(Item{std::max(t, now_), seq_++, h, nullptr});
}

void Engine::schedule(Time t, std::function<void()> fn) {
  CS_ENSURE(fn != nullptr, "scheduling a null callback");
  queue_.push(Item{std::max(t, now_), seq_++, nullptr, std::move(fn)});
}

void Engine::spawn(Coro<void> task, Time start) {
  CS_REQUIRE(task.valid(), "spawning an empty task");
  DetachedRunner runner = DetachedRunner::start(*this, std::move(task));
  detached_.push_back(runner.handle);
  ++spawned_;
  schedule(start, static_cast<std::coroutine_handle<>>(runner.handle));
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  CS_SPAN("engine.run");
  const bool tracing = obs::trace_enabled();
  std::uint64_t fired = 0;
  std::size_t peak_depth = queue_.size();
  while (!queue_.empty() && fired < max_events) {
    Item item = queue_.top();
    queue_.pop();
    CS_ENSURE(item.t >= now_, "time went backwards in the event queue");
    now_ = item.t;
    ++fired;
    if (item.h) {
      item.h.resume();
    } else {
      item.fn();
    }
    peak_depth = std::max(peak_depth, queue_.size());
    // Sparse sampling keeps the ring from filling with depth samples while
    // still drawing a usable queue-depth track in the trace viewer.
    if (tracing && (fired & 0x3ff) == 0) {
      obs::counter_sample("engine.queue_depth", static_cast<double>(queue_.size()));
    }
    if (error_) break;
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& events = obs::counter("engine.events_fired");
    static obs::Histo& depth_peak =
        obs::histogram("engine.queue_depth_peak", 0.0, static_cast<double>(1 << 20), 64);
    events.add(static_cast<std::int64_t>(fired));
    depth_peak.add(static_cast<double>(peak_depth));
  }
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
  deadlocked_ = queue_.empty() && completed_ < static_cast<int>(spawned_);
  return fired;
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = e;  // keep the first failure
}

void Trigger::fire(Time t) {
  CS_ENSURE(!fired_, "Trigger fired twice");
  fired_ = true;
  fire_time_ = t;
  if (waiter_) {
    engine_->schedule(std::max(t, engine_->now()), waiter_);
    waiter_ = nullptr;
  }
}

}  // namespace chronosync
