// Deterministic discrete-event engine.
//
// The engine owns a time-ordered queue of pending resumptions.  Entries with
// equal timestamps fire in insertion order (a monotone sequence number breaks
// ties), so a simulation is a pure function of its inputs and seeds.
//
// Top-level simulation processes are Coro<void> bodies handed to spawn();
// the engine drives them to completion in run().  Inside a process, awaiting
// Delay suspends until virtual time has advanced, and Trigger is the one-shot
// synchronization primitive everything else (message delivery, barrier
// release) is built from.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace chronosync {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const { return now_; }

  /// Schedules a coroutine resumption at absolute time t (>= now).
  void schedule(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback at absolute time t (>= now).
  void schedule(Time t, std::function<void()> fn);

  /// Registers a top-level process whose body starts at `start`.
  void spawn(Coro<void> task, Time start = 0.0);

  /// Runs until the queue drains (all processes finished or deadlocked) or
  /// `max_events` resumptions have fired.  Rethrows the first exception a
  /// process produced.  Returns the number of resumptions processed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Number of spawned processes that have finished.
  int completed() const { return completed_; }
  int spawned() const { return static_cast<int>(spawned_); }

  /// True if run() drained the queue with unfinished processes (deadlock).
  bool deadlocked() const { return deadlocked_; }

  /// Awaitable: suspend the current coroutine for `d` seconds of virtual time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine* e;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { e->schedule(e->now_ + d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  struct DetachedRunner;  // drives one spawned task, reports completion

  struct Item {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;       // exactly one of h / fn is set
    std::function<void()> fn;
  };
  struct ItemOrder {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;  // min-heap
      return a.seq > b.seq;
    }
  };

  void record_error(std::exception_ptr e);

  std::priority_queue<Item, std::vector<Item>, ItemOrder> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t spawned_ = 0;
  int completed_ = 0;
  bool deadlocked_ = false;
  std::exception_ptr error_;
  std::vector<std::coroutine_handle<>> detached_;  // frames to destroy on teardown
};

/// One-shot completion event.  A coroutine co_awaits it; later, some other
/// actor fires it at a virtual time >= now, which resumes the waiter at that
/// time.  Firing before anyone waits is allowed (the value is latched).
class Trigger {
 public:
  explicit Trigger(Engine& e) : engine_(&e) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }

  /// Fires the trigger at absolute virtual time t (>= now).
  void fire(Time t);

  auto operator co_await() {
    struct Awaiter {
      Trigger* tr;
      bool await_ready() const noexcept { return tr->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        CS_ENSURE(!tr->waiter_, "Trigger supports a single waiter");
        tr->waiter_ = h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool fired_ = false;
  Time fire_time_ = 0.0;
  std::coroutine_handle<> waiter_;
};

}  // namespace chronosync
