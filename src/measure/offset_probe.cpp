#include "measure/offset_probe.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

namespace {
constexpr Tag kProbeRequestTag = 900001 % (1 << 20);  // user tag space
constexpr Tag kProbeReplyTag = 900002 % (1 << 20);
constexpr std::uint32_t kProbeBytes = 8;
}  // namespace

bool is_finite_sample(const OffsetMeasurement& m) {
  return std::isfinite(m.worker_time) && std::isfinite(m.offset) && std::isfinite(m.rtt);
}

std::vector<OffsetMeasurement> finite_samples(const std::vector<OffsetMeasurement>& samples,
                                              std::size_t* skipped) {
  std::vector<OffsetMeasurement> out;
  out.reserve(samples.size());
  for (const auto& m : samples) {
    if (is_finite_sample(m)) out.push_back(m);
  }
  if (skipped != nullptr) *skipped = samples.size() - out.size();
  return out;
}

void OffsetStore::add(Rank worker, const OffsetMeasurement& m) {
  CS_REQUIRE(worker >= 0 && worker < ranks(), "worker rank out of range");
  samples_[static_cast<std::size_t>(worker)].push_back(m);
}

const std::vector<OffsetMeasurement>& OffsetStore::of(Rank worker) const {
  CS_REQUIRE(worker >= 0 && worker < ranks(), "worker rank out of range");
  return samples_[static_cast<std::size_t>(worker)];
}

Coro<void> probe_offsets(Proc& p, OffsetStore& store, int pings) {
  CS_REQUIRE(pings > 0, "need at least one ping");
  // Probing happens outside tracing windows (inside MPI_Init/Finalize);
  // suspend tracing for its duration.
  const bool was_tracing = p.tracing();
  p.set_tracing(false);

  if (p.rank() == 0) {
    store.add(0, {p.wtime(), 0.0, 0.0});
    for (Rank w = 1; w < p.nranks(); ++w) {
      OffsetMeasurement best;
      best.rtt = kTimeInfinity;
      for (int k = 0; k < pings; ++k) {
        const Time t1 = p.wtime();
        co_await p.send(w, kProbeRequestTag, kProbeBytes);
        Message reply = co_await p.recv(w, kProbeReplyTag);
        const Time t2 = p.wtime();
        const Time t0 = reply.data.at(0);
        const Duration rtt = t2 - t1;
        if (rtt < best.rtt) {
          best.worker_time = t0;
          best.offset = t1 + rtt / 2.0 - t0;  // Eq. 2
          best.rtt = rtt;
        }
      }
      store.add(w, best);
    }
  } else {
    for (int k = 0; k < pings; ++k) {
      co_await p.recv(0, kProbeRequestTag);
      // Built outside the co_await: GCC 12 rejects initializer lists inside
      // await expressions ("array used as initializer").
      std::vector<double> reply(1, p.wtime());
      co_await p.send(0, kProbeReplyTag, kProbeBytes, std::move(reply));
    }
  }

  // Keep ranks aligned so the probe batch has a well-defined end.
  co_await p.barrier();
  p.set_tracing(was_tracing);
}

OffsetMeasurement direct_probe(SimClock& master, SimClock& worker,
                               const HierarchicalLatencyModel& latency, CommDomain domain,
                               Time when, int pings, Rng& rng) {
  CS_REQUIRE(pings > 0, "need at least one ping");
  OffsetMeasurement best;
  best.rtt = kTimeInfinity;
  Time t = when;
  for (int k = 0; k < pings; ++k) {
    const Duration d1 = latency.sample(domain, 8, rng);
    const Duration d2 = latency.sample(domain, 8, rng);
    const Time t1 = master.read(t);
    const Time t0 = worker.read(t + d1);
    const Time t2 = master.read(t + d1 + d2);
    const Duration rtt = t2 - t1;
    if (rtt < best.rtt) {
      best.worker_time = t0;
      best.offset = t1 + rtt / 2.0 - t0;
      best.rtt = rtt;
    }
    t += d1 + d2;  // consecutive pings advance true time
  }
  return best;
}

}  // namespace chronosync
