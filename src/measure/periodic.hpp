// Periodic offset measurement (the approach of Doleschal et al., ref. [17]):
// instead of probing only at initialization and finalization, the run is
// divided into phases with a probe batch between every two — the input
// PiecewiseInterpolation needs to track non-constant drift.
#pragma once

#include <functional>

#include "measure/offset_probe.hpp"
#include "mpisim/proc.hpp"

namespace chronosync {

/// SPMD helper: executes `batches` offset-probe batches with the given phase
/// body between consecutive batches (so `batches - 1` phases run).  Tracing
/// is suspended during each probe, as in probe_offsets().
///
///     job.run([&](Proc& p) {
///       return with_periodic_probes(p, store, 5, [&](Proc& p, int phase) {
///         return my_phase(p, phase);
///       });
///     });
[[nodiscard]] Coro<void> with_periodic_probes(
    Proc& p, OffsetStore& store, int batches,
    std::function<Coro<void>(Proc&, int phase)> phase_body, int pings = 10);

}  // namespace chronosync
