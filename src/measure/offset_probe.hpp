// Remote clock offset measurement (Cristian's probabilistic technique, Eq. 2).
//
// The master (rank 0) pings a worker; the worker replies with its current
// local time t0; the master notes its local send time t1 and receive time t2.
// Assuming symmetric delays, the master-minus-worker offset at worker time t0
// is
//
//     o = t1 + (t2 - t1)/2 - t0                                       (Eq. 2)
//
// and the estimate's error is bounded by half the round-trip asymmetry, so
// the probe repeats `pings` times and keeps the minimum-RTT sample.
//
// Two implementations are provided:
//  * probe_offsets()  — runs *inside* a simulated job as real messages (used
//    by the application benches: the probe perturbs the run, as in Scalasca's
//    MPI_Init/MPI_Finalize measurements);
//  * direct_probe()   — closed-form simulation of one probe between two
//    SimClocks at a given true time (used by the clock-deviation benches and
//    tests, where no application is running).
#pragma once

#include <vector>

#include "clockmodel/sim_clock.hpp"
#include "common/rng.hpp"
#include "mpisim/proc.hpp"
#include "topology/latency_model.hpp"

namespace chronosync {

struct OffsetMeasurement {
  Time worker_time = 0.0;   ///< w: worker-local time of the sample
  Duration offset = 0.0;    ///< o: master time minus worker time (Eq. 2)
  Duration rtt = 0.0;       ///< round-trip time of the selected ping
};

/// True when every field of the sample is a finite number.  A hostile or
/// truncated store can carry NaN/inf samples; every from_store consumer must
/// screen with this instead of folding poison into corrected timestamps.
bool is_finite_sample(const OffsetMeasurement& m);

/// Copy of `samples` with non-finite entries removed (order preserved).
/// `skipped`, when non-null, receives the number of rejected samples.
std::vector<OffsetMeasurement> finite_samples(const std::vector<OffsetMeasurement>& samples,
                                              std::size_t* skipped = nullptr);

/// Chronological offset measurements per rank, as a tool like Scalasca keeps
/// them (one batch at MPI_Init, one at MPI_Finalize, possibly more).
class OffsetStore {
 public:
  explicit OffsetStore(int ranks) : samples_(static_cast<std::size_t>(ranks)) {}

  void add(Rank worker, const OffsetMeasurement& m);
  const std::vector<OffsetMeasurement>& of(Rank worker) const;
  int ranks() const { return static_cast<int>(samples_.size()); }

 private:
  std::vector<std::vector<OffsetMeasurement>> samples_;
};

/// SPMD coroutine: every rank of the job calls this at the same program
/// point.  Rank 0 probes each worker `pings` times and stores the best
/// sample; workers answer.  Rank 0's own entry records a zero offset.
[[nodiscard]] Coro<void> probe_offsets(Proc& p, OffsetStore& store, int pings = 10);

/// Closed-form probe between two clocks at true time `when` (no engine).
OffsetMeasurement direct_probe(SimClock& master, SimClock& worker,
                               const HierarchicalLatencyModel& latency, CommDomain domain,
                               Time when, int pings, Rng& rng);

}  // namespace chronosync
