#include "measure/latency_probe.hpp"

#include "common/expect.hpp"

namespace chronosync {

namespace {
constexpr Tag kPingTag = 777;
}

LatencyProbeResult measure_p2p_latency(Job& job, const LatencyProbeConfig& cfg) {
  CS_REQUIRE(job.ranks() >= 2, "p2p probe needs two ranks");
  LatencyProbeResult result;

  // True time is the measurement reference here: latency probing in the
  // paper reports interconnect properties, not clock error, and a ping-pong
  // RTT on one clock cancels offset to first order anyway.
  job.run([&](Proc& p) -> Coro<void> {
    p.set_tracing(false);
    if (p.rank() == 0) {
      for (int e = 0; e < cfg.estimates; ++e) {
        const Time start = p.now();
        for (int i = 0; i < cfg.reps_per_estimate; ++i) {
          co_await p.send(1, kPingTag, cfg.bytes);
          co_await p.recv(1, kPingTag);
        }
        const Time stop = p.now();
        result.one_way.add((stop - start) / (2.0 * cfg.reps_per_estimate));
      }
      co_await p.send(1, kPingTag + 1, 0);  // release the partner
    } else if (p.rank() == 1) {
      for (int e = 0; e < cfg.estimates; ++e) {
        for (int i = 0; i < cfg.reps_per_estimate; ++i) {
          co_await p.recv(0, kPingTag);
          co_await p.send(0, kPingTag, cfg.bytes);
        }
      }
      co_await p.recv(0, kPingTag + 1);
    }
    co_return;
  });
  return result;
}

LatencyProbeResult measure_allreduce_latency(Job& job, const LatencyProbeConfig& cfg) {
  LatencyProbeResult result;
  job.run([&](Proc& p) -> Coro<void> {
    p.set_tracing(false);
    for (int e = 0; e < cfg.estimates; ++e) {
      co_await p.barrier();
      const Time start = p.now();
      for (int i = 0; i < cfg.reps_per_estimate; ++i) {
        co_await p.allreduce(cfg.bytes == 0 ? 8 : cfg.bytes);
      }
      const Time stop = p.now();
      if (p.rank() == 0) {
        result.one_way.add((stop - start) / cfg.reps_per_estimate);
      }
    }
  });
  return result;
}

}  // namespace chronosync
