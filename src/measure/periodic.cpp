#include "measure/periodic.hpp"

#include "common/expect.hpp"

namespace chronosync {

Coro<void> with_periodic_probes(Proc& p, OffsetStore& store, int batches,
                                std::function<Coro<void>(Proc&, int phase)> phase_body,
                                int pings) {
  CS_REQUIRE(batches >= 2, "need at least the init and finalize batches");
  co_await probe_offsets(p, store, pings);
  for (int phase = 0; phase < batches - 1; ++phase) {
    co_await phase_body(p, phase);
    co_await probe_offsets(p, store, pings);
  }
}

}  // namespace chronosync
