// Message and collective latency measurement (Table II).
//
// Ping-pong between rank 0 and rank 1 measures one-way latency as RTT/2;
// the collective probe times an allreduce on all ranks.  Each estimate is the
// average of `reps_per_estimate` operations; repeating the estimate
// `estimates` times yields the mean and standard deviation the paper's
// Table II reports (the std-dev there is the spread of the *averaged*
// estimates, which is why it is orders of magnitude below the mean).
#pragma once

#include "common/statistics.hpp"
#include "mpisim/job.hpp"

namespace chronosync {

struct LatencyProbeResult {
  RunningStats one_way;  ///< statistics over the averaged estimates (seconds)
};

struct LatencyProbeConfig {
  int estimates = 10;
  int reps_per_estimate = 1000;
  std::uint32_t bytes = 0;
};

/// Measures p2p latency between ranks 0 and 1 of `job` (run on a fresh job).
LatencyProbeResult measure_p2p_latency(Job& job, const LatencyProbeConfig& cfg);

/// Measures the latency of an allreduce across all ranks of `job`.
LatencyProbeResult measure_allreduce_latency(Job& job, const LatencyProbeConfig& cfg);

}  // namespace chronosync
