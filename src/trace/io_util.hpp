// Shared low-level helpers of the binary trace readers/writers (v1 and v2).
//
// ByteSource wraps an std::istream with *bounded* reads: when the stream is
// seekable its total remaining size is measured once up front, and every
// length/count field is validated against it before any allocation.  On
// non-seekable streams large reads fall back to incremental chunks so a lying
// length field fails fast at EOF instead of triggering a huge allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "trace/trace_io_error.hpp"

namespace chronosync::traceio {

// -- little-endian writers ----------------------------------------------------

inline void put_u32(std::ostream& o, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  o.write(b, 4);
}

inline void put_u64(std::ostream& o, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  o.write(b, 8);
}

inline void put_i64(std::ostream& o, std::int64_t v) { put_u64(o, std::bit_cast<std::uint64_t>(v)); }
inline void put_i32(std::ostream& o, std::int32_t v) { put_u32(o, std::bit_cast<std::uint32_t>(v)); }
inline void put_f64(std::ostream& o, double v) { put_u64(o, std::bit_cast<std::uint64_t>(v)); }

// -- bounded reader -----------------------------------------------------------

class ByteSource {
 public:
  explicit ByteSource(std::istream& in) : in_(in) {
    const std::streampos pos = in_.tellg();
    if (pos != std::streampos(-1)) {
      in_.seekg(0, std::ios::end);
      const std::streampos end = in_.tellg();
      in_.seekg(pos);
      if (end != std::streampos(-1) && in_.good() && end >= pos) {
        remaining_ = static_cast<std::int64_t>(end - pos);
      }
    }
    in_.clear();  // a failed probe on a non-seekable stream must not poison reads
  }

  /// Bytes left before EOF, or -1 when the stream is not seekable.
  std::int64_t remaining() const { return remaining_; }

  /// Validates that `n` more bytes exist without consuming them (only
  /// possible when the stream size is known; a no-op otherwise).
  void need(std::uint64_t n, const char* what) const {
    if (remaining_ >= 0 && n > static_cast<std::uint64_t>(remaining_)) {
      throw TraceIoError(TraceIoErrorKind::Truncated,
                         std::string(what) + ": needs " + std::to_string(n) +
                             " bytes but only " + std::to_string(remaining_) + " remain");
    }
  }

  void read_exact(void* dst, std::size_t n, const char* what) {
    need(n, what);
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw TraceIoError(TraceIoErrorKind::Truncated,
                         std::string(what) + ": stream ended mid-read");
    }
    if (remaining_ >= 0) remaining_ -= static_cast<std::int64_t>(n);
  }

  std::uint8_t get_u8(const char* what) {
    std::uint8_t v;
    read_exact(&v, 1, what);
    return v;
  }

  std::uint32_t get_u32(const char* what) {
    char b[4];
    read_exact(b, 4, what);
    std::uint32_t v;
    std::memcpy(&v, b, 4);
    return v;
  }

  std::uint64_t get_u64(const char* what) {
    char b[8];
    read_exact(b, 8, what);
    std::uint64_t v;
    std::memcpy(&v, b, 8);
    return v;
  }

  std::int32_t get_i32(const char* what) { return std::bit_cast<std::int32_t>(get_u32(what)); }
  std::int64_t get_i64(const char* what) { return std::bit_cast<std::int64_t>(get_u64(what)); }
  double get_f64(const char* what) { return std::bit_cast<double>(get_u64(what)); }

  /// Reads an `n`-byte string.  With a known stream size `n` is validated up
  /// front; otherwise the string grows in bounded steps so a forged length
  /// cannot force a giant allocation before the stream runs dry.
  std::string get_string(std::uint64_t n, const char* what) {
    need(n, what);
    std::string s;
    constexpr std::uint64_t kStep = 1u << 20;
    while (n > 0) {
      const std::uint64_t take = n < kStep ? n : kStep;
      const std::size_t old = s.size();
      s.resize(old + static_cast<std::size_t>(take));
      read_exact(s.data() + old, static_cast<std::size_t>(take), what);
      n -= take;
    }
    return s;
  }

  /// True when the stream has no byte left.
  bool exhausted() {
    if (remaining_ >= 0) return remaining_ == 0;
    return in_.peek() == std::istream::traits_type::eof();
  }

 private:
  std::istream& in_;
  std::int64_t remaining_ = -1;
};

// -- sniffed-prefix replay ----------------------------------------------------

/// Streambuf that replays an already-consumed prefix before handing reads over
/// to the rest of the underlying stream.  This lets a format dispatcher sniff
/// the first few bytes of a *non-seekable* stream (a pipe) and still give the
/// chosen reader the full byte sequence from offset zero — no seekg involved.
class PrefixedStreambuf : public std::streambuf {
 public:
  PrefixedStreambuf(std::string prefix, std::istream& rest)
      : prefix_(std::move(prefix)), rest_(rest) {
    setg(prefix_.data(), prefix_.data(), prefix_.data() + prefix_.size());
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const std::streamsize n = rest_.rdbuf() == nullptr
                                  ? 0
                                  : rest_.rdbuf()->sgetn(buf_, static_cast<std::streamsize>(sizeof buf_));
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  std::string prefix_;
  std::istream& rest_;
  char buf_[4096];
};

}  // namespace chronosync::traceio
