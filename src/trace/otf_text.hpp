// Line-based text trace format (OTF-style), for interop, diffing, and
// debugging.  One record per line, whitespace-separated:
//
//   CSTXT 1
//   TIMER <name>
//   LATENCY <same-chip> <same-node> <cross-node>
//   RANK <id> <node> <chip> <core>
//   REGION <id> <name...>
//   EV <rank> <type> <local_ts> <true_ts> <region> <peer> <tag> <bytes>
//      <msg_id> <coll> <coll_id> <root> <omp_instance> <thread>
//
// Timestamps are printed with 17 significant digits, so a round trip is
// exact for doubles.
//
// The reader is strict: records with missing, malformed, or trailing fields,
// unknown record kinds, out-of-range collective kinds, or EV ranks outside
// the declared RANK records raise a line-numbered TraceIoError
// (trace/trace_io_error.hpp) instead of being silently accepted.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace chronosync {

void write_text_trace(const Trace& trace, std::ostream& out);
void write_text_trace_file(const Trace& trace, const std::string& path);

Trace read_text_trace(std::istream& in);
Trace read_text_trace_file(const std::string& path);

}  // namespace chronosync
