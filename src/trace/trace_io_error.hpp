// Typed error for every malformed-input path of the trace readers.
//
// Derives from std::invalid_argument so long-standing call sites (and tests)
// that catch the old CS_REQUIRE exception keep working, while new code can
// catch TraceIoError and switch on the kind.  Readers guarantee that *any*
// byte stream — truncated, bit-flipped, adversarial — either parses or throws
// exactly this type: no crashes, no aborts, no unchecked allocations.
#pragma once

#include <stdexcept>
#include <string>

namespace chronosync {

enum class TraceIoErrorKind {
  BadMagic,     ///< stream does not start with a known trace signature
  BadVersion,   ///< container version this build cannot read
  Truncated,    ///< stream ended before a complete structure
  BadChecksum,  ///< CRC32C mismatch on a chunk or the whole file
  Malformed,    ///< structurally invalid contents (counts, ranges, framing)
  Io,           ///< underlying stream/file failure (open, read, write)
};

std::string to_string(TraceIoErrorKind k);

class TraceIoError : public std::invalid_argument {
 public:
  TraceIoError(TraceIoErrorKind kind, const std::string& message)
      : std::invalid_argument("trace i/o error [" + to_string(kind) + "]: " + message),
        kind_(kind) {}

  TraceIoErrorKind kind() const { return kind_; }

 private:
  TraceIoErrorKind kind_;
};

inline std::string to_string(TraceIoErrorKind k) {
  switch (k) {
    case TraceIoErrorKind::BadMagic: return "bad-magic";
    case TraceIoErrorKind::BadVersion: return "bad-version";
    case TraceIoErrorKind::Truncated: return "truncated";
    case TraceIoErrorKind::BadChecksum: return "bad-checksum";
    case TraceIoErrorKind::Malformed: return "malformed";
    case TraceIoErrorKind::Io: return "io";
  }
  return "?";
}

}  // namespace chronosync
