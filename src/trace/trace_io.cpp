#include "trace/trace_io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "trace/io_util.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {

namespace {

using traceio::ByteSource;

constexpr std::uint32_t kMagic = 0x43535452;  // "CSTR"
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;

/// Fixed on-disk size of one v1 event record.
constexpr std::uint64_t kV1EventBytes = 4 + 8 + 8 + 4 + 4 + 4 + 4 + 8 + 4 + 8 + 4 + 4 + 4;

constexpr std::uint32_t kMaxEventType = static_cast<std::uint32_t>(EventType::BarrierExit);
constexpr std::uint32_t kMaxCollKind = static_cast<std::uint32_t>(CollectiveKind::Alltoall);

[[noreturn]] void malformed(const std::string& msg) {
  throw TraceIoError(TraceIoErrorKind::Malformed, msg);
}

std::string get_str(ByteSource& src, const char* what) {
  const std::uint32_t n = src.get_u32(what);
  return src.get_string(n, what);
}

std::uint32_t read_u32_field(const unsigned char* b) {
  std::uint32_t v;
  std::memcpy(&v, b, 4);
  return v;
}

std::uint64_t read_u64_field(const unsigned char* b) {
  std::uint64_t v;
  std::memcpy(&v, b, 8);
  return v;
}

/// Body of a v1 trace, magic and version already consumed and verified.
Trace read_trace_v1_body(ByteSource& src) {
  const std::string timer = get_str(src, "timer name");

  const std::uint32_t nranks = src.get_u32("rank count");
  // Each rank carries a 12-byte placement record plus an 8-byte event count.
  src.need(static_cast<std::uint64_t>(nranks) * 12, "placement table");
  std::vector<CoreLocation> locs;
  locs.reserve(std::min<std::uint32_t>(nranks, 1u << 16));
  for (std::uint32_t r = 0; r < nranks; ++r) {
    CoreLocation loc;
    loc.node = src.get_i32("placement");
    loc.chip = src.get_i32("placement");
    loc.core = src.get_i32("placement");
    locs.push_back(loc);
  }
  std::array<Duration, 3> lat{};
  for (auto& d : lat) d = src.get_f64("latency table");

  Trace trace(Placement(std::move(locs)), lat, timer);

  const std::uint32_t nregions = src.get_u32("region count");
  // Each region record is at least a 4-byte length field.
  src.need(static_cast<std::uint64_t>(nregions) * 4, "region table");
  for (std::uint32_t i = 0; i < nregions; ++i) {
    const std::int32_t got = trace.intern_region(get_str(src, "region name"));
    if (static_cast<std::uint32_t>(got) != i) malformed("duplicate region name in region table");
  }

  for (Rank r = 0; r < static_cast<Rank>(nranks); ++r) {
    const std::uint64_t n = src.get_u64("event count");
    if (n > std::numeric_limits<std::uint64_t>::max() / kV1EventBytes) {
      malformed("event count " + std::to_string(n) + " of rank " + std::to_string(r) +
                " is absurd");
    }
    src.need(n * kV1EventBytes, "event array");
    auto& ev = trace.events(r);
    // Reserve conservatively: on non-seekable streams the count could not be
    // validated, so cap the speculative allocation and let push_back grow.
    ev.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, 1u << 16)));
    unsigned char rec[kV1EventBytes];
    for (std::uint64_t i = 0; i < n; ++i) {
      src.read_exact(rec, sizeof rec, "event record");
      Event e;
      const std::uint32_t type = read_u32_field(rec);
      if (type > kMaxEventType) malformed("invalid event type " + std::to_string(type));
      e.type = static_cast<EventType>(type);
      e.local_ts = std::bit_cast<double>(read_u64_field(rec + 4));
      e.true_ts = std::bit_cast<double>(read_u64_field(rec + 12));
      e.region = std::bit_cast<std::int32_t>(read_u32_field(rec + 20));
      e.peer = std::bit_cast<std::int32_t>(read_u32_field(rec + 24));
      e.tag = std::bit_cast<std::int32_t>(read_u32_field(rec + 28));
      e.bytes = read_u32_field(rec + 32);
      e.msg_id = std::bit_cast<std::int64_t>(read_u64_field(rec + 36));
      const std::uint32_t coll = read_u32_field(rec + 44);
      if (coll > kMaxCollKind) malformed("invalid collective kind " + std::to_string(coll));
      e.coll = static_cast<CollectiveKind>(coll);
      e.coll_id = std::bit_cast<std::int64_t>(read_u64_field(rec + 48));
      e.root = std::bit_cast<std::int32_t>(read_u32_field(rec + 56));
      e.omp_instance = std::bit_cast<std::int32_t>(read_u32_field(rec + 60));
      e.thread = std::bit_cast<std::int32_t>(read_u32_field(rec + 64));
      ev.push_back(e);
    }
  }
  return trace;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  using namespace traceio;
  put_u32(out, kMagic);
  put_u32(out, kVersionV1);
  put_u32(out, static_cast<std::uint32_t>(trace.timer_name().size()));
  out.write(trace.timer_name().data(),
            static_cast<std::streamsize>(trace.timer_name().size()));

  put_u32(out, static_cast<std::uint32_t>(trace.ranks()));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const CoreLocation& loc = trace.placement().location(r);
    put_i32(out, loc.node);
    put_i32(out, loc.chip);
    put_i32(out, loc.core);
  }
  for (Duration d : trace.domain_min_latency()) put_f64(out, d);

  put_u32(out, static_cast<std::uint32_t>(trace.regions().size()));
  for (const auto& name : trace.regions()) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }

  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ev = trace.events(r);
    put_u64(out, ev.size());
    for (const Event& e : ev) {
      put_u32(out, static_cast<std::uint32_t>(e.type));
      put_f64(out, e.local_ts);
      put_f64(out, e.true_ts);
      put_i32(out, e.region);
      put_i32(out, e.peer);
      put_i32(out, e.tag);
      put_u32(out, e.bytes);
      put_i64(out, e.msg_id);
      put_u32(out, static_cast<std::uint32_t>(e.coll));
      put_i64(out, e.coll_id);
      put_i32(out, e.root);
      put_i32(out, e.omp_instance);
      put_i32(out, e.thread);
    }
  }
  if (!out.good()) throw TraceIoError(TraceIoErrorKind::Io, "trace write failed");
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for writing: " + path);
  }
  write_trace(trace, f);
}

Trace read_trace(std::istream& in) {
  ByteSource src(in);
  if (src.get_u32("trace header") != kMagic) {
    throw TraceIoError(TraceIoErrorKind::BadMagic, "not a chronosync trace stream");
  }
  const std::uint32_t version = src.get_u32("trace header");
  if (version == kVersionV1) return read_trace_v1_body(src);
  if (version == kVersionV2) {
    TraceReader reader(in, /*header_consumed=*/true);
    return read_trace_v2(reader);
  }
  throw TraceIoError(TraceIoErrorKind::BadVersion,
                     "unsupported trace container version " + std::to_string(version));
}

Trace read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + path);
  }
  return read_trace(f);
}

std::string dump_trace(const Trace& trace, std::size_t max_events_per_rank) {
  std::ostringstream os;
  os << "trace: timer=" << trace.timer_name() << " ranks=" << trace.ranks()
     << " events=" << trace.total_events() << '\n';
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ev = trace.events(r);
    os << "rank " << r << " (" << ev.size() << " events)\n";
    for (std::size_t i = 0; i < std::min(ev.size(), max_events_per_rank); ++i) {
      const Event& e = ev[i];
      os << "  [" << std::setw(6) << i << "] " << std::fixed << std::setprecision(9)
         << e.local_ts << "  " << to_string(e.type);
      if (e.type == EventType::Send || e.type == EventType::Recv) {
        os << " peer=" << e.peer << " tag=" << e.tag << " bytes=" << e.bytes
           << " id=" << e.msg_id;
      } else if (e.type == EventType::CollBegin || e.type == EventType::CollEnd) {
        os << " " << to_string(e.coll) << " id=" << e.coll_id;
      } else if (e.type == EventType::Enter || e.type == EventType::Exit) {
        if (e.region >= 0) os << " region=" << trace.region_name(e.region);
      }
      os << '\n';
    }
    if (ev.size() > max_events_per_rank) os << "  ...\n";
  }
  return os.str();
}

}  // namespace chronosync
