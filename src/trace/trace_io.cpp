#include "trace/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

namespace {

constexpr std::uint32_t kMagic = 0x43535452;  // "CSTR"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& o, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  o.write(b, 4);
}

void put_u64(std::ostream& o, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  o.write(b, 8);
}

void put_i64(std::ostream& o, std::int64_t v) { put_u64(o, std::bit_cast<std::uint64_t>(v)); }
void put_i32(std::ostream& o, std::int32_t v) { put_u32(o, std::bit_cast<std::uint32_t>(v)); }
void put_f64(std::ostream& o, double v) { put_u64(o, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::ostream& o, const std::string& s) {
  put_u32(o, static_cast<std::uint32_t>(s.size()));
  o.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t get_u32(std::istream& i) {
  char b[4];
  i.read(b, 4);
  CS_REQUIRE(i.good(), "truncated trace stream");
  std::uint32_t v;
  std::memcpy(&v, b, 4);
  return v;
}

std::uint64_t get_u64(std::istream& i) {
  char b[8];
  i.read(b, 8);
  CS_REQUIRE(i.good(), "truncated trace stream");
  std::uint64_t v;
  std::memcpy(&v, b, 8);
  return v;
}

std::int64_t get_i64(std::istream& i) { return std::bit_cast<std::int64_t>(get_u64(i)); }
std::int32_t get_i32(std::istream& i) { return std::bit_cast<std::int32_t>(get_u32(i)); }
double get_f64(std::istream& i) { return std::bit_cast<double>(get_u64(i)); }

std::string get_str(std::istream& i) {
  const auto n = get_u32(i);
  std::string s(n, '\0');
  i.read(s.data(), n);
  CS_REQUIRE(i.good(), "truncated trace stream");
  return s;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_str(out, trace.timer_name());

  put_u32(out, static_cast<std::uint32_t>(trace.ranks()));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const CoreLocation& loc = trace.placement().location(r);
    put_i32(out, loc.node);
    put_i32(out, loc.chip);
    put_i32(out, loc.core);
  }
  for (Duration d : trace.domain_min_latency()) put_f64(out, d);

  put_u32(out, static_cast<std::uint32_t>(trace.regions().size()));
  for (const auto& name : trace.regions()) put_str(out, name);

  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ev = trace.events(r);
    put_u64(out, ev.size());
    for (const Event& e : ev) {
      put_u32(out, static_cast<std::uint32_t>(e.type));
      put_f64(out, e.local_ts);
      put_f64(out, e.true_ts);
      put_i32(out, e.region);
      put_i32(out, e.peer);
      put_i32(out, e.tag);
      put_u32(out, e.bytes);
      put_i64(out, e.msg_id);
      put_u32(out, static_cast<std::uint32_t>(e.coll));
      put_i64(out, e.coll_id);
      put_i32(out, e.root);
      put_i32(out, e.omp_instance);
      put_i32(out, e.thread);
    }
  }
  CS_REQUIRE(out.good(), "trace write failed");
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  CS_REQUIRE(f.good(), "cannot open trace file for writing: " + path);
  write_trace(trace, f);
}

Trace read_trace(std::istream& in) {
  CS_REQUIRE(get_u32(in) == kMagic, "not a chronosync trace stream");
  CS_REQUIRE(get_u32(in) == kVersion, "unsupported trace version");
  const std::string timer = get_str(in);

  const auto nranks = get_u32(in);
  std::vector<CoreLocation> locs(nranks);
  for (auto& loc : locs) {
    loc.node = get_i32(in);
    loc.chip = get_i32(in);
    loc.core = get_i32(in);
  }
  std::array<Duration, 3> lat{};
  for (auto& d : lat) d = get_f64(in);

  Trace trace(Placement(std::move(locs)), lat, timer);

  const auto nregions = get_u32(in);
  for (std::uint32_t i = 0; i < nregions; ++i) trace.intern_region(get_str(in));

  for (Rank r = 0; r < static_cast<Rank>(nranks); ++r) {
    const auto n = get_u64(in);
    auto& ev = trace.events(r);
    ev.resize(n);
    for (auto& e : ev) {
      e.type = static_cast<EventType>(get_u32(in));
      e.local_ts = get_f64(in);
      e.true_ts = get_f64(in);
      e.region = get_i32(in);
      e.peer = get_i32(in);
      e.tag = get_i32(in);
      e.bytes = get_u32(in);
      e.msg_id = get_i64(in);
      e.coll = static_cast<CollectiveKind>(get_u32(in));
      e.coll_id = get_i64(in);
      e.root = get_i32(in);
      e.omp_instance = get_i32(in);
      e.thread = get_i32(in);
    }
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  CS_REQUIRE(f.good(), "cannot open trace file for reading: " + path);
  return read_trace(f);
}

std::string dump_trace(const Trace& trace, std::size_t max_events_per_rank) {
  std::ostringstream os;
  os << "trace: timer=" << trace.timer_name() << " ranks=" << trace.ranks()
     << " events=" << trace.total_events() << '\n';
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ev = trace.events(r);
    os << "rank " << r << " (" << ev.size() << " events)\n";
    for (std::size_t i = 0; i < std::min(ev.size(), max_events_per_rank); ++i) {
      const Event& e = ev[i];
      os << "  [" << std::setw(6) << i << "] " << std::fixed << std::setprecision(9)
         << e.local_ts << "  " << to_string(e.type);
      if (e.type == EventType::Send || e.type == EventType::Recv) {
        os << " peer=" << e.peer << " tag=" << e.tag << " bytes=" << e.bytes
           << " id=" << e.msg_id;
      } else if (e.type == EventType::CollBegin || e.type == EventType::CollEnd) {
        os << " " << to_string(e.coll) << " id=" << e.coll_id;
      } else if (e.type == EventType::Enter || e.type == EventType::Exit) {
        if (e.region >= 0) os << " region=" << trace.region_name(e.region);
      }
      os << '\n';
    }
    if (ev.size() > max_events_per_rank) os << "  ...\n";
  }
  return os.str();
}

}  // namespace chronosync
