#include "trace/otf_text.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

namespace {

const std::map<std::string, EventType>& event_names() {
  static const std::map<std::string, EventType> names = {
      {"ENTER", EventType::Enter},
      {"EXIT", EventType::Exit},
      {"SEND", EventType::Send},
      {"RECV", EventType::Recv},
      {"COLL_BEGIN", EventType::CollBegin},
      {"COLL_END", EventType::CollEnd},
      {"FORK", EventType::Fork},
      {"JOIN", EventType::Join},
      {"BARR_ENTER", EventType::BarrierEnter},
      {"BARR_EXIT", EventType::BarrierExit},
  };
  return names;
}

}  // namespace

void write_text_trace(const Trace& trace, std::ostream& out) {
  out << "CSTXT 1\n";
  out << "TIMER " << trace.timer_name() << '\n';
  out << std::setprecision(17);
  out << "LATENCY";
  for (Duration d : trace.domain_min_latency()) out << ' ' << d;
  out << '\n';
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const CoreLocation& loc = trace.placement().location(r);
    out << "RANK " << r << ' ' << loc.node << ' ' << loc.chip << ' ' << loc.core << '\n';
  }
  for (std::size_t i = 0; i < trace.regions().size(); ++i) {
    out << "REGION " << i << ' ' << trace.regions()[i] << '\n';
  }
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      out << "EV " << r << ' ' << to_string(e.type) << ' ' << e.local_ts << ' ' << e.true_ts
          << ' ' << e.region << ' ' << e.peer << ' ' << e.tag << ' ' << e.bytes << ' '
          << e.msg_id << ' ' << static_cast<int>(e.coll) << ' ' << e.coll_id << ' ' << e.root
          << ' ' << e.omp_instance << ' ' << e.thread << '\n';
    }
  }
  CS_REQUIRE(out.good(), "text trace write failed");
}

void write_text_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  CS_REQUIRE(f.good(), "cannot open text trace for writing: " + path);
  write_text_trace(trace, f);
}

Trace read_text_trace(std::istream& in) {
  std::string line;
  CS_REQUIRE(std::getline(in, line) && line.rfind("CSTXT 1", 0) == 0,
             "not a chronosync text trace");

  std::string timer = "unknown";
  std::array<Duration, 3> lat{1e-6, 1e-6, 1e-6};
  std::vector<CoreLocation> locs;
  std::vector<std::pair<std::size_t, std::string>> regions;
  struct PendingEvent {
    Rank rank;
    Event event;
  };
  std::vector<PendingEvent> events;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "TIMER") {
      ls >> timer;
    } else if (kind == "LATENCY") {
      ls >> lat[0] >> lat[1] >> lat[2];
    } else if (kind == "RANK") {
      int id = 0;
      CoreLocation loc;
      ls >> id >> loc.node >> loc.chip >> loc.core;
      CS_REQUIRE(id == static_cast<int>(locs.size()), "RANK records out of order");
      locs.push_back(loc);
    } else if (kind == "REGION") {
      std::size_t id = 0;
      ls >> id;
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      regions.emplace_back(id, name);
    } else if (kind == "EV") {
      PendingEvent pe;
      std::string type_name;
      int coll = 0;
      ls >> pe.rank >> type_name >> pe.event.local_ts >> pe.event.true_ts >>
          pe.event.region >> pe.event.peer >> pe.event.tag >> pe.event.bytes >>
          pe.event.msg_id >> coll >> pe.event.coll_id >> pe.event.root >>
          pe.event.omp_instance >> pe.event.thread;
      CS_REQUIRE(!ls.fail(), "malformed EV record: " + line);
      auto it = event_names().find(type_name);
      CS_REQUIRE(it != event_names().end(), "unknown event type: " + type_name);
      pe.event.type = it->second;
      pe.event.coll = static_cast<CollectiveKind>(coll);
      events.push_back(pe);
    } else {
      CS_REQUIRE(false, "unknown record kind: " + kind);
    }
  }
  CS_REQUIRE(!locs.empty(), "text trace without RANK records");

  Trace trace(Placement(std::move(locs)), lat, timer);
  for (const auto& [id, name] : regions) {
    const auto got = trace.intern_region(name);
    CS_REQUIRE(static_cast<std::size_t>(got) == id, "REGION records out of order");
  }
  for (auto& pe : events) {
    CS_REQUIRE(pe.rank >= 0 && pe.rank < trace.ranks(), "EV rank out of range");
    trace.events(pe.rank).push_back(pe.event);
  }
  return trace;
}

Trace read_text_trace_file(const std::string& path) {
  std::ifstream f(path);
  CS_REQUIRE(f.good(), "cannot open text trace for reading: " + path);
  return read_text_trace(f);
}

}  // namespace chronosync
