#include "trace/otf_text.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {

namespace {

const std::map<std::string, EventType>& event_names() {
  static const std::map<std::string, EventType> names = {
      {"ENTER", EventType::Enter},
      {"EXIT", EventType::Exit},
      {"SEND", EventType::Send},
      {"RECV", EventType::Recv},
      {"COLL_BEGIN", EventType::CollBegin},
      {"COLL_END", EventType::CollEnd},
      {"FORK", EventType::Fork},
      {"JOIN", EventType::Join},
      {"BARR_ENTER", EventType::BarrierEnter},
      {"BARR_EXIT", EventType::BarrierExit},
  };
  return names;
}

[[noreturn]] void fail_line(std::size_t lineno, const std::string& msg) {
  throw TraceIoError(TraceIoErrorKind::Malformed,
                     "text trace line " + std::to_string(lineno) + ": " + msg);
}

/// The record's fields must be fully consumed: trailing non-space characters
/// mean extra fields, which a strict reader rejects rather than ignores.
void require_complete(std::istringstream& ls, std::size_t lineno, const char* record) {
  if (ls.fail()) fail_line(lineno, std::string(record) + " record with missing or bad fields");
  std::string extra;
  if (ls >> extra) {
    fail_line(lineno, std::string(record) + " record with trailing fields: '" + extra + "'");
  }
}

}  // namespace

void write_text_trace(const Trace& trace, std::ostream& out) {
  out << "CSTXT 1\n";
  out << "TIMER " << trace.timer_name() << '\n';
  out << std::setprecision(17);
  out << "LATENCY";
  for (Duration d : trace.domain_min_latency()) out << ' ' << d;
  out << '\n';
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const CoreLocation& loc = trace.placement().location(r);
    out << "RANK " << r << ' ' << loc.node << ' ' << loc.chip << ' ' << loc.core << '\n';
  }
  for (std::size_t i = 0; i < trace.regions().size(); ++i) {
    out << "REGION " << i << ' ' << trace.regions()[i] << '\n';
  }
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      out << "EV " << r << ' ' << to_string(e.type) << ' ' << e.local_ts << ' ' << e.true_ts
          << ' ' << e.region << ' ' << e.peer << ' ' << e.tag << ' ' << e.bytes << ' '
          << e.msg_id << ' ' << static_cast<int>(e.coll) << ' ' << e.coll_id << ' ' << e.root
          << ' ' << e.omp_instance << ' ' << e.thread << '\n';
    }
  }
  CS_REQUIRE(out.good(), "text trace write failed");
}

void write_text_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open text trace for writing: " + path);
  }
  write_text_trace(trace, f);
}

Trace read_text_trace(std::istream& in) {
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(in, line) || line.rfind("CSTXT 1", 0) != 0) {
    throw TraceIoError(TraceIoErrorKind::BadMagic, "not a chronosync text trace");
  }

  std::string timer = "unknown";
  std::array<Duration, 3> lat{1e-6, 1e-6, 1e-6};
  std::vector<CoreLocation> locs;
  std::vector<std::pair<std::size_t, std::string>> regions;
  struct PendingEvent {
    Rank rank;
    std::size_t lineno;
    Event event;
  };
  std::vector<PendingEvent> events;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "TIMER") {
      ls >> timer;
      if (ls.fail()) fail_line(lineno, "TIMER record missing the timer name");
    } else if (kind == "LATENCY") {
      ls >> lat[0] >> lat[1] >> lat[2];
      require_complete(ls, lineno, "LATENCY");
    } else if (kind == "RANK") {
      int id = 0;
      CoreLocation loc;
      ls >> id >> loc.node >> loc.chip >> loc.core;
      require_complete(ls, lineno, "RANK");
      if (id != static_cast<int>(locs.size())) fail_line(lineno, "RANK records out of order");
      locs.push_back(loc);
    } else if (kind == "REGION") {
      std::size_t id = 0;
      ls >> id;
      if (ls.fail()) fail_line(lineno, "REGION record missing the id");
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      regions.emplace_back(id, name);
    } else if (kind == "EV") {
      PendingEvent pe;
      pe.lineno = lineno;
      std::string type_name;
      int coll = 0;
      ls >> pe.rank >> type_name >> pe.event.local_ts >> pe.event.true_ts >>
          pe.event.region >> pe.event.peer >> pe.event.tag >> pe.event.bytes >>
          pe.event.msg_id >> coll >> pe.event.coll_id >> pe.event.root >>
          pe.event.omp_instance >> pe.event.thread;
      require_complete(ls, lineno, "EV");
      auto it = event_names().find(type_name);
      if (it == event_names().end()) fail_line(lineno, "unknown event type '" + type_name + "'");
      if (coll < 0 || coll > static_cast<int>(CollectiveKind::Alltoall)) {
        fail_line(lineno, "collective kind " + std::to_string(coll) + " out of range");
      }
      pe.event.type = it->second;
      pe.event.coll = static_cast<CollectiveKind>(coll);
      events.push_back(pe);
    } else {
      fail_line(lineno, "unknown record kind '" + kind + "'");
    }
  }
  if (locs.empty()) {
    throw TraceIoError(TraceIoErrorKind::Malformed, "text trace without RANK records");
  }

  Trace trace(Placement(std::move(locs)), lat, timer);
  for (const auto& [id, name] : regions) {
    const auto got = trace.intern_region(name);
    if (static_cast<std::size_t>(got) != id) {
      throw TraceIoError(TraceIoErrorKind::Malformed,
                         "REGION records out of order or duplicated (id " + std::to_string(id) +
                             ")");
    }
  }
  for (auto& pe : events) {
    if (pe.rank < 0 || pe.rank >= trace.ranks()) {
      fail_line(pe.lineno, "EV rank " + std::to_string(pe.rank) + " outside the " +
                               std::to_string(trace.ranks()) + " declared RANK records");
    }
    trace.events(pe.rank).push_back(pe.event);
  }
  return trace;
}

Trace read_text_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open text trace for reading: " + path);
  }
  return read_text_trace(f);
}

}  // namespace chronosync
