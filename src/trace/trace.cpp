#include "trace/trace.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"

namespace chronosync {

std::string to_string(EventType t) {
  switch (t) {
    case EventType::Enter: return "ENTER";
    case EventType::Exit: return "EXIT";
    case EventType::Send: return "SEND";
    case EventType::Recv: return "RECV";
    case EventType::CollBegin: return "COLL_BEGIN";
    case EventType::CollEnd: return "COLL_END";
    case EventType::Fork: return "FORK";
    case EventType::Join: return "JOIN";
    case EventType::BarrierEnter: return "BARR_ENTER";
    case EventType::BarrierExit: return "BARR_EXIT";
  }
  return "?";
}

std::string to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::Barrier: return "barrier";
    case CollectiveKind::Bcast: return "bcast";
    case CollectiveKind::Reduce: return "reduce";
    case CollectiveKind::Allreduce: return "allreduce";
    case CollectiveKind::Gather: return "gather";
    case CollectiveKind::Scatter: return "scatter";
    case CollectiveKind::Allgather: return "allgather";
    case CollectiveKind::Alltoall: return "alltoall";
  }
  return "?";
}

CollectiveFlavor flavor_of(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::Bcast:
    case CollectiveKind::Scatter:
      return CollectiveFlavor::OneToN;
    case CollectiveKind::Reduce:
    case CollectiveKind::Gather:
      return CollectiveFlavor::NToOne;
    case CollectiveKind::Barrier:
    case CollectiveKind::Allreduce:
    case CollectiveKind::Allgather:
    case CollectiveKind::Alltoall:
      return CollectiveFlavor::NToN;
  }
  return CollectiveFlavor::NToN;
}

Trace::Trace(Placement placement, std::array<Duration, 3> domain_min_latency,
             std::string timer_name)
    : placement_(std::move(placement)),
      min_latency_(domain_min_latency),
      timer_name_(std::move(timer_name)) {
  events_.resize(static_cast<std::size_t>(placement_.ranks()));
}

std::vector<Event>& Trace::events(Rank r) {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of trace range");
  return events_[static_cast<std::size_t>(r)];
}

const std::vector<Event>& Trace::events(Rank r) const {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of trace range");
  return events_[static_cast<std::size_t>(r)];
}

const Event& Trace::at(const EventRef& ref) const {
  const auto& ev = events(ref.proc);
  CS_REQUIRE(ref.index < ev.size(), "event index out of range");
  return ev[ref.index];
}

Duration Trace::min_latency(Rank a, Rank b) const {
  const CommDomain d = placement_.domain(a, b);
  return min_latency(d);
}

Duration Trace::min_latency(CommDomain d) const {
  CS_REQUIRE(d != CommDomain::SameCore, "no latency between co-located ranks");
  return min_latency_[static_cast<std::size_t>(d) - 1];
}

std::size_t Trace::total_events() const {
  std::size_t n = 0;
  for (const auto& v : events_) n += v.size();
  return n;
}

std::int32_t Trace::intern_region(const std::string& name) {
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == name) return static_cast<std::int32_t>(i);
  }
  region_names_.push_back(name);
  return static_cast<std::int32_t>(region_names_.size() - 1);
}

const std::string& Trace::region_name(std::int32_t id) const {
  CS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < region_names_.size(),
             "region id out of range");
  return region_names_[static_cast<std::size_t>(id)];
}

std::vector<MessageRecord> Trace::match_messages() const {
  // msg_id keys the join.  Matching is online over rank-major order, the
  // same rule the streamed scanner (scan_clock_condition) applies so the two
  // pipelines agree on every input: an id holds at most one half-open entry,
  // duplicate endpoints overwrite while the entry is half-open (last wins),
  // the pair is retired the moment its second endpoint arrives, and an
  // endpoint for an already-retired id opens a fresh entry.  Well-formed
  // traces have unique ids, so only malformed inputs can tell this from a
  // whole-trace join.
  std::map<std::int64_t, MessageRecord> open;
  std::vector<std::pair<std::int64_t, MessageRecord>> done;
  for (Rank r = 0; r < ranks(); ++r) {
    const auto& ev = events(r);
    for (std::uint32_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (e.type == EventType::Send) {
        auto& m = open[e.msg_id];
        m.send = {r, i};
        m.bytes = e.bytes;
        m.tag = e.tag;
        if (m.recv.proc >= 0) {
          done.emplace_back(e.msg_id, m);
          open.erase(e.msg_id);
        }
      } else if (e.type == EventType::Recv) {
        auto& m = open[e.msg_id];
        m.recv = {r, i};
        if (m.send.proc >= 0) {
          done.emplace_back(e.msg_id, m);
          open.erase(e.msg_id);
        }
      }
    }
  }
  if (!open.empty()) {
    // Sends whose receive fell outside the tracing window (or vice versa).
    CS_LOG_DEBUG << open.size() << " half-matched messages dropped (tracing window edges)";
  }
  // Ascending msg_id, as the whole-trace join returned (stable, so the rare
  // duplicate-id repeats stay in completion order).
  std::stable_sort(done.begin(), done.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<MessageRecord> out;
  out.reserve(done.size());
  for (auto& [id, m] : done) out.push_back(m);
  return out;
}

std::vector<CollectiveInstance> Trace::collect_collectives() const {
  std::map<std::int64_t, CollectiveInstance> by_id;
  for (Rank r = 0; r < ranks(); ++r) {
    const auto& ev = events(r);
    for (std::uint32_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (e.type != EventType::CollBegin && e.type != EventType::CollEnd) continue;
      auto& inst = by_id[e.coll_id];
      inst.kind = e.coll;
      inst.root = e.root;
      inst.coll_id = e.coll_id;
      if (e.type == EventType::CollBegin) {
        inst.begins.push_back({r, i});
      } else {
        inst.ends.push_back({r, i});
      }
    }
  }
  std::vector<CollectiveInstance> out;
  out.reserve(by_id.size());
  for (auto& [id, inst] : by_id) {
    if (inst.begins.size() != inst.ends.size() || inst.begins.empty()) {
      // Partial instance at a tracing-window edge: skip, as a tool would.
      continue;
    }
    out.push_back(std::move(inst));
  }
  return out;
}

void Trace::validate() const {
  for (Rank r = 0; r < ranks(); ++r) {
    const auto& ev = events(r);
    for (std::size_t i = 1; i < ev.size(); ++i) {
      // Events of one location must carry non-decreasing local timestamps for
      // threads sharing a clock; across threads of one rank we only require
      // per-thread monotonicity.
      if (ev[i].thread == ev[i - 1].thread) {
        CS_ENSURE(ev[i].local_ts >= ev[i - 1].local_ts,
                  "local timestamps not monotone within a location");
      }
      CS_ENSURE(ev[i].true_ts >= ev[i - 1].true_ts - 1e-12 || ev[i].thread != ev[i - 1].thread,
                "ground-truth timestamps not monotone within a location");
    }
  }
}

TimestampArray TimestampArray::from_local(const Trace& t) {
  TimestampArray a;
  a.ts_.resize(static_cast<std::size_t>(t.ranks()));
  for (Rank r = 0; r < t.ranks(); ++r) {
    const auto& ev = t.events(r);
    auto& v = a.ts_[static_cast<std::size_t>(r)];
    v.reserve(ev.size());
    for (const Event& e : ev) v.push_back(e.local_ts);
  }
  return a;
}

TimestampArray TimestampArray::from_truth(const Trace& t) {
  TimestampArray a;
  a.ts_.resize(static_cast<std::size_t>(t.ranks()));
  for (Rank r = 0; r < t.ranks(); ++r) {
    const auto& ev = t.events(r);
    auto& v = a.ts_[static_cast<std::size_t>(r)];
    v.reserve(ev.size());
    for (const Event& e : ev) v.push_back(e.true_ts);
  }
  return a;
}

Time& TimestampArray::at(const EventRef& ref) {
  CS_REQUIRE(ref.proc >= 0 && ref.proc < ranks(), "rank out of range");
  auto& v = ts_[static_cast<std::size_t>(ref.proc)];
  CS_REQUIRE(ref.index < v.size(), "index out of range");
  return v[ref.index];
}

Time TimestampArray::at(const EventRef& ref) const {
  return const_cast<TimestampArray*>(this)->at(ref);
}

std::vector<Time>& TimestampArray::of_rank(Rank r) {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of range");
  return ts_[static_cast<std::size_t>(r)];
}

const std::vector<Time>& TimestampArray::of_rank(Rank r) const {
  return const_cast<TimestampArray*>(this)->of_rank(r);
}

}  // namespace chronosync
