// Mapping collective operations onto logical point-to-point messages.
//
// The clock condition is formulated for send/receive pairs; the paper (and
// the CLC collective extension, refs. [30]/[31]) transfers it to collectives
// by viewing each operation as a set of logical messages according to its
// flavour:
//   * 1-to-N (bcast, scatter):   root's begin   ->  every other rank's end
//   * N-to-1 (reduce, gather):   every rank's begin -> root's end
//   * N-to-N (barrier, allreduce, allgather, alltoall):
//                                every rank's begin -> every other rank's end
//
// Each logical message inherits the minimum latency of its (src, dst) domain.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace chronosync {

struct LogicalMessage {
  EventRef send;  ///< a CollBegin event
  EventRef recv;  ///< a CollEnd event
  std::int64_t coll_id = -1;
};

/// Derives all logical messages from the collectives in `trace`.
std::vector<LogicalMessage> derive_logical_messages(
    const Trace& trace, const std::vector<CollectiveInstance>& collectives);

/// Convenience overload building the collective index itself.
std::vector<LogicalMessage> derive_logical_messages(const Trace& trace);

}  // namespace chronosync
