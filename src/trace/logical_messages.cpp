#include "trace/logical_messages.hpp"

namespace chronosync {

std::vector<LogicalMessage> derive_logical_messages(
    const Trace& /*trace*/, const std::vector<CollectiveInstance>& collectives) {
  std::vector<LogicalMessage> out;
  for (const auto& inst : collectives) {
    const CollectiveFlavor flavor = flavor_of(inst.kind);
    // Root lookups are first-match: an instance lists each rank once in a
    // well-formed trace, and on malformed input (a rank recorded twice) every
    // consumer — this derivation and the streaming scanner — must agree on
    // the same representative, so both use the first recorded event.
    auto begin_of = [&](Rank r) -> const EventRef* {
      for (const auto& ref : inst.begins) {
        if (ref.proc == r) return &ref;
      }
      return nullptr;
    };
    auto end_of = [&](Rank r) -> const EventRef* {
      for (const auto& ref : inst.ends) {
        if (ref.proc == r) return &ref;
      }
      return nullptr;
    };

    switch (flavor) {
      case CollectiveFlavor::OneToN: {
        const EventRef* root_begin = begin_of(inst.root);
        if (!root_begin) break;
        for (const auto& end : inst.ends) {
          if (end.proc == inst.root) continue;
          out.push_back({*root_begin, end, inst.coll_id});
        }
        break;
      }
      case CollectiveFlavor::NToOne: {
        const EventRef* root_end = end_of(inst.root);
        if (!root_end) break;
        for (const auto& begin : inst.begins) {
          if (begin.proc == inst.root) continue;
          out.push_back({begin, *root_end, inst.coll_id});
        }
        break;
      }
      case CollectiveFlavor::NToN: {
        for (const auto& begin : inst.begins) {
          for (const auto& end : inst.ends) {
            if (begin.proc == end.proc) continue;
            out.push_back({begin, end, inst.coll_id});
          }
        }
        break;
      }
    }
  }
  return out;
}

std::vector<LogicalMessage> derive_logical_messages(const Trace& trace) {
  return derive_logical_messages(trace, trace.collect_collectives());
}

}  // namespace chronosync
