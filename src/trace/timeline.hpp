// ASCII time-line rendering of traces.
//
// A poor man's Vampir (ref. [11]): one lane per rank with event glyphs, plus
// a message table that flags "arrows pointing backward in time" — the
// paper's canonical symptom of clock-condition violations in visualizers.
//
// Glyphs: E enter, X exit, S send, R recv, C collective begin, c collective
// end, F fork, J join, b barrier enter, e barrier exit, * several events in
// one column.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace chronosync {

struct TimelineOptions {
  Time start = 0.0;           ///< window start (timestamp units)
  Time end = 0.0;             ///< window end; end <= start -> auto-fit whole trace
  std::size_t width = 96;     ///< characters per lane
  std::size_t max_messages = 20;  ///< rows in the message table (0 = none)
};

/// Renders the trace's events under the given timestamps.
std::string render_timeline(const Trace& trace, const TimestampArray& timestamps,
                            const TimelineOptions& options = {});

}  // namespace chronosync
