// Trace container and postmortem indexes.
//
// A Trace holds one event vector per process location plus the metadata a
// postmortem tool realistically has: the process placement and the per-domain
// minimum message latencies (the l_min of the clock condition).  Message and
// collective indexes are built on demand.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "topology/pinning.hpp"
#include "trace/event.hpp"

namespace chronosync {

/// A send/receive pair, matched postmortem.
struct MessageRecord {
  EventRef send;
  EventRef recv;
  std::uint32_t bytes = 0;
  Tag tag = -1;
};

/// One collective operation instance across its participants.
struct CollectiveInstance {
  CollectiveKind kind{};
  Rank root = -1;
  std::int64_t coll_id = -1;
  /// Per participating rank: CollBegin and CollEnd refs.
  std::vector<EventRef> begins;
  std::vector<EventRef> ends;
};

class Trace {
 public:
  Trace() = default;
  Trace(Placement placement, std::array<Duration, 3> domain_min_latency,
        std::string timer_name);

  int ranks() const { return static_cast<int>(events_.size()); }
  std::vector<Event>& events(Rank r);
  const std::vector<Event>& events(Rank r) const;
  const Event& at(const EventRef& ref) const;

  const Placement& placement() const { return placement_; }
  const std::string& timer_name() const { return timer_name_; }

  /// Minimum message latency between two ranks (l_min of Eq. 1).
  Duration min_latency(Rank a, Rank b) const;
  /// Minimum latency by domain (SameChip/SameNode/CrossNode).
  Duration min_latency(CommDomain d) const;
  const std::array<Duration, 3>& domain_min_latency() const { return min_latency_; }

  std::size_t total_events() const;

  /// Region-name table for Enter/Exit events.
  std::int32_t intern_region(const std::string& name);
  const std::string& region_name(std::int32_t id) const;
  const std::vector<std::string>& regions() const { return region_names_; }

  /// Matches Send/Recv pairs via msg_id.  Sends without a matched receive
  /// (none occur in well-formed runs) are dropped with a warning count.
  std::vector<MessageRecord> match_messages() const;

  /// Groups CollBegin/CollEnd events into instances via coll_id.
  std::vector<CollectiveInstance> collect_collectives() const;

  /// Verifies per-process local monotonicity of local_ts (traces from
  /// monotone timers always satisfy this) and intra-process event sanity.
  void validate() const;

 private:
  Placement placement_;
  std::array<Duration, 3> min_latency_{};
  std::string timer_name_;
  std::vector<std::vector<Event>> events_;
  std::vector<std::string> region_names_;
};

/// Corrected (or raw) timestamps parallel to a Trace's events.
class TimestampArray {
 public:
  TimestampArray() = default;

  /// Initializes from the trace's recorded local timestamps.
  static TimestampArray from_local(const Trace& t);
  /// Initializes from the simulator's ground-truth timestamps.
  static TimestampArray from_truth(const Trace& t);

  Time& at(const EventRef& ref);
  Time at(const EventRef& ref) const;
  std::vector<Time>& of_rank(Rank r);
  const std::vector<Time>& of_rank(Rank r) const;
  int ranks() const { return static_cast<int>(ts_.size()); }

 private:
  std::vector<std::vector<Time>> ts_;
};

}  // namespace chronosync
