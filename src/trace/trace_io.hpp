// Binary trace serialization plus a human-readable dump.
//
// The format is a simple versioned container ("CSTR"): metadata (timer name,
// placement, minimum latencies, region table) followed by per-rank event
// arrays.  Numbers are little-endian fixed-width; doubles are IEEE-754 bit
// patterns.  Round-tripping a trace is exact.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace chronosync {

void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

/// Text rendering of the first `max_events_per_rank` events of each rank.
std::string dump_trace(const Trace& trace, std::size_t max_events_per_rank = 50);

}  // namespace chronosync
