// Binary trace serialization plus a human-readable dump.
//
// write_trace emits container version 1 ("CSTR" v1): metadata (timer name,
// placement, minimum latencies, region table) followed by per-rank event
// arrays.  Numbers are little-endian fixed-width; doubles are IEEE-754 bit
// patterns.  Round-tripping a trace is exact.
//
// read_trace dispatches on the version field and reads both v1 and the
// chunked, checksummed, streamable v2 container (trace/stream_io.hpp) —
// prefer TraceWriter/write_trace_v2 for new files.  All read paths are
// hardened: every length/count is validated against the available bytes
// before allocation, and any malformed input raises TraceIoError
// (trace/trace_io_error.hpp) instead of crashing or over-allocating.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace chronosync {

void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

/// Text rendering of the first `max_events_per_rank` events of each rank.
std::string dump_trace(const Trace& trace, std::size_t max_events_per_rank = 50);

}  // namespace chronosync
