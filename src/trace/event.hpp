// The event model.
//
// Mirrors what MPI/OpenMP tracing libraries record (Sec. III of the paper):
// region enter/leave, point-to-point send/receive, collective begin/end, and
// the POMP events of OpenMP constructs (fork, join, barrier enter/exit).
//
// Every event carries two timestamps:
//   * local_ts  — what the tracing library recorded from the (drifting,
//                 noisy) local clock; all synchronization algorithms operate
//                 on this alone;
//   * true_ts   — the simulator's ground truth, available only because this
//                 is a simulation; used by tests and quality metrics.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace chronosync {

enum class EventType : std::uint8_t {
  Enter,         ///< enter code region (region field)
  Exit,          ///< leave code region
  Send,          ///< point-to-point send (peer = destination)
  Recv,          ///< point-to-point receive completion (peer = source)
  CollBegin,     ///< collective operation entered (coll, root, coll_id)
  CollEnd,       ///< collective operation completed
  Fork,          ///< OpenMP: master forks a parallel region
  Join,          ///< OpenMP: master joins a parallel region
  BarrierEnter,  ///< OpenMP: thread enters (implicit) barrier
  BarrierExit,   ///< OpenMP: thread leaves (implicit) barrier
};

std::string to_string(EventType t);

enum class CollectiveKind : std::uint8_t {
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Scatter,
  Allgather,
  Alltoall,
};

std::string to_string(CollectiveKind k);

/// Communication flavour of a collective, per the CLC collective extension
/// (1-to-N, N-to-1, N-to-N) that maps it onto logical point-to-point messages.
enum class CollectiveFlavor { OneToN, NToOne, NToN };

CollectiveFlavor flavor_of(CollectiveKind k);

struct Event {
  EventType type{};
  Time local_ts = 0.0;
  Time true_ts = 0.0;

  std::int32_t region = -1;       ///< Enter/Exit: region table index
  Rank peer = -1;                 ///< Send: destination; Recv: source
  Tag tag = -1;                   ///< p2p message tag
  std::uint32_t bytes = 0;        ///< p2p/collective payload size
  std::int64_t msg_id = -1;       ///< pairs Send with its Recv
  CollectiveKind coll{};          ///< CollBegin/CollEnd
  std::int64_t coll_id = -1;      ///< collective instance (same on all ranks)
  Rank root = -1;                 ///< rooted collectives
  std::int32_t omp_instance = -1; ///< parallel-region instance (POMP analysis)
  ThreadId thread = 0;            ///< OpenMP thread within the location
};

/// Addresses one event inside a Trace.
struct EventRef {
  Rank proc = -1;
  std::uint32_t index = 0;

  bool operator==(const EventRef&) const = default;
};

}  // namespace chronosync
