#include "trace/stream_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/crc32c.hpp"
#include "common/expect.hpp"
#include "common/varint.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync {

namespace {

constexpr std::uint32_t kMagic = 0x43535452;  // "CSTR", shared with v1
constexpr std::uint32_t kVersion = 2;

constexpr std::uint8_t kChunkMeta = 'M';
constexpr std::uint8_t kChunkEvents = 'E';
constexpr std::uint8_t kChunkFooter = 'Z';

/// Hard ceiling on a chunk payload; rejects forged lengths before allocation
/// even on non-seekable streams.
constexpr std::uint32_t kMaxChunkPayload = 1u << 26;  // 64 MiB

/// Smallest possible encoded event: type byte + 12 one-byte varints.
constexpr std::uint64_t kMinEncodedEvent = 13;

constexpr std::uint8_t kMaxEventType = static_cast<std::uint8_t>(EventType::BarrierExit);
constexpr std::uint8_t kMaxCollKind = static_cast<std::uint8_t>(CollectiveKind::Alltoall);

void put_raw32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_raw64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_raw64(out, std::bit_cast<std::uint64_t>(v));
}

[[noreturn]] void malformed(const std::string& msg) {
  throw TraceIoError(TraceIoErrorKind::Malformed, msg);
}

std::uint64_t get_uv(const std::uint8_t** p, const std::uint8_t* end, const char* what) {
  std::uint64_t v = 0;
  if (!get_uvarint(p, end, v)) malformed(std::string(what) + ": bad varint");
  return v;
}

std::int64_t get_sv(const std::uint8_t** p, const std::uint8_t* end, const char* what) {
  std::int64_t v = 0;
  if (!get_svarint(p, end, v)) malformed(std::string(what) + ": bad varint");
  return v;
}

std::int32_t get_sv32(const std::uint8_t** p, const std::uint8_t* end, const char* what) {
  const std::int64_t v = get_sv(p, end, what);
  if (v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max()) {
    malformed(std::string(what) + ": value out of 32-bit range");
  }
  return static_cast<std::int32_t>(v);
}

std::uint64_t get_raw64(const std::uint8_t** p, const std::uint8_t* end, const char* what) {
  if (end - *p < 8) malformed(std::string(what) + ": truncated 8-byte field");
  std::uint64_t v;
  std::memcpy(&v, *p, 8);
  *p += 8;
  return v;
}

/// Decodes `count` delta-encoded events from [p, end) — the payload after the
/// chunk head — into `out`.  Shared by the sequential TraceReader and the
/// random-access ChunkReader so both enforce identical validation.
void decode_events(const std::uint8_t* p, const std::uint8_t* end, std::uint64_t count,
                   std::vector<Event>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_local = 0;
  std::uint64_t prev_true = 0;
  std::int64_t prev_msg = 0;
  std::int64_t prev_coll = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (p == end) malformed("event chunk ends mid-event");
    Event e;
    const std::uint8_t type = *p++;
    if (type > kMaxEventType) malformed("invalid event type " + std::to_string(type));
    e.type = static_cast<EventType>(type);
    prev_local += static_cast<std::uint64_t>(get_sv(&p, end, "event local_ts"));
    prev_true += static_cast<std::uint64_t>(get_sv(&p, end, "event true_ts"));
    e.local_ts = std::bit_cast<double>(prev_local);
    e.true_ts = std::bit_cast<double>(prev_true);
    e.region = get_sv32(&p, end, "event region");
    e.peer = get_sv32(&p, end, "event peer");
    e.tag = get_sv32(&p, end, "event tag");
    const std::uint64_t bytes = get_uv(&p, end, "event bytes");
    if (bytes > std::numeric_limits<std::uint32_t>::max()) malformed("event bytes out of range");
    e.bytes = static_cast<std::uint32_t>(bytes);
    prev_msg += get_sv(&p, end, "event msg_id");
    e.msg_id = prev_msg;
    if (p == end) malformed("event chunk ends mid-event");
    const std::uint8_t coll = *p++;
    if (coll > kMaxCollKind) malformed("invalid collective kind " + std::to_string(coll));
    e.coll = static_cast<CollectiveKind>(coll);
    prev_coll += get_sv(&p, end, "event coll_id");
    e.coll_id = prev_coll;
    e.root = get_sv32(&p, end, "event root");
    e.omp_instance = get_sv32(&p, end, "event omp_instance");
    e.thread = get_sv32(&p, end, "event thread");
    out.push_back(e);
  }
  if (p != end) malformed("trailing bytes in event chunk");
}

/// Parses the meta-chunk payload.  Shared by TraceReader and index_trace_v2.
TraceMeta parse_meta_payload(const std::uint8_t* p, const std::uint8_t* end) {
  TraceMeta meta;
  const std::uint64_t timer_len = get_uv(&p, end, "meta timer");
  if (timer_len > static_cast<std::uint64_t>(end - p)) malformed("meta timer name overruns chunk");
  meta.timer_name.assign(reinterpret_cast<const char*>(p), timer_len);
  p += timer_len;

  const std::uint64_t nranks = get_uv(&p, end, "meta rank count");
  // Each rank location needs at least three varint bytes.
  if (nranks > static_cast<std::uint64_t>(end - p) / 3) {
    malformed("meta rank count " + std::to_string(nranks) + " overruns chunk");
  }
  std::vector<CoreLocation> locs(static_cast<std::size_t>(nranks));
  for (auto& loc : locs) {
    loc.node = get_sv32(&p, end, "meta placement");
    loc.chip = get_sv32(&p, end, "meta placement");
    loc.core = get_sv32(&p, end, "meta placement");
  }
  meta.placement = Placement(std::move(locs));

  for (auto& d : meta.domain_min_latency) {
    d = std::bit_cast<double>(get_raw64(&p, end, "meta latency"));
  }

  const std::uint64_t nregions = get_uv(&p, end, "meta region count");
  if (nregions > static_cast<std::uint64_t>(end - p)) {
    malformed("meta region count " + std::to_string(nregions) + " overruns chunk");
  }
  meta.regions.reserve(static_cast<std::size_t>(nregions));
  for (std::uint64_t i = 0; i < nregions; ++i) {
    const std::uint64_t len = get_uv(&p, end, "meta region name");
    if (len > static_cast<std::uint64_t>(end - p)) malformed("meta region name overruns chunk");
    meta.regions.emplace_back(reinterpret_cast<const char*>(p), len);
    p += len;
  }
  if (p != end) malformed("trailing bytes in meta chunk");
  return meta;
}

}  // namespace

// -- TraceMeta ----------------------------------------------------------------

Duration TraceMeta::min_latency(Rank a, Rank b) const {
  const CommDomain d = placement.domain(a, b);
  CS_REQUIRE(d != CommDomain::SameCore, "no latency between co-located ranks");
  return domain_min_latency[static_cast<std::size_t>(d) - 1];
}

TraceMeta TraceMeta::of(const Trace& trace) {
  TraceMeta m;
  m.placement = trace.placement();
  m.domain_min_latency = trace.domain_min_latency();
  m.timer_name = trace.timer_name();
  m.regions = trace.regions();
  return m;
}

// -- TraceWriter --------------------------------------------------------------

TraceWriter::TraceWriter(std::ostream& out, TraceMeta meta, std::size_t events_per_chunk)
    : out_(out), ranks_(meta.ranks()), events_per_chunk_(events_per_chunk) {
  CS_REQUIRE(events_per_chunk_ > 0, "events_per_chunk must be positive");
  CS_REQUIRE(events_per_chunk_ <= kMaxChunkPayload / 128,
             "events_per_chunk too large for the chunk payload limit");

  // File header.
  char header[8];
  std::memcpy(header, &kMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  out_.write(header, 8);
  file_crc_ = crc32c(file_crc_, header, 8);
  bytes_written_ += 8;

  // Meta chunk.
  std::vector<std::uint8_t> body;
  put_uvarint(body, meta.timer_name.size());
  body.insert(body.end(), meta.timer_name.begin(), meta.timer_name.end());
  put_uvarint(body, static_cast<std::uint64_t>(ranks_));
  for (Rank r = 0; r < ranks_; ++r) {
    const CoreLocation& loc = meta.placement.location(r);
    put_svarint(body, loc.node);
    put_svarint(body, loc.chip);
    put_svarint(body, loc.core);
  }
  for (Duration d : meta.domain_min_latency) put_f64(body, d);
  put_uvarint(body, meta.regions.size());
  for (const std::string& name : meta.regions) {
    put_uvarint(body, name.size());
    body.insert(body.end(), name.begin(), name.end());
  }
  emit_chunk(kChunkMeta, {}, body);
}

void TraceWriter::append(Rank rank, const Event& e) {
  CS_REQUIRE(!finished_, "append on a finished TraceWriter");
  CS_REQUIRE(rank >= 0 && rank < ranks_, "rank outside the placement");
  if (body_events_ == 0) {
    CS_REQUIRE(rank >= pending_rank_, "events must be appended rank-major");
    pending_rank_ = rank;
  } else if (rank != pending_rank_) {
    CS_REQUIRE(rank > pending_rank_, "events must be appended rank-major");
    flush_chunk();
    pending_rank_ = rank;
  }

  const auto type = static_cast<std::uint8_t>(e.type);
  const auto coll = static_cast<std::uint8_t>(e.coll);
  CS_REQUIRE(type <= kMaxEventType && coll <= kMaxCollKind, "event with invalid enum value");

  const std::uint64_t local_bits = std::bit_cast<std::uint64_t>(e.local_ts);
  const std::uint64_t true_bits = std::bit_cast<std::uint64_t>(e.true_ts);
  body_.push_back(type);
  put_svarint(body_, static_cast<std::int64_t>(local_bits - prev_.local_bits));
  put_svarint(body_, static_cast<std::int64_t>(true_bits - prev_.true_bits));
  put_svarint(body_, e.region);
  put_svarint(body_, e.peer);
  put_svarint(body_, e.tag);
  put_uvarint(body_, e.bytes);
  put_svarint(body_, e.msg_id - prev_.msg_id);
  body_.push_back(coll);
  put_svarint(body_, e.coll_id - prev_.coll_id);
  put_svarint(body_, e.root);
  put_svarint(body_, e.omp_instance);
  put_svarint(body_, e.thread);
  prev_ = {local_bits, true_bits, e.msg_id, e.coll_id};

  ++body_events_;
  ++total_events_;
  if (body_events_ >= events_per_chunk_) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (body_events_ == 0) return;
  std::vector<std::uint8_t> head;
  put_uvarint(head, chunk_seq_);
  put_uvarint(head, static_cast<std::uint64_t>(pending_rank_));
  put_uvarint(head, body_events_);
  emit_chunk(kChunkEvents, head, body_);
  ++chunk_seq_;
  body_.clear();
  body_events_ = 0;
  prev_ = {};
}

void TraceWriter::emit_chunk(std::uint8_t kind, const std::vector<std::uint8_t>& head,
                             const std::vector<std::uint8_t>& body) {
  CS_SPAN("trace.write_chunk");
  const std::uint64_t len64 = head.size() + body.size();
  CS_ENSURE(len64 <= kMaxChunkPayload, "chunk payload exceeds the format limit");
  const auto len = static_cast<std::uint32_t>(len64);

  char hdr[5];
  hdr[0] = static_cast<char>(kind);
  std::memcpy(hdr + 1, &len, 4);

  std::uint32_t crc;
  {
    CS_SPAN("trace.crc");
    crc = crc32c(0, hdr, 5);
    crc = crc32c(crc, head.data(), head.size());
    crc = crc32c(crc, body.data(), body.size());
  }

  out_.write(hdr, 5);
  out_.write(reinterpret_cast<const char*>(head.data()),
             static_cast<std::streamsize>(head.size()));
  out_.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  char crc_bytes[4];
  std::memcpy(crc_bytes, &crc, 4);
  out_.write(crc_bytes, 4);
  if (!out_.good()) throw TraceIoError(TraceIoErrorKind::Io, "trace write failed");

  file_crc_ = crc32c(file_crc_, hdr, 5);
  file_crc_ = crc32c(file_crc_, head.data(), head.size());
  file_crc_ = crc32c(file_crc_, body.data(), body.size());
  file_crc_ = crc32c(file_crc_, crc_bytes, 4);
  bytes_written_ += 5 + len64 + 4;

  if (obs::metrics_enabled()) {
    static obs::Counter& chunks = obs::counter("trace.chunks_out");
    static obs::Counter& bytes_out = obs::counter("trace.bytes_out");
    chunks.add(1);
    bytes_out.add(static_cast<std::int64_t>(5 + len64 + 4));
  }
}

void TraceWriter::finish() {
  CS_REQUIRE(!finished_, "finish on a finished TraceWriter");
  flush_chunk();
  std::vector<std::uint8_t> body;
  put_uvarint(body, chunk_seq_);
  put_uvarint(body, total_events_);
  put_raw32(body, file_crc_);
  emit_chunk(kChunkFooter, {}, body);
  out_.flush();
  if (!out_.good()) throw TraceIoError(TraceIoErrorKind::Io, "trace write failed");
  finished_ = true;
}

// -- TraceReader --------------------------------------------------------------

TraceReader::TraceReader(std::istream& in, bool header_consumed) : src_(in) {
  char header[8];
  std::memcpy(header, &kMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  if (!header_consumed) {
    const std::uint32_t magic = src_.get_u32("trace header");
    if (magic != kMagic) {
      throw TraceIoError(TraceIoErrorKind::BadMagic, "not a chronosync trace stream");
    }
    const std::uint32_t version = src_.get_u32("trace header");
    if (version != kVersion) {
      throw TraceIoError(TraceIoErrorKind::BadVersion,
                         "expected container version 2, found " + std::to_string(version));
    }
  }
  // The file CRC covers the 8 header bytes; a dispatcher that consumed them
  // already verified their values, so fold the known constants.
  file_crc_ = crc32c(file_crc_, header, 8);

  if (read_chunk() != kChunkMeta) {
    malformed("first chunk must be the meta chunk");
  }
  parse_meta();
}

std::uint8_t TraceReader::read_chunk() {
  CS_SPAN("trace.read_chunk");
  const std::uint8_t kind = src_.get_u8("chunk header");
  const std::uint32_t len = src_.get_u32("chunk header");
  if (len > kMaxChunkPayload) {
    malformed("chunk payload length " + std::to_string(len) + " exceeds the 64 MiB limit");
  }
  src_.need(static_cast<std::uint64_t>(len) + 4, "chunk payload");
  payload_.resize(len);
  src_.read_exact(payload_.data(), len, "chunk payload");
  const std::uint32_t stored = src_.get_u32("chunk checksum");

  if (obs::metrics_enabled()) {
    static obs::Counter& chunks = obs::counter("trace.chunks_in");
    static obs::Counter& bytes_in = obs::counter("trace.bytes_in");
    chunks.add(1);
    bytes_in.add(static_cast<std::int64_t>(5 + static_cast<std::uint64_t>(len) + 4));
  }

  char hdr[5];
  hdr[0] = static_cast<char>(kind);
  std::memcpy(hdr + 1, &len, 4);
  obs::Span crc_span("trace.crc");
  std::uint32_t crc = crc32c(0, hdr, 5);
  crc = crc32c(crc, payload_.data(), payload_.size());
  if (crc != stored) {
    throw TraceIoError(TraceIoErrorKind::BadChecksum,
                       "chunk checksum mismatch (kind '" + std::string(1, static_cast<char>(kind)) +
                           "')");
  }

  if (kind != kChunkFooter) {
    // The footer's CRC field covers every byte before the footer chunk.
    char crc_bytes[4];
    std::memcpy(crc_bytes, &stored, 4);
    file_crc_ = crc32c(file_crc_, hdr, 5);
    file_crc_ = crc32c(file_crc_, payload_.data(), payload_.size());
    file_crc_ = crc32c(file_crc_, crc_bytes, 4);
  }
  return kind;
}

void TraceReader::parse_meta() {
  meta_ = parse_meta_payload(payload_.data(), payload_.data() + payload_.size());
}

bool TraceReader::next(EventBlock& block) {
  if (done_) return false;
  const std::uint8_t kind = read_chunk();
  if (kind == kChunkFooter) {
    parse_footer();
    done_ = true;
    return false;
  }
  if (kind == kChunkMeta) malformed("duplicate meta chunk");
  if (kind != kChunkEvents) {
    malformed("unknown chunk kind '" + std::string(1, static_cast<char>(kind)) + "'");
  }

  const std::uint8_t* p = payload_.data();
  const std::uint8_t* end = p + payload_.size();

  const std::uint64_t seq = get_uv(&p, end, "event chunk sequence");
  if (seq != event_chunks_seen_) {
    malformed("event chunk out of sequence (duplicated, dropped, or reordered chunk): expected " +
              std::to_string(event_chunks_seen_) + ", found " + std::to_string(seq));
  }
  const std::uint64_t rank64 = get_uv(&p, end, "event chunk rank");
  if (rank64 >= static_cast<std::uint64_t>(ranks())) {
    malformed("event chunk rank " + std::to_string(rank64) + " outside the placement");
  }
  const auto rank = static_cast<Rank>(rank64);
  if (rank < last_rank_) malformed("event chunks out of rank order");

  const std::uint64_t count = get_uv(&p, end, "event chunk count");
  if (count == 0) malformed("empty event chunk");
  if (count > static_cast<std::uint64_t>(end - p) / kMinEncodedEvent) {
    malformed("event chunk count " + std::to_string(count) + " overruns chunk");
  }

  block.rank = rank;
  decode_events(p, end, count, block.events);

  ++event_chunks_seen_;
  events_read_ += count;
  last_rank_ = rank;
  return true;
}

void TraceReader::parse_footer() {
  const std::uint8_t* p = payload_.data();
  const std::uint8_t* end = p + payload_.size();
  const std::uint64_t nchunks = get_uv(&p, end, "footer chunk count");
  if (nchunks != event_chunks_seen_) {
    malformed("footer event-chunk count " + std::to_string(nchunks) + " != " +
              std::to_string(event_chunks_seen_) + " chunks read");
  }
  const std::uint64_t total = get_uv(&p, end, "footer event total");
  if (total != events_read_) {
    malformed("footer event total " + std::to_string(total) + " != " +
              std::to_string(events_read_) + " events read");
  }
  if (end - p != 4) malformed("footer payload has wrong size");
  std::uint32_t stored;
  std::memcpy(&stored, p, 4);
  if (stored != file_crc_) {
    throw TraceIoError(TraceIoErrorKind::BadChecksum, "whole-file checksum mismatch");
  }
  if (!src_.exhausted()) malformed("trailing data after trace footer");
}

// -- chunk index & random access ----------------------------------------------

namespace {

void read_or_throw(std::istream& in, char* dst, std::streamsize n, const char* what) {
  in.read(dst, n);
  if (in.gcount() != n) {
    throw TraceIoError(TraceIoErrorKind::Truncated,
                       std::string(what) + ": unexpected end of stream");
  }
}

}  // namespace

TraceIndex index_trace_v2(std::istream& in) {
  // Record the stream's starting position so ChunkRef offsets are absolute
  // (seekg-able) even if the caller handed us a stream mid-file.
  std::streamoff base = 0;
  {
    const std::streamoff pos = in.tellg();
    if (pos > 0) {
      base = pos;
    } else {
      in.clear();
    }
  }

  char header[8];
  read_or_throw(in, header, 8, "trace header");
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  if (magic != kMagic) {
    throw TraceIoError(TraceIoErrorKind::BadMagic, "not a chronosync trace stream");
  }
  if (version != kVersion) {
    throw TraceIoError(TraceIoErrorKind::BadVersion,
                       "expected container version 2, found " + std::to_string(version));
  }
  std::uint32_t file_crc = crc32c(0, header, 8);

  TraceIndex idx;
  std::vector<std::uint8_t> payload;
  std::uint64_t offset = 8;
  bool meta_seen = false;
  Rank last_rank = 0;
  std::uint64_t events_total = 0;

  for (;;) {
    const std::uint64_t chunk_offset = static_cast<std::uint64_t>(base) + offset;
    // A clean EOF here means the writer never sealed the file: the last event
    // chunk may be complete, but without the footer nothing vouches for the
    // chunk sequence or the whole-file CRC — reject as truncated.
    char hdr[5];
    read_or_throw(in, hdr, 5, "chunk header");
    const auto kind = static_cast<std::uint8_t>(hdr[0]);
    std::uint32_t len = 0;
    std::memcpy(&len, hdr + 1, 4);
    if (len > kMaxChunkPayload) {
      malformed("chunk payload length " + std::to_string(len) + " exceeds the 64 MiB limit");
    }
    payload.resize(len);
    read_or_throw(in, reinterpret_cast<char*>(payload.data()), len, "chunk payload");
    char crc_bytes[4];
    read_or_throw(in, crc_bytes, 4, "chunk checksum");
    std::uint32_t stored = 0;
    std::memcpy(&stored, crc_bytes, 4);
    std::uint32_t crc = crc32c(0, hdr, 5);
    crc = crc32c(crc, payload.data(), payload.size());
    if (crc != stored) {
      throw TraceIoError(TraceIoErrorKind::BadChecksum,
                         "chunk checksum mismatch (kind '" +
                             std::string(1, static_cast<char>(kind)) + "')");
    }
    if (kind != kChunkFooter) {
      file_crc = crc32c(file_crc, hdr, 5);
      file_crc = crc32c(file_crc, payload.data(), payload.size());
      file_crc = crc32c(file_crc, crc_bytes, 4);
    }
    offset += 5 + static_cast<std::uint64_t>(len) + 4;

    const std::uint8_t* p = payload.data();
    const std::uint8_t* end = p + payload.size();
    if (!meta_seen) {
      if (kind != kChunkMeta) malformed("first chunk must be the meta chunk");
      idx.meta = parse_meta_payload(p, end);
      idx.rank_events.assign(static_cast<std::size_t>(idx.meta.ranks()), 0);
      meta_seen = true;
      continue;
    }
    if (kind == kChunkMeta) malformed("duplicate meta chunk");
    if (kind == kChunkEvents) {
      const std::uint64_t seq = get_uv(&p, end, "event chunk sequence");
      if (seq != idx.chunks.size()) {
        malformed(
            "event chunk out of sequence (duplicated, dropped, or reordered chunk): expected " +
            std::to_string(idx.chunks.size()) + ", found " + std::to_string(seq));
      }
      const std::uint64_t rank64 = get_uv(&p, end, "event chunk rank");
      if (rank64 >= static_cast<std::uint64_t>(idx.meta.ranks())) {
        malformed("event chunk rank " + std::to_string(rank64) + " outside the placement");
      }
      const auto rank = static_cast<Rank>(rank64);
      if (rank < last_rank) malformed("event chunks out of rank order");
      const std::uint64_t count = get_uv(&p, end, "event chunk count");
      if (count == 0) malformed("empty event chunk");
      if (count > static_cast<std::uint64_t>(end - p) / kMinEncodedEvent) {
        malformed("event chunk count " + std::to_string(count) + " overruns chunk");
      }
      idx.chunks.push_back(
          {chunk_offset, len, seq, rank, static_cast<std::uint32_t>(count)});
      idx.rank_events[static_cast<std::size_t>(rank)] += count;
      events_total += count;
      last_rank = rank;
      continue;
    }
    if (kind != kChunkFooter) {
      malformed("unknown chunk kind '" + std::string(1, static_cast<char>(kind)) + "'");
    }
    const std::uint64_t nchunks = get_uv(&p, end, "footer chunk count");
    if (nchunks != idx.chunks.size()) {
      malformed("footer event-chunk count " + std::to_string(nchunks) + " != " +
                std::to_string(idx.chunks.size()) + " chunks read");
    }
    const std::uint64_t total = get_uv(&p, end, "footer event total");
    if (total != events_total) {
      malformed("footer event total " + std::to_string(total) + " != " +
                std::to_string(events_total) + " events read");
    }
    if (end - p != 4) malformed("footer payload has wrong size");
    std::memcpy(&stored, p, 4);
    if (stored != file_crc) {
      throw TraceIoError(TraceIoErrorKind::BadChecksum, "whole-file checksum mismatch");
    }
    if (in.peek() != std::char_traits<char>::eof()) {
      malformed("trailing data after trace footer");
    }
    break;
  }
  idx.total_events = events_total;
  return idx;
}

TraceIndex index_trace_v2_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + path);
  }
  return index_trace_v2(f);
}

ChunkReader::ChunkReader(std::istream& in, const TraceIndex& index)
    : in_(in), ranks_(index.meta.ranks()) {}

void ChunkReader::read(const ChunkRef& ref, EventBlock& out) {
  CS_SPAN("trace.read_chunk");
  CS_REQUIRE(ref.rank >= 0 && ref.rank < ranks_, "chunk ref outside the placement");
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ref.offset));
  if (!in_.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "seek to event chunk failed");
  }
  char hdr[5];
  read_or_throw(in_, hdr, 5, "chunk header");
  std::uint32_t len = 0;
  std::memcpy(&len, hdr + 1, 4);
  if (static_cast<std::uint8_t>(hdr[0]) != kChunkEvents || len != ref.payload_len) {
    malformed("event chunk does not match its index entry");
  }
  payload_.resize(len);
  read_or_throw(in_, reinterpret_cast<char*>(payload_.data()), len, "chunk payload");
  char crc_bytes[4];
  read_or_throw(in_, crc_bytes, 4, "chunk checksum");
  std::uint32_t stored = 0;
  std::memcpy(&stored, crc_bytes, 4);
  std::uint32_t crc = crc32c(0, hdr, 5);
  crc = crc32c(crc, payload_.data(), payload_.size());
  if (crc != stored) {
    throw TraceIoError(TraceIoErrorKind::BadChecksum, "chunk checksum mismatch (kind 'E')");
  }

  if (obs::metrics_enabled()) {
    static obs::Counter& chunks = obs::counter("trace.chunks_in");
    static obs::Counter& bytes_in = obs::counter("trace.bytes_in");
    chunks.add(1);
    bytes_in.add(static_cast<std::int64_t>(5 + static_cast<std::uint64_t>(len) + 4));
  }

  const std::uint8_t* p = payload_.data();
  const std::uint8_t* end = p + payload_.size();
  const std::uint64_t seq = get_uv(&p, end, "event chunk sequence");
  const std::uint64_t rank64 = get_uv(&p, end, "event chunk rank");
  const std::uint64_t count = get_uv(&p, end, "event chunk count");
  if (seq != ref.seq || rank64 != static_cast<std::uint64_t>(ref.rank) || count != ref.count) {
    malformed("event chunk does not match its index entry");
  }
  out.rank = ref.rank;
  decode_events(p, end, count, out.events);
}

// -- conveniences -------------------------------------------------------------

void write_trace_v2(const Trace& trace, std::ostream& out, std::size_t events_per_chunk) {
  TraceWriter w(out, TraceMeta::of(trace), events_per_chunk);
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (const Event& e : trace.events(r)) w.append(r, e);
  }
  w.finish();
}

void write_trace_v2_file(const Trace& trace, const std::string& path,
                         std::size_t events_per_chunk) {
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for writing: " + path);
  }
  write_trace_v2(trace, f, events_per_chunk);
}

Trace read_trace_v2(TraceReader& reader) {
  const TraceMeta& meta = reader.meta();
  Trace trace(meta.placement, meta.domain_min_latency, meta.timer_name);
  for (std::size_t i = 0; i < meta.regions.size(); ++i) {
    const std::int32_t got = trace.intern_region(meta.regions[i]);
    if (static_cast<std::size_t>(got) != i) malformed("duplicate region name in meta chunk");
  }
  EventBlock block;
  while (reader.next(block)) {
    auto& ev = trace.events(block.rank);
    ev.insert(ev.end(), block.events.begin(), block.events.end());
  }
  return trace;
}

Trace read_trace_v2(std::istream& in) {
  TraceReader reader(in);
  return read_trace_v2(reader);
}

Trace read_trace_v2_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + path);
  }
  return read_trace_v2(f);
}

}  // namespace chronosync
