#include "trace/timeline.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

namespace {

char glyph(EventType t) {
  switch (t) {
    case EventType::Enter: return 'E';
    case EventType::Exit: return 'X';
    case EventType::Send: return 'S';
    case EventType::Recv: return 'R';
    case EventType::CollBegin: return 'C';
    case EventType::CollEnd: return 'c';
    case EventType::Fork: return 'F';
    case EventType::Join: return 'J';
    case EventType::BarrierEnter: return 'b';
    case EventType::BarrierExit: return 'e';
  }
  return '?';
}

}  // namespace

std::string render_timeline(const Trace& trace, const TimestampArray& timestamps,
                            const TimelineOptions& options) {
  CS_REQUIRE(options.width >= 10, "timeline too narrow");

  Time lo = options.start;
  Time hi = options.end;
  if (hi <= lo) {
    lo = std::numeric_limits<Time>::infinity();
    hi = -std::numeric_limits<Time>::infinity();
    for (Rank r = 0; r < trace.ranks(); ++r) {
      const auto& ts = timestamps.of_rank(r);
      if (ts.empty()) continue;
      lo = std::min(lo, *std::min_element(ts.begin(), ts.end()));
      hi = std::max(hi, *std::max_element(ts.begin(), ts.end()));
    }
    if (!(hi > lo)) {  // empty or single-instant trace
      lo = 0.0;
      hi = 1.0;
    }
  }
  const double span = hi - lo;

  std::ostringstream os;
  os << "timeline [" << std::fixed << std::setprecision(6) << lo << " s .. " << hi
     << " s], " << options.width << " cols, " << to_us(span / options.width)
     << " us/col\n";

  for (Rank r = 0; r < trace.ranks(); ++r) {
    std::string lane(options.width, '-');
    const auto& events = trace.events(r);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      const Time t = timestamps.at({r, i});
      if (t < lo || t > hi) continue;
      auto col = static_cast<std::size_t>((t - lo) / span * (options.width - 1));
      col = std::min(col, options.width - 1);
      lane[col] = lane[col] == '-' ? glyph(events[i].type) : '*';
    }
    os << "rank " << std::setw(3) << r << " |" << lane << "|\n";
  }

  if (options.max_messages > 0) {
    const auto msgs = trace.match_messages();
    std::size_t shown = 0, backwards = 0;
    std::ostringstream rows;
    for (const auto& m : msgs) {
      const Time ts = timestamps.at(m.send);
      const Time tr = timestamps.at(m.recv);
      const bool in_window =
          (ts >= lo && ts <= hi) || (tr >= lo && tr <= hi);
      if (!in_window) continue;
      if (tr < ts) ++backwards;
      if (shown < options.max_messages) {
        rows << "  " << m.send.proc << " -> " << m.recv.proc << "  flight "
             << std::setprecision(3) << to_us(tr - ts) << " us"
             << (tr < ts ? "  <-- ARROW POINTS BACKWARD" : "") << '\n';
        ++shown;
      }
    }
    os << "messages in window (" << shown << " shown, " << backwards
       << " pointing backward):\n"
       << rows.str();
  }
  return os.str();
}

}  // namespace chronosync
