// Streaming, checksummed trace container — format v2.
//
// Motivation: the v1 "CSTR" container loads a whole trace into RAM and trusts
// on-disk counts blindly.  Long runs (1800–3600 s, the regime where drift
// effects appear) produce multi-million-event traces; v2 makes them durable,
// verifiable, and consumable with bounded memory.
//
// On-disk layout (all integers little-endian; `uv` = unsigned LEB128 varint,
// `sv` = zigzag LEB128 varint; doubles are IEEE-754 bit patterns):
//
//   file   := magic(u32 "CSTR") version(u32 = 2) meta event* footer
//   chunk  := kind(u8) payload_len(u32) payload crc32c(u32)
//
// Every chunk carries a CRC32C over kind + payload_len + payload.  Kinds:
//
//   'M' meta    exactly one, first:
//                 uv timer_len, timer bytes
//                 uv nranks; per rank: sv node, sv chip, sv core
//                 f64 lat[SameChip] f64 lat[SameNode] f64 lat[CrossNode]
//                 uv nregions; per region: uv len, bytes
//   'E' events  one rank's events (rank-major, non-decreasing rank order):
//                 uv seq (0-based event-chunk index, catches duplicated or
//                         reordered chunks)
//                 uv rank, uv count (1 .. events_per_chunk)
//                 per event (delta state resets per chunk):
//                   u8 type
//                   sv delta(bits(local_ts)) sv delta(bits(true_ts))
//                   sv region  sv peer  sv tag  uv bytes
//                   sv delta(msg_id)  u8 coll  sv delta(coll_id)
//                   sv root  sv omp_instance  sv thread
//   'Z' footer  last: uv event_chunk_count, uv total_events,
//               u32 crc32c of every file byte before this chunk
//
// Timestamps delta-encode their u64 bit patterns: within a rank timestamps
// are (near-)monotone, so consecutive bit patterns are close and the zigzag
// delta is short.  Round trips are bit-exact for every finite double.
//
// The reader validates every length/count against the bytes actually
// available before allocating, verifies each chunk's CRC before parsing it,
// and throws TraceIoError on any malformed input — never crashes or UB.  v1
// files remain readable through the same read_trace()/read_trace_file() entry
// points, which dispatch on the version field.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topology/pinning.hpp"
#include "trace/io_util.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {

/// Trace-level metadata, available before (and without) reading any event.
struct TraceMeta {
  Placement placement;
  std::array<Duration, 3> domain_min_latency{};
  std::string timer_name;
  std::vector<std::string> regions;

  int ranks() const { return placement.ranks(); }
  /// Minimum message latency between two ranks (mirrors Trace::min_latency).
  Duration min_latency(Rank a, Rank b) const;

  static TraceMeta of(const Trace& trace);
};

inline constexpr std::size_t kDefaultEventsPerChunk = 16384;

/// Incremental v2 writer.  Events must be appended rank-major (all of rank 0,
/// then rank 1, ...); chunks are cut every `events_per_chunk` events or on a
/// rank change.  finish() seals the file with the footer; a writer destroyed
/// without finish() leaves a truncated file, which the reader rejects.
class TraceWriter {
 public:
  TraceWriter(std::ostream& out, TraceMeta meta,
              std::size_t events_per_chunk = kDefaultEventsPerChunk);
  ~TraceWriter() = default;
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(Rank rank, const Event& e);
  void finish();

  bool finished() const { return finished_; }
  std::uint64_t events_written() const { return total_events_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct DeltaState {
    std::uint64_t local_bits = 0;
    std::uint64_t true_bits = 0;
    std::int64_t msg_id = 0;
    std::int64_t coll_id = 0;
  };

  void flush_chunk();
  void emit_chunk(std::uint8_t kind, const std::vector<std::uint8_t>& head,
                  const std::vector<std::uint8_t>& body);

  std::ostream& out_;
  int ranks_;
  std::size_t events_per_chunk_;
  std::vector<std::uint8_t> body_;  // encoded events of the pending chunk
  std::size_t body_events_ = 0;
  Rank pending_rank_ = 0;
  DeltaState prev_{};
  std::uint64_t chunk_seq_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint32_t file_crc_ = 0;
  bool finished_ = false;
};

/// One decoded event chunk: `events` holds rank `rank`'s next events in trace
/// order.  The vector's capacity is reused across next() calls, so a reader's
/// resident set stays bounded by the largest chunk, not the trace.
struct EventBlock {
  Rank rank = -1;
  std::vector<Event> events;
};

/// Streaming v2 reader: validates the header and meta chunk on construction,
/// then yields event blocks rank-by-rank via next().  next() returns false
/// only after the footer verified the chunk sequence, the event total, and
/// the whole-file CRC.
class TraceReader {
 public:
  /// `header_consumed` is for dispatchers that already read and verified the
  /// 8-byte magic/version header (read_trace does).
  explicit TraceReader(std::istream& in, bool header_consumed = false);

  const TraceMeta& meta() const { return meta_; }
  int ranks() const { return meta_.ranks(); }

  bool next(EventBlock& block);

  std::uint64_t events_read() const { return events_read_; }

 private:
  std::uint8_t read_chunk();
  void parse_meta();
  void parse_footer();

  traceio::ByteSource src_;
  TraceMeta meta_;
  std::vector<std::uint8_t> payload_;  // reused chunk buffer
  std::uint32_t file_crc_ = 0;
  std::uint64_t event_chunks_seen_ = 0;
  std::uint64_t events_read_ = 0;
  Rank last_rank_ = 0;
  bool done_ = false;
};

// -- random access over an indexed v2 file ------------------------------------

/// Location and shape of one event chunk inside a v2 file, recorded by the
/// index pass so the chunk can be re-read (and re-verified) out of order.
struct ChunkRef {
  std::uint64_t offset = 0;       ///< file offset of the chunk's kind byte
  std::uint32_t payload_len = 0;
  std::uint64_t seq = 0;          ///< event-chunk sequence number
  Rank rank = -1;
  std::uint32_t count = 0;        ///< events encoded in the chunk
};

/// Whole-file chunk index, built by one sequential validation pass.  Knowing
/// every rank's chunk extents and event count up front is what lets the
/// out-of-core consumers (the windowed CLC) preallocate per-rank spill
/// extents and interleave ranks without ever holding the trace in memory.
struct TraceIndex {
  TraceMeta meta;
  std::vector<ChunkRef> chunks;            ///< every event chunk, file order
  std::vector<std::uint64_t> rank_events;  ///< event count per rank
  std::uint64_t total_events = 0;
};

/// Sequentially validates a v2 stream — per-chunk CRCs, chunk sequencing,
/// rank-major order, footer totals, and the whole-file CRC — without decoding
/// any event, and returns the chunk index.  A file whose final event chunk is
/// complete but whose footer is missing (a writer died before finish()) is
/// rejected with a typed TraceIoError, exactly like TraceReader.
TraceIndex index_trace_v2(std::istream& in);
TraceIndex index_trace_v2_file(const std::string& path);

/// Re-reads single event chunks of an indexed v2 file in any order, verifying
/// each chunk's CRC and shape against its ChunkRef before decoding.  The
/// stream must be seekable (the index pass already proved it readable).
class ChunkReader {
 public:
  ChunkReader(std::istream& in, const TraceIndex& index);

  /// Decodes the chunk at `ref` into `out` (events + owning rank).  The
  /// payload buffer is reused across calls, so resident memory stays at one
  /// chunk regardless of how many are visited.
  void read(const ChunkRef& ref, EventBlock& out);

 private:
  std::istream& in_;
  int ranks_;
  std::vector<std::uint8_t> payload_;
};

// -- whole-trace conveniences -------------------------------------------------

void write_trace_v2(const Trace& trace, std::ostream& out,
                    std::size_t events_per_chunk = kDefaultEventsPerChunk);
void write_trace_v2_file(const Trace& trace, const std::string& path,
                         std::size_t events_per_chunk = kDefaultEventsPerChunk);

/// Materializes the rest of `reader` into a Trace.
Trace read_trace_v2(TraceReader& reader);
Trace read_trace_v2(std::istream& in);
Trace read_trace_v2_file(const std::string& path);

}  // namespace chronosync
