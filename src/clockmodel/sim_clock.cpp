#include "clockmodel/sim_clock.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

SimClock::SimClock(Duration initial_offset, std::shared_ptr<const DriftModel> drift,
                   Duration resolution, ClockReadNoise noise, Rng read_rng,
                   Duration read_overhead)
    : initial_offset_(initial_offset),
      drift_(std::move(drift)),
      resolution_(resolution),
      noise_(noise),
      rng_(read_rng),
      read_overhead_(read_overhead) {
  CS_REQUIRE(drift_ != nullptr, "clock needs a drift model");
  CS_REQUIRE(resolution_ >= 0.0, "negative resolution");
  CS_REQUIRE(read_overhead_ >= 0.0, "negative read overhead");
}

Time SimClock::local_time(Time true_t) const {
  return true_t + initial_offset_ + drift_->integrated(true_t);
}

Time SimClock::read(Time true_t) {
  Time t = local_time(true_t);
  if (noise_.jitter_sigma > 0.0) t += rng_.normal(0.0, noise_.jitter_sigma);
  if (noise_.outlier_prob > 0.0 && rng_.bernoulli(noise_.outlier_prob)) {
    // OS preemption between the hardware read and its return delays the
    // observed value: the spike is always positive.
    t += rng_.exponential(1.0 / noise_.outlier_scale);
  }
  if (resolution_ > 0.0) t = std::floor(t / resolution_) * resolution_;
  // Real timer wrappers clamp backwards steps so callers see monotone time.
  if (t < last_read_) t = last_read_;
  last_read_ = t;
  return t;
}

Time SimClock::true_time_of(Time local_t, Time hint_lo, Time hint_hi) const {
  // local_time is strictly increasing (|drift| << 1), so bisection converges.
  Time lo = hint_lo, hi = hint_hi;
  CS_REQUIRE(local_time(lo) <= local_t && local_time(hi) >= local_t,
             "true_time_of: target outside bracket");
  for (int i = 0; i < 200 && hi - lo > 1e-12; ++i) {
    const Time mid = 0.5 * (lo + hi);
    if (local_time(mid) < local_t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace chronosync
