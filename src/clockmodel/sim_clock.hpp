// A simulated processor clock: offset + drift process + read imperfections.
//
// `local_time()` is the mathematically exact local time and is what the drift
// experiments sample; `read()` is what a tracing library sees — quantized to
// the timer resolution, perturbed by OS jitter, and forced monotone the way
// real timer wrappers clamp backwards steps.
#pragma once

#include <memory>

#include "clockmodel/drift_model.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace chronosync {

struct ClockReadNoise {
  double jitter_sigma = 0.0;     ///< Gaussian read noise (s)
  double outlier_prob = 0.0;     ///< probability of an OS-preemption spike
  double outlier_scale = 0.0;    ///< exponential scale of the spike (s)
};

class SimClock {
 public:
  /// `drift` may be shared between clocks on the same node/chip to model a
  /// common oscillator.
  SimClock(Duration initial_offset, std::shared_ptr<const DriftModel> drift,
           Duration resolution, ClockReadNoise noise, Rng read_rng,
           Duration read_overhead = 0.0);

  /// Exact local time at true time t (no quantization or noise).
  Time local_time(Time true_t) const;

  /// Instantaneous drift rate at true time t.
  double drift(Time true_t) const { return drift_->drift(true_t); }

  /// One timer query as the tracing library performs it: quantized, jittered,
  /// and never going backwards.  Stateful (consumes RNG, remembers the last
  /// value), hence non-const.
  Time read(Time true_t);

  /// True-time cost of one read() call; simulation processes advance their
  /// virtual time by this much per timestamp taken.
  Duration read_overhead() const { return read_overhead_; }

  Duration resolution() const { return resolution_; }
  Duration initial_offset() const { return initial_offset_; }

  /// Inverse of local_time(): the true time at which this clock shows
  /// local `lt`.  Solved by bisection; used only by analyses/tests (the
  /// synchronization algorithms never get to see this).
  Time true_time_of(Time local_t, Time hint_lo = 0.0, Time hint_hi = 1e7) const;

 private:
  Duration initial_offset_;
  std::shared_ptr<const DriftModel> drift_;
  Duration resolution_;
  ClockReadNoise noise_;
  Rng rng_;
  Duration read_overhead_;
  Time last_read_ = -kTimeInfinity;
};

}  // namespace chronosync
