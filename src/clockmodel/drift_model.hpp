// Clock drift processes.
//
// A drift model describes how fast a local oscillator runs relative to true
// time: drift(t) is dimensionless (5e-6 == 5 ppm fast), and integrated(t) is
// the accumulated extra local time since t = 0.  A clock's local time is then
//
//     local(t) = t + initial_offset + integrated(t).
//
// The paper's central observation is that drift is *not* constant: NTP
// discipline introduces abrupt slew changes (Fig. 4(a)/(b)), and even hardware
// oscillators wander with temperature (Fig. 5).  Each of those mechanisms is a
// DriftModel here.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace chronosync {

class DriftModel {
 public:
  virtual ~DriftModel() = default;

  /// Instantaneous drift rate at true time t (dimensionless; +ppm = fast).
  virtual double drift(Time t) const = 0;

  /// Accumulated extra local time over [0, t]; must be consistent with
  /// drift(): integrated' == drift, integrated(0) == 0.
  virtual Duration integrated(Time t) const = 0;
};

/// Perfectly stable oscillator running a fixed rate off true time.
class ConstantDrift final : public DriftModel {
 public:
  explicit ConstantDrift(double rate) : rate_(rate) {}
  double drift(Time) const override { return rate_; }
  Duration integrated(Time t) const override { return rate_ * t; }

 private:
  double rate_;
};

/// Piecewise-constant drift over explicit segments (DVFS steps, scripted
/// scenarios, and the output representation of the NTP model).
class PiecewiseConstantDrift final : public DriftModel {
 public:
  /// `boundaries` are segment start times, strictly increasing, starting at 0;
  /// `rates[i]` applies on [boundaries[i], boundaries[i+1]).
  PiecewiseConstantDrift(std::vector<Time> boundaries, std::vector<double> rates);

  double drift(Time t) const override;
  Duration integrated(Time t) const override;

  std::size_t segments() const { return rates_.size(); }

 private:
  std::size_t segment_index(Time t) const;

  std::vector<Time> boundaries_;
  std::vector<double> rates_;
  std::vector<Duration> prefix_;  ///< integrated() value at each boundary
};

/// Bounded random-walk drift: the rate takes a Gaussian step every
/// `step_interval` seconds and is clamped to +/- `clamp`.  Models thermal
/// wander of hardware oscillators (TSC/TB residuals in Fig. 5).
///
/// Steps are generated lazily from an owned RNG stream, so two model instances
/// with the same seed produce identical trajectories regardless of query
/// order (queries only ever extend the memoized prefix).
class RandomWalkDrift final : public DriftModel {
 public:
  RandomWalkDrift(Rng rng, double initial_rate, Duration step_interval, double step_sigma,
                  double clamp);

  double drift(Time t) const override;
  Duration integrated(Time t) const override;

 private:
  void extend_to(std::size_t idx) const;

  mutable Rng rng_;
  Duration step_interval_;
  double step_sigma_;
  double clamp_;
  mutable std::vector<double> rates_;      ///< rate on segment k
  mutable std::vector<Duration> prefix_;   ///< integrated at segment start k
};

/// Mean-reverting (Ornstein-Uhlenbeck) drift: like RandomWalkDrift, but the
/// rate is pulled back toward `mean` with strength `reversion` per second.
/// Models oscillators whose temperature-induced excursions decay instead of
/// accumulating; the stationary rate spread is sigma / sqrt(2 * reversion *
/// step_interval) around the mean.
class OrnsteinUhlenbeckDrift final : public DriftModel {
 public:
  OrnsteinUhlenbeckDrift(Rng rng, double initial_rate, double mean, double reversion,
                         Duration step_interval, double step_sigma);

  double drift(Time t) const override;
  Duration integrated(Time t) const override;

 private:
  void extend_to(std::size_t idx) const;

  mutable Rng rng_;
  double mean_;
  double reversion_;
  Duration step_interval_;
  double step_sigma_;
  mutable std::vector<double> rates_;
  mutable std::vector<Duration> prefix_;
};

/// Sinusoidal drift (e.g. machine-room temperature cycles).
class SinusoidalDrift final : public DriftModel {
 public:
  SinusoidalDrift(double amplitude, Duration period, double phase = 0.0);
  double drift(Time t) const override;
  Duration integrated(Time t) const override;

 private:
  double amplitude_;
  Duration period_;
  double phase_;
};

/// Sum of component models (e.g. constant oscillator error + thermal wander).
class CompositeDrift final : public DriftModel {
 public:
  explicit CompositeDrift(std::vector<std::unique_ptr<DriftModel>> parts);
  double drift(Time t) const override;
  Duration integrated(Time t) const override;

 private:
  std::vector<std::unique_ptr<DriftModel>> parts_;
};

/// Parameters of the NTP discipline loop model.
struct NtpParams {
  Duration poll_interval = 256.0;   ///< seconds between daemon adjustments
  Duration poll_jitter = 16.0;      ///< uniform jitter on the poll spacing
  double estimate_error_sigma = 400 * units::us;  ///< network-limited offset estimate error
  Duration correction_horizon = 900.0;  ///< offset is slewed out over this horizon
  double frequency_gain = 0.3;      ///< PLL-style persistent frequency correction gain
  double max_slew = 500 * units::ppm;   ///< adjtime()-style slew-rate limit
  /// The daemon has been running long before the job starts, so its frequency
  /// correction is already converged up to this residual error.
  double initial_freq_error = 0.3 * units::ppm;
};

/// NTP-disciplined software clock (gettimeofday / default MPI_Wtime).
///
/// The daemon periodically estimates the clock's offset against a perfect
/// reference, but the estimate carries network-limited error (~ms, Sec. II of
/// the paper).  It then slews the clock to remove the *estimated* offset and
/// updates a persistent frequency correction.  Because the estimate error is
/// orders of magnitude larger than the microsecond accuracy tracing needs,
/// the discipline loop manifests as piecewise-linear divergence with abrupt,
/// effectively random slope changes of a few ppm — the exact morphology of
/// Fig. 4(a)/(b), including the "turning point after which clocks stride away
/// at a higher rate".
class NtpDisciplinedDrift final : public DriftModel {
 public:
  /// `oscillator` is the undisciplined hardware drift the daemon fights.
  NtpDisciplinedDrift(Rng rng, std::unique_ptr<DriftModel> oscillator, NtpParams params);

  double drift(Time t) const override;
  Duration integrated(Time t) const override;

 private:
  struct Segment {
    Time start;
    double slew;        ///< discipline-applied rate on this segment
    Duration prefix;    ///< total integrated() at segment start
  };

  void extend_to(Time t) const;

  mutable Rng rng_;
  std::unique_ptr<DriftModel> oscillator_;
  NtpParams params_;
  mutable std::vector<Segment> segments_;
  mutable Time next_poll_;
  mutable double freq_corr_ = 0.0;
};

}  // namespace chronosync
