#include "clockmodel/drift_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

// ---------------------------------------------------------------- piecewise

PiecewiseConstantDrift::PiecewiseConstantDrift(std::vector<Time> boundaries,
                                               std::vector<double> rates)
    : boundaries_(std::move(boundaries)), rates_(std::move(rates)) {
  CS_REQUIRE(!boundaries_.empty(), "need at least one segment");
  CS_REQUIRE(boundaries_.size() == rates_.size(), "boundary/rate count mismatch");
  CS_REQUIRE(boundaries_.front() == 0.0, "first segment must start at t=0");
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    CS_REQUIRE(boundaries_[i] > boundaries_[i - 1], "boundaries must increase");
  }
  prefix_.resize(boundaries_.size());
  prefix_[0] = 0.0;
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    prefix_[i] = prefix_[i - 1] + rates_[i - 1] * (boundaries_[i] - boundaries_[i - 1]);
  }
}

std::size_t PiecewiseConstantDrift::segment_index(Time t) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  if (it == boundaries_.begin()) return 0;  // t < 0: extend the first segment
  return static_cast<std::size_t>(it - boundaries_.begin()) - 1;
}

double PiecewiseConstantDrift::drift(Time t) const { return rates_[segment_index(t)]; }

Duration PiecewiseConstantDrift::integrated(Time t) const {
  const std::size_t k = segment_index(t);
  return prefix_[k] + rates_[k] * (t - boundaries_[k]);
}

// -------------------------------------------------------------- random walk

RandomWalkDrift::RandomWalkDrift(Rng rng, double initial_rate, Duration step_interval,
                                 double step_sigma, double clamp)
    : rng_(rng), step_interval_(step_interval), step_sigma_(step_sigma), clamp_(clamp) {
  CS_REQUIRE(step_interval_ > 0.0, "step interval must be positive");
  CS_REQUIRE(clamp_ >= 0.0, "clamp must be non-negative");
  rates_.push_back(std::clamp(initial_rate, -clamp_, clamp_));
  prefix_.push_back(0.0);
}

void RandomWalkDrift::extend_to(std::size_t idx) const {
  while (rates_.size() <= idx) {
    const double next =
        std::clamp(rates_.back() + rng_.normal(0.0, step_sigma_), -clamp_, clamp_);
    prefix_.push_back(prefix_.back() + rates_.back() * step_interval_);
    rates_.push_back(next);
  }
}

double RandomWalkDrift::drift(Time t) const {
  CS_REQUIRE(t >= 0.0, "drift queried at negative time");
  const auto k = static_cast<std::size_t>(t / step_interval_);
  extend_to(k);
  return rates_[k];
}

Duration RandomWalkDrift::integrated(Time t) const {
  CS_REQUIRE(t >= 0.0, "integral queried at negative time");
  const auto k = static_cast<std::size_t>(t / step_interval_);
  extend_to(k);
  return prefix_[k] + rates_[k] * (t - static_cast<double>(k) * step_interval_);
}

// --------------------------------------------------- Ornstein-Uhlenbeck

OrnsteinUhlenbeckDrift::OrnsteinUhlenbeckDrift(Rng rng, double initial_rate, double mean,
                                               double reversion, Duration step_interval,
                                               double step_sigma)
    : rng_(rng),
      mean_(mean),
      reversion_(reversion),
      step_interval_(step_interval),
      step_sigma_(step_sigma) {
  CS_REQUIRE(step_interval_ > 0.0, "step interval must be positive");
  CS_REQUIRE(reversion_ >= 0.0, "reversion must be non-negative");
  CS_REQUIRE(reversion_ * step_interval_ < 1.0, "reversion too strong for the step size");
  rates_.push_back(initial_rate);
  prefix_.push_back(0.0);
}

void OrnsteinUhlenbeckDrift::extend_to(std::size_t idx) const {
  while (rates_.size() <= idx) {
    const double d = rates_.back();
    const double next = d + reversion_ * (mean_ - d) * step_interval_ +
                        rng_.normal(0.0, step_sigma_);
    prefix_.push_back(prefix_.back() + d * step_interval_);
    rates_.push_back(next);
  }
}

double OrnsteinUhlenbeckDrift::drift(Time t) const {
  CS_REQUIRE(t >= 0.0, "drift queried at negative time");
  const auto k = static_cast<std::size_t>(t / step_interval_);
  extend_to(k);
  return rates_[k];
}

Duration OrnsteinUhlenbeckDrift::integrated(Time t) const {
  CS_REQUIRE(t >= 0.0, "integral queried at negative time");
  const auto k = static_cast<std::size_t>(t / step_interval_);
  extend_to(k);
  return prefix_[k] + rates_[k] * (t - static_cast<double>(k) * step_interval_);
}

// --------------------------------------------------------------- sinusoidal

SinusoidalDrift::SinusoidalDrift(double amplitude, Duration period, double phase)
    : amplitude_(amplitude), period_(period), phase_(phase) {
  CS_REQUIRE(period_ > 0.0, "period must be positive");
}

double SinusoidalDrift::drift(Time t) const {
  return amplitude_ * std::sin(2.0 * M_PI * t / period_ + phase_);
}

Duration SinusoidalDrift::integrated(Time t) const {
  const double w = 2.0 * M_PI / period_;
  return amplitude_ / w * (std::cos(phase_) - std::cos(w * t + phase_));
}

// ---------------------------------------------------------------- composite

CompositeDrift::CompositeDrift(std::vector<std::unique_ptr<DriftModel>> parts)
    : parts_(std::move(parts)) {
  for (const auto& p : parts_) CS_REQUIRE(p != nullptr, "null component");
}

double CompositeDrift::drift(Time t) const {
  double d = 0.0;
  for (const auto& p : parts_) d += p->drift(t);
  return d;
}

Duration CompositeDrift::integrated(Time t) const {
  Duration d = 0.0;
  for (const auto& p : parts_) d += p->integrated(t);
  return d;
}

// --------------------------------------------------------------------- NTP

NtpDisciplinedDrift::NtpDisciplinedDrift(Rng rng, std::unique_ptr<DriftModel> oscillator,
                                         NtpParams params)
    : rng_(rng), oscillator_(std::move(oscillator)), params_(params) {
  CS_REQUIRE(oscillator_ != nullptr, "NTP model needs an oscillator");
  CS_REQUIRE(params_.poll_interval > 0.0, "poll interval must be positive");
  CS_REQUIRE(params_.correction_horizon > 0.0, "correction horizon must be positive");
  // Start converged: the daemon's drift file already cancels the oscillator's
  // frequency error, up to a small residual.
  freq_corr_ = -oscillator_->drift(0.0) + rng_.normal(0.0, params_.initial_freq_error);
  segments_.push_back({0.0, freq_corr_, 0.0});
  next_poll_ = params_.poll_interval + rng_.uniform(-params_.poll_jitter, params_.poll_jitter);
}

void NtpDisciplinedDrift::extend_to(Time t) const {
  while (next_poll_ <= t) {
    const Segment& cur = segments_.back();
    const Duration slew_integral = cur.prefix + cur.slew * (next_poll_ - cur.start);
    // The true offset the daemon is chasing (relative to its reference, which
    // we take to be true time) plus the network-limited estimation error.
    const Duration true_offset = oscillator_->integrated(next_poll_) + slew_integral;
    const Duration observed = true_offset + rng_.normal(0.0, params_.estimate_error_sigma);

    // PLL-style persistent frequency correction plus a proportional slew that
    // removes the observed offset over the correction horizon.
    freq_corr_ -= params_.frequency_gain * observed / params_.poll_interval;
    freq_corr_ = std::clamp(freq_corr_, -params_.max_slew, params_.max_slew);
    const double slew = std::clamp(freq_corr_ - observed / params_.correction_horizon,
                                   -params_.max_slew, params_.max_slew);

    segments_.push_back({next_poll_, slew, slew_integral});
    next_poll_ += params_.poll_interval + rng_.uniform(-params_.poll_jitter, params_.poll_jitter);
  }
}

double NtpDisciplinedDrift::drift(Time t) const {
  CS_REQUIRE(t >= 0.0, "drift queried at negative time");
  extend_to(t);
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](Time v, const Segment& s) { return v < s.start; });
  const Segment& seg = *(it - 1);
  return oscillator_->drift(t) + seg.slew;
}

Duration NtpDisciplinedDrift::integrated(Time t) const {
  CS_REQUIRE(t >= 0.0, "integral queried at negative time");
  extend_to(t);
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](Time v, const Segment& s) { return v < s.start; });
  const Segment& seg = *(it - 1);
  return oscillator_->integrated(t) + seg.prefix + seg.slew * (t - seg.start);
}

}  // namespace chronosync
