// The set of clocks a parallel job sees: one SimClock per rank, built from a
// TimerSpec with the physically-motivated correlation structure
//
//   node oscillator rate  ->  per-group (node/chip/core) drift + wander
//                          ->  per-rank offset = node + chip + core components.
//
// Ranks whose TimerSpec scope puts them in the same oscillator group share
// the *same* DriftModel instance, so their relative deviation is exactly the
// offset noise — matching the paper's observation that co-located Xeon clocks
// differ only by ~0.1 us of noise.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "clockmodel/sim_clock.hpp"
#include "clockmodel/timer_spec.hpp"
#include "common/rng.hpp"
#include "topology/pinning.hpp"

namespace chronosync {

class ClockEnsemble {
 public:
  ClockEnsemble(const Placement& placement, const TimerSpec& spec, const RngTree& rng);

  SimClock& clock(Rank r);
  const SimClock& clock(Rank r) const;
  int ranks() const { return static_cast<int>(clocks_.size()); }
  const TimerSpec& spec() const { return spec_; }
  const Placement& placement() const { return placement_; }

  /// Exact deviation between two ranks' clocks at true time t (no read noise).
  Duration deviation(Rank a, Rank b, Time true_t) const {
    return clock(a).local_time(true_t) - clock(b).local_time(true_t);
  }

 private:
  TimerSpec spec_;
  Placement placement_;
  std::vector<std::unique_ptr<SimClock>> clocks_;
};

}  // namespace chronosync
