#include "clockmodel/timer_spec.hpp"

#include <cmath>
#include <vector>

#include "common/expect.hpp"

namespace chronosync {

std::string to_string(TimerKind k) {
  switch (k) {
    case TimerKind::PerfectGlobal: return "perfect-global";
    case TimerKind::IntelTsc: return "intel-tsc";
    case TimerKind::IbmTimeBase: return "ibm-time-base";
    case TimerKind::IbmRtc: return "ibm-rtc";
    case TimerKind::GettimeofdayNtp: return "gettimeofday";
    case TimerKind::MpiWtime: return "mpi-wtime";
    case TimerKind::CycleCounterDvfs: return "cycle-counter-dvfs";
  }
  return "?";
}

namespace {

/// Random piecewise-constant slowdown steps emulating DVFS transitions.
std::unique_ptr<DriftModel> make_dvfs_drift(const TimerSpec& spec, Rng rng) {
  // Pre-generate a generous horizon; chronosync experiments run <= 4000 s.
  constexpr Time kHorizon = 2.0 * 3600.0;
  std::vector<Time> bounds;
  std::vector<double> rates;
  Time t = 0.0;
  while (t < kHorizon) {
    bounds.push_back(t);
    const auto level = rng.uniform_int(0, spec.dvfs_levels - 1);
    rates.push_back(-spec.dvfs_max_slowdown * static_cast<double>(level) /
                    static_cast<double>(spec.dvfs_levels - 1));
    t += rng.exponential(1.0 / spec.dvfs_mean_segment);
  }
  return std::make_unique<PiecewiseConstantDrift>(std::move(bounds), std::move(rates));
}

}  // namespace

double draw_base_rate(const TimerSpec& spec, const RngTree& node_rng) {
  if (spec.base_drift_max <= 0.0) return 0.0;
  Rng r = node_rng.stream("base-rate");
  return r.uniform(-spec.base_drift_max, spec.base_drift_max);
}

std::unique_ptr<DriftModel> make_oscillator_drift(const TimerSpec& spec,
                                                  const RngTree& group_rng, double base_rate) {
  std::vector<std::unique_ptr<DriftModel>> parts;

  if (spec.dvfs) {
    parts.push_back(make_dvfs_drift(spec, group_rng.stream("dvfs")));
  }

  double rate = base_rate;
  if (spec.intra_node_drift_sigma > 0.0) {
    Rng r = group_rng.stream("intra-rate");
    rate += r.normal(0.0, spec.intra_node_drift_sigma);
  }
  parts.push_back(std::make_unique<ConstantDrift>(rate));

  if (spec.wander_sigma > 0.0) {
    parts.push_back(std::make_unique<RandomWalkDrift>(group_rng.stream("wander"), 0.0,
                                                      spec.wander_interval, spec.wander_sigma,
                                                      spec.wander_clamp));
  }
  if (spec.thermal_amplitude > 0.0) {
    Rng r = group_rng.stream("thermal-phase");
    parts.push_back(std::make_unique<SinusoidalDrift>(spec.thermal_amplitude,
                                                      spec.thermal_period,
                                                      r.uniform(0.0, 2.0 * M_PI)));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return std::make_unique<CompositeDrift>(std::move(parts));
}

std::shared_ptr<const DriftModel> make_group_drift(const TimerSpec& spec,
                                                   const RngTree& group_rng, double base_rate) {
  auto osc = make_oscillator_drift(spec, group_rng, base_rate);
  if (!spec.ntp_disciplined) return std::shared_ptr<const DriftModel>(std::move(osc));
  return std::make_shared<NtpDisciplinedDrift>(group_rng.stream("ntp"), std::move(osc),
                                               spec.ntp);
}

namespace timer_specs {

TimerSpec perfect() {
  TimerSpec s;
  s.kind = TimerKind::PerfectGlobal;
  s.name = "perfect";
  return s;
}

TimerSpec intel_tsc() {
  TimerSpec s;
  s.kind = TimerKind::IntelTsc;
  s.name = "intel-tsc";
  s.scope = OscillatorScope::PerNode;
  s.base_drift_max = 50 * units::ppm;
  s.wander_sigma = 3.5e-9;        // thermal wander: ~4 us residual @300 s,
  s.wander_interval = 10.0;       // ~50-100 us residual @3600 s after interp.
  s.wander_clamp = 0.5 * units::ppm;
  s.thermal_amplitude = 0.03 * units::ppm;
  s.thermal_period = 900.0;
  s.resolution = 1.0 / 3.0e9;     // one tick of a 3.0 GHz counter
  s.noise = {3 * units::ns, 2e-5, 0.5 * units::us};
  s.read_overhead = 0.01 * units::us;
  s.node_offset_sigma = 0.5;      // counters start at processor reset
  s.chip_offset_sigma = 0.05 * units::us;
  s.core_offset_sigma = 0.03 * units::us;
  return s;
}

TimerSpec ibm_time_base() {
  TimerSpec s = intel_tsc();
  s.kind = TimerKind::IbmTimeBase;
  s.name = "ibm-time-base";
  s.base_drift_max = 40 * units::ppm;
  s.wander_sigma = 1.6e-9;        // the TB residuals in Fig. 5(b) are smaller
  s.wander_clamp = 0.35 * units::ppm;
  s.resolution = 1.0 / 512.0e6;   // ~512 MHz time base
  s.noise = {5 * units::ns, 1e-4, 2 * units::us};
  s.read_overhead = 0.02 * units::us;
  return s;
}

TimerSpec ibm_rtc() {
  TimerSpec s = ibm_time_base();
  s.kind = TimerKind::IbmRtc;
  s.name = "ibm-rtc";
  s.resolution = 1 * units::ns;   // seconds + nanoseconds register pair
  s.read_overhead = 0.03 * units::us;
  return s;
}

TimerSpec gettimeofday_ntp() {
  TimerSpec s;
  s.kind = TimerKind::GettimeofdayNtp;
  s.name = "gettimeofday";
  s.scope = OscillatorScope::PerNode;  // one system clock per OS instance
  s.base_drift_max = 30 * units::ppm;
  s.wander_sigma = 2.0e-9;
  s.wander_interval = 10.0;
  s.wander_clamp = 0.4 * units::ppm;
  s.ntp_disciplined = true;
  s.ntp.poll_interval = 256.0;
  s.ntp.poll_jitter = 32.0;
  s.ntp.estimate_error_sigma = 300 * units::us;
  s.ntp.correction_horizon = 900.0;
  s.ntp.frequency_gain = 0.3;
  s.resolution = 1 * units::us;   // microsecond struct timeval
  s.noise = {20 * units::ns, 3e-4, 3 * units::us};
  s.read_overhead = 0.05 * units::us;
  s.node_offset_sigma = 1 * units::ms;  // NTP keeps absolute offsets ~ms
  s.chip_offset_sigma = 0.0;      // one clock per node: no intra-node spread
  s.core_offset_sigma = 0.0;
  return s;
}

TimerSpec opteron_gettimeofday() {
  TimerSpec s = gettimeofday_ntp();
  s.name = "gettimeofday-opteron";
  // The Catamount/SeaStar environment of Fig. 5(c) shows the largest residual
  // deviations: poorer NTP estimates and a shorter correction horizon.
  s.ntp.poll_interval = 192.0;
  s.ntp.estimate_error_sigma = 800 * units::us;
  s.ntp.correction_horizon = 450.0;
  s.wander_sigma = 3.0e-9;
  return s;
}

TimerSpec mpi_wtime() {
  TimerSpec s = gettimeofday_ntp();
  s.kind = TimerKind::MpiWtime;
  s.name = "mpi-wtime";
  // Open MPI's default MPI_Wtime() is gettimeofday() plus wrapper overhead;
  // Fig. 4(a) shows the fastest divergence, so the discipline loop here is
  // modeled with a shorter horizon and noisier estimates.
  s.ntp.poll_interval = 128.0;
  s.ntp.poll_jitter = 16.0;
  s.ntp.estimate_error_sigma = 500 * units::us;
  s.ntp.correction_horizon = 600.0;
  s.noise = {30 * units::ns, 3e-4, 3 * units::us};
  s.read_overhead = 0.08 * units::us;
  return s;
}

TimerSpec cycle_counter_dvfs() {
  TimerSpec s;
  s.kind = TimerKind::CycleCounterDvfs;
  s.name = "cycle-counter-dvfs";
  s.scope = OscillatorScope::PerCore;  // each core scales independently
  s.base_drift_max = 50 * units::ppm;
  s.dvfs = true;
  s.dvfs_mean_segment = 30.0;
  s.dvfs_max_slowdown = 1000 * units::ppm;
  s.resolution = 1.0 / 3.0e9;
  s.noise = {3 * units::ns, 1e-4, 2 * units::us};
  s.read_overhead = 0.005 * units::us;
  s.node_offset_sigma = 0.5;
  s.chip_offset_sigma = 0.1 * units::us;
  s.core_offset_sigma = 0.05 * units::us;
  return s;
}

TimerSpec itanium_tsc() {
  TimerSpec s;
  s.kind = TimerKind::IntelTsc;
  s.name = "itanium-itc";
  // Each chip carries its own interval time counter: small systematic offset
  // and drift between chips of one SMP node -- the mechanism behind the
  // OpenMP violations of Fig. 3 / Fig. 8.
  s.scope = OscillatorScope::PerChip;
  s.base_drift_max = 30 * units::ppm;      // shared node board clock base
  s.intra_node_drift_sigma = 0.002 * units::ppm;
  s.wander_sigma = 1.0e-9;
  s.wander_clamp = 0.2 * units::ppm;
  s.resolution = 1.0 / 1.6e9;
  s.noise = {15 * units::ns, 2e-4, 1 * units::us};
  s.read_overhead = 0.01 * units::us;
  s.node_offset_sigma = 0.0;               // single node
  s.chip_offset_sigma = 0.12 * units::us;  // ITCs aligned only coarsely
  s.core_offset_sigma = 0.03 * units::us;
  return s;
}

std::vector<TimerSpec> all() {
  return {perfect(),      intel_tsc(),          ibm_time_base(),
          ibm_rtc(),      gettimeofday_ntp(),   opteron_gettimeofday(),
          mpi_wtime(),    cycle_counter_dvfs(), itanium_tsc()};
}

TimerSpec by_name(const std::string& name) {
  for (TimerSpec& spec : all()) {
    if (spec.name == name) return spec;
  }
  // Convenience aliases.
  if (name == "tsc") return intel_tsc();
  if (name == "tb") return ibm_time_base();
  std::string known;
  for (const TimerSpec& spec : all()) known += " " + spec.name;
  CS_REQUIRE(false, "unknown timer '" + name + "'; known:" + known);
  return perfect();  // unreachable
}

}  // namespace timer_specs

}  // namespace chronosync
