// Timer technology descriptions.
//
// A TimerSpec bundles everything that distinguishes the paper's timers —
// Intel TSC, IBM time base, gettimeofday()+NTP, MPI_Wtime(), a DVFS-afflicted
// cycle counter — into one parameter set from which ClockEnsemble builds
// correlated per-rank clocks.  The magnitudes are calibrated so the
// reproduction benches show the paper's shapes (see DESIGN.md §2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clockmodel/drift_model.hpp"
#include "clockmodel/sim_clock.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace chronosync {

enum class TimerKind {
  PerfectGlobal,     ///< ideal global clock (testing / Blue Gene analogue)
  IntelTsc,          ///< hardware timestamp counter register
  IbmTimeBase,       ///< PowerPC time base register
  IbmRtc,            ///< real-time clock register (s + ns)
  GettimeofdayNtp,   ///< system clock, NTP disciplined
  MpiWtime,          ///< Open MPI default: gettimeofday under the hood
  CycleCounterDvfs,  ///< raw cycle counter exposed to frequency scaling
};

std::string to_string(TimerKind k);

/// Which clocks share one physical oscillator.
enum class OscillatorScope { PerNode, PerChip, PerCore };

struct TimerSpec {
  TimerKind kind = TimerKind::PerfectGlobal;
  std::string name = "perfect";

  // -- oscillator ----------------------------------------------------------
  OscillatorScope scope = OscillatorScope::PerNode;
  /// Constant drift per oscillator group, uniform in +/- this bound.
  double base_drift_max = 0.0;
  /// Extra constant-drift mismatch between oscillators inside one node
  /// (only meaningful for PerChip/PerCore scopes).
  double intra_node_drift_sigma = 0.0;
  /// Thermal wander: bounded random walk on the rate.
  double wander_sigma = 0.0;        ///< per-step std-dev of the rate
  Duration wander_interval = 10.0;  ///< seconds per step
  double wander_clamp = 0.0;        ///< absolute bound on the walk component
  /// Slow sinusoidal component (machine-room temperature cycling).
  double thermal_amplitude = 0.0;
  Duration thermal_period = 600.0;

  // -- discipline ----------------------------------------------------------
  bool ntp_disciplined = false;
  NtpParams ntp;

  // -- DVFS (cycle counters only) ------------------------------------------
  bool dvfs = false;
  Duration dvfs_mean_segment = 30.0;  ///< mean dwell time per frequency step
  double dvfs_max_slowdown = 1000 * units::ppm;
  int dvfs_levels = 4;

  // -- read path -------------------------------------------------------------
  Duration resolution = 0.0;
  ClockReadNoise noise;
  Duration read_overhead = 0.0;

  // -- offsets ---------------------------------------------------------------
  Duration node_offset_sigma = 0.0;  ///< initial offset between nodes
  Duration chip_offset_sigma = 0.0;  ///< extra offset per chip within a node
  Duration core_offset_sigma = 0.0;  ///< extra offset per core within a chip
};

/// Draws the node-level base oscillator rate (uniform in +/- base_drift_max).
double draw_base_rate(const TimerSpec& spec, const RngTree& node_rng);

/// Builds the oscillator-group drift model for one group (node, chip, or
/// core per spec.scope), *excluding* NTP discipline.  `base_rate` is the
/// node-level rate from draw_base_rate(); the group adds its intra-node
/// deviation and wander on top, so chips of one node stay tightly coupled.
std::unique_ptr<DriftModel> make_oscillator_drift(const TimerSpec& spec,
                                                  const RngTree& group_rng, double base_rate);

/// Full drift model for one oscillator group including discipline/DVFS.
std::shared_ptr<const DriftModel> make_group_drift(const TimerSpec& spec,
                                                   const RngTree& group_rng, double base_rate);

namespace timer_specs {

TimerSpec perfect();
TimerSpec intel_tsc();          ///< Xeon cluster hardware clock
TimerSpec ibm_time_base();      ///< PowerPC cluster hardware clock
TimerSpec ibm_rtc();            ///< POWER real-time clock
TimerSpec gettimeofday_ntp();   ///< Xeon cluster system clock
TimerSpec opteron_gettimeofday();  ///< Jaguar's system clock (worst in Fig. 5)
TimerSpec mpi_wtime();          ///< Open MPI default MPI_Wtime()
TimerSpec cycle_counter_dvfs(); ///< power-managed cycle counter
TimerSpec itanium_tsc();        ///< per-chip ITC on the Itanium SMP node

/// All presets, for sweeps and CLI listings.
std::vector<TimerSpec> all();

/// Preset lookup by its `name` field (e.g. "intel-tsc", "gettimeofday");
/// throws std::invalid_argument for unknown names.
TimerSpec by_name(const std::string& name);

}  // namespace timer_specs

}  // namespace chronosync
