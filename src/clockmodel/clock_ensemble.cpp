#include "clockmodel/clock_ensemble.hpp"

#include <string>
#include <tuple>

#include "common/expect.hpp"

namespace chronosync {

ClockEnsemble::ClockEnsemble(const Placement& placement, const TimerSpec& spec,
                             const RngTree& rng)
    : spec_(spec), placement_(placement) {
  CS_REQUIRE(placement.ranks() > 0, "ensemble needs at least one rank");

  // Shared per-node quantities (base rate, node offset) and shared per-group
  // drift models, keyed by the hierarchy level the spec dictates.
  std::map<int, double> node_rate;
  std::map<int, Duration> node_offset;
  std::map<std::pair<int, int>, Duration> chip_offset;
  std::map<std::tuple<int, int, int>, std::shared_ptr<const DriftModel>> group_drift;

  for (Rank r = 0; r < placement.ranks(); ++r) {
    const CoreLocation& loc = placement.location(r);

    const RngTree node_rng = rng.child("node" + std::to_string(loc.node));
    if (!node_rate.count(loc.node)) {
      node_rate[loc.node] = draw_base_rate(spec_, node_rng);
      Rng off = node_rng.stream("offset");
      node_offset[loc.node] =
          spec_.node_offset_sigma > 0.0 ? off.normal(0.0, spec_.node_offset_sigma) : 0.0;
    }

    const RngTree chip_rng = node_rng.child("chip" + std::to_string(loc.chip));
    const auto chip_key = std::make_pair(loc.node, loc.chip);
    if (!chip_offset.count(chip_key)) {
      Rng off = chip_rng.stream("offset");
      chip_offset[chip_key] =
          spec_.chip_offset_sigma > 0.0 ? off.normal(0.0, spec_.chip_offset_sigma) : 0.0;
    }

    const RngTree core_rng = chip_rng.child("core" + std::to_string(loc.core));

    // Oscillator group key: coarser levels collapse the finer coordinates.
    std::tuple<int, int, int> gkey{loc.node, -1, -1};
    const RngTree* grng = &node_rng;
    if (spec_.scope == OscillatorScope::PerChip) {
      gkey = {loc.node, loc.chip, -1};
      grng = &chip_rng;
    } else if (spec_.scope == OscillatorScope::PerCore) {
      gkey = {loc.node, loc.chip, loc.core};
      grng = &core_rng;
    }
    auto it = group_drift.find(gkey);
    if (it == group_drift.end()) {
      it = group_drift.emplace(gkey, make_group_drift(spec_, *grng, node_rate[loc.node]))
               .first;
    }

    Rng core_off = core_rng.stream("offset");
    const Duration core_offset =
        spec_.core_offset_sigma > 0.0 ? core_off.normal(0.0, spec_.core_offset_sigma) : 0.0;
    const Duration offset = node_offset[loc.node] + chip_offset[chip_key] + core_offset;

    clocks_.push_back(std::make_unique<SimClock>(offset, it->second, spec_.resolution,
                                                 spec_.noise,
                                                 core_rng.stream("read-noise"),
                                                 spec_.read_overhead));
  }
}

SimClock& ClockEnsemble::clock(Rank r) {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of ensemble range");
  return *clocks_[static_cast<std::size_t>(r)];
}

const SimClock& ClockEnsemble::clock(Rank r) const {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of ensemble range");
  return *clocks_[static_cast<std::size_t>(r)];
}

}  // namespace chronosync
