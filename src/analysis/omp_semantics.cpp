#include "analysis/omp_semantics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace chronosync {

namespace {
double pct(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}
}  // namespace

double OmpSemanticsReport::any_pct() const { return pct(with_any, regions); }
double OmpSemanticsReport::entry_pct() const { return pct(with_entry, regions); }
double OmpSemanticsReport::exit_pct() const { return pct(with_exit, regions); }
double OmpSemanticsReport::barrier_pct() const { return pct(with_barrier, regions); }

OmpSemanticsReport check_omp_semantics(const Trace& trace, const TimestampArray& timestamps,
                                       Rank loc) {
  struct InstanceAcc {
    Time fork = std::numeric_limits<Time>::quiet_NaN();
    Time join = std::numeric_limits<Time>::quiet_NaN();
    Time min_any = std::numeric_limits<Time>::infinity();
    Time max_any = -std::numeric_limits<Time>::infinity();
    Time max_barrier_enter = -std::numeric_limits<Time>::infinity();
    Time min_barrier_exit = std::numeric_limits<Time>::infinity();
    bool has_barrier = false;
  };

  std::map<std::int32_t, InstanceAcc> instances;
  const auto& events = trace.events(loc);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.omp_instance < 0) continue;
    auto& acc = instances[e.omp_instance];
    const Time t = timestamps.at({loc, i});
    acc.min_any = std::min(acc.min_any, t);
    acc.max_any = std::max(acc.max_any, t);
    switch (e.type) {
      case EventType::Fork: acc.fork = t; break;
      case EventType::Join: acc.join = t; break;
      case EventType::BarrierEnter:
        acc.max_barrier_enter = std::max(acc.max_barrier_enter, t);
        acc.has_barrier = true;
        break;
      case EventType::BarrierExit:
        acc.min_barrier_exit = std::min(acc.min_barrier_exit, t);
        acc.has_barrier = true;
        break;
      default:
        break;
    }
  }

  OmpSemanticsReport rep;
  for (const auto& [id, acc] : instances) {
    OmpRegionCheck check;
    check.instance = id;
    // Fork must be first, join last; a fork timestamp strictly above any
    // other event of the region breaks the POMP "temporally enclosed" rule.
    check.entry_violation = !std::isnan(acc.fork) && acc.fork > acc.min_any;
    check.exit_violation = !std::isnan(acc.join) && acc.join < acc.max_any;
    // Barrier overlap: someone left before the last one entered.
    check.barrier_violation = acc.has_barrier && acc.min_barrier_exit < acc.max_barrier_enter;

    ++rep.regions;
    if (check.any()) ++rep.with_any;
    if (check.entry_violation) ++rep.with_entry;
    if (check.exit_violation) ++rep.with_exit;
    if (check.barrier_violation) ++rep.with_barrier;
    rep.details.push_back(check);
  }
  return rep;
}

}  // namespace chronosync
