// Human-readable report formatting for the analysis results, so tools,
// examples, and benches present findings uniformly.
#pragma once

#include <string>

#include "analysis/clock_condition.hpp"
#include "analysis/interval_stats.hpp"
#include "analysis/omp_semantics.hpp"

namespace chronosync {

/// Multi-line summary of a clock-condition analysis.
std::string format_report(const ClockConditionReport& report);

/// Multi-line summary of a POMP semantics analysis.
std::string format_report(const OmpSemanticsReport& report);

/// One-line summary of interval distortion.
std::string format_report(const IntervalDistortion& distortion);

}  // namespace chronosync
