// Clock-deviation sampling — the observable of Figs. 4, 5, and 6.
//
// For a clock ensemble and a timestamp correction, samples the corrected
// difference between each worker's clock and the master's clock over a run:
//
//     dev_r(t) = C_r(L_r(t)) - C_0(L_0(t))
//
// where L is the exact local time and C the correction.  With perfect
// correction the deviation is identically zero; its growth over the run is
// exactly what the paper plots.
#pragma once

#include <vector>

#include "clockmodel/clock_ensemble.hpp"
#include "common/statistics.hpp"
#include "sync/correction.hpp"

namespace chronosync {

struct DeviationSeries {
  std::vector<Time> at;                        ///< sample times (true time, s)
  std::vector<std::vector<Duration>> per_rank; ///< [rank][sample], rank 0 all zero
};

/// Samples deviations of every rank against rank 0 on [0, duration] with the
/// given spacing, using the *exact* clock states (no read noise).
DeviationSeries sample_deviations(const ClockEnsemble& ensemble,
                                  const TimestampCorrection& correction, Duration duration,
                                  Duration step);

/// Like sample_deviations(), but through actual clock *reads* — quantized,
/// jittered, monotone-clamped — which is all a real measurement can see.
/// This is what makes co-located clocks look like "noise oscillating around
/// zero" (Sec. IV's intra-node experiment).  Stateful: mutates the clocks.
DeviationSeries sample_measured_deviations(ClockEnsemble& ensemble,
                                           const TimestampCorrection& correction,
                                           Duration duration, Duration step);

/// Largest absolute deviation of any rank at any sample.
Duration max_abs_deviation(const DeviationSeries& s);

/// First sample time at which any rank's |deviation| exceeds `threshold`
/// (e.g. the message latency); negative if never.
Time first_exceedance(const DeviationSeries& s, Duration threshold);

/// Per-rank deviation statistics over the whole series.
std::vector<RunningStats> deviation_stats(const DeviationSeries& s);

}  // namespace chronosync
