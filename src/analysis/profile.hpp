// Trace profiling: the summary statistics a performance tool derives from an
// event trace — per-region time profile, message statistics, and the
// per-pair communication matrix.  All times are computed from a caller-chosen
// timestamp view, so profiles can be compared before and after correction
// (inaccurate timestamps distort profiles, which is the paper's "false
// conclusions during trace analysis" failure mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct RegionProfile {
  std::int32_t region = -1;
  std::string name;
  std::size_t visits = 0;
  Duration inclusive_time = 0.0;  ///< summed enter-to-exit spans
};

struct MessageProfile {
  std::size_t messages = 0;
  std::uint64_t bytes = 0;
  RunningStats flight_time;  ///< recv - send timestamps (can be negative!)
  RunningStats size;
};

struct TraceProfile {
  std::vector<RegionProfile> regions;             ///< sorted by inclusive time
  MessageProfile p2p;
  std::vector<std::vector<std::size_t>> traffic;  ///< [src][dst] message counts
  std::size_t unbalanced_enters = 0;  ///< Enter without matching Exit (window edges)
};

/// Profiles a trace under the given timestamps.
TraceProfile profile_trace(const Trace& trace, const TimestampArray& timestamps);

/// Renders the profile as text.
std::string format_profile(const TraceProfile& profile, std::size_t top_regions = 10);

/// Copies the events of [t0, t1) (by the given timestamps) into a new trace —
/// the "partial tracing" view of a window, as tools cut interesting phases
/// out of long runs.  Message/collective partners outside the window become
/// half-matched and are dropped by the usual matching step.
Trace slice_trace(const Trace& trace, const TimestampArray& timestamps, Time t0, Time t1);

}  // namespace chronosync
