#include "analysis/deviation.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

DeviationSeries sample_deviations(const ClockEnsemble& ensemble,
                                  const TimestampCorrection& correction, Duration duration,
                                  Duration step) {
  CS_REQUIRE(duration > 0.0 && step > 0.0, "bad sampling parameters");
  DeviationSeries s;
  const auto samples = static_cast<std::size_t>(duration / step) + 1;
  s.at.reserve(samples);
  s.per_rank.assign(static_cast<std::size_t>(ensemble.ranks()), {});
  for (auto& v : s.per_rank) v.reserve(samples);

  for (std::size_t k = 0; k < samples; ++k) {
    const Time t = static_cast<double>(k) * step;
    s.at.push_back(t);
    const Time master = correction.correct(0, ensemble.clock(0).local_time(t));
    for (Rank r = 0; r < ensemble.ranks(); ++r) {
      const Time worker = correction.correct(r, ensemble.clock(r).local_time(t));
      s.per_rank[static_cast<std::size_t>(r)].push_back(worker - master);
    }
  }
  return s;
}

DeviationSeries sample_measured_deviations(ClockEnsemble& ensemble,
                                           const TimestampCorrection& correction,
                                           Duration duration, Duration step) {
  CS_REQUIRE(duration > 0.0 && step > 0.0, "bad sampling parameters");
  DeviationSeries s;
  const auto samples = static_cast<std::size_t>(duration / step) + 1;
  s.at.reserve(samples);
  s.per_rank.assign(static_cast<std::size_t>(ensemble.ranks()), {});
  for (auto& v : s.per_rank) v.reserve(samples);

  for (std::size_t k = 0; k < samples; ++k) {
    const Time t = static_cast<double>(k) * step;
    s.at.push_back(t);
    const Time master = correction.correct(0, ensemble.clock(0).read(t));
    for (Rank r = 0; r < ensemble.ranks(); ++r) {
      const Time worker =
          r == 0 ? master : correction.correct(r, ensemble.clock(r).read(t));
      s.per_rank[static_cast<std::size_t>(r)].push_back(worker - master);
    }
  }
  return s;
}

Duration max_abs_deviation(const DeviationSeries& s) {
  Duration worst = 0.0;
  for (const auto& v : s.per_rank) {
    for (Duration d : v) worst = std::max(worst, std::abs(d));
  }
  return worst;
}

Time first_exceedance(const DeviationSeries& s, Duration threshold) {
  for (std::size_t k = 0; k < s.at.size(); ++k) {
    for (const auto& v : s.per_rank) {
      if (std::abs(v[k]) > threshold) return s.at[k];
    }
  }
  return -1.0;
}

std::vector<RunningStats> deviation_stats(const DeviationSeries& s) {
  std::vector<RunningStats> out(s.per_rank.size());
  for (std::size_t r = 0; r < s.per_rank.size(); ++r) {
    for (Duration d : s.per_rank[r]) out[r].add(d);
  }
  return out;
}

}  // namespace chronosync
