#include "analysis/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync {

TraceProfile profile_trace(const Trace& trace, const TimestampArray& timestamps) {
  TraceProfile out;
  std::map<std::int32_t, RegionProfile> regions;

  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& events = trace.events(r);
    // Region stack per (rank, thread); OpenMP traces interleave threads.
    std::map<ThreadId, std::vector<std::pair<std::int32_t, Time>>> stacks;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      const Time t = timestamps.at({r, i});
      if (e.type == EventType::Enter) {
        stacks[e.thread].push_back({e.region, t});
      } else if (e.type == EventType::Exit) {
        auto& stack = stacks[e.thread];
        if (stack.empty() || stack.back().first != e.region) {
          ++out.unbalanced_enters;
          continue;
        }
        auto& prof = regions[e.region];
        prof.region = e.region;
        ++prof.visits;
        prof.inclusive_time += t - stack.back().second;
        stack.pop_back();
      }
    }
    for (const auto& [thread, stack] : stacks) out.unbalanced_enters += stack.size();
  }

  for (auto& [id, prof] : regions) {
    if (id >= 0 && static_cast<std::size_t>(id) < trace.regions().size()) {
      prof.name = trace.region_name(id);
    }
    out.regions.push_back(std::move(prof));
  }
  std::sort(out.regions.begin(), out.regions.end(),
            [](const RegionProfile& a, const RegionProfile& b) {
              return a.inclusive_time > b.inclusive_time;
            });

  out.traffic.assign(static_cast<std::size_t>(trace.ranks()),
                     std::vector<std::size_t>(static_cast<std::size_t>(trace.ranks()), 0));
  for (const auto& m : trace.match_messages()) {
    ++out.p2p.messages;
    out.p2p.bytes += m.bytes;
    out.p2p.size.add(static_cast<double>(m.bytes));
    out.p2p.flight_time.add(timestamps.at(m.recv) - timestamps.at(m.send));
    ++out.traffic[static_cast<std::size_t>(m.send.proc)]
                 [static_cast<std::size_t>(m.recv.proc)];
  }
  return out;
}

std::string format_profile(const TraceProfile& profile, std::size_t top_regions) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "region profile (top " << std::min(top_regions, profile.regions.size()) << "):\n";
  for (std::size_t i = 0; i < std::min(top_regions, profile.regions.size()); ++i) {
    const auto& reg = profile.regions[i];
    os << "  " << std::setw(20) << std::left << reg.name << std::right << std::setw(10)
       << reg.visits << " visits  " << std::setw(12) << reg.inclusive_time << " s\n";
  }
  os << "p2p: " << profile.p2p.messages << " messages, " << profile.p2p.bytes << " bytes";
  if (profile.p2p.messages > 0) {
    os << ", flight mean " << to_us(profile.p2p.flight_time.mean()) << " us (min "
       << to_us(profile.p2p.flight_time.min()) << ", max "
       << to_us(profile.p2p.flight_time.max()) << ")";
  }
  os << '\n';
  if (profile.unbalanced_enters > 0) {
    os << "warning: " << profile.unbalanced_enters << " unbalanced region events\n";
  }
  return os.str();
}

Trace slice_trace(const Trace& trace, const TimestampArray& timestamps, Time t0, Time t1) {
  CS_REQUIRE(t1 > t0, "empty slice window");
  Trace out(trace.placement(), trace.domain_min_latency(), trace.timer_name());
  for (const auto& name : trace.regions()) out.intern_region(name);
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& events = trace.events(r);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      const Time t = timestamps.at({r, i});
      if (t >= t0 && t < t1) out.events(r).push_back(events[i]);
    }
  }
  return out;
}

}  // namespace chronosync
