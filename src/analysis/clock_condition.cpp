#include "analysis/clock_condition.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace chronosync {

namespace {
double pct(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}
}  // namespace

double ClockConditionReport::p2p_reversed_pct() const { return pct(p2p_reversed, p2p_messages); }
double ClockConditionReport::p2p_violation_pct() const {
  return pct(p2p_violations, p2p_messages);
}
double ClockConditionReport::logical_reversed_pct() const {
  return pct(logical_reversed, logical_messages);
}
double ClockConditionReport::message_event_pct() const {
  return pct(message_events, total_events);
}
double ClockConditionReport::combined_reversed_pct() const {
  return pct(p2p_reversed + logical_reversed, p2p_messages + logical_messages);
}

ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps,
                                           const std::vector<MessageRecord>& messages,
                                           const std::vector<LogicalMessage>& logical) {
  CS_SPAN("analysis.clock_condition_full");
  ClockConditionReport rep;

  for (const auto& m : messages) {
    ++rep.p2p_messages;
    const Time ts = timestamps.at(m.send);
    const Time tr = timestamps.at(m.recv);
    const Duration l_min = trace.min_latency(m.send.proc, m.recv.proc);
    if (tr < ts) ++rep.p2p_reversed;
    if (tr < ts + l_min) {
      ++rep.p2p_violations;
      rep.p2p_worst = std::max(rep.p2p_worst, ts + l_min - tr);
    }
  }

  for (const auto& lm : logical) {
    ++rep.logical_messages;
    const Time ts = timestamps.at(lm.send);
    const Time tr = timestamps.at(lm.recv);
    const Duration l_min = trace.min_latency(lm.send.proc, lm.recv.proc);
    if (tr < ts) ++rep.logical_reversed;
    if (tr < ts + l_min) {
      ++rep.logical_violations;
      rep.logical_worst = std::max(rep.logical_worst, ts + l_min - tr);
    }
  }

  rep.total_events = trace.total_events();
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      switch (e.type) {
        case EventType::Send:
        case EventType::Recv:
        case EventType::CollBegin:
        case EventType::CollEnd:
          ++rep.message_events;
          break;
        default:
          break;
      }
    }
  }
  return rep;
}

ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps) {
  return check_clock_condition(trace, timestamps, trace.match_messages(),
                               derive_logical_messages(trace));
}

ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps,
                                           const ReplaySchedule& schedule) {
  CS_SPAN("analysis.clock_condition_csr");
  ClockConditionReport rep;

  // Flatten the per-rank timestamp rows into global-index order once, so the
  // edge scan below reads both endpoints with plain array lookups.
  const auto total = static_cast<std::uint32_t>(schedule.events());
  std::vector<Time> flat(total);
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& row = timestamps.of_rank(r);
    const std::uint32_t base = schedule.rank_begin(r);
    for (std::uint32_t i = 0; i < row.size(); ++i) flat[base + i] = row[i];
  }

  // One pass over the CSR incoming-edge arrays; each constraint edge is
  // exactly one matched p2p or derived logical message.
  for (std::uint32_t g = 0; g < total; ++g) {
    const Time tr = flat[g];
    for (const auto& edge : schedule.incoming(g)) {
      const Time ts = flat[edge.source];
      if (edge.logical) {
        ++rep.logical_messages;
        if (tr < ts) ++rep.logical_reversed;
        if (tr < ts + edge.l_min) {
          ++rep.logical_violations;
          rep.logical_worst = std::max(rep.logical_worst, ts + edge.l_min - tr);
        }
      } else {
        ++rep.p2p_messages;
        if (tr < ts) ++rep.p2p_reversed;
        if (tr < ts + edge.l_min) {
          ++rep.p2p_violations;
          rep.p2p_worst = std::max(rep.p2p_worst, ts + edge.l_min - tr);
        }
      }
    }
  }

  rep.total_events = trace.total_events();
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (const Event& e : trace.events(r)) {
      switch (e.type) {
        case EventType::Send:
        case EventType::Recv:
        case EventType::CollBegin:
        case EventType::CollEnd:
          ++rep.message_events;
          break;
        default:
          break;
      }
    }
  }
  return rep;
}

std::vector<std::tuple<Rank, Rank, std::size_t>> PairViolationMatrix::worst_pairs() const {
  std::vector<std::tuple<Rank, Rank, std::size_t>> out;
  for (std::size_t s = 0; s < violations.size(); ++s) {
    for (std::size_t d = 0; d < violations[s].size(); ++d) {
      if (violations[s][d] > 0) {
        out.emplace_back(static_cast<Rank>(s), static_cast<Rank>(d), violations[s][d]);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::get<2>(a) > std::get<2>(b);
  });
  return out;
}

PairViolationMatrix per_pair_violations(const Trace& trace,
                                        const TimestampArray& timestamps,
                                        const std::vector<MessageRecord>& messages) {
  PairViolationMatrix m;
  const auto n = static_cast<std::size_t>(trace.ranks());
  m.messages.assign(n, std::vector<std::size_t>(n, 0));
  m.violations.assign(n, std::vector<std::size_t>(n, 0));
  for (const auto& msg : messages) {
    const auto s = static_cast<std::size_t>(msg.send.proc);
    const auto d = static_cast<std::size_t>(msg.recv.proc);
    ++m.messages[s][d];
    const Duration l_min = trace.min_latency(msg.send.proc, msg.recv.proc);
    if (timestamps.at(msg.recv) < timestamps.at(msg.send) + l_min) ++m.violations[s][d];
  }
  return m;
}

}  // namespace chronosync
