// Interval-preservation metrics for corrections.
//
// The CLC promises to repair the clock condition "while trying to preserve
// the length of intervals between local events".  These metrics quantify
// that: for every pair of adjacent events of one process, compare the
// corrected interval against the interval of a reference timestamp array
// (the CLC's input, or the ground truth).
#pragma once

#include "common/statistics.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct IntervalDistortion {
  RunningStats absolute;   ///< |corrected - reference| interval difference (s)
  RunningStats relative;   ///< absolute difference / max(reference, 1 us)
  std::size_t intervals = 0;
};

IntervalDistortion interval_distortion(const Trace& trace, const TimestampArray& reference,
                                       const TimestampArray& corrected);

/// Mean absolute error of corrected timestamps against ground truth, per rank
/// aggregate (how close a correction gets to the unobservable true time,
/// modulo a global shift which is removed by aligning rank 0).
RunningStats truth_error(const Trace& trace, const TimestampArray& corrected);

/// Pairwise synchronization error over messages: for each matched message,
/// |(corrected flight time) - (true flight time)|.  Unlike truth_error this
/// cancels the master clock's own drift against true time, so it isolates
/// exactly the error that causes clock-condition violations.
RunningStats message_sync_error(const Trace& trace, const TimestampArray& corrected,
                                const std::vector<MessageRecord>& messages);

}  // namespace chronosync
