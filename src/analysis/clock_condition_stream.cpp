#include "analysis/clock_condition_stream.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "trace/io_util.hpp"
#include "trace/otf_text.hpp"
#include "trace/trace_io.hpp"

namespace chronosync {

namespace {

constexpr std::uint32_t kMagic = 0x43535452;  // "CSTR"

/// The half-matched endpoint of a point-to-point message, keyed by msg_id.
/// An entry lives only while exactly one endpoint has been seen: the moment
/// the other side arrives the edge is checked and the entry erased, so the
/// map's high-water mark tracks the outstanding backlog, not the message
/// count.  Within the half-open state a duplicate endpoint overwrites (last
/// wins); an endpoint for an id that was already completed and erased starts
/// a fresh entry.  Trace::match_messages applies the identical online rule
/// over the same rank-major order, so the two pipelines agree even on
/// malformed duplicate-id traces.
struct MsgEndpoints {
  Rank send_rank = -1;
  Rank recv_rank = -1;
  Time send_ts = 0.0;
  Time recv_ts = 0.0;
};

/// One collective instance, keyed by coll_id.  Mirrors what
/// Trace::collect_collectives keeps: kind/root overwritten by every
/// participating event (last one wins), begins/ends in trace (rank-major)
/// order.
struct CollInstance {
  CollectiveKind kind{};
  Rank root = -1;
  std::vector<std::pair<Rank, Time>> begins;
  std::vector<std::pair<Rank, Time>> ends;
};

void check_edge(Time ts, Time tr, Duration l_min, std::size_t& reversed,
                std::size_t& violations, Duration& worst) {
  if (tr < ts) ++reversed;
  if (tr < ts + l_min) {
    ++violations;
    worst = std::max(worst, ts + l_min - tr);
  }
}

}  // namespace

ClockConditionReport scan_clock_condition(TraceReader& reader, ScanStats* stats) {
  CS_SPAN("analysis.clock_condition_scan");
  const TraceMeta& meta = reader.meta();
  ClockConditionReport rep;
  ScanStats local_stats;

  std::unordered_map<std::int64_t, MsgEndpoints> msgs;
  std::unordered_map<std::int64_t, CollInstance> colls;

  // Checks and retires a message the moment its second endpoint arrives.
  auto complete_p2p = [&](const MsgEndpoints& m) {
    ++rep.p2p_messages;
    const Duration l_min = meta.min_latency(m.send_rank, m.recv_rank);
    check_edge(m.send_ts, m.recv_ts, l_min, rep.p2p_reversed, rep.p2p_violations, rep.p2p_worst);
  };

  EventBlock block;
  while (reader.next(block)) {
    for (const Event& e : block.events) {
      ++rep.total_events;
      switch (e.type) {
        case EventType::Send: {
          ++rep.message_events;
          auto it = msgs.find(e.msg_id);
          if (it != msgs.end() && it->second.recv_rank >= 0) {
            MsgEndpoints m = it->second;
            msgs.erase(it);
            m.send_rank = block.rank;
            m.send_ts = e.local_ts;
            complete_p2p(m);
            break;
          }
          auto& m = msgs[e.msg_id];
          m.send_rank = block.rank;
          m.send_ts = e.local_ts;
          local_stats.peak_outstanding_messages =
              std::max(local_stats.peak_outstanding_messages, msgs.size());
          break;
        }
        case EventType::Recv: {
          ++rep.message_events;
          auto it = msgs.find(e.msg_id);
          if (it != msgs.end() && it->second.send_rank >= 0) {
            MsgEndpoints m = it->second;
            msgs.erase(it);
            m.recv_rank = block.rank;
            m.recv_ts = e.local_ts;
            complete_p2p(m);
            break;
          }
          auto& m = msgs[e.msg_id];
          m.recv_rank = block.rank;
          m.recv_ts = e.local_ts;
          local_stats.peak_outstanding_messages =
              std::max(local_stats.peak_outstanding_messages, msgs.size());
          break;
        }
        case EventType::CollBegin: {
          ++rep.message_events;
          auto& inst = colls[e.coll_id];
          inst.kind = e.coll;
          inst.root = e.root;
          inst.begins.emplace_back(block.rank, e.local_ts);
          local_stats.peak_outstanding_collectives =
              std::max(local_stats.peak_outstanding_collectives, colls.size());
          break;
        }
        case EventType::CollEnd: {
          ++rep.message_events;
          auto& inst = colls[e.coll_id];
          inst.kind = e.coll;
          inst.root = e.root;
          inst.ends.emplace_back(block.rank, e.local_ts);
          local_stats.peak_outstanding_collectives =
              std::max(local_stats.peak_outstanding_collectives, colls.size());
          break;
        }
        default:
          break;
      }
    }
  }

  // Every entry still in `msgs` is half-matched (a tracing-window edge) and
  // is dropped, exactly as Trace::match_messages does; complete pairs were
  // already checked and erased during the scan.

  // Collectives mapped onto logical messages, mirroring
  // derive_logical_messages' flavour rules.
  for (const auto& [id, inst] : colls) {
    if (inst.begins.empty() || inst.begins.size() != inst.ends.size()) continue;  // partial
    switch (flavor_of(inst.kind)) {
      case CollectiveFlavor::OneToN: {
        const std::pair<Rank, Time>* root_begin = nullptr;
        for (const auto& b : inst.begins) {
          if (b.first == inst.root) {
            root_begin = &b;
            break;
          }
        }
        if (!root_begin) break;
        for (const auto& end : inst.ends) {
          if (end.first == inst.root) continue;
          ++rep.logical_messages;
          const Duration l_min = meta.min_latency(root_begin->first, end.first);
          check_edge(root_begin->second, end.second, l_min, rep.logical_reversed,
                     rep.logical_violations, rep.logical_worst);
        }
        break;
      }
      case CollectiveFlavor::NToOne: {
        // First-match, same as the OneToN branch above and as
        // derive_logical_messages' root lookups.
        const std::pair<Rank, Time>* root_end = nullptr;
        for (const auto& end : inst.ends) {
          if (end.first == inst.root) {
            root_end = &end;
            break;
          }
        }
        if (!root_end) break;
        for (const auto& b : inst.begins) {
          if (b.first == inst.root) continue;
          ++rep.logical_messages;
          const Duration l_min = meta.min_latency(b.first, root_end->first);
          check_edge(b.second, root_end->second, l_min, rep.logical_reversed,
                     rep.logical_violations, rep.logical_worst);
        }
        break;
      }
      case CollectiveFlavor::NToN: {
        for (const auto& b : inst.begins) {
          for (const auto& end : inst.ends) {
            if (b.first == end.first) continue;
            ++rep.logical_messages;
            const Duration l_min = meta.min_latency(b.first, end.first);
            check_edge(b.second, end.second, l_min, rep.logical_reversed,
                       rep.logical_violations, rep.logical_worst);
          }
        }
        break;
      }
    }
  }
  if (stats) *stats = local_stats;
  return rep;
}

ClockConditionReport scan_clock_condition(std::istream& in, ScanStats* stats) {
  // Sniff at most 8 bytes and never seek: a short read just means the input
  // is smaller than a v2 header (e.g. a tiny text trace), not an error —
  // clear the stream state and hand everything to the matching reader.
  char header[8];
  in.read(header, 8);
  const auto got = static_cast<std::size_t>(in.gcount());
  in.clear();
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (got >= 4) std::memcpy(&magic, header, 4);
  if (got == 8) std::memcpy(&version, header + 4, 4);

  if (got == 8 && magic == kMagic && version == 2) {
    TraceReader reader(in, /*header_consumed=*/true);
    return scan_clock_condition(reader, stats);
  }

  // Not a v2 container: replay the sniffed prefix in front of the remaining
  // bytes so the v1/text readers see the stream from offset zero and report
  // their own errors (line numbers for text, typed header errors for v1).
  traceio::PrefixedStreambuf replay_buf(std::string(header, got), in);
  std::istream replay(&replay_buf);
  const Trace trace =
      got >= 4 && magic == kMagic ? read_trace(replay) : read_text_trace(replay);
  if (stats) *stats = ScanStats{};
  return check_clock_condition(trace, TimestampArray::from_local(trace));
}

ClockConditionReport scan_clock_condition_file(const std::string& path, ScanStats* stats) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + path);
  }
  return scan_clock_condition(f, stats);
}

}  // namespace chronosync
