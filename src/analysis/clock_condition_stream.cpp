#include "analysis/clock_condition_stream.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "trace/trace_io.hpp"

namespace chronosync {

namespace {

/// Both endpoints of a point-to-point message, keyed by msg_id.
struct MsgEndpoints {
  Rank send_rank = -1;
  Rank recv_rank = -1;
  Time send_ts = 0.0;
  Time recv_ts = 0.0;
};

/// One collective instance, keyed by coll_id.  Mirrors what
/// Trace::collect_collectives keeps: kind/root overwritten by every
/// participating event (last one wins), begins/ends in trace (rank-major)
/// order.
struct CollInstance {
  CollectiveKind kind{};
  Rank root = -1;
  std::vector<std::pair<Rank, Time>> begins;
  std::vector<std::pair<Rank, Time>> ends;
};

void check_edge(Time ts, Time tr, Duration l_min, std::size_t& reversed,
                std::size_t& violations, Duration& worst) {
  if (tr < ts) ++reversed;
  if (tr < ts + l_min) {
    ++violations;
    worst = std::max(worst, ts + l_min - tr);
  }
}

}  // namespace

ClockConditionReport scan_clock_condition(TraceReader& reader) {
  CS_SPAN("analysis.clock_condition_scan");
  const TraceMeta& meta = reader.meta();
  ClockConditionReport rep;

  std::unordered_map<std::int64_t, MsgEndpoints> msgs;
  std::unordered_map<std::int64_t, CollInstance> colls;

  EventBlock block;
  while (reader.next(block)) {
    for (const Event& e : block.events) {
      ++rep.total_events;
      switch (e.type) {
        case EventType::Send: {
          ++rep.message_events;
          auto& m = msgs[e.msg_id];
          m.send_rank = block.rank;
          m.send_ts = e.local_ts;
          break;
        }
        case EventType::Recv: {
          ++rep.message_events;
          auto& m = msgs[e.msg_id];
          m.recv_rank = block.rank;
          m.recv_ts = e.local_ts;
          break;
        }
        case EventType::CollBegin: {
          ++rep.message_events;
          auto& inst = colls[e.coll_id];
          inst.kind = e.coll;
          inst.root = e.root;
          inst.begins.emplace_back(block.rank, e.local_ts);
          break;
        }
        case EventType::CollEnd: {
          ++rep.message_events;
          auto& inst = colls[e.coll_id];
          inst.kind = e.coll;
          inst.root = e.root;
          inst.ends.emplace_back(block.rank, e.local_ts);
          break;
        }
        default:
          break;
      }
    }
  }

  // Point-to-point: half-matched messages (tracing-window edges) are dropped,
  // exactly as Trace::match_messages does.
  for (const auto& [id, m] : msgs) {
    if (m.send_rank < 0 || m.recv_rank < 0) continue;
    ++rep.p2p_messages;
    const Duration l_min = meta.min_latency(m.send_rank, m.recv_rank);
    check_edge(m.send_ts, m.recv_ts, l_min, rep.p2p_reversed, rep.p2p_violations, rep.p2p_worst);
  }

  // Collectives mapped onto logical messages, mirroring
  // derive_logical_messages' flavour rules.
  for (const auto& [id, inst] : colls) {
    if (inst.begins.empty() || inst.begins.size() != inst.ends.size()) continue;  // partial
    switch (flavor_of(inst.kind)) {
      case CollectiveFlavor::OneToN: {
        const std::pair<Rank, Time>* root_begin = nullptr;
        for (const auto& b : inst.begins) {
          if (b.first == inst.root) {
            root_begin = &b;
            break;
          }
        }
        if (!root_begin) break;
        for (const auto& end : inst.ends) {
          if (end.first == inst.root) continue;
          ++rep.logical_messages;
          const Duration l_min = meta.min_latency(root_begin->first, end.first);
          check_edge(root_begin->second, end.second, l_min, rep.logical_reversed,
                     rep.logical_violations, rep.logical_worst);
        }
        break;
      }
      case CollectiveFlavor::NToOne: {
        const std::pair<Rank, Time>* root_end = nullptr;
        for (const auto& end : inst.ends) {
          if (end.first == inst.root) root_end = &end;  // last one wins
        }
        if (!root_end) break;
        for (const auto& b : inst.begins) {
          if (b.first == inst.root) continue;
          ++rep.logical_messages;
          const Duration l_min = meta.min_latency(b.first, root_end->first);
          check_edge(b.second, root_end->second, l_min, rep.logical_reversed,
                     rep.logical_violations, rep.logical_worst);
        }
        break;
      }
      case CollectiveFlavor::NToN: {
        for (const auto& b : inst.begins) {
          for (const auto& end : inst.ends) {
            if (b.first == end.first) continue;
            ++rep.logical_messages;
            const Duration l_min = meta.min_latency(b.first, end.first);
            check_edge(b.second, end.second, l_min, rep.logical_reversed,
                       rep.logical_violations, rep.logical_worst);
          }
        }
        break;
      }
    }
  }
  return rep;
}

ClockConditionReport scan_clock_condition_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + path);
  }
  // Sniff the container version: v2 streams, v1 falls back to the loader.
  char header[8];
  f.read(header, 8);
  if (f.gcount() != 8) {
    throw TraceIoError(TraceIoErrorKind::Truncated, "trace file shorter than its header");
  }
  f.seekg(0);
  std::uint32_t magic;
  std::uint32_t version;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  if (magic == 0x43535452 && version == 2) {
    TraceReader reader(f);
    return scan_clock_condition(reader);
  }
  const Trace trace = read_trace_file(path);
  return check_clock_condition(trace, TimestampArray::from_local(trace));
}

}  // namespace chronosync
