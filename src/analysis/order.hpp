// Event-order consistency against ground truth.
//
// The paper's motivation for accurate timestamps is preserving "the logical
// event order imposed by the semantics of the underlying communication
// substrate", and beyond that the *total* order tools display.  Since the
// simulator knows the true time of every event, this metric samples random
// event pairs and reports how often a timestamp view orders them differently
// than reality — a direct measure of the distortion a timeline visualizer
// would show.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace chronosync {

struct OrderConsistency {
  std::size_t pairs_sampled = 0;
  std::size_t misordered = 0;      ///< timestamp order contradicts true order
  double misordered_fraction() const {
    return pairs_sampled == 0
               ? 0.0
               : static_cast<double>(misordered) / static_cast<double>(pairs_sampled);
  }
};

/// Samples `pairs` random *time-adjacent* event pairs — both events within
/// `neighborhood` positions of each other in the true-time order — and
/// compares the order induced by `timestamps` with the true order.  Nearby
/// pairs are where visualizers actually misrepresent order; far-apart pairs
/// are trivially ordered by any clock.  Pairs closer in true time than
/// `resolution` are skipped (no tool distinguishes them).
OrderConsistency order_consistency(const Trace& trace, const TimestampArray& timestamps,
                                   std::size_t pairs = 20000, std::uint64_t seed = 1,
                                   Duration resolution = 1e-7,
                                   std::size_t neighborhood = 256);

}  // namespace chronosync
