// OpenMP (POMP) semantics checks — Fig. 3 and Fig. 8 of the paper.
//
// A parallel-region instance consists of a Fork and Join on the master
// thread, per-thread region events, and an implicit barrier (BarrierEnter /
// BarrierExit per thread).  The POMP happened-before rules checked here:
//
//   * entry:   the Fork must be the earliest event of the instance;
//   * exit:    the Join must be the latest event of the instance;
//   * barrier: barrier executions must overlap — no thread may leave the
//              barrier before every thread has entered it.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace chronosync {

/// Per-instance violation flags.
struct OmpRegionCheck {
  std::int32_t instance = -1;
  bool entry_violation = false;
  bool exit_violation = false;
  bool barrier_violation = false;
  bool any() const { return entry_violation || exit_violation || barrier_violation; }
};

struct OmpSemanticsReport {
  std::size_t regions = 0;
  std::size_t with_any = 0;
  std::size_t with_entry = 0;
  std::size_t with_exit = 0;
  std::size_t with_barrier = 0;
  std::vector<OmpRegionCheck> details;

  double any_pct() const;
  double entry_pct() const;
  double exit_pct() const;
  double barrier_pct() const;
};

/// Checks all parallel-region instances in an OpenMP trace.  The trace is
/// expected to keep all threads of the SMP node in location/rank `loc` with
/// per-event thread ids (as the ompsim produces); `timestamps` selects which
/// clock view to check (raw local, aligned, interpolated, ...).
OmpSemanticsReport check_omp_semantics(const Trace& trace, const TimestampArray& timestamps,
                                       Rank loc = 0);

}  // namespace chronosync
