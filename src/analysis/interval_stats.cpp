#include "analysis/interval_stats.hpp"

#include <algorithm>
#include <cmath>

namespace chronosync {

IntervalDistortion interval_distortion(const Trace& trace, const TimestampArray& reference,
                                       const TimestampArray& corrected) {
  IntervalDistortion d;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ref = reference.of_rank(r);
    const auto& cor = corrected.of_rank(r);
    for (std::size_t i = 1; i < ref.size(); ++i) {
      const Duration want = ref[i] - ref[i - 1];
      const Duration got = cor[i] - cor[i - 1];
      const Duration diff = std::abs(got - want);
      d.absolute.add(diff);
      d.relative.add(diff / std::max(want, 1.0 * units::us));
      ++d.intervals;
    }
  }
  return d;
}

RunningStats message_sync_error(const Trace& trace, const TimestampArray& corrected,
                                const std::vector<MessageRecord>& messages) {
  RunningStats stats;
  for (const auto& m : messages) {
    const Duration got = corrected.at(m.recv) - corrected.at(m.send);
    const Duration want = trace.at(m.recv).true_ts - trace.at(m.send).true_ts;
    stats.add(std::abs(got - want));
  }
  return stats;
}

RunningStats truth_error(const Trace& trace, const TimestampArray& corrected) {
  // Remove the global shift: align on the first event of rank 0 if present.
  Duration shift = 0.0;
  if (trace.ranks() > 0 && !trace.events(0).empty()) {
    shift = corrected.at({0, 0}) - trace.at({0, 0}).true_ts;
  }
  RunningStats stats;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& ev = trace.events(r);
    for (std::uint32_t i = 0; i < ev.size(); ++i) {
      stats.add(std::abs(corrected.at({r, i}) - shift - ev[i].true_ts));
    }
  }
  return stats;
}

}  // namespace chronosync
