// Out-of-core clock-condition analysis over trace files.
//
// The in-memory pipeline (read_trace -> match_messages -> derive_logical_...
// -> check_clock_condition) materializes every event, the message index, and
// a timestamp array — ~150 bytes per event.  The streaming scan consumes a v2
// trace chunk-by-chunk through TraceReader and keeps only the per-message
// pairing state (message endpoints by msg_id, collective instances by
// coll_id), so resident memory is bounded by the number of *messages*, not
// events — on region-dominated traces orders of magnitude smaller, and never
// the full 150 bytes/event of the loader.
//
// The report is identical (same counts, same worst-case slack) to
//   check_clock_condition(trace, TimestampArray::from_local(trace))
// on the materialized trace; a test asserts the equivalence.
#pragma once

#include <string>

#include "analysis/clock_condition.hpp"
#include "trace/stream_io.hpp"

namespace chronosync {

/// Scans the remaining events of `reader` (local timestamps, Eq. 1 over p2p
/// and logical messages) without materializing a Trace.
ClockConditionReport scan_clock_condition(TraceReader& reader);

/// Opens `path` and scans it.  v2 files stream with bounded memory; v1 files
/// (no chunking) fall back to the in-memory loader transparently.
ClockConditionReport scan_clock_condition_file(const std::string& path);

}  // namespace chronosync
