// Out-of-core clock-condition analysis over trace files.
//
// The in-memory pipeline (read_trace -> match_messages -> derive_logical_...
// -> check_clock_condition) materializes every event, the message index, and
// a timestamp array — ~150 bytes per event.  The streaming scan consumes a v2
// trace chunk-by-chunk through TraceReader and keeps only the per-message
// pairing state (message endpoints by msg_id, collective instances by
// coll_id), so resident memory is bounded by the number of *messages*, not
// events — on region-dominated traces orders of magnitude smaller, and never
// the full 150 bytes/event of the loader.
//
// The report is identical (same counts, same worst-case slack) to
//   check_clock_condition(trace, TimestampArray::from_local(trace))
// on the materialized trace; a test asserts the equivalence.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "analysis/clock_condition.hpp"
#include "trace/stream_io.hpp"

namespace chronosync {

/// Resource counters of a streaming scan: high-water marks of the pairing
/// state.  `peak_outstanding_messages` tracks the *backlog* of half-matched
/// messages (a send awaiting its receive, or vice versa), not the total
/// message count — completed pairs are checked and erased eagerly, so a long
/// well-paired trace scans in O(backlog) memory.  Collective instances cannot
/// be released before end-of-scan (a rank may still join an instance in a
/// later chunk), so their high-water equals the instance count.
struct ScanStats {
  std::size_t peak_outstanding_messages = 0;
  std::size_t peak_outstanding_collectives = 0;
};

/// Scans the remaining events of `reader` (local timestamps, Eq. 1 over p2p
/// and logical messages) without materializing a Trace.
ClockConditionReport scan_clock_condition(TraceReader& reader, ScanStats* stats = nullptr);

/// Scans a trace of any supported format from `in`, sniffing at most the
/// first 8 bytes and never seeking, so pipe-fed streams work.  v2 streams
/// with bounded memory; binary v1 and text traces replay the sniffed prefix
/// into their own readers (which also report their own, better errors).
ClockConditionReport scan_clock_condition(std::istream& in, ScanStats* stats = nullptr);

/// Opens `path` and scans it.  v2 files stream with bounded memory; v1 and
/// text files fall back to the in-memory loader transparently.
ClockConditionReport scan_clock_condition_file(const std::string& path,
                                               ScanStats* stats = nullptr);

}  // namespace chronosync
