// Clock-condition analysis (Eq. 1 and Fig. 7 of the paper).
//
// For every matched point-to-point message and every logical message derived
// from collectives, checks
//     t_recv >= t_send + l_min          (clock condition)
// and the stricter observable the paper plots in Fig. 7,
//     t_recv <  t_send                  (reversed message).
#pragma once

#include <cstddef>
#include <tuple>
#include <vector>

#include "sync/replay.hpp"
#include "trace/logical_messages.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct ClockConditionReport {
  // -- point-to-point ---------------------------------------------------------
  std::size_t p2p_messages = 0;
  std::size_t p2p_reversed = 0;    ///< t_recv < t_send
  std::size_t p2p_violations = 0;  ///< t_recv < t_send + l_min
  Duration p2p_worst = 0.0;        ///< largest (t_send + l_min - t_recv) > 0

  // -- logical messages from collectives ---------------------------------------
  std::size_t logical_messages = 0;
  std::size_t logical_reversed = 0;
  std::size_t logical_violations = 0;
  Duration logical_worst = 0.0;

  // -- event census (Fig. 7's back row) ----------------------------------------
  std::size_t total_events = 0;
  std::size_t message_events = 0;  ///< Send + Recv + CollBegin + CollEnd

  double p2p_reversed_pct() const;
  double p2p_violation_pct() const;
  double logical_reversed_pct() const;
  double message_event_pct() const;
  /// Reversal percentage over p2p plus logical messages combined.
  double combined_reversed_pct() const;

  std::size_t violations() const { return p2p_violations + logical_violations; }
};

/// Analyzes `timestamps` (any correction output) against the trace structure.
ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps,
                                           const std::vector<MessageRecord>& messages,
                                           const std::vector<LogicalMessage>& logical);

/// Convenience: builds the message/collective indexes itself.
ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps);

/// Fast path: a single pass over the CSR constraint edges of an
/// already-built ReplaySchedule instead of re-matching messages and
/// re-deriving collectives.  Produces the same report as the message-list
/// overload when the schedule was built from the same message/logical lists.
ClockConditionReport check_clock_condition(const Trace& trace,
                                           const TimestampArray& timestamps,
                                           const ReplaySchedule& schedule);

/// Per-(src, dst) message and violation counts — localizes which links
/// suffer, as a tool would highlight offending process pairs.
struct PairViolationMatrix {
  std::vector<std::vector<std::size_t>> messages;    ///< [src][dst]
  std::vector<std::vector<std::size_t>> violations;  ///< [src][dst]

  /// Pairs with at least one violation, ordered by violation count.
  std::vector<std::tuple<Rank, Rank, std::size_t>> worst_pairs() const;
};

PairViolationMatrix per_pair_violations(const Trace& trace,
                                        const TimestampArray& timestamps,
                                        const std::vector<MessageRecord>& messages);

}  // namespace chronosync
