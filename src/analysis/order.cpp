#include "analysis/order.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace chronosync {

OrderConsistency order_consistency(const Trace& trace, const TimestampArray& timestamps,
                                   std::size_t pairs, std::uint64_t seed, Duration resolution,
                                   std::size_t neighborhood) {
  CS_REQUIRE(neighborhood >= 1, "neighborhood must be at least 1");
  OrderConsistency out;

  // All events sorted by true time: the reference total order.
  std::vector<std::pair<Time, EventRef>> order;
  order.reserve(trace.total_events());
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& events = trace.events(r);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      order.push_back({events[i].true_ts, {r, i}});
    }
  }
  if (order.size() < 2) return out;
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Rng rng(seed);
  const auto n = order.size();
  for (std::size_t k = 0; k < pairs; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    const auto span = std::min(neighborhood, n - 1 - i);
    const auto j = i + static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(span)));
    const auto& [ta, a] = order[i];
    const auto& [tb, b] = order[j];
    if (tb - ta < resolution) continue;  // indistinguishable
    ++out.pairs_sampled;
    // True order is a before b; the timestamp view disagrees if it says
    // b is (strictly) earlier.
    if (timestamps.at(b) < timestamps.at(a)) ++out.misordered;
  }
  return out;
}

}  // namespace chronosync
