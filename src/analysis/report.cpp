#include "analysis/report.hpp"

#include <iomanip>
#include <sstream>

namespace chronosync {

std::string format_report(const ClockConditionReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "clock-condition analysis\n"
     << "  events: " << report.total_events << " total, " << report.message_events
     << " message transfer (" << report.message_event_pct() << " %)\n"
     << "  p2p messages: " << report.p2p_messages << ", reversed " << report.p2p_reversed
     << " (" << report.p2p_reversed_pct() << " %), violated " << report.p2p_violations
     << " (" << report.p2p_violation_pct() << " %)";
  if (report.p2p_violations > 0) {
    os << ", worst " << to_us(report.p2p_worst) << " us";
  }
  os << "\n  logical messages: " << report.logical_messages << ", reversed "
     << report.logical_reversed << " (" << report.logical_reversed_pct() << " %), violated "
     << report.logical_violations;
  if (report.logical_violations > 0) {
    os << ", worst " << to_us(report.logical_worst) << " us";
  }
  os << '\n';
  return os.str();
}

std::string format_report(const OmpSemanticsReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "POMP semantics analysis: " << report.regions << " parallel regions\n"
     << "  any violation: " << report.with_any << " (" << report.any_pct() << " %)\n"
     << "  entry (fork not first): " << report.with_entry << " (" << report.entry_pct()
     << " %)\n"
     << "  exit (join not last):   " << report.with_exit << " (" << report.exit_pct()
     << " %)\n"
     << "  barrier overlap broken: " << report.with_barrier << " (" << report.barrier_pct()
     << " %)\n";
  return os.str();
}

std::string format_report(const IntervalDistortion& distortion) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "interval distortion over " << distortion.intervals << " intervals: mean "
     << to_us(distortion.absolute.mean()) << " us, max "
     << to_us(distortion.intervals ? distortion.absolute.max() : 0.0) << " us\n";
  return os.str();
}

}  // namespace chronosync
