// Process-to-core placement (Table I of the paper) and the communication
// domain classification that drives both latency and clock correlation.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/cluster.hpp"

namespace chronosync {

struct CoreLocation {
  int node = 0;
  int chip = 0;
  int core = 0;

  bool operator==(const CoreLocation&) const = default;
};

/// Relative position of two processes in the hierarchy; orders by distance.
enum class CommDomain { SameCore = 0, SameChip = 1, SameNode = 2, CrossNode = 3 };

CommDomain classify(const CoreLocation& a, const CoreLocation& b);

std::string to_string(CommDomain d);

/// Maps ranks to cores.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::vector<CoreLocation> locations);

  const CoreLocation& location(Rank r) const;
  int ranks() const { return static_cast<int>(locations_.size()); }
  CommDomain domain(Rank a, Rank b) const;

 private:
  std::vector<CoreLocation> locations_;
};

namespace pinning {

/// Table I "inter node": one process per node, n distinct nodes.
Placement inter_node(const ClusterSpec& spec, int nranks);

/// Table I "inter chip": all on one node, one process per chip.
Placement inter_chip(const ClusterSpec& spec, int nranks);

/// Table I "inter core": all on one chip, one process per core.
Placement inter_core(const ClusterSpec& spec, int nranks);

/// Fills cores in order: node 0 chip 0 core 0,1,..., then next chip, node.
Placement block(const ClusterSpec& spec, int nranks);

/// Emulates the paper's Fig. 7 setup ("we kept the default setting and let
/// the scheduler choose"): ranks land on a random subset of nodes, filling
/// cores within a node before spilling, with a shuffled rank order.
Placement scheduler_default(const ClusterSpec& spec, int nranks, Rng& rng);

}  // namespace pinning

}  // namespace chronosync
