#include "topology/pinning.hpp"

#include <algorithm>
#include <numeric>

#include "common/expect.hpp"

namespace chronosync {

CommDomain classify(const CoreLocation& a, const CoreLocation& b) {
  if (a.node != b.node) return CommDomain::CrossNode;
  if (a.chip != b.chip) return CommDomain::SameNode;
  if (a.core != b.core) return CommDomain::SameChip;
  return CommDomain::SameCore;
}

std::string to_string(CommDomain d) {
  switch (d) {
    case CommDomain::SameCore: return "same-core";
    case CommDomain::SameChip: return "same-chip";
    case CommDomain::SameNode: return "same-node";
    case CommDomain::CrossNode: return "cross-node";
  }
  return "?";
}

Placement::Placement(std::vector<CoreLocation> locations) : locations_(std::move(locations)) {}

const CoreLocation& Placement::location(Rank r) const {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of placement range");
  return locations_[static_cast<std::size_t>(r)];
}

CommDomain Placement::domain(Rank a, Rank b) const {
  return classify(location(a), location(b));
}

namespace pinning {

Placement inter_node(const ClusterSpec& spec, int nranks) {
  CS_REQUIRE(nranks <= spec.nodes, "more ranks than nodes for inter-node pinning");
  std::vector<CoreLocation> locs;
  locs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) locs.push_back({r, 0, 0});
  return Placement(std::move(locs));
}

Placement inter_chip(const ClusterSpec& spec, int nranks) {
  CS_REQUIRE(nranks <= spec.chips_per_node, "more ranks than chips for inter-chip pinning");
  std::vector<CoreLocation> locs;
  locs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) locs.push_back({0, r, 0});
  return Placement(std::move(locs));
}

Placement inter_core(const ClusterSpec& spec, int nranks) {
  CS_REQUIRE(nranks <= spec.cores_per_chip, "more ranks than cores for inter-core pinning");
  std::vector<CoreLocation> locs;
  locs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) locs.push_back({0, 0, r});
  return Placement(std::move(locs));
}

Placement block(const ClusterSpec& spec, int nranks) {
  CS_REQUIRE(nranks <= spec.total_cores(), "more ranks than cores");
  std::vector<CoreLocation> locs;
  locs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const int node = r / spec.cores_per_node();
    const int within = r % spec.cores_per_node();
    locs.push_back({node, within / spec.cores_per_chip, within % spec.cores_per_chip});
  }
  return Placement(std::move(locs));
}

Placement scheduler_default(const ClusterSpec& spec, int nranks, Rng& rng) {
  CS_REQUIRE(nranks <= spec.total_cores(), "more ranks than cores");
  const int nodes_needed = (nranks + spec.cores_per_node() - 1) / spec.cores_per_node();
  // Random node subset, as a batch scheduler would allocate.
  std::vector<int> node_ids(static_cast<std::size_t>(spec.nodes));
  std::iota(node_ids.begin(), node_ids.end(), 0);
  for (std::size_t i = node_ids.size(); i > 1; --i) {
    std::swap(node_ids[i - 1], node_ids[static_cast<std::size_t>(
                                   rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  node_ids.resize(static_cast<std::size_t>(nodes_needed));

  // Fill the allocated nodes core by core, then shuffle the rank order so
  // neighbouring ranks are not systematically co-located.
  std::vector<CoreLocation> slots;
  for (int n : node_ids) {
    for (int ch = 0; ch < spec.chips_per_node; ++ch) {
      for (int co = 0; co < spec.cores_per_chip; ++co) slots.push_back({n, ch, co});
    }
  }
  slots.resize(static_cast<std::size_t>(nranks));
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[static_cast<std::size_t>(
                                rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  return Placement(std::move(slots));
}

}  // namespace pinning

}  // namespace chronosync
