#include "topology/cluster.hpp"

namespace chronosync::clusters {

ClusterSpec xeon_rwth() { return {"xeon-rwth", 62, 2, 4}; }

ClusterSpec powerpc_marenostrum() { return {"powerpc-marenostrum", 2560, 2, 2}; }

ClusterSpec opteron_jaguar() { return {"opteron-jaguar", 3744, 1, 2}; }

ClusterSpec itanium_smp_node() { return {"itanium-smp", 1, 4, 4}; }

}  // namespace chronosync::clusters
