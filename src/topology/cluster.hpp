// Cluster hardware descriptions: a machine is nodes x chips x cores.
// Presets correspond to the three evaluation platforms of the paper plus the
// Itanium SMP node used for the OpenMP experiments.
#pragma once

#include <string>

#include "common/types.hpp"

namespace chronosync {

struct ClusterSpec {
  std::string name;
  int nodes = 1;
  int chips_per_node = 1;
  int cores_per_chip = 1;

  int cores_per_node() const { return chips_per_node * cores_per_chip; }
  int total_cores() const { return nodes * cores_per_node(); }
};

namespace clusters {

/// RWTH Aachen Xeon cluster: 62 nodes, 2 quad-core Xeons @3.0 GHz, InfiniBand.
ClusterSpec xeon_rwth();

/// BSC MareNostrum: 2560 JS21 blades, 2 dual-core PowerPC 970MP @2.3 GHz, Myrinet.
ClusterSpec powerpc_marenostrum();

/// ORNL Jaguar (XT3 partition): 3744 nodes, 1 dual-core Opteron @2.6 GHz, SeaStar.
ClusterSpec opteron_jaguar();

/// Single Itanium SMP node with 4 chips x 4 cores (the Fig. 3 / Fig. 8 system).
ClusterSpec itanium_smp_node();

}  // namespace clusters

}  // namespace chronosync
