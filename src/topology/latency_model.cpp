#include "topology/latency_model.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace chronosync {

HierarchicalLatencyModel::HierarchicalLatencyModel(LinkParams same_chip, LinkParams same_node,
                                                   LinkParams cross_node)
    : params_{same_chip, same_node, cross_node} {
  for (const auto& p : params_) {
    CS_REQUIRE(p.base > 0.0, "latency floor must be positive");
    CS_REQUIRE(p.per_byte >= 0.0 && p.jitter_sigma >= 0.0, "negative latency parameter");
  }
}

const LinkParams& HierarchicalLatencyModel::params(CommDomain d) const {
  CS_REQUIRE(d != CommDomain::SameCore, "messages between co-located ranks are not modeled");
  return params_[static_cast<std::size_t>(d) - 1];
}

Duration HierarchicalLatencyModel::min_latency(CommDomain d, std::size_t bytes) const {
  const LinkParams& p = params(d);
  return p.base + p.per_byte * static_cast<double>(bytes);
}

Duration HierarchicalLatencyModel::sample(CommDomain d, std::size_t bytes, Rng& rng) const {
  const LinkParams& p = params(d);
  const Duration floor = min_latency(d, bytes);
  // Multiplicative lognormal jitter keeps the sample >= the deterministic
  // floor: exp(|N|) >= 1.
  Duration lat = floor * std::exp(std::abs(rng.normal(0.0, p.jitter_sigma)));
  if (p.tail_prob > 0.0 && rng.bernoulli(p.tail_prob)) {
    lat += rng.exponential(1.0 / p.tail_scale);
  }
  return lat;
}

Duration HierarchicalLatencyModel::min_latency(const CoreLocation& a, const CoreLocation& b,
                                               std::size_t bytes) const {
  return min_latency(classify(a, b), bytes);
}

Duration HierarchicalLatencyModel::sample(const CoreLocation& a, const CoreLocation& b,
                                          std::size_t bytes, Rng& rng) const {
  return sample(classify(a, b), bytes, rng);
}

namespace latencies {

HierarchicalLatencyModel xeon_infiniband() {
  // Bases reproduce Table II: 0.47 / 0.86 / 4.29 us.  Per-byte costs
  // correspond to ~5 GB/s shared-memory copies and ~1.4 GB/s InfiniBand DDR.
  LinkParams chip{0.47 * units::us, 0.2e-9, 0.010, 0.0005, 3.0 * units::us};
  LinkParams node{0.86 * units::us, 0.25e-9, 0.012, 0.0005, 3.0 * units::us};
  LinkParams net{4.29 * units::us, 0.7e-9, 0.020, 0.0010, 8.0 * units::us};
  return {chip, node, net};
}

HierarchicalLatencyModel powerpc_myrinet() {
  LinkParams chip{0.55 * units::us, 0.25e-9, 0.010, 0.0005, 3.0 * units::us};
  LinkParams node{0.95 * units::us, 0.3e-9, 0.012, 0.0005, 3.0 * units::us};
  LinkParams net{5.8 * units::us, 0.9e-9, 0.030, 0.0015, 10.0 * units::us};
  return {chip, node, net};
}

HierarchicalLatencyModel opteron_seastar() {
  LinkParams chip{0.50 * units::us, 0.22e-9, 0.010, 0.0005, 3.0 * units::us};
  LinkParams node{0.90 * units::us, 0.28e-9, 0.012, 0.0005, 3.0 * units::us};
  LinkParams net{6.5 * units::us, 0.8e-9, 0.035, 0.0015, 12.0 * units::us};
  return {chip, node, net};
}

}  // namespace latencies

}  // namespace chronosync
