// Hierarchical message latency model.
//
// Table II of the paper gives the Xeon cluster's measured point-to-point
// latencies per communication domain (0.47 us same-chip, 0.86 us same-node,
// 4.29 us cross-node).  The clock condition compares timestamp error against
// exactly these numbers, so the model exposes both the deterministic minimum
// (`min_latency`, the l_min of Eq. 1) and a stochastic per-message sample.
#pragma once

#include <array>
#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/pinning.hpp"

namespace chronosync {

/// Per-domain latency parameters.
struct LinkParams {
  Duration base = 0.0;        ///< zero-byte latency floor (s)
  double per_byte = 0.0;      ///< transfer cost per payload byte (s/B)
  double jitter_sigma = 0.0;  ///< lognormal sigma of the multiplicative jitter
  double tail_prob = 0.0;     ///< probability of a congestion/OS tail event
  Duration tail_scale = 0.0;  ///< exponential scale of the tail delay (s)
};

class HierarchicalLatencyModel {
 public:
  HierarchicalLatencyModel(LinkParams same_chip, LinkParams same_node, LinkParams cross_node);

  const LinkParams& params(CommDomain d) const;

  /// Deterministic minimum latency for a message of `bytes` in domain `d`;
  /// this is the l_min the clock condition uses.
  Duration min_latency(CommDomain d, std::size_t bytes = 0) const;

  /// One stochastic latency draw (>= min_latency by construction).
  Duration sample(CommDomain d, std::size_t bytes, Rng& rng) const;

  /// Convenience overloads resolving the domain from locations.
  Duration min_latency(const CoreLocation& a, const CoreLocation& b, std::size_t bytes = 0) const;
  Duration sample(const CoreLocation& a, const CoreLocation& b, std::size_t bytes,
                  Rng& rng) const;

 private:
  std::array<LinkParams, 3> params_;  // indexed SameChip, SameNode, CrossNode
};

namespace latencies {

/// Xeon/InfiniBand parameters calibrated to Table II.
HierarchicalLatencyModel xeon_infiniband();

/// PowerPC/Myrinet (MareNostrum): slightly higher cross-node latency.
HierarchicalLatencyModel powerpc_myrinet();

/// Opteron/SeaStar (Jaguar XT3) 3-D torus.
HierarchicalLatencyModel opteron_seastar();

}  // namespace latencies

}  // namespace chronosync
