// The per-rank process context: what a simulated MPI process program sees.
//
// Workloads are coroutines over this API, in the shape of real MPI code:
//
//     Coro<void> worker(Proc& p) {
//       p.enter(region);
//       co_await p.compute(150 * units::us);
//       co_await p.send((p.rank() + 1) % p.nranks(), /*tag=*/0, 1024);
//       Message m = co_await p.recv(kAnySource, 0);
//       co_await p.allreduce(8);
//       p.exit(region);
//     }
//
// Every traced operation records events with timestamps read from the rank's
// simulated local clock, exactly as a PMPI wrapper library would.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clockmodel/sim_clock.hpp"
#include "common/rng.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/message.hpp"
#include "mpisim/request.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "trace/event.hpp"

namespace chronosync {

class Job;

class Proc {
 public:
  Proc(Job& job, Rank rank, SimClock& clock, Rng workload_rng, Rng noise_rng);
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  Rank rank() const { return rank_; }
  int nranks() const;

  /// Current virtual (true) time; the process cannot observe this directly —
  /// it is the simulator's view.  Programs should use wtime().
  Time now() const;

  /// Reads the rank-local clock (quantized + noisy), like MPI_Wtime().
  Time wtime() { return clock_->read(now()); }

  /// Workload-private random stream (deterministic per rank).
  Rng& rng() { return rng_; }

  // -- tracing control -------------------------------------------------------
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  /// Interns a region name in the job-wide table.
  std::int32_t region(const std::string& name);
  void enter(std::int32_t region_id);
  void exit(std::int32_t region_id);

  // -- local work --------------------------------------------------------------
  /// Occupies the process for d seconds of virtual time.
  [[nodiscard]] Coro<void> compute(Duration d);

  // -- point-to-point ---------------------------------------------------------
  /// Eager blocking send; completes locally after the send overhead.
  [[nodiscard]] Coro<void> send(Rank dst, Tag tag, std::uint32_t bytes,
                                std::vector<double> data = {});
  /// Blocking receive; src/tag may be kAnySource/kAnyTag.
  [[nodiscard]] Coro<Message> recv(Rank src, Tag tag);

  // -- nonblocking point-to-point ----------------------------------------------
  /// Starts an eager send; the Send event is recorded at call time (as a
  /// PMPI wrapper records MPI_Isend).  The request completes after the local
  /// send overhead.
  Request isend(Rank dst, Tag tag, std::uint32_t bytes, std::vector<double> data = {});
  /// Posts a receive; completes when a matching message has been delivered.
  Request irecv(Rank src, Tag tag);
  /// Blocks until the request completes.  For receive requests the Recv
  /// event is recorded at completion (as a wrapper records it in MPI_Wait)
  /// and the message is returned.
  [[nodiscard]] Coro<Message> wait(Request req);
  /// Waits for all requests (completion order is irrelevant).
  [[nodiscard]] Coro<void> waitall(std::vector<Request> reqs);

  // -- collectives --------------------------------------------------------------
  // The no-communicator overloads run on MPI_COMM_WORLD; roots are ranks of
  // the communicator the operation runs on.
  const Communicator& comm_world() const;
  [[nodiscard]] Coro<void> barrier();
  [[nodiscard]] Coro<void> bcast(Rank root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> reduce(Rank root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> allreduce(std::uint32_t bytes);
  [[nodiscard]] Coro<void> gather(Rank root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> scatter(Rank root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> allgather(std::uint32_t bytes);
  [[nodiscard]] Coro<void> alltoall(std::uint32_t bytes);
  [[nodiscard]] Coro<void> barrier(const Communicator& comm);
  [[nodiscard]] Coro<void> bcast(const Communicator& comm, int root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> reduce(const Communicator& comm, int root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> allreduce(const Communicator& comm, std::uint32_t bytes);
  [[nodiscard]] Coro<void> gather(const Communicator& comm, int root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> scatter(const Communicator& comm, int root, std::uint32_t bytes);
  [[nodiscard]] Coro<void> allgather(const Communicator& comm, std::uint32_t bytes);
  [[nodiscard]] Coro<void> alltoall(const Communicator& comm, std::uint32_t bytes);

  /// MPI_Comm_split: collective over `parent`; every member calls it with
  /// its (color, key) and receives the communicator of its color group.
  [[nodiscard]] Coro<Communicator> split(const Communicator& parent, int color, int key);

 private:
  friend class Job;

  Engine& engine() const;
  void record(Event e);
  /// Enter/Exit of the MPI function region when PMPI emulation is on.
  void mpi_enter(std::int32_t& cache, const char* name);
  void mpi_exit(std::int32_t region_id);

  [[nodiscard]] Coro<void> send_impl(Rank dst, Tag tag, std::uint32_t bytes,
                                     std::vector<double> data, bool traced);
  [[nodiscard]] Coro<Message> recv_impl(Rank src, Tag tag, bool traced);

  /// Shared collective wrapper: records CollBegin/CollEnd around the
  /// algorithm and allocates the instance id + internal tag space.  `root`
  /// is a communicator rank.
  [[nodiscard]] Coro<void> coll_impl(const Communicator& comm, CollectiveKind kind, int root,
                                     std::uint32_t bytes);

  // Internal (untraced) traffic of the collective algorithms.
  [[nodiscard]] Coro<void> isend_internal(Rank dst, Tag tag, std::uint32_t bytes);
  [[nodiscard]] Coro<void> recv_internal(Rank src, Tag tag);

  // Collective algorithms; `r` is this process's communicator rank.
  [[nodiscard]] Coro<void> run_barrier(const Communicator& comm, int r, Tag base);
  [[nodiscard]] Coro<void> run_bcast(const Communicator& comm, int r, int root,
                                     std::uint32_t bytes, Tag base);
  [[nodiscard]] Coro<void> run_reduce(const Communicator& comm, int r, int root,
                                      std::uint32_t bytes, Tag base);
  [[nodiscard]] Coro<void> run_allreduce(const Communicator& comm, int r, std::uint32_t bytes,
                                         Tag base);
  [[nodiscard]] Coro<void> run_gather(const Communicator& comm, int r, int root,
                                      std::uint32_t bytes, Tag base);
  [[nodiscard]] Coro<void> run_scatter(const Communicator& comm, int r, int root,
                                       std::uint32_t bytes, Tag base);
  [[nodiscard]] Coro<void> run_allgather(const Communicator& comm, int r, std::uint32_t bytes,
                                         Tag base);
  [[nodiscard]] Coro<void> run_alltoall(const Communicator& comm, int r, std::uint32_t bytes,
                                        Tag base);

  Job& job_;
  Rank rank_;
  SimClock* clock_;
  Rng rng_;
  Rng noise_rng_;  ///< OS-jitter stream, separate so it never perturbs rng_
  Mailbox mailbox_;
  bool tracing_ = true;
  std::map<std::int32_t, std::int64_t> coll_seq_;   ///< per communicator id
  std::map<std::int32_t, std::int64_t> split_seq_;  ///< per parent communicator
  // Lazily interned PMPI region ids.
  std::int32_t send_region_ = -1;
  std::int32_t recv_region_ = -1;
  std::int32_t isend_region_ = -1;
  std::int32_t irecv_region_ = -1;
  std::int32_t wait_region_ = -1;
  std::int32_t coll_region_[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
};

}  // namespace chronosync
