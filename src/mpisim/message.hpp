// Message envelope of the simulated MPI layer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace chronosync {

class Trigger;

/// User tags live below kInternalTagBase; the collective algorithms use the
/// reserved range above it so internal traffic can never match user receives.
inline constexpr Tag kInternalTagBase = 1 << 24;
inline constexpr Tag kInternalTagRange = 1 << 22;

struct Message {
  Rank src = -1;
  Tag tag = -1;
  std::uint32_t bytes = 0;
  /// Small inline payload for protocols that carry values (clock probing).
  std::vector<double> data;
  std::int64_t id = -1;
  /// Rendezvous protocol: fired when the receiver matches this message, so
  /// the (blocked) sender learns its partner has arrived.  Null for eager.
  Trigger* sender_ack = nullptr;
  /// Pins the state sender_ack points into (nonblocking rendezvous sends
  /// whose Request the application may drop before completion).
  std::shared_ptr<void> keepalive;
};

}  // namespace chronosync
