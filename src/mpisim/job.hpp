// A simulated MPI job: engine + clock ensemble + transport + trace collection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "clockmodel/clock_ensemble.hpp"
#include "clockmodel/timer_spec.hpp"
#include "common/rng.hpp"
#include "mpisim/proc.hpp"
#include "sim/engine.hpp"
#include "topology/latency_model.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct JobConfig {
  Placement placement;
  TimerSpec timer = timer_specs::perfect();
  HierarchicalLatencyModel latency = latencies::xeon_infiniband();
  Duration send_overhead = 0.15 * units::us;   ///< local cost of a send call
  Duration recv_overhead = 0.10 * units::us;   ///< local cost after matching
  /// Per-round software cost inside collectives (reduction op, buffer
  /// management).  Calibrated so a 4-node allreduce lands at Table II's
  /// 12.86 us (2 recursive-doubling rounds of ~6.4 us each).
  Duration coll_round_overhead = 1.9 * units::us;
  Duration msg_spacing = 2 * units::ns;  ///< non-overtaking gap per (src,dst)
  /// Messages above this size use a rendezvous protocol: the sender blocks
  /// until the receiver has posted a matching receive (ready-to-send
  /// handshake), as real MPI implementations do.  0 disables (all eager).
  std::uint32_t rendezvous_threshold = 64 * 1024;
  std::uint64_t seed = 42;
  bool start_tracing = true;
  /// PMPI-style tracing: wrap every traced MPI call in Enter/Exit events of
  /// an "MPI_..." region, as interposition wrappers do.  Makes the
  /// message-event-to-total-event census realistic (Fig. 7's back row).
  bool record_mpi_regions = false;
  /// OS jitter (Sec. III(c) of the paper): daemon/interrupt preemptions that
  /// stretch compute phases.  Each compute(d) gains Poisson(rate * d)
  /// preemptions of Exp(scale) duration each.
  double os_noise_rate = 0.0;        ///< preemptions per second (0 = off)
  Duration os_noise_scale = 50 * units::us;  ///< mean preemption length
  /// Scenario hook for adversarial networks: extra one-way delay in seconds
  /// added on top of the sampled latency of each message, as a function of
  /// (src, dst, payload bytes, current virtual time).  Because the base sample
  /// is >= min_latency by construction and the extra is clamped to >= 0, the
  /// clock condition's l_min stays a true lower bound under any shaper —
  /// asymmetric routes, time-varying congestion, per-flow throttling.
  /// Empty (the default) adds nothing.
  std::function<Duration(Rank src, Rank dst, std::uint32_t bytes, Time now)> extra_latency;
};

class Job {
 public:
  explicit Job(JobConfig cfg);
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  int ranks() const { return static_cast<int>(procs_.size()); }
  Engine& engine() { return engine_; }
  Proc& proc(Rank r);
  ClockEnsemble& clocks() { return clocks_; }
  const JobConfig& config() const { return cfg_; }

  /// Runs `main` as the body of every rank (SPMD) and drives the simulation
  /// to completion.  Throws if any process threw or the job deadlocked.
  void run(const std::function<Coro<void>(Proc&)>& main);

  /// Moves the collected trace out of the job (call after run()).
  Trace take_trace();

  /// Trace being built (region interning during setup).
  Trace& trace() { return trace_; }

 private:
  friend class Proc;

  std::int64_t next_msg_id() { return msg_id_++; }

  /// Consistent communicator-id allocation: every rank splitting the same
  /// parent instance with any color asks with the same (parent, seq, color)
  /// key and receives the same fresh id.
  std::int32_t comm_id_for(std::int32_t parent_id, std::int64_t split_seq, int color);

  /// Samples a latency and schedules mailbox delivery, enforcing
  /// non-overtaking order per (src, dst) pair like a real interconnect.
  /// `sender_ack` (rendezvous) fires when the receiver matches the message.
  void transport_send(Rank src, Rank dst, Tag tag, std::uint32_t bytes,
                      std::vector<double> data, std::int64_t id,
                      Trigger* sender_ack = nullptr,
                      std::shared_ptr<void> ack_keepalive = nullptr);

  JobConfig cfg_;
  Engine engine_;
  ClockEnsemble clocks_;
  RngTree rng_;
  Rng net_rng_;
  Trace trace_;
  Communicator world_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<std::vector<Time>> last_delivery_;
  std::int64_t msg_id_ = 0;
  std::map<std::tuple<std::int32_t, std::int64_t, int>, std::int32_t> comm_ids_;
  std::int32_t next_comm_id_ = 1;  // 0 is the world
};

}  // namespace chronosync
