#include "mpisim/comm.hpp"

#include <numeric>

namespace chronosync {

Communicator Communicator::world(int nranks) {
  CS_REQUIRE(nranks > 0, "world communicator needs ranks");
  std::vector<Rank> all(static_cast<std::size_t>(nranks));
  std::iota(all.begin(), all.end(), 0);
  return Communicator(0, std::move(all));
}

Communicator::Communicator(std::int32_t id, std::vector<Rank> members) : id_(id) {
  CS_REQUIRE(!members.empty(), "communicator needs members");
  members_ = std::make_shared<const std::vector<Rank>>(std::move(members));
}

int Communicator::rank_of(Rank world) const {
  for (std::size_t i = 0; i < members_->size(); ++i) {
    if ((*members_)[i] == world) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace chronosync
