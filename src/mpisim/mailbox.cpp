#include "mpisim/mailbox.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync {

namespace {

/// Occupancy histogram for one of the two mailbox queues, fed on insertion
/// (the new depth after the push).
void record_occupancy(obs::Histo& h, std::size_t depth) {
  h.add(static_cast<double>(depth));
}

obs::Histo& unexpected_hist() {
  static obs::Histo& h = obs::histogram("mpisim.unexpected_depth", 0.0, 4096.0, 64);
  return h;
}

obs::Histo& posted_hist() {
  static obs::Histo& h = obs::histogram("mpisim.posted_depth", 0.0, 4096.0, 64);
  return h;
}

}  // namespace

void Mailbox::deliver(Message msg, Time t) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(it->src, it->tag, msg)) {
      Trigger* ack = msg.sender_ack;
      *it->out = std::move(msg);
      *it->arrival = t;
      if (it->complete) *it->complete = true;
      Trigger* tr = it->tr;
      const std::shared_ptr<void> keepalive = std::move(it->keepalive);
      posted_.erase(it);
      tr->fire(t);
      if (ack) ack->fire(t);
      return;
    }
  }
  unexpected_.push_back({std::move(msg), t});
  if (obs::metrics_enabled()) {
    static obs::Counter& unexpected = obs::counter("mpisim.unexpected_msgs");
    unexpected.add(1);
    record_occupancy(unexpected_hist(), unexpected_.size());
  }
}

std::optional<std::pair<Message, Time>> Mailbox::try_match(Rank src, Tag tag, Time now) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(src, tag, it->msg)) {
      auto result = std::make_pair(std::move(it->msg), it->arrival);
      unexpected_.erase(it);
      if (result.first.sender_ack) result.first.sender_ack->fire(now);
      return result;
    }
  }
  return std::nullopt;
}

void Mailbox::post(Rank src, Tag tag, Message* out, Time* arrival, Trigger* tr,
                   bool* complete, std::shared_ptr<void> keepalive) {
  posted_.push_back({src, tag, out, arrival, tr, complete, std::move(keepalive)});
  if (obs::metrics_enabled()) {
    static obs::Counter& posted = obs::counter("mpisim.posted_recvs");
    posted.add(1);
    record_occupancy(posted_hist(), posted_.size());
  }
}

}  // namespace chronosync
