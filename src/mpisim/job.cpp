#include "mpisim/job.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync {

namespace {

std::array<Duration, 3> domain_minimums(const HierarchicalLatencyModel& lat) {
  return {lat.min_latency(CommDomain::SameChip), lat.min_latency(CommDomain::SameNode),
          lat.min_latency(CommDomain::CrossNode)};
}

}  // namespace

Job::Job(JobConfig cfg)
    : cfg_(std::move(cfg)),
      clocks_(cfg_.placement, cfg_.timer, RngTree(cfg_.seed).child("clocks")),
      rng_(RngTree(cfg_.seed)),
      net_rng_(rng_.stream("net")),
      trace_(cfg_.placement, domain_minimums(cfg_.latency), cfg_.timer.name),
      world_(Communicator::world(cfg_.placement.ranks())) {
  const int n = cfg_.placement.ranks();
  CS_REQUIRE(n > 0, "job needs at least one rank");

  // Two ranks on one core would need a scheduler model we deliberately do
  // not have; reject such placements.
  std::set<std::tuple<int, int, int>> used;
  for (Rank r = 0; r < n; ++r) {
    const CoreLocation& loc = cfg_.placement.location(r);
    CS_REQUIRE(used.insert({loc.node, loc.chip, loc.core}).second,
               "placement puts two ranks on one core");
  }

  procs_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    const RngTree proc_rng = rng_.child("proc" + std::to_string(r));
    procs_.push_back(std::make_unique<Proc>(*this, r, clocks_.clock(r),
                                            proc_rng.stream("workload"),
                                            proc_rng.stream("os-noise")));
    procs_.back()->set_tracing(cfg_.start_tracing);
  }
  last_delivery_.assign(static_cast<std::size_t>(n),
                        std::vector<Time>(static_cast<std::size_t>(n), -kTimeInfinity));
}

Proc& Job::proc(Rank r) {
  CS_REQUIRE(r >= 0 && r < ranks(), "rank out of job range");
  return *procs_[static_cast<std::size_t>(r)];
}

void Job::run(const std::function<Coro<void>(Proc&)>& main) {
  for (Rank r = 0; r < ranks(); ++r) {
    engine_.spawn(main(proc(r)));
  }
  engine_.run();
  if (engine_.deadlocked()) {
    std::ostringstream os;
    os << "simulation deadlocked: " << engine_.completed() << "/" << engine_.spawned()
       << " processes finished";
    for (Rank r = 0; r < ranks(); ++r) {
      const auto& mb = procs_[static_cast<std::size_t>(r)]->mailbox_;
      if (mb.posted_count() > 0 || mb.unexpected_count() > 0) {
        os << "; rank " << r << ": posted=" << mb.posted_count()
           << " unexpected=" << mb.unexpected_count();
      }
    }
    throw std::runtime_error(os.str());
  }
}

Trace Job::take_trace() {
  Trace out(cfg_.placement, domain_minimums(cfg_.latency), cfg_.timer.name);
  std::swap(out, trace_);
  return out;
}

std::int32_t Job::comm_id_for(std::int32_t parent_id, std::int64_t split_seq, int color) {
  const auto key = std::make_tuple(parent_id, split_seq, color);
  auto it = comm_ids_.find(key);
  if (it == comm_ids_.end()) it = comm_ids_.emplace(key, next_comm_id_++).first;
  return it->second;
}

void Job::transport_send(Rank src, Rank dst, Tag tag, std::uint32_t bytes,
                         std::vector<double> data, std::int64_t id, Trigger* sender_ack,
                         std::shared_ptr<void> ack_keepalive) {
  CS_REQUIRE(dst >= 0 && dst < ranks(), "send to invalid rank");
  CS_REQUIRE(dst != src, "self-messages are not modeled");

  Duration lat = cfg_.latency.sample(cfg_.placement.domain(src, dst), bytes, net_rng_);
  if (cfg_.extra_latency) {
    lat += std::max(0.0, cfg_.extra_latency(src, dst, bytes, engine_.now()));
  }
  Time& last = last_delivery_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
  const Time arrival =
      std::max(engine_.now() + lat, last + cfg_.msg_spacing);
  last = arrival;

  if (obs::metrics_enabled()) {
    static obs::Counter& messages = obs::counter("mpisim.messages");
    static obs::Counter& msg_bytes = obs::counter("mpisim.message_bytes");
    messages.add(1);
    msg_bytes.add(static_cast<std::int64_t>(bytes));
  }

  Message msg{src, tag, bytes, std::move(data), id, sender_ack, std::move(ack_keepalive)};
  Proc* receiver = procs_[static_cast<std::size_t>(dst)].get();
  engine_.schedule(arrival, [receiver, m = std::move(msg), arrival]() mutable {
    receiver->mailbox_.deliver(std::move(m), arrival);
  });
}

}  // namespace chronosync
