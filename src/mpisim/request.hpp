// Nonblocking communication requests (MPI_Isend / MPI_Irecv / MPI_Wait).
//
// A request is a handle to an in-flight operation.  Isend completes locally
// after the send overhead (eager protocol); Irecv completes when a matching
// message has been delivered and consumed.  Waiting on an already-complete
// request costs nothing; waitall() completes in any order.
#pragma once

#include <memory>

#include "common/expect.hpp"
#include "mpisim/message.hpp"
#include "sim/engine.hpp"

namespace chronosync {

class Proc;

/// Shared state of one nonblocking operation.
struct RequestState {
  explicit RequestState(Engine& e) : trigger(e) {}
  Trigger trigger;
  bool complete = false;
  bool is_recv = false;
  bool recv_recorded = false;  ///< Recv event emitted by a wait() already
  Message message;             ///< filled for receives
  Time completion_time = 0.0;
};

/// Move-only request handle returned by isend()/irecv().
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state) : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool complete() const { return state_ && state_->complete; }

  /// The received message; only valid after completion of an irecv request.
  const Message& message() const {
    CS_REQUIRE(state_ && state_->complete && state_->is_recv,
               "message() requires a completed receive request");
    return state_->message;
  }

 private:
  friend class Proc;
  std::shared_ptr<RequestState> state_;
};

}  // namespace chronosync
