#include "mpisim/proc.hpp"

#include <utility>

#include "common/expect.hpp"
#include "mpisim/job.hpp"

namespace chronosync {

Proc::Proc(Job& job, Rank rank, SimClock& clock, Rng workload_rng, Rng noise_rng)
    : job_(job), rank_(rank), clock_(&clock), rng_(workload_rng), noise_rng_(noise_rng) {}

int Proc::nranks() const { return job_.ranks(); }

Time Proc::now() const { return job_.engine_.now(); }

Engine& Proc::engine() const { return job_.engine_; }

std::int32_t Proc::region(const std::string& name) { return job_.trace_.intern_region(name); }

void Proc::record(Event e) {
  if (!tracing_) return;
  e.true_ts = now();
  e.local_ts = clock_->read(e.true_ts);
  job_.trace_.events(rank_).push_back(e);
}

void Proc::enter(std::int32_t region_id) {
  Event e;
  e.type = EventType::Enter;
  e.region = region_id;
  record(e);
}

void Proc::exit(std::int32_t region_id) {
  Event e;
  e.type = EventType::Exit;
  e.region = region_id;
  record(e);
}

Coro<void> Proc::compute(Duration d) {
  CS_REQUIRE(d >= 0.0, "negative compute duration");
  Duration total = d;
  if (job_.cfg_.os_noise_rate > 0.0 && d > 0.0) {
    // OS jitter: preemptions arrive as a Poisson process over the compute
    // phase; each one stretches it by an exponential holdup.
    Time next = noise_rng_.exponential(job_.cfg_.os_noise_rate);
    while (next < d) {
      total += noise_rng_.exponential(1.0 / job_.cfg_.os_noise_scale);
      next += noise_rng_.exponential(job_.cfg_.os_noise_rate);
    }
  }
  co_await engine().delay(total);
}

Coro<void> Proc::send(Rank dst, Tag tag, std::uint32_t bytes, std::vector<double> data) {
  CS_REQUIRE(tag >= 0 && tag < kInternalTagBase, "user tag out of range");
  return send_impl(dst, tag, bytes, std::move(data), /*traced=*/true);
}

Coro<Message> Proc::recv(Rank src, Tag tag) {
  CS_REQUIRE(tag == kAnyTag || (tag >= 0 && tag < kInternalTagBase), "user tag out of range");
  return recv_impl(src, tag, /*traced=*/true);
}

void Proc::mpi_enter(std::int32_t& cache, const char* name) {
  if (!job_.cfg_.record_mpi_regions || !tracing_) return;
  if (cache < 0) cache = job_.trace_.intern_region(name);
  enter(cache);
}

void Proc::mpi_exit(std::int32_t region_id) {
  if (!job_.cfg_.record_mpi_regions || !tracing_ || region_id < 0) return;
  exit(region_id);
}

Coro<void> Proc::send_impl(Rank dst, Tag tag, std::uint32_t bytes, std::vector<double> data,
                           bool traced) {
  const std::int64_t id = job_.next_msg_id();
  if (traced) mpi_enter(send_region_, "MPI_Send");
  if (traced) {
    Event e;
    e.type = EventType::Send;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.msg_id = id;
    record(e);
  }
  const bool rendezvous =
      job_.cfg_.rendezvous_threshold > 0 && bytes >= job_.cfg_.rendezvous_threshold;
  if (!rendezvous) {
    job_.transport_send(rank_, dst, tag, bytes, std::move(data), id);
    co_await engine().delay(job_.cfg_.send_overhead);
  } else {
    // Rendezvous: block until the receiver has matched the message, plus the
    // return path of the clear-to-send handshake.
    Trigger ack(engine());
    job_.transport_send(rank_, dst, tag, bytes, std::move(data), id, &ack);
    co_await ack;
    const Duration back =
        job_.cfg_.latency.min_latency(job_.cfg_.placement.domain(dst, rank_), 0);
    co_await engine().delay(back + job_.cfg_.send_overhead);
  }
  if (traced) mpi_exit(send_region_);
}

Coro<Message> Proc::recv_impl(Rank src, Tag tag, bool traced) {
  // PMPI wrappers time the whole blocking call: Enter fires at call time,
  // before the wait.
  if (traced) mpi_enter(recv_region_, "MPI_Recv");
  Message msg;
  if (auto hit = mailbox_.try_match(src, tag, now())) {
    msg = std::move(hit->first);
  } else {
    Trigger tr(engine());
    Time arrival = 0.0;
    mailbox_.post(src, tag, &msg, &arrival, &tr);
    co_await tr;
  }
  co_await engine().delay(job_.cfg_.recv_overhead);
  if (traced) {
    Event e;
    e.type = EventType::Recv;
    e.peer = msg.src;
    e.tag = msg.tag;
    e.bytes = msg.bytes;
    e.msg_id = msg.id;
    record(e);
    mpi_exit(recv_region_);
  }
  co_return msg;
}

Request Proc::isend(Rank dst, Tag tag, std::uint32_t bytes, std::vector<double> data) {
  CS_REQUIRE(tag >= 0 && tag < kInternalTagBase, "user tag out of range");
  const std::int64_t id = job_.next_msg_id();
  mpi_enter(isend_region_, "MPI_Isend");
  if (tracing_) {
    Event e;
    e.type = EventType::Send;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.msg_id = id;
    record(e);
  }
  mpi_exit(isend_region_);

  auto state = std::make_shared<RequestState>(engine());
  const bool rendezvous =
      job_.cfg_.rendezvous_threshold > 0 && bytes >= job_.cfg_.rendezvous_threshold;
  if (rendezvous) {
    // The request's trigger doubles as the rendezvous acknowledgement; the
    // mailbox fires it when the receiver matches.  The message pins the
    // state in case the application drops the Request before completion.
    job_.transport_send(rank_, dst, tag, bytes, std::move(data), id, &state->trigger,
                        state);
  } else {
    job_.transport_send(rank_, dst, tag, bytes, std::move(data), id);
    const Time done_at = now() + job_.cfg_.send_overhead;
    engine().schedule(done_at, [state, done_at] {
      state->complete = true;
      state->completion_time = done_at;
      state->trigger.fire(done_at);
    });
  }
  return Request(std::move(state));
}

Request Proc::irecv(Rank src, Tag tag) {
  CS_REQUIRE(tag == kAnyTag || (tag >= 0 && tag < kInternalTagBase), "user tag out of range");
  mpi_enter(irecv_region_, "MPI_Irecv");
  auto state = std::make_shared<RequestState>(engine());
  state->is_recv = true;
  if (auto hit = mailbox_.try_match(src, tag, now())) {
    state->message = std::move(hit->first);
    state->completion_time = hit->second;
    state->complete = true;
    state->trigger.fire(now());
  } else {
    mailbox_.post(src, tag, &state->message, &state->completion_time, &state->trigger,
                  &state->complete, state);
  }
  mpi_exit(irecv_region_);
  return Request(state);
}

Coro<Message> Proc::wait(Request req) {
  CS_REQUIRE(req.valid(), "waiting on an empty request");
  RequestState& state = *req.state_;
  mpi_enter(wait_region_, "MPI_Wait");
  if (!state.trigger.fired()) {
    co_await state.trigger;
  }
  state.complete = true;  // rendezvous acks fire the trigger without the flag
  if (state.is_recv) {
    co_await engine().delay(job_.cfg_.recv_overhead);
    if (tracing_ && !state.recv_recorded) {
      Event e;
      e.type = EventType::Recv;
      e.peer = state.message.src;
      e.tag = state.message.tag;
      e.bytes = state.message.bytes;
      e.msg_id = state.message.id;
      record(e);
      state.recv_recorded = true;
    }
  }
  mpi_exit(wait_region_);
  co_return state.message;
}

Coro<void> Proc::waitall(std::vector<Request> reqs) {
  for (auto& r : reqs) {
    (void)co_await wait(std::move(r));
  }
}

Coro<void> Proc::isend_internal(Rank dst, Tag tag, std::uint32_t bytes) {
  return send_impl(dst, tag, bytes, {}, /*traced=*/false);
}

Coro<void> Proc::recv_internal(Rank src, Tag tag) {
  Coro<Message> r = recv_impl(src, tag, /*traced=*/false);
  co_await std::move(r);
}

}  // namespace chronosync
