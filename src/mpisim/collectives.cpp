// Collective algorithms over the internal point-to-point layer.
//
// The algorithms mirror common MPI implementations (dissemination barrier,
// binomial broadcast/reduce, recursive-doubling allreduce, ring allgather,
// shifted pairwise alltoall) so the *timing* of collective events shows the
// realistic skew the paper's analysis depends on.  Internal traffic is not
// traced; the trace records one CollBegin/CollEnd pair per member per
// instance, as Scalasca does.
//
// Every operation runs on a Communicator: algorithms work in communicator
// ranks and translate to world ranks only when messages are sent.  Instance
// ids combine the communicator id and a per-communicator sequence number.
#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "mpisim/job.hpp"
#include "mpisim/proc.hpp"

namespace chronosync {

namespace {

/// Number of tags each collective instance may use.
constexpr Tag kTagsPerInstance = 4;

const char* mpi_region_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::Barrier: return "MPI_Barrier";
    case CollectiveKind::Bcast: return "MPI_Bcast";
    case CollectiveKind::Reduce: return "MPI_Reduce";
    case CollectiveKind::Allreduce: return "MPI_Allreduce";
    case CollectiveKind::Gather: return "MPI_Gather";
    case CollectiveKind::Scatter: return "MPI_Scatter";
    case CollectiveKind::Allgather: return "MPI_Allgather";
    case CollectiveKind::Alltoall: return "MPI_Alltoall";
  }
  return "MPI_Collective";
}

/// Spreads instance ids across the internal tag range (mixing both the
/// communicator id in the high half and the sequence number).
Tag instance_tag(std::int64_t cid) {
  std::uint64_t h = static_cast<std::uint64_t>(cid);
  h = splitmix64(h);
  return kInternalTagBase +
         static_cast<Tag>((h % (kInternalTagRange / kTagsPerInstance)) * kTagsPerInstance);
}

}  // namespace

const Communicator& Proc::comm_world() const { return job_.world_; }

Coro<void> Proc::coll_impl(const Communicator& comm, CollectiveKind kind, int root,
                           std::uint32_t bytes) {
  CS_REQUIRE(root >= 0 && root < comm.size(), "collective root out of range");
  const int my = comm.rank_of(rank_);
  CS_REQUIRE(my >= 0, "rank is not a member of the communicator");

  const std::int64_t seq = coll_seq_[comm.id()]++;
  const std::int64_t cid = (static_cast<std::int64_t>(comm.id()) << 32) | seq;
  const Tag base = instance_tag(cid);

  mpi_enter(coll_region_[static_cast<std::size_t>(kind)], mpi_region_name(kind));

  Event b;
  b.type = EventType::CollBegin;
  b.coll = kind;
  b.coll_id = cid;
  b.root = comm.world_rank(root);
  b.bytes = bytes;
  record(b);

  if (comm.size() > 1) {
    switch (kind) {
      case CollectiveKind::Barrier: co_await run_barrier(comm, my, base); break;
      case CollectiveKind::Bcast: co_await run_bcast(comm, my, root, bytes, base); break;
      case CollectiveKind::Reduce: co_await run_reduce(comm, my, root, bytes, base); break;
      case CollectiveKind::Allreduce: co_await run_allreduce(comm, my, bytes, base); break;
      case CollectiveKind::Gather: co_await run_gather(comm, my, root, bytes, base); break;
      case CollectiveKind::Scatter: co_await run_scatter(comm, my, root, bytes, base); break;
      case CollectiveKind::Allgather: co_await run_allgather(comm, my, bytes, base); break;
      case CollectiveKind::Alltoall: co_await run_alltoall(comm, my, bytes, base); break;
    }
  }

  Event e;
  e.type = EventType::CollEnd;
  e.coll = kind;
  e.coll_id = cid;
  e.root = comm.world_rank(root);
  e.bytes = bytes;
  record(e);

  mpi_exit(coll_region_[static_cast<std::size_t>(kind)]);
}

// World-communicator conveniences.
Coro<void> Proc::barrier() { return coll_impl(comm_world(), CollectiveKind::Barrier, 0, 0); }
Coro<void> Proc::bcast(Rank root, std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Bcast, root, bytes);
}
Coro<void> Proc::reduce(Rank root, std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Reduce, root, bytes);
}
Coro<void> Proc::allreduce(std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Allreduce, 0, bytes);
}
Coro<void> Proc::gather(Rank root, std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Gather, root, bytes);
}
Coro<void> Proc::scatter(Rank root, std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Scatter, root, bytes);
}
Coro<void> Proc::allgather(std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Allgather, 0, bytes);
}
Coro<void> Proc::alltoall(std::uint32_t bytes) {
  return coll_impl(comm_world(), CollectiveKind::Alltoall, 0, bytes);
}

// Sub-communicator variants.
Coro<void> Proc::barrier(const Communicator& comm) {
  return coll_impl(comm, CollectiveKind::Barrier, 0, 0);
}
Coro<void> Proc::bcast(const Communicator& comm, int root, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Bcast, root, bytes);
}
Coro<void> Proc::reduce(const Communicator& comm, int root, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Reduce, root, bytes);
}
Coro<void> Proc::allreduce(const Communicator& comm, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Allreduce, 0, bytes);
}
Coro<void> Proc::gather(const Communicator& comm, int root, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Gather, root, bytes);
}
Coro<void> Proc::scatter(const Communicator& comm, int root, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Scatter, root, bytes);
}
Coro<void> Proc::allgather(const Communicator& comm, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Allgather, 0, bytes);
}
Coro<void> Proc::alltoall(const Communicator& comm, std::uint32_t bytes) {
  return coll_impl(comm, CollectiveKind::Alltoall, 0, bytes);
}

// ----------------------------------------------------------------- barrier

Coro<void> Proc::run_barrier(const Communicator& comm, int r, Tag base) {
  // Dissemination barrier: in round k, notify rank+2^k and wait for rank-2^k.
  const int n = comm.size();
  for (int k = 1; k < n; k <<= 1) {
    const Rank to = comm.world_rank((r + k) % n);
    const Rank from = comm.world_rank((r - k % n + n) % n);
    co_await isend_internal(to, base, 0);
    co_await recv_internal(from, base);
    co_await engine().delay(job_.cfg_.coll_round_overhead);
  }
}

// ------------------------------------------------------------------- bcast

Coro<void> Proc::run_bcast(const Communicator& comm, int r, int root, std::uint32_t bytes,
                           Tag base) {
  // Binomial tree rooted at `root` (virtual rank 0).
  const int n = comm.size();
  const int vr = (r - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const Rank parent = comm.world_rank(((vr - mask) + root) % n);
      co_await recv_internal(parent, base);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const Rank child = comm.world_rank(((vr + mask) + root) % n);
      co_await isend_internal(child, base, bytes);
    }
    mask >>= 1;
  }
  co_await engine().delay(job_.cfg_.coll_round_overhead);
}

// ------------------------------------------------------------------ reduce

Coro<void> Proc::run_reduce(const Communicator& comm, int r, int root, std::uint32_t bytes,
                            Tag base) {
  // Binomial tree, leaves to root.
  const int n = comm.size();
  const int vr = (r - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      if (vr + mask < n) {
        const Rank child = comm.world_rank(((vr + mask) + root) % n);
        co_await recv_internal(child, base);
        co_await engine().delay(job_.cfg_.coll_round_overhead);  // combine cost
      }
      mask <<= 1;
    } else {
      const Rank parent = comm.world_rank(((vr - mask) + root) % n);
      co_await isend_internal(parent, base, bytes);
      break;
    }
  }
}

// --------------------------------------------------------------- allreduce

Coro<void> Proc::run_allreduce(const Communicator& comm, int r, std::uint32_t bytes,
                               Tag base) {
  const int n = comm.size();
  if ((n & (n - 1)) == 0) {
    // Recursive doubling: exchange with rank ^ 2^k each round.
    for (int mask = 1; mask < n; mask <<= 1) {
      const Rank partner = comm.world_rank(r ^ mask);
      co_await isend_internal(partner, base, bytes);
      co_await recv_internal(partner, base);
      co_await engine().delay(job_.cfg_.coll_round_overhead);
    }
  } else {
    // Non-power-of-two: reduce to 0, then broadcast.
    co_await run_reduce(comm, r, 0, bytes, base);
    co_await run_bcast(comm, r, 0, bytes, base + 1);
  }
}

// ------------------------------------------------------------ gather/scatter

Coro<void> Proc::run_gather(const Communicator& comm, int r, int root, std::uint32_t bytes,
                            Tag base) {
  if (r == root) {
    for (int m = 0; m < comm.size(); ++m) {
      if (m == root) continue;
      co_await recv_internal(comm.world_rank(m), base);
    }
  } else {
    co_await isend_internal(comm.world_rank(root), base, bytes);
  }
  co_await engine().delay(job_.cfg_.coll_round_overhead);
}

Coro<void> Proc::run_scatter(const Communicator& comm, int r, int root, std::uint32_t bytes,
                             Tag base) {
  if (r == root) {
    for (int m = 0; m < comm.size(); ++m) {
      if (m == root) continue;
      co_await isend_internal(comm.world_rank(m), base, bytes);
    }
  } else {
    co_await recv_internal(comm.world_rank(root), base);
  }
  co_await engine().delay(job_.cfg_.coll_round_overhead);
}

// -------------------------------------------------------- allgather/alltoall

Coro<void> Proc::run_allgather(const Communicator& comm, int r, std::uint32_t bytes,
                               Tag base) {
  // Ring: n-1 rounds passing blocks to the right neighbour.  Matching relies
  // on the transport's per-pair FIFO order (non-overtaking).
  const int n = comm.size();
  const Rank right = comm.world_rank((r + 1) % n);
  const Rank left = comm.world_rank((r - 1 + n) % n);
  for (int round = 0; round < n - 1; ++round) {
    co_await isend_internal(right, base, bytes);
    co_await recv_internal(left, base);
    co_await engine().delay(job_.cfg_.coll_round_overhead);
  }
}

Coro<void> Proc::run_alltoall(const Communicator& comm, int r, std::uint32_t bytes, Tag base) {
  // Shifted pairwise exchange: round i talks to rank +/- i.
  const int n = comm.size();
  for (int i = 1; i < n; ++i) {
    const Rank to = comm.world_rank((r + i) % n);
    const Rank from = comm.world_rank((r - i + n) % n);
    co_await isend_internal(to, base, bytes);
    co_await recv_internal(from, base);
    co_await engine().delay(job_.cfg_.coll_round_overhead);
  }
}

// ---------------------------------------------------------------- comm split

Coro<Communicator> Proc::split(const Communicator& parent, int color, int key) {
  const int my = parent.rank_of(rank_);
  CS_REQUIRE(my >= 0, "rank is not a member of the parent communicator");
  const std::int64_t seq = split_seq_[parent.id()]++;
  const Tag base = instance_tag((static_cast<std::int64_t>(parent.id()) << 32) |
                                (seq ^ 0x5157000000000000LL));
  const int n = parent.size();
  const Rank leader = parent.world_rank(0);

  // Gather (member rank, color, key) at the parent's rank 0, then broadcast
  // the full list; everyone derives the groups locally and identically.
  std::vector<double> table;  // flattened triples
  if (my == 0) {
    table.reserve(static_cast<std::size_t>(n) * 3);
    table.push_back(0.0);
    table.push_back(color);
    table.push_back(key);
    for (int m = 1; m < n; ++m) {
      Message msg = co_await recv_impl(kAnySource, base, /*traced=*/false);
      table.insert(table.end(), msg.data.begin(), msg.data.end());
    }
    for (int m = 1; m < n; ++m) {
      std::vector<double> copy = table;
      co_await send_impl(parent.world_rank(m), base + 1, 16u * static_cast<std::uint32_t>(n),
                         std::move(copy), /*traced=*/false);
    }
  } else {
    std::vector<double> mine = {static_cast<double>(my), static_cast<double>(color),
                                static_cast<double>(key)};
    co_await send_impl(leader, base, 16, std::move(mine), /*traced=*/false);
    Message msg = co_await recv_impl(leader, base + 1, /*traced=*/false);
    table = std::move(msg.data);
  }

  // My color group, ordered by (key, parent rank) as MPI_Comm_split does.
  struct Entry {
    int parent_rank;
    int key;
  };
  std::vector<Entry> group;
  for (std::size_t i = 0; i + 3 <= table.size(); i += 3) {
    const int pr = static_cast<int>(table[i]);
    const int c = static_cast<int>(table[i + 1]);
    const int k = static_cast<int>(table[i + 2]);
    if (c == color) group.push_back({pr, k});
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });
  std::vector<Rank> members;
  members.reserve(group.size());
  for (const Entry& e : group) members.push_back(parent.world_rank(e.parent_rank));

  // A consistent id: every member asks the job registry with the same key.
  const std::int32_t id = job_.comm_id_for(parent.id(), seq, color);
  co_return Communicator(id, std::move(members));
}

}  // namespace chronosync
