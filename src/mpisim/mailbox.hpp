// Per-rank message matching with MPI semantics: a receive names (source,
// tag), either may be a wildcard, and matching follows arrival order for
// unexpected messages and post order for pending receives.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "mpisim/message.hpp"
#include "sim/engine.hpp"

namespace chronosync {

class Mailbox {
 public:
  /// Transport calls this when a message arrives at virtual time t.  If a
  /// posted receive matches, its trigger fires at t.
  void deliver(Message msg, Time t);

  /// Receive-side fast path: match an already-arrived message at virtual
  /// time `now`.  Returns the message and its arrival time; fires the
  /// message's rendezvous acknowledgement, if any, at `now`.
  std::optional<std::pair<Message, Time>> try_match(Rank src, Tag tag, Time now);

  /// Registers a pending receive; when a matching message arrives, `*out`
  /// and `*arrival` are filled, `*complete` (if given) is set, and `tr`
  /// fires.  `keepalive` pins shared state (nonblocking requests) until
  /// delivery.
  void post(Rank src, Tag tag, Message* out, Time* arrival, Trigger* tr,
            bool* complete = nullptr, std::shared_ptr<void> keepalive = nullptr);

  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::size_t posted_count() const { return posted_.size(); }

 private:
  struct Arrived {
    Message msg;
    Time arrival;
  };
  struct Posted {
    Rank src;
    Tag tag;
    Message* out;
    Time* arrival;
    Trigger* tr;
    bool* complete;
    std::shared_ptr<void> keepalive;
  };

  static bool matches(Rank want_src, Tag want_tag, const Message& m) {
    return (want_src == kAnySource || want_src == m.src) &&
           (want_tag == kAnyTag || want_tag == m.tag);
  }

  std::deque<Arrived> unexpected_;
  std::deque<Posted> posted_;
};

}  // namespace chronosync
