// Communicators: ordered process groups with their own collective context.
//
// Mirrors MPI semantics: the world communicator spans all ranks; split()
// partitions a parent communicator by color, ordering members by (key,
// parent rank).  Collective operations on a communicator involve exactly its
// members, and collective instances are identified by (communicator id,
// per-communicator sequence number), so traces of multi-communicator codes
// group correctly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace chronosync {

class Communicator {
 public:
  /// The world communicator over `nranks` ranks (id 0).
  static Communicator world(int nranks);

  /// A communicator with explicit members (world ranks, in rank order of the
  /// new communicator).  Ids must be allocated consistently on all ranks;
  /// Proc::split() does this automatically.
  Communicator(std::int32_t id, std::vector<Rank> members);

  std::int32_t id() const { return id_; }
  int size() const { return static_cast<int>(members_->size()); }

  /// World rank of communicator rank `r`.
  Rank world_rank(int r) const {
    CS_REQUIRE(r >= 0 && r < size(), "communicator rank out of range");
    return (*members_)[static_cast<std::size_t>(r)];
  }

  /// Communicator rank of a world rank; -1 if not a member.
  int rank_of(Rank world) const;

  bool contains(Rank world) const { return rank_of(world) >= 0; }

  const std::vector<Rank>& members() const { return *members_; }

 private:
  std::int32_t id_ = 0;
  std::shared_ptr<const std::vector<Rank>> members_;
};

}  // namespace chronosync
