// Structured, schema-versioned benchmark records and the JSON-lines reporter
// that appends them to a trajectory file (BENCH_*.json).  One record per
// measurement; records from different binaries/runs concatenate freely.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "benchkit/json.hpp"

namespace chronosync::benchkit {

/// Bump when the record layout changes incompatibly; consumers must check it.
/// History:
///   1 — initial layout
///   2 — adds cpu_user_ns / cpu_sys_ns (process CPU time over the timed
///       repetitions, from getrusage); v1 records still parse, with both
///       fields defaulting to 0
///   3 — adds wall_ns_ci_lo / wall_ns_ci_hi / boot_resamples /
///       boot_confidence (bootstrap median confidence interval over the
///       timed repetitions); older records parse with all four at 0
///
/// A record's emitted schema_version reflects its content, not this
/// constant: v3 keys only appear when a bootstrap interval was computed
/// (boot_resamples > 0), v2 when CPU time was sampled, and a record carrying
/// neither is written as v1 without the newer keys.  Earlier revisions
/// stamped kSchemaVersion unconditionally, which mislabeled records that had
/// no v2 content.
inline constexpr int kSchemaVersion = 3;

using ConfigList = std::vector<std::pair<std::string, std::string>>;
using MetricList = std::vector<std::pair<std::string, double>>;

struct BenchRecord {
  std::string suite;   // binary-level grouping, e.g. "perf_clc"
  std::string name;    // measurement within the suite, e.g. "clc_sequential"
  std::string kind;    // "timing" (wall_ns_* populated) or "metric"
  ConfigList config;   // knobs that identify the configuration, as strings
  std::int64_t iters = 0;
  double wall_ns_p50 = 0.0;
  double wall_ns_p90 = 0.0;
  double wall_ns_min = 0.0;
  double wall_ns_ci_lo = 0.0;  // bootstrap CI for the median (schema >= 3);
  double wall_ns_ci_hi = 0.0;  //   both 0 when boot_resamples == 0
  std::int64_t boot_resamples = 0;  // 0 means no interval was computed
  double boot_confidence = 0.0;     // e.g. 0.95; 0 when no interval
  double throughput = 0.0;  // items per second at the p50 time; 0 if n/a
  MetricList metrics;       // named scalar results (figure/table numbers)
  std::int64_t cpu_user_ns = 0;  // user CPU over the timed reps (schema >= 2)
  std::int64_t cpu_sys_ns = 0;   // system CPU over the timed reps (schema >= 2)
  std::int64_t peak_rss_bytes = 0;
  std::int64_t alloc_bytes_per_iter = 0;
  std::string git_sha;
  std::int64_t timestamp = 0;  // unix seconds
};

JsonValue to_json(const BenchRecord& record);

/// Parses one JSON-lines record back; throws on schema_version mismatch or
/// missing keys (used by tests and trajectory tooling).
BenchRecord record_from_json(const JsonValue& value);

/// Appends records to a JSON-lines file, creating parent directories.  Each
/// append opens/closes the file so concurrent bench binaries interleave at
/// line granularity and a crash keeps the prefix.
class JsonReporter {
 public:
  explicit JsonReporter(std::string path) : path_(std::move(path)) {}

  void append(const BenchRecord& record) const;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace chronosync::benchkit
