// Process-level resource counters sampled around benchmark iterations:
// resident-set size from the kernel and heap-allocation totals from
// counting replacements of the global allocation functions.
#pragma once

#include <cstdint>

namespace chronosync::benchkit {

struct ResourceUsage {
  /// High-water-mark RSS (ru_maxrss), in bytes.
  std::int64_t peak_rss_bytes = 0;
  /// Current RSS from /proc/self/statm, in bytes (0 where unavailable).
  std::int64_t current_rss_bytes = 0;
  /// Process user-mode CPU time (ru_utime), in nanoseconds, cumulative since
  /// process start — diff two samples to meter a region.
  std::int64_t cpu_user_ns = 0;
  /// Process kernel-mode CPU time (ru_stime), in nanoseconds, cumulative.
  std::int64_t cpu_sys_ns = 0;
};

ResourceUsage sample_resource_usage();

struct AllocationTotals {
  /// Bytes requested through operator new since process start (monotonic;
  /// frees are not subtracted — diff two samples to meter a region).
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

AllocationTotals allocation_totals();

}  // namespace chronosync::benchkit
