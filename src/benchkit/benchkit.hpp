// Umbrella header for the benchmark/observability kit: include this from
// bench binaries and use benchkit::Harness.
#pragma once

#include "benchkit/json.hpp"      // IWYU pragma: export
#include "benchkit/metrics.hpp"   // IWYU pragma: export
#include "benchkit/reporter.hpp"  // IWYU pragma: export
#include "benchkit/runner.hpp"    // IWYU pragma: export
#include "benchkit/stats.hpp"     // IWYU pragma: export
