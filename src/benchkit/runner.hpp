// The bench harness every binary under bench/ runs on: warmup + repeated
// timing with robust statistics (p50/p90/min over reps), resource counters,
// and optional JSON-lines reporting via --json <path>.
//
// Standard CLI contract (parsed from the binary's Cli):
//   --json <path>            append schema-versioned records to <path>
//   --reps <n>               timed repetitions per measurement (default 5)
//   --warmup <n>             untimed warmup repetitions (default 1)
//   --seed <n>               carried into every record's config for
//                            reproducibility; also seeds the bootstrap
//   --boot-resamples <n>     bootstrap resamples for the median confidence
//                            interval (default 1000; 0 disables, dropping
//                            the record back to schema v2)
//   --boot-confidence <p>    interval coverage (default 0.95)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "benchkit/reporter.hpp"
#include "common/cli.hpp"

namespace chronosync::benchkit {

/// Per-binary defaults, overridden by --reps / --warmup.  Perf binaries keep
/// the repetition-heavy default; figure/table reproductions pass {1, 0} so
/// their default wall time stays what it was before the harness existed.
struct HarnessDefaults {
  int reps = 5;
  int warmup = 1;
};

class Harness {
 public:
  Harness(const Cli& cli, std::string suite, HarnessDefaults defaults = {});

  /// Runs `fn` warmup() untimed + reps() timed times and records wall-time
  /// percentiles across the timed repetitions.  `items_per_iter` > 0 also
  /// derives a throughput (items per second at the p50 time).  Prints a
  /// one-line summary to stderr (stdout belongs to the figure/table text).
  BenchRecord time(const std::string& name, ConfigList config, std::int64_t items_per_iter,
                   const std::function<void()>& fn);

  /// Records scalar results (figure/table numbers) without timing.
  BenchRecord metric(const std::string& name, ConfigList config, MetricList metrics);

  int reps() const { return reps_; }
  int warmup() const { return warmup_; }
  int boot_resamples() const { return boot_resamples_; }
  bool json_enabled() const { return !json_path_.empty(); }
  const std::string& suite() const { return suite_; }
  const std::vector<BenchRecord>& records() const { return records_; }

  /// Build-time git revision (CHRONOSYNC_GIT_SHA), overridable through the
  /// environment variable of the same name; "unknown" when outside git.
  static std::string git_sha();

 private:
  const BenchRecord& finish(BenchRecord record);

  std::string suite_;
  int reps_;
  int warmup_;
  int boot_resamples_;
  double boot_confidence_;
  std::uint64_t seed_;
  std::string json_path_;
  std::vector<BenchRecord> records_;
};

/// "12.3 us" style rendering of a nanosecond quantity.
std::string format_ns(double ns);

/// Keeps `value` observable so the optimizer cannot elide the computation
/// that produced it.
template <class T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace chronosync::benchkit
