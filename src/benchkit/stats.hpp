// Uncertainty statistics for benchmark timings.
//
// Wall-time samples from a handful of repetitions are noisy and non-normal
// (scheduler preemption gives a long right tail), so regression gating on a
// raw p50 ratio trips on noise.  The percentile bootstrap makes the noise
// explicit: resample the per-repetition timings with replacement, take the
// median of each resample, and report a quantile interval of those medians.
// Two measurements whose intervals do not overlap differ by more than the
// run-to-run noise — that is the CI regression rule.
#pragma once

#include <cstdint>
#include <vector>

namespace chronosync::benchkit {

/// Percentile-bootstrap confidence interval for the median of a sample.
struct BootstrapCi {
  double point = 0.0;  // median of the original sample
  double lo = 0.0;     // lower quantile of the resampled medians
  double hi = 0.0;     // upper quantile of the resampled medians
  int resamples = 0;
  double confidence = 0.0;
};

/// Deterministic for a fixed (samples, resamples, confidence, seed) tuple:
/// the resampling indices come from the repo's own xoshiro256** stream, not
/// std::random, so results are identical across platforms and stdlibs.
/// A constant sample yields a zero-width interval.  Requires a non-empty
/// sample, resamples >= 1, and confidence in (0, 1).
BootstrapCi bootstrap_median_ci(const std::vector<double>& samples, int resamples = 1000,
                                double confidence = 0.95, std::uint64_t seed = 42);

}  // namespace chronosync::benchkit
