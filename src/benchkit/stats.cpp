#include "benchkit/stats.hpp"

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace chronosync::benchkit {

BootstrapCi bootstrap_median_ci(const std::vector<double>& samples, int resamples,
                                double confidence, std::uint64_t seed) {
  CS_REQUIRE(!samples.empty(), "bootstrap_median_ci needs at least one sample");
  CS_REQUIRE(resamples >= 1, "bootstrap_median_ci needs at least one resample");
  CS_REQUIRE(confidence > 0.0 && confidence < 1.0,
             "bootstrap confidence must be in (0, 1)");

  BootstrapCi ci;
  ci.point = percentile(samples, 50.0);
  ci.resamples = resamples;
  ci.confidence = confidence;

  const auto n = samples.size();
  Rng rng(seed);
  std::vector<double> resample(n);
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = samples[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
    }
    medians.push_back(percentile(resample, 50.0));
  }

  const double alpha = 1.0 - confidence;
  ci.lo = percentile(medians, 100.0 * (alpha / 2.0));
  ci.hi = percentile(medians, 100.0 * (1.0 - alpha / 2.0));
  return ci;
}

}  // namespace chronosync::benchkit
