// Minimal JSON value with serialization and parsing, used by the benchmark
// reporter (writing schema-versioned records) and the trajectory tooling /
// tests (reading them back).  Objects preserve insertion order so that
// same-seed runs emit byte-identical key sequences.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace chronosync::benchkit {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Object, Array };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double n) : type_(Type::Number), num_(n) {}
  JsonValue(std::int64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  JsonValue(int n) : type_(Type::Number), num_(n) {}
  JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::String), str_(s) {}

  static JsonValue object();
  static JsonValue array();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Appends (or replaces) an object member; requires is_object().
  JsonValue& set(const std::string& key, JsonValue value);
  /// Pointer to the member value, or nullptr; requires is_object().
  const JsonValue* find(const std::string& key) const;
  const std::vector<Member>& members() const;

  /// Appends an array element; requires is_array().
  JsonValue& push_back(JsonValue value);
  const std::vector<JsonValue>& items() const;

  /// Compact single-line serialization (integral numbers without a decimal
  /// point, everything else round-trippable via %.17g).
  std::string dump() const;

  /// Parses one JSON document; throws std::runtime_error on malformed input
  /// or trailing garbage.
  static JsonValue parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Member> members_;
  std::vector<JsonValue> items_;
};

/// Escapes a string for embedding in a JSON document (adds the quotes).
std::string json_escape(const std::string& s);

}  // namespace chronosync::benchkit
