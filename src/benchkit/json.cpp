#include "benchkit/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/expect.hpp"

namespace chronosync::benchkit {

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

bool JsonValue::as_bool() const {
  CS_REQUIRE(type_ == Type::Bool, "not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  CS_REQUIRE(type_ == Type::Number, "not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  CS_REQUIRE(type_ == Type::String, "not a string");
  return str_;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  CS_REQUIRE(type_ == Type::Object, "set() on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  CS_REQUIRE(type_ == Type::Object, "find() on non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  CS_REQUIRE(type_ == Type::Object, "members() on non-object");
  return members_;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  CS_REQUIRE(type_ == Type::Array, "push_back() on non-array");
  items_.push_back(std::move(value));
  return *this;
}

const std::vector<JsonValue>& JsonValue::items() const {
  CS_REQUIRE(type_ == Type::Array, "items() on non-array");
  return items_;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void dump_number(std::ostringstream& os, double n) {
  if (std::isfinite(n) && n == std::floor(n) && std::abs(n) < 9.007199254740992e15) {
    os << static_cast<std::int64_t>(n);
  } else if (std::isfinite(n)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    os << buf;
  } else {
    // JSON has no inf/nan; null is the conventional stand-in.
    os << "null";
  }
}

void dump_value(std::ostringstream& os, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::Null: os << "null"; break;
    case JsonValue::Type::Bool: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Type::Number: dump_number(os, v.as_number()); break;
    case JsonValue::Type::String: os << json_escape(v.as_string()); break;
    case JsonValue::Type::Object: {
      os << '{';
      bool first = true;
      for (const auto& [k, m] : v.members()) {
        if (!first) os << ',';
        first = false;
        os << json_escape(k) << ':';
        dump_value(os, m);
      }
      os << '}';
      break;
    }
    case JsonValue::Type::Array: {
      os << '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) os << ',';
        first = false;
        dump_value(os, item);
      }
      os << ']';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    // The parser recurses per nesting level; adversarial inputs (fuzzed
    // scenario configs) would otherwise overflow the stack long before any
    // other limit triggers.  No legitimate document nests anywhere near this.
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue(string());
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JsonValue();
    }
    return number();
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue boolean() {
    if (peek() == 't') {
      literal("true");
      return JsonValue(true);
    }
    literal("false");
    return JsonValue(false);
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("invalid number '" + tok + "'");
    return JsonValue(v);
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for the reporter's ASCII-ish payloads but pass through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue object() {
    expect('{');
    ++depth_;
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      --depth_;
      return obj;
    }
  }

  JsonValue array() {
    expect('[');
    ++depth_;
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      --depth_;
      return arr;
    }
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::ostringstream os;
  dump_value(os, *this);
  return os.str();
}

JsonValue JsonValue::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace chronosync::benchkit
