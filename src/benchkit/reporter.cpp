#include "benchkit/reporter.hpp"

#include <filesystem>
#include <fstream>

#include "common/expect.hpp"

namespace chronosync::benchkit {

int schema_version_for(const BenchRecord& record) {
  if (record.boot_resamples > 0) return 3;
  if (record.cpu_user_ns != 0 || record.cpu_sys_ns != 0) return 2;
  return 1;
}

JsonValue to_json(const BenchRecord& record) {
  // The stamped version must match the keys actually present: a record with
  // no CPU sample and no bootstrap interval is a faithful v1 record, and
  // labeling it v2/v3 would promise fields it does not carry.
  const int version = schema_version_for(record);
  JsonValue obj = JsonValue::object();
  obj.set("schema_version", version);
  obj.set("suite", record.suite);
  obj.set("name", record.name);
  obj.set("kind", record.kind);
  JsonValue config = JsonValue::object();
  for (const auto& [k, v] : record.config) config.set(k, v);
  obj.set("config", std::move(config));
  obj.set("iters", record.iters);
  obj.set("wall_ns_p50", record.wall_ns_p50);
  obj.set("wall_ns_p90", record.wall_ns_p90);
  obj.set("wall_ns_min", record.wall_ns_min);
  if (version >= 3) {
    obj.set("wall_ns_ci_lo", record.wall_ns_ci_lo);
    obj.set("wall_ns_ci_hi", record.wall_ns_ci_hi);
    obj.set("boot_resamples", record.boot_resamples);
    obj.set("boot_confidence", record.boot_confidence);
  }
  obj.set("throughput", record.throughput);
  JsonValue metrics = JsonValue::object();
  for (const auto& [k, v] : record.metrics) metrics.set(k, v);
  obj.set("metrics", std::move(metrics));
  if (version >= 2) {
    obj.set("cpu_user_ns", record.cpu_user_ns);
    obj.set("cpu_sys_ns", record.cpu_sys_ns);
  }
  obj.set("peak_rss_bytes", record.peak_rss_bytes);
  obj.set("alloc_bytes_per_iter", record.alloc_bytes_per_iter);
  obj.set("git_sha", record.git_sha);
  obj.set("timestamp", record.timestamp);
  return obj;
}

namespace {

const JsonValue& field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  CS_REQUIRE(v != nullptr, std::string("bench record missing key '") + key + "'");
  return *v;
}

}  // namespace

BenchRecord record_from_json(const JsonValue& value) {
  CS_REQUIRE(value.is_object(), "bench record is not a JSON object");
  const int version = static_cast<int>(field(value, "schema_version").as_number());
  CS_REQUIRE(version >= 1 && version <= kSchemaVersion,
             "unsupported bench record schema_version " + std::to_string(version));
  BenchRecord rec;
  rec.suite = field(value, "suite").as_string();
  rec.name = field(value, "name").as_string();
  rec.kind = field(value, "kind").as_string();
  for (const auto& [k, v] : field(value, "config").members()) {
    rec.config.emplace_back(k, v.as_string());
  }
  rec.iters = static_cast<std::int64_t>(field(value, "iters").as_number());
  rec.wall_ns_p50 = field(value, "wall_ns_p50").as_number();
  rec.wall_ns_p90 = field(value, "wall_ns_p90").as_number();
  rec.wall_ns_min = field(value, "wall_ns_min").as_number();
  rec.throughput = field(value, "throughput").as_number();
  for (const auto& [k, v] : field(value, "metrics").members()) {
    rec.metrics.emplace_back(k, v.as_number());
  }
  if (version >= 2) {
    rec.cpu_user_ns = static_cast<std::int64_t>(field(value, "cpu_user_ns").as_number());
    rec.cpu_sys_ns = static_cast<std::int64_t>(field(value, "cpu_sys_ns").as_number());
  }
  if (version >= 3) {
    rec.wall_ns_ci_lo = field(value, "wall_ns_ci_lo").as_number();
    rec.wall_ns_ci_hi = field(value, "wall_ns_ci_hi").as_number();
    rec.boot_resamples =
        static_cast<std::int64_t>(field(value, "boot_resamples").as_number());
    rec.boot_confidence = field(value, "boot_confidence").as_number();
  }
  rec.peak_rss_bytes = static_cast<std::int64_t>(field(value, "peak_rss_bytes").as_number());
  rec.alloc_bytes_per_iter =
      static_cast<std::int64_t>(field(value, "alloc_bytes_per_iter").as_number());
  rec.git_sha = field(value, "git_sha").as_string();
  rec.timestamp = static_cast<std::int64_t>(field(value, "timestamp").as_number());
  return rec;
}

void JsonReporter::append(const BenchRecord& record) const {
  const std::filesystem::path p(path_);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::app);
  CS_REQUIRE(out.good(), "cannot open bench JSON file '" + path_ + "' for append");
  out << to_json(record).dump() << '\n';
}

}  // namespace chronosync::benchkit
