#include "benchkit/runner.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "benchkit/metrics.hpp"
#include "benchkit/stats.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

#ifndef CHRONOSYNC_GIT_SHA
#define CHRONOSYNC_GIT_SHA "unknown"
#endif

namespace chronosync::benchkit {

Harness::Harness(const Cli& cli, std::string suite, HarnessDefaults defaults)
    : suite_(std::move(suite)),
      reps_(static_cast<int>(cli.get_int("reps", defaults.reps))),
      warmup_(static_cast<int>(cli.get_int("warmup", defaults.warmup))),
      boot_resamples_(static_cast<int>(cli.get_int("boot-resamples", 1000))),
      boot_confidence_(cli.get_double("boot-confidence", 0.95)),
      seed_(cli.get_seed()),
      json_path_(cli.get("json", "")) {
  CS_REQUIRE(reps_ >= 1, "--reps must be >= 1");
  CS_REQUIRE(warmup_ >= 0, "--warmup must be >= 0");
  CS_REQUIRE(boot_resamples_ >= 0, "--boot-resamples must be >= 0");
  CS_REQUIRE(boot_confidence_ > 0.0 && boot_confidence_ < 1.0,
             "--boot-confidence must be in (0, 1)");
}

std::string Harness::git_sha() {
  if (const char* env = std::getenv("CHRONOSYNC_GIT_SHA"); env && *env) return env;
  return CHRONOSYNC_GIT_SHA;
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", ns / 1e9);
  }
  return buf;
}

const BenchRecord& Harness::finish(BenchRecord record) {
  record.suite = suite_;
  bool has_seed = false;
  for (const auto& [k, v] : record.config) has_seed = has_seed || k == "seed";
  if (!has_seed) record.config.emplace_back("seed", std::to_string(seed_));
  record.peak_rss_bytes = sample_resource_usage().peak_rss_bytes;
  record.git_sha = git_sha();
  record.timestamp = static_cast<std::int64_t>(std::time(nullptr));
  records_.push_back(std::move(record));
  if (json_enabled()) JsonReporter(json_path_).append(records_.back());
  return records_.back();
}

BenchRecord Harness::time(const std::string& name, ConfigList config,
                          std::int64_t items_per_iter, const std::function<void()>& fn) {
  for (int i = 0; i < warmup_; ++i) fn();

  std::vector<double> wall_ns;
  wall_ns.reserve(static_cast<std::size_t>(reps_));
  const AllocationTotals alloc_before = allocation_totals();
  const ResourceUsage cpu_before = sample_resource_usage();
  for (int i = 0; i < reps_; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    wall_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  const ResourceUsage cpu_after = sample_resource_usage();
  const AllocationTotals alloc_after = allocation_totals();

  BenchRecord rec;
  rec.name = name;
  rec.kind = "timing";
  rec.config = std::move(config);
  rec.iters = reps_;
  rec.wall_ns_p50 = percentile(wall_ns, 50.0);
  rec.wall_ns_p90 = percentile(wall_ns, 90.0);
  rec.wall_ns_min = percentile(wall_ns, 0.0);
  if (boot_resamples_ > 0) {
    // Seeded per measurement name so records stay independent of how many
    // measurements ran before them, and reproducible from --seed alone.
    const auto ci =
        bootstrap_median_ci(wall_ns, boot_resamples_, boot_confidence_,
                            RngTree(seed_).child("benchkit.bootstrap").derive(name));
    rec.wall_ns_ci_lo = ci.lo;
    rec.wall_ns_ci_hi = ci.hi;
    rec.boot_resamples = ci.resamples;
    rec.boot_confidence = ci.confidence;
  }
  if (items_per_iter > 0 && rec.wall_ns_p50 > 0.0) {
    rec.throughput = static_cast<double>(items_per_iter) / (rec.wall_ns_p50 * 1e-9);
  }
  rec.alloc_bytes_per_iter = static_cast<std::int64_t>(
      (alloc_after.bytes - alloc_before.bytes) / static_cast<std::uint64_t>(reps_));
  // Whole-process CPU over the timed reps; with internal thread pools this
  // exceeds wall time, which is exactly the signal (parallel efficiency).
  rec.cpu_user_ns = cpu_after.cpu_user_ns - cpu_before.cpu_user_ns;
  rec.cpu_sys_ns = cpu_after.cpu_sys_ns - cpu_before.cpu_sys_ns;

  const BenchRecord& out = finish(std::move(rec));
  std::cerr << "[bench] " << suite_ << '/' << name << ": p50 " << format_ns(out.wall_ns_p50);
  if (out.boot_resamples > 0) {
    std::cerr << " [" << format_ns(out.wall_ns_ci_lo) << ", " << format_ns(out.wall_ns_ci_hi)
              << "]";
  }
  std::cerr << ", min " << format_ns(out.wall_ns_min);
  if (out.throughput > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3g", out.throughput);
    std::cerr << ", " << buf << " items/s";
  }
  std::cerr << " (" << reps_ << " reps)\n";
  return out;
}

BenchRecord Harness::metric(const std::string& name, ConfigList config,
                            MetricList metrics) {
  BenchRecord rec;
  rec.name = name;
  rec.kind = "metric";
  rec.config = std::move(config);
  rec.metrics = std::move(metrics);
  return finish(std::move(rec));
}

}  // namespace chronosync::benchkit
