#include "benchkit/metrics.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace chronosync::benchkit {

namespace {

// Constant-initialized, so safe to bump from allocations during static init.
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) return nullptr;
  return p;
}

}  // namespace

ResourceUsage sample_resource_usage() {
  ResourceUsage usage;
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.peak_rss_bytes = static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
    usage.cpu_user_ns = static_cast<std::int64_t>(ru.ru_utime.tv_sec) * 1'000'000'000 +
                        static_cast<std::int64_t>(ru.ru_utime.tv_usec) * 1'000;
    usage.cpu_sys_ns = static_cast<std::int64_t>(ru.ru_stime.tv_sec) * 1'000'000'000 +
                       static_cast<std::int64_t>(ru.ru_stime.tv_usec) * 1'000;
  }
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long total = 0, resident = 0;
    if (std::fscanf(f, "%ld %ld", &total, &resident) == 2) {
      usage.current_rss_bytes =
          static_cast<std::int64_t>(resident) * static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
    }
    std::fclose(f);
  }
  return usage;
}

AllocationTotals allocation_totals() {
  return {g_alloc_bytes.load(std::memory_order_relaxed),
          g_alloc_count.load(std::memory_order_relaxed)};
}

}  // namespace chronosync::benchkit

// Counting replacements of the global allocation functions.  They live in the
// same translation unit as allocation_totals() so that linking any benchkit
// user pulls them in from the static archive.  Allocation goes through
// malloc/posix_memalign and deallocation through free, which keeps sanitizer
// allocator interception consistent (malloc pairs with free).
void* operator new(std::size_t size) {
  if (void* p = chronosync::benchkit::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = chronosync::benchkit::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return chronosync::benchkit::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return chronosync::benchkit::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = chronosync::benchkit::counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = chronosync::benchkit::counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
