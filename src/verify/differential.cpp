#include "verify/differential.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "analysis/clock_condition.hpp"
#include "analysis/clock_condition_stream.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "common/mathutil.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/kalman_drift.hpp"
#include "sync/offset_alignment.hpp"
#include "sync/omp_clc.hpp"
#include "trace/logical_messages.hpp"
#include "trace/stream_io.hpp"

namespace chronosync::verify {

namespace {

/// Pairs contracted to agree bit-for-bit regardless of input.
constexpr std::pair<const char*, const char*> kExactContracts[] = {
    {"interpolation+clc-serial", "interpolation+clc-parallel"},
};

bool must_match_exactly(const std::string& a, const std::string& b) {
  for (const auto& [x, y] : kExactContracts) {
    if ((a == x && b == y) || (a == y && b == x)) return true;
  }
  return false;
}

bool store_has_two_samples_per_rank(const OffsetStore& offsets) {
  for (Rank r = 0; r < offsets.ranks(); ++r) {
    if (offsets.of(r).size() < 2) return false;
  }
  return offsets.ranks() > 0;
}

// Builds one MethodOutput under a span named for the method (span names must
// be string literals — the obs ring stores the pointer, hence the explicit
// `span_name` beside the owned `name`), feeding the method's wall time into
// the verify.method_seconds quantile histogram.
template <class Fn>
MethodOutput timed_method(const char* span_name, std::string name, bool restores, Fn&& build) {
  obs::Span span(span_name);
  const std::uint64_t t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
  MethodOutput out{std::move(name), build(), restores};
  if (t0 != 0) {
    obs::quantile_histogram("verify.method_seconds")
        .add(static_cast<double>(obs::now_ns() - t0) * 1e-9);
  }
  obs::counter("verify.methods_run").add(1);
  return out;
}

}  // namespace

std::vector<MethodOutput> run_all_methods(const Trace& trace, const OffsetStore& offsets,
                                          const std::vector<MessageRecord>& messages,
                                          const ReplaySchedule& schedule) {
  CS_SPAN("verify.run_all_methods");
  std::vector<MethodOutput> out;
  out.push_back(timed_method("verify.method.raw", "raw", false,
                             [&] { return TimestampArray::from_local(trace); }));

  const bool have_probes = store_has_two_samples_per_rank(offsets);
  if (offsets.ranks() == trace.ranks() && have_probes) {
    out.push_back(timed_method("verify.method.offset-alignment", "offset-alignment", false, [&] {
      return apply_correction(trace, OffsetAlignment::from_store(offsets));
    }));
    out.push_back(
        timed_method("verify.method.linear-interpolation", "linear-interpolation", false, [&] {
          return apply_correction(trace, LinearInterpolation::from_store(offsets));
        }));
    out.push_back(timed_method("verify.method.piecewise-interpolation",
                               "piecewise-interpolation", false, [&] {
                                 return apply_correction(
                                     trace, PiecewiseInterpolation::from_store(offsets));
                               }));
    out.push_back(timed_method("verify.method.kalman-drift", "kalman-drift", false, [&] {
      return apply_correction(trace, KalmanDriftCorrection::from_store(offsets));
    }));
  } else {
    CS_LOG_WARN << "differential: offset store incomplete; skipping the "
                   "probe-based corrections";
  }

  for (const auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                            EstimationMethod::MinMax}) {
    const char* span_name = method == EstimationMethod::Regression
                                ? "verify.method.error-estimation-regression"
                                : method == EstimationMethod::ConvexHull
                                      ? "verify.method.error-estimation-convex-hull"
                                      : "verify.method.error-estimation-min-max";
    out.push_back(timed_method(span_name, "error-estimation-" + to_string(method), false, [&] {
      return apply_correction(trace,
                              ErrorEstimationCorrection::build(trace, messages, method));
    }));
  }

  const TimestampArray input =
      have_probes && offsets.ranks() == trace.ranks()
          ? apply_correction(trace, LinearInterpolation::from_store(offsets))
          : TimestampArray::from_local(trace);
  out.push_back(
      timed_method("verify.method.interpolation+clc-serial", "interpolation+clc-serial", true,
                   [&] { return controlled_logical_clock(trace, schedule, input).corrected; }));
  // Force real concurrency: the differential contract must exercise the
  // cross-thread protocol even on small synthetic traces, which the
  // min_events_per_thread guard would otherwise collapse to a solo run.
  out.push_back(timed_method("verify.method.interpolation+clc-parallel",
                             "interpolation+clc-parallel", true, [&] {
                               ClcOptions parallel_options;
                               parallel_options.min_events_per_thread = 1;
                               return controlled_logical_clock_parallel(trace, schedule, input,
                                                                        parallel_options)
                                   .corrected;
                             }));
  return out;
}

const std::vector<std::string>& all_method_names() {
  // Emission order of run_all_methods; keep the two in sync.
  static const std::vector<std::string> names = {
      "raw",
      "offset-alignment",
      "linear-interpolation",
      "piecewise-interpolation",
      "kalman-drift",
      "error-estimation-regression",
      "error-estimation-convex-hull",
      "error-estimation-min-max",
      "interpolation+clc-serial",
      "interpolation+clc-parallel",
  };
  return names;
}

std::vector<MethodAccuracy> ground_truth_accuracy(const Trace& trace,
                                                  const std::vector<MethodOutput>& outputs) {
  CS_SPAN("verify.accuracy_race");
  // Master timeline: the piecewise-linear map true time -> rank-0 local time.
  // A perfect correction maps every worker timestamp onto this line, so the
  // residual against it is the method's absolute error.
  PiecewiseLinear master;
  if (trace.ranks() > 0) {
    for (const Event& e : trace.events(0)) {
      if (master.size() > 0 && !(e.true_ts > master.knots().back().x)) continue;
      master.append(e.true_ts, e.local_ts);
    }
  }
  if (master.size() < 2) {
    CS_LOG_WARN << "ground_truth_accuracy: rank 0 has fewer than two distinct true "
                   "timestamps; skipping the accuracy race";
    return {};
  }

  std::vector<MethodAccuracy> out;
  out.reserve(outputs.size());
  for (const auto& m : outputs) {
    MethodAccuracy acc;
    acc.name = m.name;
    double sum_sq = 0.0;
    for (Rank r = 0; r < trace.ranks(); ++r) {
      const auto& events = trace.events(r);
      const auto& ts = m.ts.of_rank(r);
      for (std::uint32_t i = 0; i < events.size(); ++i) {
        const double err = ts[i] - master(events[i].true_ts);
        ++acc.events;
        sum_sq += err * err;
        acc.max_abs_error = std::max(acc.max_abs_error, std::abs(err));
      }
    }
    acc.rms_error = acc.events > 0 ? std::sqrt(sum_sq / static_cast<double>(acc.events)) : 0.0;
    out.push_back(std::move(acc));
  }
  return out;
}

DifferentialReport compare_methods(const Trace& trace,
                                   const std::vector<MethodOutput>& outputs,
                                   double tolerance) {
  CS_SPAN("verify.compare_methods");
  CS_REQUIRE(tolerance >= 0.0, "tolerance must be non-negative");
  DifferentialReport report;
  for (std::size_t a = 0; a < outputs.size(); ++a) {
    for (std::size_t b = a + 1; b < outputs.size(); ++b) {
      PairDivergence d;
      d.method_a = outputs[a].name;
      d.method_b = outputs[b].name;
      d.must_match = must_match_exactly(d.method_a, d.method_b);
      for (Rank r = 0; r < trace.ranks(); ++r) {
        const auto& ta = outputs[a].ts.of_rank(r);
        const auto& tb = outputs[b].ts.of_rank(r);
        CS_REQUIRE(ta.size() == tb.size(), "method outputs differ in shape");
        for (std::uint32_t i = 0; i < ta.size(); ++i) {
          ++d.events;
          const bool identical = std::bit_cast<std::uint64_t>(ta[i]) ==
                                 std::bit_cast<std::uint64_t>(tb[i]);
          const double diff = identical ? 0.0 : std::abs(ta[i] - tb[i]);
          const double limit = d.must_match ? 0.0 : tolerance;
          if (!identical && !(diff <= limit)) ++d.above_tolerance;
          if (diff > d.max_abs_diff || (d.events == 1)) {
            d.max_abs_diff = diff;
            d.worst = {r, i};
          }
        }
      }
      if (d.must_match && d.above_tolerance > 0) {
        std::ostringstream os;
        os << d.method_a << " vs " << d.method_b << ": contracted bit-identical but "
           << d.above_tolerance << " event(s) diverge (max " << d.max_abs_diff
           << " s at rank " << d.worst.proc << " event " << d.worst.index << ")";
        report.failures.push_back(os.str());
      }
      report.pairs.push_back(std::move(d));
    }
  }
  return report;
}

namespace {

void compare_reports(const char* what, const ClockConditionReport& a,
                     const ClockConditionReport& b, std::vector<std::string>& failures) {
  auto mismatch = [&](const char* field, double x, double y) {
    std::ostringstream os;
    os << what << ": " << field << " diverges (" << x << " vs " << y << ")";
    failures.push_back(os.str());
  };
  if (a.p2p_messages != b.p2p_messages)
    mismatch("p2p_messages", static_cast<double>(a.p2p_messages),
             static_cast<double>(b.p2p_messages));
  if (a.p2p_reversed != b.p2p_reversed)
    mismatch("p2p_reversed", static_cast<double>(a.p2p_reversed),
             static_cast<double>(b.p2p_reversed));
  if (a.p2p_violations != b.p2p_violations)
    mismatch("p2p_violations", static_cast<double>(a.p2p_violations),
             static_cast<double>(b.p2p_violations));
  if (a.p2p_worst != b.p2p_worst) mismatch("p2p_worst", a.p2p_worst, b.p2p_worst);
  if (a.logical_messages != b.logical_messages)
    mismatch("logical_messages", static_cast<double>(a.logical_messages),
             static_cast<double>(b.logical_messages));
  if (a.logical_reversed != b.logical_reversed)
    mismatch("logical_reversed", static_cast<double>(a.logical_reversed),
             static_cast<double>(b.logical_reversed));
  if (a.logical_violations != b.logical_violations)
    mismatch("logical_violations", static_cast<double>(a.logical_violations),
             static_cast<double>(b.logical_violations));
  if (a.logical_worst != b.logical_worst)
    mismatch("logical_worst", a.logical_worst, b.logical_worst);
  if (a.total_events != b.total_events)
    mismatch("total_events", static_cast<double>(a.total_events),
             static_cast<double>(b.total_events));
  if (a.message_events != b.message_events)
    mismatch("message_events", static_cast<double>(a.message_events),
             static_cast<double>(b.message_events));
}

}  // namespace

std::size_t cross_check_scans(const Trace& trace, const ReplaySchedule& schedule,
                              std::vector<std::string>& failures) {
  CS_SPAN("verify.cross_check_scans");
  const TimestampArray local = TimestampArray::from_local(trace);
  const ClockConditionReport full = check_clock_condition(trace, local);
  const ClockConditionReport csr = check_clock_condition(trace, local, schedule);
  compare_reports("full vs CSR scan", full, csr, failures);

  std::stringstream v2;
  write_trace_v2(trace, v2);
  TraceReader reader(v2);
  const ClockConditionReport streamed = scan_clock_condition(reader);
  compare_reports("in-memory vs streaming scan", full, streamed, failures);
  return 2;
}

std::size_t cross_check_windowed_clc(const Trace& trace, const std::string& work_dir,
                                     const StreamClcOptions& options,
                                     std::vector<std::string>& failures) {
  CS_SPAN("verify.cross_check_windowed_clc");
  const std::string in_path = work_dir + "/windowed_clc_in.cstr";
  const std::string out_path = work_dir + "/windowed_clc_out.cstr";
  write_trace_v2_file(trace, in_path);
  const StreamClcStats stats = clc_stream_file(in_path, out_path, options);

  std::size_t comparisons = 0;
  if (stats.ramp_clamped != 0 || stats.horizon_dropped != 0 || stats.forced != 0) {
    std::ostringstream os;
    os << "windowed CLC: fixture must be divergence-free but ramp_clamped="
       << stats.ramp_clamped << " horizon_dropped=" << stats.horizon_dropped
       << " forced=" << stats.forced;
    failures.push_back(os.str());
  }
  ++comparisons;

  const auto messages = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, messages, logical);
  const ClcResult mem =
      controlled_logical_clock(trace, schedule, TimestampArray::from_local(trace), options.clc);

  const Trace streamed = read_trace_v2_file(out_path);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());

  if (streamed.ranks() != trace.ranks()) {
    std::ostringstream os;
    os << "windowed CLC: output has " << streamed.ranks() << " rank(s), input has "
       << trace.ranks();
    failures.push_back(os.str());
    return comparisons + 1;
  }
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& in_ev = trace.events(r);
    const auto& out_ev = streamed.events(r);
    if (in_ev.size() != out_ev.size()) {
      std::ostringstream os;
      os << "windowed CLC: rank " << r << " has " << out_ev.size() << " event(s), expected "
         << in_ev.size();
      failures.push_back(os.str());
      continue;
    }
    const auto& lc = mem.corrected.of_rank(r);
    for (std::size_t i = 0; i < in_ev.size(); ++i) {
      ++comparisons;
      const Event& a = in_ev[i];
      const Event& b = out_ev[i];
      if (std::bit_cast<std::uint64_t>(b.local_ts) != std::bit_cast<std::uint64_t>(lc[i])) {
        std::ostringstream os;
        os << "windowed CLC: rank " << r << " event " << i << " corrected ts "
           << b.local_ts << " != in-memory " << lc[i] << " (diff " << (b.local_ts - lc[i])
           << ")";
        failures.push_back(os.str());
      }
      if (std::bit_cast<std::uint64_t>(b.true_ts) != std::bit_cast<std::uint64_t>(a.true_ts) ||
          b.type != a.type || b.peer != a.peer || b.msg_id != a.msg_id ||
          b.coll_id != a.coll_id || b.region != a.region) {
        std::ostringstream os;
        os << "windowed CLC: rank " << r << " event " << i
           << " non-corrected fields did not survive the round-trip";
        failures.push_back(os.str());
      }
    }
  }

  ++comparisons;
  if (stats.violations_repaired != mem.violations_repaired ||
      std::bit_cast<std::uint64_t>(stats.max_jump) !=
          std::bit_cast<std::uint64_t>(mem.max_jump) ||
      std::bit_cast<std::uint64_t>(stats.total_jump) !=
          std::bit_cast<std::uint64_t>(mem.total_jump)) {
    std::ostringstream os;
    os << "windowed CLC: jump stats diverge: repaired " << stats.violations_repaired << " vs "
       << mem.violations_repaired << ", max " << stats.max_jump << " vs " << mem.max_jump
       << ", total " << stats.total_jump << " vs " << mem.total_jump;
    failures.push_back(os.str());
  }
  return comparisons;
}

std::size_t cross_check_omp_clc(const Trace& omp_trace, const Placement& thread_placement,
                                std::vector<std::string>& failures) {
  CS_SPAN("verify.cross_check_omp_clc");
  const Trace threads = split_omp_threads(omp_trace, thread_placement);
  const auto logical = derive_omp_logical_messages(threads);
  const ReplaySchedule schedule(threads, {}, logical);
  const TimestampArray input = TimestampArray::from_local(threads);
  const ClcResult serial = controlled_logical_clock(threads, schedule, input);
  ClcOptions parallel_options;
  parallel_options.min_events_per_thread = 1;
  const ClcResult parallel =
      controlled_logical_clock_parallel(threads, schedule, input, parallel_options);
  const OmpClcResult merged = omp_controlled_logical_clock(omp_trace, thread_placement);

  std::size_t comparisons = 0;

  // Serial vs parallel CLC on the thread schedule: the same bit-identical
  // contract the MPI differential enforces, now over POMP logical edges.
  for (Rank t = 0; t < threads.ranks(); ++t) {
    const auto& a = serial.corrected.of_rank(t);
    const auto& b = parallel.corrected.of_rank(t);
    CS_REQUIRE(a.size() == b.size(), "omp CLC outputs differ in shape");
    for (std::uint32_t i = 0; i < a.size(); ++i) {
      ++comparisons;
      if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i])) {
        std::ostringstream os;
        os << "omp CLC: serial vs parallel diverge at thread " << t << " event " << i << " ("
           << a[i] << " vs " << b[i] << ")";
        failures.push_back(os.str());
      }
    }
  }

  // Merged backend output vs the serial CLC on the split trace: replays the
  // backend's own merge cursors, so a split/merge bookkeeping bug shows up as
  // a divergence here even when the CLC itself is correct.
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(thread_placement.ranks()), 0);
  const auto& events = omp_trace.events(0);
  const auto& merged_ts = merged.corrected.of_rank(0);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    ++comparisons;
    const ThreadId th = events[i].thread;
    const Time expect = serial.corrected.at({th, cursor[static_cast<std::size_t>(th)]++});
    if (std::bit_cast<std::uint64_t>(merged_ts[i]) != std::bit_cast<std::uint64_t>(expect)) {
      std::ostringstream os;
      os << "omp CLC: merged output diverges from the thread-split serial CLC at event " << i
         << " (thread " << th << ": " << merged_ts[i] << " vs " << expect << ")";
      failures.push_back(os.str());
    }
  }

  // The OMP CLC is a clock-restoring method: zero-slack audit on the
  // thread-split layout, against the POMP happened-before edges.
  VerifyOptions opt;
  opt.clock_condition_slack = 0.0;
  const InvariantChecker checker(threads, schedule, opt);
  const VerifyReport audit = checker.check(serial.corrected);
  ++comparisons;
  if (!audit.ok()) {
    std::ostringstream os;
    os << "omp CLC: zero-slack invariant audit found " << audit.total() << " violation(s)\n"
       << audit.summary();
    failures.push_back(os.str());
  }
  return comparisons;
}

std::string DifferentialReport::summary() const {
  std::ostringstream os;
  os << "differential: " << pairs.size() << " method pair(s), " << failures.size()
     << " contract failure(s)\n";
  for (const auto& p : pairs) {
    os << "  " << p.method_a << " vs " << p.method_b << ": max |diff| "
       << p.max_abs_diff << " s, " << p.above_tolerance << "/" << p.events
       << " above tolerance" << (p.must_match ? " [must match]" : "") << "\n";
  }
  for (const auto& a : accuracy) {
    os << "  accuracy " << a.name << ": rms " << a.rms_error << " s, max |err| "
       << a.max_abs_error << " s over " << a.events << " event(s)\n";
  }
  for (const auto& f : failures) os << "  FAIL " << f << "\n";
  return os.str();
}

DifferentialReport run_differential_suite(const Trace& trace, const OffsetStore& offsets,
                                          double tolerance) {
  CS_SPAN("verify.run_differential_suite");
  const auto messages = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, messages, logical);

  const auto outputs = run_all_methods(trace, offsets, messages, schedule);
  DifferentialReport report = compare_methods(trace, outputs, tolerance);
  report.accuracy = ground_truth_accuracy(trace, outputs);
  cross_check_scans(trace, schedule, report.failures);

  {
    // Invariant audit: CLC outputs must be exactly clean; every other method
    // must at least keep timestamps finite and local order intact.
    CS_SPAN("verify.audit");
    for (const auto& m : outputs) {
      VerifyOptions opt;
      opt.clock_condition_slack = m.restores_clock_condition ? 0.0 : kTimeInfinity;
      const InvariantChecker checker(trace, schedule, opt);
      const VerifyReport audit = checker.check(m.ts);
      if (!audit.ok()) {
        std::ostringstream os;
        os << m.name << ": invariant audit found " << audit.total() << " violation(s)\n"
           << audit.summary();
        report.failures.push_back(os.str());
      }
    }
  }
  obs::counter("verify.contract_failures").add(static_cast<std::int64_t>(report.failures.size()));
  return report;
}

}  // namespace chronosync::verify
