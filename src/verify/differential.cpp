#include "verify/differential.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "analysis/clock_condition.hpp"
#include "analysis/clock_condition_stream.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/offset_alignment.hpp"
#include "trace/logical_messages.hpp"
#include "trace/stream_io.hpp"

namespace chronosync::verify {

namespace {

/// Pairs contracted to agree bit-for-bit regardless of input.
constexpr std::pair<const char*, const char*> kExactContracts[] = {
    {"interpolation+clc-serial", "interpolation+clc-parallel"},
};

bool must_match_exactly(const std::string& a, const std::string& b) {
  for (const auto& [x, y] : kExactContracts) {
    if ((a == x && b == y) || (a == y && b == x)) return true;
  }
  return false;
}

bool store_has_two_samples_per_rank(const OffsetStore& offsets) {
  for (Rank r = 0; r < offsets.ranks(); ++r) {
    if (offsets.of(r).size() < 2) return false;
  }
  return offsets.ranks() > 0;
}

}  // namespace

std::vector<MethodOutput> run_all_methods(const Trace& trace, const OffsetStore& offsets,
                                          const std::vector<MessageRecord>& messages,
                                          const ReplaySchedule& schedule) {
  std::vector<MethodOutput> out;
  out.push_back({"raw", TimestampArray::from_local(trace), false});

  const bool have_probes = store_has_two_samples_per_rank(offsets);
  if (offsets.ranks() == trace.ranks() && have_probes) {
    out.push_back({"offset-alignment",
                   apply_correction(trace, OffsetAlignment::from_store(offsets)), false});
    out.push_back({"linear-interpolation",
                   apply_correction(trace, LinearInterpolation::from_store(offsets)), false});
    out.push_back(
        {"piecewise-interpolation",
         apply_correction(trace, PiecewiseInterpolation::from_store(offsets)), false});
  } else {
    CS_LOG_WARN << "differential: offset store incomplete; skipping the "
                   "probe-based corrections";
  }

  for (const auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                            EstimationMethod::MinMax}) {
    out.push_back(
        {"error-estimation-" + to_string(method),
         apply_correction(trace, ErrorEstimationCorrection::build(trace, messages, method)),
         false});
  }

  const TimestampArray input =
      have_probes && offsets.ranks() == trace.ranks()
          ? apply_correction(trace, LinearInterpolation::from_store(offsets))
          : TimestampArray::from_local(trace);
  out.push_back({"interpolation+clc-serial",
                 controlled_logical_clock(trace, schedule, input).corrected, true});
  // Force real concurrency: the differential contract must exercise the
  // cross-thread protocol even on small synthetic traces, which the
  // min_events_per_thread guard would otherwise collapse to a solo run.
  ClcOptions parallel_options;
  parallel_options.min_events_per_thread = 1;
  out.push_back(
      {"interpolation+clc-parallel",
       controlled_logical_clock_parallel(trace, schedule, input, parallel_options).corrected,
       true});
  return out;
}

DifferentialReport compare_methods(const Trace& trace,
                                   const std::vector<MethodOutput>& outputs,
                                   double tolerance) {
  CS_REQUIRE(tolerance >= 0.0, "tolerance must be non-negative");
  DifferentialReport report;
  for (std::size_t a = 0; a < outputs.size(); ++a) {
    for (std::size_t b = a + 1; b < outputs.size(); ++b) {
      PairDivergence d;
      d.method_a = outputs[a].name;
      d.method_b = outputs[b].name;
      d.must_match = must_match_exactly(d.method_a, d.method_b);
      for (Rank r = 0; r < trace.ranks(); ++r) {
        const auto& ta = outputs[a].ts.of_rank(r);
        const auto& tb = outputs[b].ts.of_rank(r);
        CS_REQUIRE(ta.size() == tb.size(), "method outputs differ in shape");
        for (std::uint32_t i = 0; i < ta.size(); ++i) {
          ++d.events;
          const bool identical = std::bit_cast<std::uint64_t>(ta[i]) ==
                                 std::bit_cast<std::uint64_t>(tb[i]);
          const double diff = identical ? 0.0 : std::abs(ta[i] - tb[i]);
          const double limit = d.must_match ? 0.0 : tolerance;
          if (!identical && !(diff <= limit)) ++d.above_tolerance;
          if (diff > d.max_abs_diff || (d.events == 1)) {
            d.max_abs_diff = diff;
            d.worst = {r, i};
          }
        }
      }
      if (d.must_match && d.above_tolerance > 0) {
        std::ostringstream os;
        os << d.method_a << " vs " << d.method_b << ": contracted bit-identical but "
           << d.above_tolerance << " event(s) diverge (max " << d.max_abs_diff
           << " s at rank " << d.worst.proc << " event " << d.worst.index << ")";
        report.failures.push_back(os.str());
      }
      report.pairs.push_back(std::move(d));
    }
  }
  return report;
}

namespace {

void compare_reports(const char* what, const ClockConditionReport& a,
                     const ClockConditionReport& b, std::vector<std::string>& failures) {
  auto mismatch = [&](const char* field, double x, double y) {
    std::ostringstream os;
    os << what << ": " << field << " diverges (" << x << " vs " << y << ")";
    failures.push_back(os.str());
  };
  if (a.p2p_messages != b.p2p_messages)
    mismatch("p2p_messages", static_cast<double>(a.p2p_messages),
             static_cast<double>(b.p2p_messages));
  if (a.p2p_reversed != b.p2p_reversed)
    mismatch("p2p_reversed", static_cast<double>(a.p2p_reversed),
             static_cast<double>(b.p2p_reversed));
  if (a.p2p_violations != b.p2p_violations)
    mismatch("p2p_violations", static_cast<double>(a.p2p_violations),
             static_cast<double>(b.p2p_violations));
  if (a.p2p_worst != b.p2p_worst) mismatch("p2p_worst", a.p2p_worst, b.p2p_worst);
  if (a.logical_messages != b.logical_messages)
    mismatch("logical_messages", static_cast<double>(a.logical_messages),
             static_cast<double>(b.logical_messages));
  if (a.logical_reversed != b.logical_reversed)
    mismatch("logical_reversed", static_cast<double>(a.logical_reversed),
             static_cast<double>(b.logical_reversed));
  if (a.logical_violations != b.logical_violations)
    mismatch("logical_violations", static_cast<double>(a.logical_violations),
             static_cast<double>(b.logical_violations));
  if (a.logical_worst != b.logical_worst)
    mismatch("logical_worst", a.logical_worst, b.logical_worst);
  if (a.total_events != b.total_events)
    mismatch("total_events", static_cast<double>(a.total_events),
             static_cast<double>(b.total_events));
  if (a.message_events != b.message_events)
    mismatch("message_events", static_cast<double>(a.message_events),
             static_cast<double>(b.message_events));
}

}  // namespace

std::size_t cross_check_scans(const Trace& trace, const ReplaySchedule& schedule,
                              std::vector<std::string>& failures) {
  const TimestampArray local = TimestampArray::from_local(trace);
  const ClockConditionReport full = check_clock_condition(trace, local);
  const ClockConditionReport csr = check_clock_condition(trace, local, schedule);
  compare_reports("full vs CSR scan", full, csr, failures);

  std::stringstream v2;
  write_trace_v2(trace, v2);
  TraceReader reader(v2);
  const ClockConditionReport streamed = scan_clock_condition(reader);
  compare_reports("in-memory vs streaming scan", full, streamed, failures);
  return 2;
}

std::string DifferentialReport::summary() const {
  std::ostringstream os;
  os << "differential: " << pairs.size() << " method pair(s), " << failures.size()
     << " contract failure(s)\n";
  for (const auto& p : pairs) {
    os << "  " << p.method_a << " vs " << p.method_b << ": max |diff| "
       << p.max_abs_diff << " s, " << p.above_tolerance << "/" << p.events
       << " above tolerance" << (p.must_match ? " [must match]" : "") << "\n";
  }
  for (const auto& f : failures) os << "  FAIL " << f << "\n";
  return os.str();
}

DifferentialReport run_differential_suite(const Trace& trace, const OffsetStore& offsets,
                                          double tolerance) {
  const auto messages = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, messages, logical);

  const auto outputs = run_all_methods(trace, offsets, messages, schedule);
  DifferentialReport report = compare_methods(trace, outputs, tolerance);
  cross_check_scans(trace, schedule, report.failures);

  // Invariant audit: CLC outputs must be exactly clean; every other method
  // must at least keep timestamps finite and local order intact.
  for (const auto& m : outputs) {
    VerifyOptions opt;
    opt.clock_condition_slack = m.restores_clock_condition ? 0.0 : kTimeInfinity;
    const InvariantChecker checker(trace, schedule, opt);
    const VerifyReport audit = checker.check(m.ts);
    if (!audit.ok()) {
      std::ostringstream os;
      os << m.name << ": invariant audit found " << audit.total() << " violation(s)\n"
         << audit.summary();
      report.failures.push_back(os.str());
    }
  }
  return report;
}

}  // namespace chronosync::verify
