// Executable paper invariants (the verification layer of the correction
// stack).
//
// Every synchronization result in this codebase is a TimestampArray, and the
// paper's argument rests on a small set of invariants over such arrays:
//
//   * all timestamps are finite numbers (a correction must never manufacture
//     an infinity or NaN);
//   * the local event order of every rank is preserved (timestamps are
//     non-decreasing along each rank's event sequence);
//   * the clock condition t_recv >= t_send + l_min (Eq. 1) holds across all
//     constraint edges — exactly for CLC output, up to a method-dependent
//     tolerance otherwise;
//   * a correction pass never moves an event backward relative to its input
//     (the CLC, including backward amortization, only advances events), and
//     its magnitude stays within a caller-provided bound.
//
// InvariantChecker audits a whole array in one pass over the trace plus one
// pass over the ReplaySchedule's CSR constraint edges and reports *typed*
// violations (kind, rank, event refs, slack) instead of a bool, so callers —
// tests, the chronocheck tool, the --verify bench mode — can decide what is
// fatal and print actionable diagnostics.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sync/replay.hpp"
#include "trace/trace.hpp"

namespace chronosync::verify {

enum class InvariantKind {
  NonFiniteTimestamp,   ///< NaN or infinity in the array
  LocalOrderInversion,  ///< rank-local timestamp order broken
  ClockCondition,       ///< t_recv < t_send + l_min - slack (Eq. 1)
  BackwardCorrection,   ///< corrected timestamp moved behind its input
  CorrectionMagnitude,  ///< |corrected - input| above the configured bound
  kCount,               ///< sentinel, not a kind
};

std::string to_string(InvariantKind kind);

/// One violation instance.  `event` is the offending event; `other` is the
/// constraint partner where one exists (the predecessor for local-order
/// inversions, the send for clock-condition violations).
struct InvariantViolation {
  InvariantKind kind{};
  Rank rank = -1;
  EventRef event{};
  EventRef other{};
  bool has_other = false;
  /// Violation size in seconds: how far past the invariant the timestamp
  /// lies (always > 0 for a recorded violation).
  Duration slack = 0.0;
};

struct VerifyOptions {
  /// Tolerance subtracted from every clock-condition edge: 0 demands Eq. 1
  /// exactly (appropriate for CLC output), larger values audit pre-sync
  /// methods that only promise approximate synchronization.
  Duration clock_condition_slack = 0.0;
  /// Tolerance for local-order inversions and backward corrections.
  Duration order_slack = 0.0;
  /// Bound for |corrected - input| when checking against an input array.
  Duration max_correction = kTimeInfinity;
  /// At most this many violation instances are materialized per report; the
  /// per-kind counts stay exact beyond the cap.
  std::size_t max_recorded = 64;
};

struct VerifyReport {
  std::size_t events_checked = 0;
  std::size_t edges_checked = 0;
  std::array<std::size_t, static_cast<std::size_t>(InvariantKind::kCount)> counts{};
  /// Worst observed violation size per kind (0 when the kind is clean).
  std::array<Duration, static_cast<std::size_t>(InvariantKind::kCount)> worst{};
  /// First `max_recorded` violations in audit order.
  std::vector<InvariantViolation> violations;

  std::size_t count(InvariantKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  Duration worst_slack(InvariantKind kind) const {
    return worst[static_cast<std::size_t>(kind)];
  }
  std::size_t total() const;
  bool ok() const { return total() == 0; }

  /// Multi-line human-readable rendering (chronocheck / --verify output).
  std::string summary() const;
};

/// Audits timestamp arrays against one (trace, schedule) pair.  The checker
/// borrows both; they must outlive it.
class InvariantChecker {
 public:
  InvariantChecker(const Trace& trace, const ReplaySchedule& schedule,
                   VerifyOptions options = {});

  /// Audits `ts` alone: finiteness, local order, clock condition.
  VerifyReport check(const TimestampArray& ts) const;

  /// Audits a correction pass `input -> corrected`: everything check() does
  /// on `corrected`, plus the backward-movement and magnitude invariants
  /// against `input`.
  VerifyReport check_correction(const TimestampArray& input,
                                const TimestampArray& corrected) const;

  const VerifyOptions& options() const { return options_; }

 private:
  const Trace* trace_;
  const ReplaySchedule* schedule_;
  VerifyOptions options_;
};

}  // namespace chronosync::verify
