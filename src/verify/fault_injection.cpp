#include "verify/fault_injection.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace chronosync::verify {

std::string to_string(FaultClass f) {
  switch (f) {
    case FaultClass::ProbeOutlier: return "probe-outlier";
    case FaultClass::DuplicateProbes: return "duplicate-probes";
    case FaultClass::PoisonedProbes: return "poisoned-probes";
    case FaultClass::ClockStep: return "clock-step";
    case FaultClass::OneSidedTraffic: return "one-sided-traffic";
    case FaultClass::EmptyRanks: return "empty-ranks";
  }
  return "?";
}

std::vector<FaultClass> all_fault_classes() {
  return {FaultClass::ProbeOutlier,    FaultClass::DuplicateProbes,
          FaultClass::PoisonedProbes,  FaultClass::ClockStep,
          FaultClass::OneSidedTraffic, FaultClass::EmptyRanks};
}

namespace {

OffsetStore rebuild_sorted(int ranks,
                           std::vector<std::vector<OffsetMeasurement>> samples) {
  OffsetStore out(ranks);
  for (Rank r = 0; r < ranks; ++r) {
    auto& v = samples[static_cast<std::size_t>(r)];
    std::stable_sort(v.begin(), v.end(),
                     [](const OffsetMeasurement& a, const OffsetMeasurement& b) {
                       return a.worker_time < b.worker_time;
                     });
    for (const auto& m : v) out.add(r, m);
  }
  return out;
}

std::vector<std::vector<OffsetMeasurement>> copy_samples(const OffsetStore& store) {
  std::vector<std::vector<OffsetMeasurement>> samples(
      static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    samples[static_cast<std::size_t>(r)] = store.of(r);
  }
  return samples;
}

}  // namespace

OffsetStore with_probe_outliers(const OffsetStore& store, Duration magnitude,
                                std::uint64_t seed) {
  Rng rng(seed);
  auto samples = copy_samples(store);
  for (auto& v : samples) {
    if (v.empty()) continue;
    OffsetMeasurement outlier = v.front();
    const Time w1 = v.front().worker_time;
    const Time w2 = v.back().worker_time;
    // Strictly inside the interval (or just after a degenerate one), so the
    // first/last samples the linear map consumes stay untouched.
    outlier.worker_time = w2 > w1 ? w1 + (w2 - w1) * rng.uniform(0.25, 0.75) : w1 + 1e-6;
    outlier.offset += magnitude * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    outlier.rtt += std::abs(magnitude);  // an asymmetric, slow ping
    v.push_back(outlier);
  }
  return rebuild_sorted(store.ranks(), std::move(samples));
}

OffsetStore with_duplicate_probes(const OffsetStore& store, int copies) {
  CS_REQUIRE(copies >= 1, "need at least one duplicate");
  auto samples = copy_samples(store);
  for (auto& v : samples) {
    if (v.empty()) continue;
    for (int c = 0; c < copies; ++c) {
      OffsetMeasurement dup = v.front();
      // Same worker_time, spread offsets: the exact batched-probe shape.
      dup.offset += static_cast<double>(c + 1) * 1e-7;
      v.push_back(dup);
    }
  }
  return rebuild_sorted(store.ranks(), std::move(samples));
}

OffsetStore with_collapsed_probes(const OffsetStore& store) {
  auto samples = copy_samples(store);
  for (auto& v : samples) {
    for (auto& m : v) {
      if (!v.empty()) m.worker_time = v.front().worker_time;
    }
  }
  return rebuild_sorted(store.ranks(), std::move(samples));
}

OffsetStore with_poisoned_probes(const OffsetStore& store) {
  auto samples = copy_samples(store);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (auto& v : samples) {
    if (v.empty()) continue;
    OffsetMeasurement poison_offset = v.front();
    poison_offset.offset = nan;
    v.push_back(poison_offset);
    OffsetMeasurement poison_time = v.front();
    poison_time.worker_time = inf;
    v.push_back(poison_time);
  }
  // rebuild_sorted's comparator is NaN/inf-safe here: the NaN sample keeps a
  // finite worker_time (stable sort leaves it in place) and +inf sorts last.
  return rebuild_sorted(store.ranks(), std::move(samples));
}

Trace with_clock_step(const Trace& trace, Rank victim, Time after_local, Duration step) {
  CS_REQUIRE(victim >= 0 && victim < trace.ranks(), "victim rank out of range");
  CS_REQUIRE(step >= 0.0, "negative steps would break local monotonicity");
  Trace out = trace;
  for (Event& e : out.events(victim)) {
    if (e.local_ts >= after_local) e.local_ts += step;
  }
  return out;
}

Trace with_drift_storm(const Trace& trace, const std::vector<int>& nodes,
                       double start_fraction, double duration_fraction, double extra_rate) {
  CS_REQUIRE(start_fraction >= 0.0 && start_fraction <= 1.0,
             "storm start fraction must lie in [0, 1]");
  CS_REQUIRE(duration_fraction >= 0.0 && duration_fraction <= 1.0,
             "storm duration fraction must lie in [0, 1]");
  CS_REQUIRE(extra_rate > -1.0, "a storm rate <= -1 would reverse local time");
  Trace out = trace;
  for (Rank r = 0; r < out.ranks(); ++r) {
    const int node = out.placement().location(r).node;
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) continue;
    auto& events = out.events(r);
    if (events.empty()) continue;
    const Time t_min = events.front().local_ts;
    const Duration span = events.back().local_ts - t_min;
    const Time start = t_min + start_fraction * span;
    const Time end = start + duration_fraction * span;
    for (Event& e : events) {
      if (e.local_ts < start) continue;
      e.local_ts += extra_rate * (std::min(e.local_ts, end) - start);
    }
  }
  return out;
}

Trace with_one_sided_traffic(const Trace& trace) {
  Trace out = trace;
  for (Rank r = 0; r < out.ranks(); ++r) {
    auto& events = out.events(r);
    events.erase(std::remove_if(events.begin(), events.end(),
                                [&](const Event& e) {
                                  // Drop high->low messages at both endpoints.
                                  if (e.type == EventType::Send) return e.peer < r;
                                  if (e.type == EventType::Recv) return e.peer > r;
                                  return false;
                                }),
                 events.end());
  }
  return out;
}

Trace with_empty_ranks(const Trace& trace, int stride) {
  CS_REQUIRE(stride >= 2, "stride must keep at least the master rank populated");
  Trace out = trace;
  for (Rank r = 1; r < out.ranks(); r += stride) {
    out.events(r).clear();
  }
  return out;
}

}  // namespace chronosync::verify
