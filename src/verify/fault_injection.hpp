// Deterministic fault injection for the correction stack.
//
// The bugs that survive in synchronization code live in degenerate inputs: a
// probe batch whose samples share one worker_time, an outlier RTT that drags
// the interpolation line, a clock stepped mid-run, traffic that only flows
// one way, ranks that never logged an event.  These generators perturb a
// healthy (trace, offset store) fixture into exactly those shapes — pure
// functions of their seed, so every failure they expose replays bit-for-bit.
//
// The generators return perturbed *copies*; the fixture stays reusable
// across fault classes.  chronocheck --faults drives the whole correction
// pipeline through every class and requires a typed report or a typed error,
// never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measure/offset_probe.hpp"
#include "trace/trace.hpp"

namespace chronosync::verify {

enum class FaultClass {
  ProbeOutlier,      ///< one probe sample per rank dragged far off the line
  DuplicateProbes,   ///< batched probes: equal worker_time samples per rank
  PoisonedProbes,    ///< NaN/inf samples in the store (hostile/truncated file)
  ClockStep,         ///< one rank's clock steps forward mid-run
  OneSidedTraffic,   ///< all traffic of one direction removed
  EmptyRanks,        ///< some ranks have no events at all
};

std::string to_string(FaultClass f);
std::vector<FaultClass> all_fault_classes();

/// Adds one outlier sample per rank: `magnitude` seconds of extra offset at
/// a worker_time strictly inside the rank's measurement interval.
OffsetStore with_probe_outliers(const OffsetStore& store, Duration magnitude,
                                std::uint64_t seed);

/// Duplicates each rank's first sample `copies` times at the *same*
/// worker_time but with spread offsets — the batched-probe degeneracy that
/// used to abort PiecewiseInterpolation::from_store.
OffsetStore with_duplicate_probes(const OffsetStore& store, int copies = 2);

/// Collapses every rank's samples onto a single worker_time (an aborted run
/// whose probes all landed in one batch) — the fully degenerate store.
OffsetStore with_collapsed_probes(const OffsetStore& store);

/// Poisons each rank's store with non-finite samples: one NaN-offset copy of
/// the first sample plus one inf-worker_time sample, interleaved in
/// chronological position.  Every from_store consumer must skip these with a
/// warning instead of folding NaN/inf into corrected timestamps.
OffsetStore with_poisoned_probes(const OffsetStore& store);

/// Steps rank `victim`'s local clock forward by `step` (> 0 keeps local
/// monotonicity) for every event at local_ts >= `after_local`.
Trace with_clock_step(const Trace& trace, Rank victim, Time after_local, Duration step);

/// Correlated drift storm (DVFS/thermal event hitting whole nodes): every
/// rank placed on a node in `nodes` runs `extra_rate` fast (dimensionless;
/// 800e-6 == +800 ppm) over the local-time window
///   [t_min + start_fraction * span, + duration_fraction * span)
/// of that rank's event span.  Inside the window timestamps gain
/// extra_rate * elapsed; afterwards they keep the accumulated surplus, so
/// local monotonicity is preserved for any extra_rate > -1.  Ranks on other
/// nodes are untouched — the correlation structure is exactly "the whole
/// node got hot / changed frequency together".
Trace with_drift_storm(const Trace& trace, const std::vector<int>& nodes,
                       double start_fraction, double duration_fraction, double extra_rate);

/// Removes every Send whose destination rank is below the source (and its
/// matched Recv), leaving only one-directional p2p traffic — the input on
/// which error estimation must report unreachable ranks, not crash.
Trace with_one_sided_traffic(const Trace& trace);

/// Erases all events of every `stride`-th rank (starting at rank 1), giving
/// a trace with empty ranks but unchanged placement.
Trace with_empty_ranks(const Trace& trace, int stride = 2);

}  // namespace chronosync::verify
