#include "verify/invariants.hpp"

#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace chronosync::verify {

std::string to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::NonFiniteTimestamp: return "non-finite timestamp";
    case InvariantKind::LocalOrderInversion: return "local order inversion";
    case InvariantKind::ClockCondition: return "clock condition (Eq. 1)";
    case InvariantKind::BackwardCorrection: return "backward correction";
    case InvariantKind::CorrectionMagnitude: return "correction magnitude";
    case InvariantKind::kCount: break;
  }
  return "?";
}

std::size_t VerifyReport::total() const {
  std::size_t n = 0;
  for (const std::size_t c : counts) n += c;
  return n;
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << "verify: " << events_checked << " events, " << edges_checked
     << " constraint edges, " << total() << " violation(s)\n";
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    os << "  " << to_string(static_cast<InvariantKind>(k)) << ": " << counts[k]
       << " (worst " << worst[k] << " s)\n";
  }
  for (const auto& v : violations) {
    os << "    " << to_string(v.kind) << " rank " << v.rank << " event ("
       << v.event.proc << ", " << v.event.index << ")";
    if (v.has_other) os << " vs (" << v.other.proc << ", " << v.other.index << ")";
    os << " slack " << v.slack << " s\n";
  }
  return os.str();
}

namespace {

struct Recorder {
  VerifyReport& report;
  std::size_t cap;

  void add(InvariantKind kind, Rank rank, EventRef event, Duration slack,
           EventRef other = {}, bool has_other = false) {
    auto& count = report.counts[static_cast<std::size_t>(kind)];
    auto& worst = report.worst[static_cast<std::size_t>(kind)];
    ++count;
    if (slack > worst) worst = slack;
    if (report.violations.size() < cap) {
      report.violations.push_back({kind, rank, event, other, has_other, slack});
    }
  }
};

}  // namespace

InvariantChecker::InvariantChecker(const Trace& trace, const ReplaySchedule& schedule,
                                   VerifyOptions options)
    : trace_(&trace), schedule_(&schedule), options_(options) {
  CS_REQUIRE(schedule.events() == trace.total_events(),
             "schedule was not built from this trace");
  CS_REQUIRE(options_.clock_condition_slack >= 0.0 && options_.order_slack >= 0.0 &&
                 options_.max_correction >= 0.0,
             "verify tolerances must be non-negative");
}

VerifyReport InvariantChecker::check(const TimestampArray& ts) const {
  CS_REQUIRE(ts.ranks() == trace_->ranks(), "timestamp array rank count mismatch");
  VerifyReport report;
  Recorder rec{report, options_.max_recorded};

  // Pass 1, per rank in event order: finiteness and local order.  A
  // non-finite timestamp also poisons every comparison it takes part in, so
  // order is only judged between finite neighbours.
  for (Rank r = 0; r < trace_->ranks(); ++r) {
    const auto& v = ts.of_rank(r);
    CS_REQUIRE(v.size() == trace_->events(r).size(),
               "timestamp array shape differs from trace");
    bool have_prev = false;
    Time prev = 0.0;
    std::uint32_t prev_i = 0;
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      ++report.events_checked;
      const Time t = v[i];
      if (!std::isfinite(t)) {
        rec.add(InvariantKind::NonFiniteTimestamp, r, {r, i},
                std::isnan(t) ? 0.0 : kTimeInfinity);
        continue;
      }
      if (have_prev && t < prev - options_.order_slack) {
        rec.add(InvariantKind::LocalOrderInversion, r, {r, i}, prev - t, {r, prev_i},
                true);
      }
      have_prev = true;
      prev = t;
      prev_i = i;
    }
  }

  // Pass 2, over the CSR constraint edges: Eq. 1 with per-edge slack.
  const auto n = static_cast<std::uint32_t>(schedule_->events());
  for (std::uint32_t g = 0; g < n; ++g) {
    const auto in = schedule_->incoming(g);
    if (in.empty()) continue;
    const EventRef recv = schedule_->event_ref(g);
    const Time t_recv = ts.at(recv);
    for (const auto& edge : in) {
      ++report.edges_checked;
      const EventRef send = schedule_->event_ref(edge.source);
      const Time t_send = ts.at(send);
      if (!std::isfinite(t_recv) || !std::isfinite(t_send)) continue;  // already counted
      const Duration gap = t_send + edge.l_min - t_recv;
      if (gap > options_.clock_condition_slack) {
        rec.add(InvariantKind::ClockCondition, recv.proc, recv, gap, send, true);
      }
    }
  }
  return report;
}

VerifyReport InvariantChecker::check_correction(const TimestampArray& input,
                                                const TimestampArray& corrected) const {
  VerifyReport report = check(corrected);
  CS_REQUIRE(input.ranks() == trace_->ranks(), "input array rank count mismatch");
  Recorder rec{report, options_.max_recorded};

  for (Rank r = 0; r < trace_->ranks(); ++r) {
    const auto& in = input.of_rank(r);
    const auto& out = corrected.of_rank(r);
    CS_REQUIRE(in.size() == out.size(), "input/corrected arrays differ in shape");
    for (std::uint32_t i = 0; i < in.size(); ++i) {
      if (!std::isfinite(in[i]) || !std::isfinite(out[i])) continue;
      const Duration moved = out[i] - in[i];
      if (moved < -options_.order_slack) {
        rec.add(InvariantKind::BackwardCorrection, r, {r, i}, -moved);
      }
      if (std::abs(moved) > options_.max_correction) {
        rec.add(InvariantKind::CorrectionMagnitude, r, {r, i},
                std::abs(moved) - options_.max_correction);
      }
    }
  }
  return report;
}

}  // namespace chronosync::verify
