// Differential cross-checks across the correction stack.
//
// Independent implementations that promise the same answer are the cheapest
// oracle this codebase has: the serial and parallel CLC must agree
// bit-for-bit, the three clock-condition scanners (message re-matching, CSR
// schedule scan, out-of-core v2 stream scan) must produce identical reports,
// and the interpolation family collapses to pairwise-identical corrections on
// degenerate inputs.  This module runs every correction method on one trace,
// compares all outputs pairwise, and checks the declared equivalences — a
// divergence above tolerance is a bug in one of the implementations, not a
// property of the data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "measure/offset_probe.hpp"
#include "sync/clc_stream.hpp"
#include "sync/replay.hpp"
#include "topology/pinning.hpp"
#include "trace/trace.hpp"
#include "verify/invariants.hpp"

namespace chronosync::verify {

/// One correction method's output on the shared trace.
struct MethodOutput {
  std::string name;
  TimestampArray ts;
  /// True for methods contracted to leave zero clock-condition violations
  /// (the CLC family); their outputs are audited with zero slack.
  bool restores_clock_condition = false;
};

/// Runs every available correction method on one trace: offset alignment,
/// linear/piecewise interpolation, Kalman drift estimation, the three
/// error-estimation variants, and serial + parallel CLC over the interpolated
/// input.  Methods whose preconditions the fixture cannot meet (e.g. no
/// offset store) are skipped.
std::vector<MethodOutput> run_all_methods(const Trace& trace, const OffsetStore& offsets,
                                          const std::vector<MessageRecord>& messages,
                                          const ReplaySchedule& schedule);

/// Every method name run_all_methods can emit, in emission order.  This is
/// the shared vocabulary for `chronocheck --method` and the scenario layer's
/// accuracy expectations; an unknown name there is a schema error, not a
/// silently-skipped comparison.
const std::vector<std::string>& all_method_names();

/// Pairwise divergence between two timestamp arrays of identical shape.
struct PairDivergence {
  std::string method_a;
  std::string method_b;
  std::size_t events = 0;
  std::size_t above_tolerance = 0;  ///< events where |a - b| > tolerance
  double max_abs_diff = 0.0;
  EventRef worst{};                 ///< event attaining max_abs_diff
  /// True when the pair is contracted to agree within tolerance (e.g. CLC
  /// serial vs parallel at tolerance 0) — then above_tolerance > 0 is a bug.
  bool must_match = false;
};

/// Accuracy of one method's output against the simulator's ground truth: the
/// master clock (rank 0) read at each event's true timestamp is what a
/// perfect correction would produce, so `error = corrected - master(true_ts)`.
/// Only available on simulated traces (mpisim records true_ts).
struct MethodAccuracy {
  std::string name;
  std::size_t events = 0;
  double rms_error = 0.0;      ///< sqrt(mean(error^2)) over all events
  double max_abs_error = 0.0;
};

/// Computes per-method ground-truth accuracy.  The master timeline is the
/// piecewise-linear map true_ts -> local_ts through rank 0's events; returns
/// empty (with a warning) when rank 0 has fewer than two distinct true
/// timestamps to anchor it.
std::vector<MethodAccuracy> ground_truth_accuracy(const Trace& trace,
                                                  const std::vector<MethodOutput>& outputs);

struct DifferentialReport {
  std::vector<PairDivergence> pairs;      ///< all method pairs, audit order
  std::vector<MethodAccuracy> accuracy;   ///< vs ground truth, method order
  std::vector<std::string> failures;      ///< human-readable contract breaches

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// Compares every pair of method outputs.  `tolerance` applies to
/// informational pairs; must-match pairs (identical `name` prefix rules are
/// not used — the caller's contract list below is) are compared exactly.
DifferentialReport compare_methods(const Trace& trace,
                                   const std::vector<MethodOutput>& outputs,
                                   double tolerance);

/// Cross-checks the three clock-condition scanners on the trace's local
/// timestamps: full message re-matching, single-pass CSR scan, and the
/// streaming v2 scan over an in-memory serialization.  Appends any field
/// mismatch to `failures` and returns the number of comparisons made.
std::size_t cross_check_scans(const Trace& trace, const ReplaySchedule& schedule,
                              std::vector<std::string>& failures);

/// Cross-checks the out-of-core windowed streaming CLC against the in-memory
/// one on the same trace: serializes the trace as a v2 file under `work_dir`,
/// runs clc_stream_file on it, and demands a *bit-identical* corrected trace
/// and jump statistics whenever the streaming run reports zero divergences
/// (ramp_clamped == horizon_dropped == forced == 0) — which the fixture's
/// options must ensure.  true_ts and all non-timestamp fields must survive
/// the round-trip untouched.  Appends contract breaches to `failures` and
/// returns the number of comparisons made.  Temporary files are removed.
std::size_t cross_check_windowed_clc(const Trace& trace, const std::string& work_dir,
                                     const StreamClcOptions& options,
                                     std::vector<std::string>& failures);

/// Cross-checks the OpenMP CLC backend on a POMP trace, with the same
/// bit-identical-to-sequential contract as clc_parallel:
///  * the merged omp_controlled_logical_clock output must equal, bit for bit,
///    the serial CLC run directly on the thread-split trace (this pins the
///    split/merge cursor bookkeeping);
///  * the parallel CLC on the same thread schedule must agree bit-for-bit
///    with the serial one;
///  * the corrected thread-split timestamps must pass a zero-slack invariant
///    audit against the POMP happened-before edges.
/// Appends contract breaches to `failures`, returns comparisons made.
std::size_t cross_check_omp_clc(const Trace& omp_trace, const Placement& thread_placement,
                                std::vector<std::string>& failures);

/// The full differential suite: run_all_methods + compare_methods +
/// cross_check_scans + an invariant audit of every CLC output (zero slack)
/// with `audit_slack` applied to the non-exact methods.
DifferentialReport run_differential_suite(const Trace& trace, const OffsetStore& offsets,
                                          double tolerance = 1e-9);

}  // namespace chronosync::verify
