// POP proxy workload.
//
// The Parallel Ocean Program's communication signature, as exercised in the
// paper's Fig. 7 experiment: a 2-D domain decomposition doing a boundary
// (halo) exchange with its four torus neighbours plus a global allreduce
// (energy diagnostics) every iteration.  The paper traced iterations
// 3500..5500 of a 9000-iteration mref run (~25 min); untraced leading and
// trailing iterations are fast-forwarded as equivalent compute time, which
// preserves both the virtual-time span (clock drift accrues identically) and
// the ~full-run interpolation interval.
#pragma once

#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"

namespace chronosync {

struct PopConfig {
  int px = 8;                     ///< process grid (px * py ranks)
  int py = 4;
  int total_iterations = 9000;
  int traced_begin = 3500;        ///< first traced iteration
  int traced_end = 5500;          ///< one past the last traced iteration
  Duration iter_compute = 150 * units::ms;  ///< per-iteration compute
  double compute_imbalance = 0.02;          ///< relative spread across ranks
  std::uint32_t halo_bytes = 16 * 1024;
  std::uint32_t reduce_bytes = 8;
  int probe_pings = 10;           ///< Cristian pings per worker per batch
};

struct AppRunResult {
  Trace trace;
  OffsetStore offsets;  ///< measurements taken at init and finalize
};

/// Builds and runs a full POP job (offset probe, fast-forward, traced phase,
/// fast-forward, offset probe) and returns the trace plus the offset store.
AppRunResult run_pop(const PopConfig& cfg, JobConfig job_cfg);

/// The SPMD body, exposed for direct use on an existing Job.
[[nodiscard]] Coro<void> pop_rank(Proc& p, const PopConfig& cfg, OffsetStore& store);

}  // namespace chronosync
