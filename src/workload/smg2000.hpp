// SMG2000 proxy workload.
//
// The ASC SMG2000 benchmark is a semicoarsening multigrid solver whose
// signature property (for this paper) is a large volume of
// *non-nearest-neighbour* point-to-point communication: every V-cycle level
// talks to partners at doubling distances in the process grid.  The paper ran
// a small problem (5 solver iterations) padded with sleeps so the main phase
// sat ten minutes after initialization and ten minutes before finalization,
// stretching Scalasca's interpolation interval to ~20 minutes.
#pragma once

#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"
#include "workload/pop.hpp"  // AppRunResult

namespace chronosync {

struct SmgConfig {
  int px = 8;           ///< process grid (px * py ranks)
  int py = 4;
  int levels = 5;       ///< multigrid levels per cycle
  int iterations = 5;   ///< solver iterations (V-cycles)
  int setup_exchanges = 3;  ///< extra exchanges during setup phase
  Duration level_compute = 2 * units::ms;   ///< finest-level smoothing time
  std::uint32_t level_bytes = 8 * 1024;     ///< finest-level message size
  Duration pre_sleep = 600.0;   ///< seconds before the main phase
  Duration post_sleep = 600.0;  ///< seconds after the main phase
  int probe_pings = 10;
};

AppRunResult run_smg(const SmgConfig& cfg, JobConfig job_cfg);

[[nodiscard]] Coro<void> smg_rank(Proc& p, const SmgConfig& cfg, OffsetStore& store);

}  // namespace chronosync
