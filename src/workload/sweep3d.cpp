#include "workload/sweep3d.hpp"

#include <array>

#include "common/expect.hpp"

namespace chronosync {

namespace {
constexpr Tag kFaceTag = 404;
}

Coro<void> sweep3d_rank(Proc& p, const Sweep3dConfig& cfg, OffsetStore& store) {
  CS_REQUIRE(cfg.px * cfg.py == p.nranks(), "grid does not match rank count");
  const int gx = p.rank() % cfg.px;
  const int gy = p.rank() / cfg.px;
  const std::int32_t sweep_region = p.region("sweep_octant");

  p.set_tracing(false);
  co_await probe_offsets(p, store, cfg.probe_pings);
  p.set_tracing(true);

  // The four octants of a 2-D sweep: (+x,+y), (-x,+y), (+x,-y), (-x,-y).
  const std::array<std::pair<int, int>, 4> dirs = {{{1, 1}, {-1, 1}, {1, -1}, {-1, -1}}};

  for (int it = 0; it < cfg.iterations; ++it) {
    for (int o = 0; o < cfg.octants && o < 4; ++o) {
      const auto [dx, dy] = dirs[static_cast<std::size_t>(o)];
      // Upstream neighbours (where the wavefront comes from).
      const int ux = gx - dx;
      const int uy = gy - dy;
      // Downstream neighbours (where it continues to).
      const int wx = gx + dx;
      const int wy = gy + dy;

      p.enter(sweep_region);
      for (int block = 0; block < cfg.angles_per_block; ++block) {
        // Wait for the incoming faces of this k-block (no torus: boundary
        // ranks start the wavefront).
        if (ux >= 0 && ux < cfg.px) co_await p.recv(gy * cfg.px + ux, kFaceTag);
        if (uy >= 0 && uy < cfg.py) co_await p.recv(uy * cfg.px + gx, kFaceTag);
        co_await p.compute(std::max(
            0.0, p.rng().normal(cfg.block_compute, cfg.compute_imbalance * cfg.block_compute)));
        if (wx >= 0 && wx < cfg.px) co_await p.send(gy * cfg.px + wx, kFaceTag, cfg.face_bytes);
        if (wy >= 0 && wy < cfg.py) co_await p.send(wy * cfg.px + gx, kFaceTag, cfg.face_bytes);
      }
      p.exit(sweep_region);
    }
    // Convergence check at the end of every source iteration.
    co_await p.allreduce(8);
  }

  p.set_tracing(false);
  co_await probe_offsets(p, store, cfg.probe_pings);
}

AppRunResult run_sweep3d(const Sweep3dConfig& cfg, JobConfig job_cfg) {
  job_cfg.start_tracing = false;
  Job job(std::move(job_cfg));
  OffsetStore store(job.ranks());
  job.run([&](Proc& p) { return sweep3d_rank(p, cfg, store); });
  return {job.take_trace(), std::move(store)};
}

}  // namespace chronosync
