// Randomized-shift sweep workload.
//
// A deterministic deadlock-free random traffic generator: every round all
// ranks send to (rank + s) mod n and receive from (rank - s) mod n, with the
// shift sequence s drawn from a seed shared by all ranks.  Gives dense,
// bidirectional pairwise traffic — the input the error-estimation
// synchronizers need — without any coordination protocol.
#pragma once

#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"
#include "workload/pop.hpp"  // AppRunResult

namespace chronosync {

struct SweepConfig {
  int rounds = 200;
  std::uint32_t bytes = 512;
  Duration gap_mean = 50 * units::us;   ///< compute time between rounds
  double gap_spread = 0.3;              ///< relative spread of the gaps
  std::uint64_t shift_seed = 7;         ///< shared shift sequence seed
  int collective_every = 0;             ///< >0: barrier every k rounds
  int probe_pings = 10;
  bool probe = true;                    ///< measure offsets at init/finalize
  /// >0: also probe every k rounds mid-run (suspends tracing, ends with a
  /// barrier — the periodic-measurement approach of ref. [17]).  The extra
  /// knots are what the piecewise and Kalman corrections feed on; with only
  /// the init/finalize batches both degenerate to Eq. 3's single line.
  int probe_every = 0;
};

AppRunResult run_sweep(const SweepConfig& cfg, JobConfig job_cfg);

[[nodiscard]] Coro<void> sweep_rank(Proc& p, const SweepConfig& cfg, OffsetStore& store);

}  // namespace chronosync
