#include "workload/sweep.hpp"

#include "common/expect.hpp"

namespace chronosync {

namespace {
constexpr Tag kSweepTag = 303;
}

Coro<void> sweep_rank(Proc& p, const SweepConfig& cfg, OffsetStore& store) {
  const int n = p.nranks();
  CS_REQUIRE(n >= 2, "sweep needs at least two ranks");
  Rng shifts(cfg.shift_seed);  // identical on every rank by construction
  const std::int32_t region = p.region("sweep_round");

  if (cfg.probe) {
    p.set_tracing(false);
    co_await probe_offsets(p, store, cfg.probe_pings);
    p.set_tracing(true);
  }

  for (int round = 0; round < cfg.rounds; ++round) {
    const auto s = static_cast<Rank>(shifts.uniform_int(1, n - 1));
    const Duration gap = shifts.uniform(cfg.gap_mean * (1.0 - cfg.gap_spread),
                                        cfg.gap_mean * (1.0 + cfg.gap_spread));
    p.enter(region);
    co_await p.compute(gap);
    co_await p.send((p.rank() + s) % n, kSweepTag, cfg.bytes);
    co_await p.recv((p.rank() - s + n) % n, kSweepTag);
    if (cfg.collective_every > 0 && (round + 1) % cfg.collective_every == 0) {
      co_await p.barrier();
    }
    p.exit(region);
    if (cfg.probe && cfg.probe_every > 0 && (round + 1) % cfg.probe_every == 0 &&
        round + 1 < cfg.rounds) {
      // Mid-run probe batch: probe_offsets suspends tracing itself and ends
      // with a barrier, and every rank reaches this point each round, so the
      // SPMD contract holds.
      co_await probe_offsets(p, store, cfg.probe_pings);
    }
  }

  if (cfg.probe) {
    p.set_tracing(false);
    co_await probe_offsets(p, store, cfg.probe_pings);
  }
}

AppRunResult run_sweep(const SweepConfig& cfg, JobConfig job_cfg) {
  Job job(std::move(job_cfg));
  OffsetStore store(job.ranks());
  job.run([&](Proc& p) { return sweep_rank(p, cfg, store); });
  return {job.take_trace(), std::move(store)};
}

}  // namespace chronosync
