#include "workload/pop.hpp"

#include <array>

#include "common/expect.hpp"

namespace chronosync {

namespace {

constexpr Tag kHaloTag = 101;

struct Grid2D {
  int px, py;
  int x(Rank r) const { return r % px; }
  int y(Rank r) const { return r / px; }
  static int wrap(int v, int n) { return ((v % n) + n) % n; }
  Rank at(int gx, int gy) const { return wrap(gy, py) * px + wrap(gx, px); }
};

}  // namespace

Coro<void> pop_rank(Proc& p, const PopConfig& cfg, OffsetStore& store) {
  const Grid2D grid{cfg.px, cfg.py};
  CS_REQUIRE(cfg.px * cfg.py == p.nranks(), "grid does not match rank count");
  CS_REQUIRE(0 <= cfg.traced_begin && cfg.traced_begin <= cfg.traced_end &&
                 cfg.traced_end <= cfg.total_iterations,
             "bad tracing window");

  const int gx = grid.x(p.rank());
  const int gy = grid.y(p.rank());
  const std::array<Rank, 4> neighbors = {
      grid.at(gx - 1, gy), grid.at(gx + 1, gy), grid.at(gx, gy - 1), grid.at(gx, gy + 1)};

  const std::int32_t step_region = p.region("pop_step");

  // MPI_Init: Scalasca measures offsets here.
  p.set_tracing(false);
  co_await probe_offsets(p, store, cfg.probe_pings);

  // Fast-forward the untraced leading iterations as equivalent compute time,
  // then resynchronize (the real code would stay loosely coupled through its
  // halo dependencies).
  if (cfg.traced_begin > 0) {
    co_await p.compute(cfg.iter_compute * cfg.traced_begin);
    co_await p.barrier();
  }

  p.set_tracing(true);
  for (int it = cfg.traced_begin; it < cfg.traced_end; ++it) {
    p.enter(step_region);
    const Duration work = std::max(
        0.0, p.rng().normal(cfg.iter_compute, cfg.compute_imbalance * cfg.iter_compute));
    co_await p.compute(work);
    // Halo exchange, POP style: post receives, start sends, wait for all.
    std::vector<Request> reqs;
    reqs.reserve(2 * neighbors.size());
    for (Rank nb : neighbors) reqs.push_back(p.irecv(nb, kHaloTag));
    for (Rank nb : neighbors) reqs.push_back(p.isend(nb, kHaloTag, cfg.halo_bytes));
    co_await p.waitall(std::move(reqs));
    // Global diagnostics.
    co_await p.allreduce(cfg.reduce_bytes);
    p.exit(step_region);
  }
  p.set_tracing(false);

  if (cfg.traced_end < cfg.total_iterations) {
    co_await p.compute(cfg.iter_compute * (cfg.total_iterations - cfg.traced_end));
    co_await p.barrier();
  }

  // MPI_Finalize: second offset measurement.
  co_await probe_offsets(p, store, cfg.probe_pings);
}

AppRunResult run_pop(const PopConfig& cfg, JobConfig job_cfg) {
  job_cfg.start_tracing = false;
  Job job(std::move(job_cfg));
  OffsetStore store(job.ranks());
  job.run([&](Proc& p) { return pop_rank(p, cfg, store); });
  return {job.take_trace(), std::move(store)};
}

}  // namespace chronosync
