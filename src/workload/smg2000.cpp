#include "workload/smg2000.hpp"

#include <algorithm>
#include <vector>

#include "common/expect.hpp"

namespace chronosync {

namespace {

constexpr Tag kSmgTag = 202;

struct Grid2D {
  int px, py;
  int x(Rank r) const { return r % px; }
  int y(Rank r) const { return r / px; }
  static int wrap(int v, int n) { return ((v % n) + n) % n; }
  Rank at(int gx, int gy) const { return wrap(gy, py) * px + wrap(gx, px); }
};

}  // namespace

Coro<void> smg_rank(Proc& p, const SmgConfig& cfg, OffsetStore& store) {
  const Grid2D grid{cfg.px, cfg.py};
  CS_REQUIRE(cfg.px * cfg.py == p.nranks(), "grid does not match rank count");

  const int gx = grid.x(p.rank());
  const int gy = grid.y(p.rank());
  const std::int32_t cycle_region = p.region("smg_vcycle");
  const std::int32_t setup_region = p.region("smg_setup");

  // Partners at distance 2^level in both grid dimensions: the long-range
  // pattern that distinguishes SMG2000 from stencil codes.
  auto partners_at = [&](int level) {
    const int d = 1 << level;
    std::vector<Rank> out = {grid.at(gx - d, gy), grid.at(gx + d, gy),
                             grid.at(gx, gy - d), grid.at(gx, gy + d)};
    // Deduplicate partners that wrap onto each other (small grids, large d)
    // and drop self-partners.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove(out.begin(), out.end(), p.rank()), out.end());
    return out;
  };

  auto exchange_level = [&](int level) -> Coro<void> {
    const auto partners = partners_at(level);
    const std::uint32_t bytes =
        std::max<std::uint32_t>(64, cfg.level_bytes >> static_cast<unsigned>(level));
    for (Rank nb : partners) co_await p.send(nb, kSmgTag, bytes);
    for (Rank nb : partners) co_await p.recv(nb, kSmgTag);
    co_await p.compute(std::max(
        0.0, p.rng().normal(cfg.level_compute / static_cast<double>(1 << level),
                            0.05 * cfg.level_compute)));
  };

  // MPI_Init with offset measurement, then the pre-phase sleep.
  p.set_tracing(false);
  co_await probe_offsets(p, store, cfg.probe_pings);
  co_await p.compute(cfg.pre_sleep);
  co_await p.barrier();

  p.set_tracing(true);

  // Setup: coefficient exchange across several level distances.
  p.enter(setup_region);
  for (int s = 0; s < cfg.setup_exchanges; ++s) {
    for (int level = 0; level < cfg.levels; ++level) {
      co_await exchange_level(level);
    }
  }
  co_await p.allreduce(8);
  p.exit(setup_region);

  // Solver: V-cycles down and up the level hierarchy, plus the residual
  // norm's allreduce per iteration.
  for (int it = 0; it < cfg.iterations; ++it) {
    p.enter(cycle_region);
    for (int level = 0; level < cfg.levels; ++level) {
      co_await exchange_level(level);
    }
    for (int level = cfg.levels - 1; level >= 0; --level) {
      co_await exchange_level(level);
    }
    co_await p.allreduce(8);
    p.exit(cycle_region);
  }
  p.set_tracing(false);

  co_await p.compute(cfg.post_sleep);
  co_await p.barrier();
  co_await probe_offsets(p, store, cfg.probe_pings);
}

AppRunResult run_smg(const SmgConfig& cfg, JobConfig job_cfg) {
  job_cfg.start_tracing = false;
  Job job(std::move(job_cfg));
  OffsetStore store(job.ranks());
  job.run([&](Proc& p) { return smg_rank(p, cfg, store); });
  return {job.take_trace(), std::move(store)};
}

}  // namespace chronosync
