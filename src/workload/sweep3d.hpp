// Sweep3D-style wavefront proxy.
//
// The ASCI Sweep3D transport kernel pipelines diagonal wavefronts across a
// 2-D process grid: each rank receives from its upstream neighbours (west
// and north for the (+x,+y) octant), computes, and forwards to the
// downstream ones.  Traces are dominated by long serial dependency chains —
// the hardest shape for timestamp correction, because a single violated
// receive propagates its correction down the whole pipeline.
#pragma once

#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"
#include "workload/pop.hpp"  // AppRunResult

namespace chronosync {

struct Sweep3dConfig {
  int px = 4;                 ///< process grid (px * py ranks)
  int py = 4;
  int octants = 4;            ///< sweep directions per iteration
  int iterations = 10;        ///< outer (source) iterations
  int angles_per_block = 6;   ///< pipelining depth (k-blocks per octant)
  Duration block_compute = 500 * units::us;
  double compute_imbalance = 0.05;
  std::uint32_t face_bytes = 4096;
  int probe_pings = 10;
};

AppRunResult run_sweep3d(const Sweep3dConfig& cfg, JobConfig job_cfg);

[[nodiscard]] Coro<void> sweep3d_rank(Proc& p, const Sweep3dConfig& cfg, OffsetStore& store);

}  // namespace chronosync
