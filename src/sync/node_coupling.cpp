#include "sync/node_coupling.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/expect.hpp"

namespace chronosync {

namespace {

/// A rank's correction profile: (input timestamp, applied correction) knots,
/// evaluated with linear interpolation and flat extrapolation.
class CorrectionProfile {
 public:
  void add(Time t, Duration corr) {
    if (!knots_.empty() && t <= knots_.back().first) {
      // Equal/backward input timestamps: keep the larger correction.
      knots_.back().second = std::max(knots_.back().second, corr);
      return;
    }
    knots_.push_back({t, corr});
  }

  Duration at(Time t) const {
    if (knots_.empty()) return 0.0;
    if (t <= knots_.front().first) return knots_.front().second;
    if (t >= knots_.back().first) return knots_.back().second;
    auto it = std::lower_bound(
        knots_.begin(), knots_.end(), t,
        [](const std::pair<Time, Duration>& k, Time v) { return k.first < v; });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double f = (t - lo.first) / (hi.first - lo.first);
    return lo.second + f * (hi.second - lo.second);
  }

  bool empty() const { return knots_.empty(); }

 private:
  std::vector<std::pair<Time, Duration>> knots_;
};

}  // namespace

NodeCoupledClcResult node_coupled_clc(const Trace& trace, const ReplaySchedule& schedule,
                                      const TimestampArray& input, const ClcOptions& options) {
  NodeCoupledClcResult result;
  result.clc = controlled_logical_clock(trace, schedule, input, options);

  // Group ranks by node.
  std::map<int, std::vector<Rank>> nodes;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    nodes[trace.placement().location(r).node].push_back(r);
  }

  // Correction profiles per rank from the CLC result.
  std::vector<CorrectionProfile> profiles(static_cast<std::size_t>(trace.ranks()));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& in = input.of_rank(r);
    const auto& out = result.clc.corrected.of_rank(r);
    for (std::size_t i = 0; i < in.size(); ++i) {
      profiles[static_cast<std::size_t>(r)].add(in[i], out[i] - in[i]);
    }
  }

  // Send caps against the *final* CLC receive timestamps (only ever loosened
  // by coupling, since receives move forward too).
  std::vector<Time> cap(schedule.events(), kTimeInfinity);
  constexpr Duration kFpMargin = 1e-12;
  for (std::uint32_t g = 0; g < schedule.events(); ++g) {
    for (const auto& edge : schedule.incoming(g)) {
      cap[edge.source] = std::min(
          cap[edge.source],
          result.clc.corrected.at(schedule.event_ref(g)) - edge.l_min - kFpMargin);
    }
  }

  for (const auto& [node, ranks] : nodes) {
    if (ranks.size() < 2) continue;  // nothing to couple
    for (Rank r : ranks) {
      auto& out = result.clc.corrected.of_rank(r);
      const auto& in = input.of_rank(r);
      if (in.empty()) continue;

      // Desired correction: envelope over the node's profiles.
      Time successor = kTimeInfinity;
      for (std::uint32_t i = static_cast<std::uint32_t>(in.size()); i-- > 0;) {
        Duration want = out[i] - in[i];
        for (Rank q : ranks) {
          if (q == r) continue;
          want = std::max(want, profiles[static_cast<std::size_t>(q)].at(in[i]));
        }
        Time moved = in[i] + want;
        moved = std::min(moved, cap[schedule.global_index({r, i})]);
        moved = std::min(moved, successor);  // keep local order
        if (moved > out[i] + 1e-15) {
          result.max_coupled_shift = std::max(result.max_coupled_shift, moved - out[i]);
          out[i] = moved;
          ++result.coupled_moves;
        }
        successor = std::min(successor, out[i]);
      }
    }
  }
  return result;
}

}  // namespace chronosync
