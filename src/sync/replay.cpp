#include "sync/replay.hpp"

#include <deque>

#include "common/expect.hpp"

namespace chronosync {

ReplaySchedule::ReplaySchedule(const Trace& trace, const std::vector<MessageRecord>& messages,
                               const std::vector<LogicalMessage>& logical)
    : trace_(&trace) {
  const int n = trace.ranks();
  prefix_.resize(static_cast<std::size_t>(n) + 1);
  prefix_[0] = 0;
  for (Rank r = 0; r < n; ++r) {
    prefix_[static_cast<std::size_t>(r) + 1] =
        prefix_[static_cast<std::size_t>(r)] +
        static_cast<std::uint32_t>(trace.events(r).size());
  }
  total_ = prefix_.back();
  in_.resize(total_);
  out_.resize(total_);

  for (const auto& m : messages) {
    add_edge(global_index(m.send), global_index(m.recv),
             trace.min_latency(m.send.proc, m.recv.proc));
  }
  for (const auto& lm : logical) {
    add_edge(global_index(lm.send), global_index(lm.recv),
             trace.min_latency(lm.send.proc, lm.recv.proc));
  }
}

std::uint32_t ReplaySchedule::global_index(const EventRef& ref) const {
  CS_REQUIRE(ref.proc >= 0 && ref.proc < trace_->ranks(), "rank out of range");
  return prefix_[static_cast<std::size_t>(ref.proc)] + ref.index;
}

EventRef ReplaySchedule::event_ref(std::uint32_t gidx) const {
  CS_REQUIRE(gidx < total_, "global index out of range");
  // prefix_ is sorted; find the rank containing gidx.
  Rank lo = 0, hi = trace_->ranks() - 1;
  while (lo < hi) {
    const Rank mid = (lo + hi + 1) / 2;
    if (prefix_[static_cast<std::size_t>(mid)] <= gidx) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return {lo, gidx - prefix_[static_cast<std::size_t>(lo)]};
}

void ReplaySchedule::add_edge(std::uint32_t src, std::uint32_t dst, Duration l_min) {
  in_[dst].push_back({src, l_min});
  out_[src].push_back(dst);
}

const std::vector<ReplaySchedule::ConstraintEdge>& ReplaySchedule::incoming(
    std::uint32_t gidx) const {
  CS_REQUIRE(gidx < total_, "global index out of range");
  return in_[gidx];
}

const std::vector<std::uint32_t>& ReplaySchedule::outgoing(std::uint32_t gidx) const {
  CS_REQUIRE(gidx < total_, "global index out of range");
  return out_[gidx];
}

void ReplaySchedule::replay(
    const std::function<void(std::uint32_t, const EventRef&)>& visit) const {
  const int n = trace_->ranks();

  // Remaining unvisited constraint sources per event.
  std::vector<std::uint32_t> pending(total_);
  for (std::uint32_t g = 0; g < total_; ++g) {
    pending[g] = static_cast<std::uint32_t>(in_[g].size());
  }

  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<char> queued(static_cast<std::size_t>(n), 0);
  std::deque<Rank> ready;

  auto cursor_gidx = [&](Rank r) {
    return prefix_[static_cast<std::size_t>(r)] + cursor[static_cast<std::size_t>(r)];
  };
  auto enqueue_if_ready = [&](Rank r) {
    const auto c = cursor[static_cast<std::size_t>(r)];
    if (c >= trace_->events(r).size()) return;
    if (pending[cursor_gidx(r)] != 0) return;
    if (queued[static_cast<std::size_t>(r)]) return;
    queued[static_cast<std::size_t>(r)] = 1;
    ready.push_back(r);
  };

  for (Rank r = 0; r < n; ++r) enqueue_if_ready(r);

  std::size_t visited = 0;
  while (!ready.empty()) {
    const Rank r = ready.front();
    ready.pop_front();
    queued[static_cast<std::size_t>(r)] = 0;

    // Drain this process until its next event is blocked.
    while (cursor[static_cast<std::size_t>(r)] < trace_->events(r).size() &&
           pending[cursor_gidx(r)] == 0) {
      const std::uint32_t g = cursor_gidx(r);
      const EventRef ref{r, cursor[static_cast<std::size_t>(r)]};
      visit(g, ref);
      ++visited;
      ++cursor[static_cast<std::size_t>(r)];
      for (std::uint32_t dep : out_[g]) {
        CS_ENSURE(pending[dep] > 0, "dependency counting corrupted");
        --pending[dep];
        if (pending[dep] == 0) {
          // The dependent becomes processable only once its process cursor
          // reaches it; check and enqueue the owning process.
          const EventRef dref = event_ref(dep);
          if (cursor[static_cast<std::size_t>(dref.proc)] == dref.index) {
            enqueue_if_ready(dref.proc);
          }
        }
      }
    }
  }

  CS_ENSURE(visited == total_, "constraint graph has a cycle or dangling dependency");
}

}  // namespace chronosync
