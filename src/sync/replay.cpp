#include "sync/replay.hpp"

namespace chronosync {

ReplaySchedule::ReplaySchedule(const Trace& trace, const std::vector<MessageRecord>& messages,
                               const std::vector<LogicalMessage>& logical)
    : trace_(&trace) {
  const int n = trace.ranks();
  prefix_.resize(static_cast<std::size_t>(n) + 1);
  prefix_[0] = 0;
  for (Rank r = 0; r < n; ++r) {
    prefix_[static_cast<std::size_t>(r) + 1] =
        prefix_[static_cast<std::size_t>(r)] +
        static_cast<std::uint32_t>(trace.events(r).size());
  }
  total_ = prefix_.back();

  rank_of_.resize(total_);
  for (Rank r = 0; r < n; ++r) {
    for (std::uint32_t g = prefix_[static_cast<std::size_t>(r)];
         g < prefix_[static_cast<std::size_t>(r) + 1]; ++g) {
      rank_of_[g] = r;
    }
  }

  // CSR build: count degrees, prefix-sum into offsets, then fill.  Filling
  // iterates p2p messages before logical ones, so each event's incoming edges
  // keep that order.
  const std::size_t m = messages.size() + logical.size();
  std::vector<std::uint32_t> src(m), dst(m);
  std::vector<Duration> lmin(m);
  std::size_t k = 0;
  for (const auto& msg : messages) {
    src[k] = global_index(msg.send);
    dst[k] = global_index(msg.recv);
    lmin[k] = trace.min_latency(msg.send.proc, msg.recv.proc);
    ++k;
  }
  const std::size_t first_logical = k;
  for (const auto& lm : logical) {
    src[k] = global_index(lm.send);
    dst[k] = global_index(lm.recv);
    lmin[k] = trace.min_latency(lm.send.proc, lm.recv.proc);
    ++k;
  }

  in_off_.assign(total_ + 1, 0);
  out_off_.assign(total_ + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++in_off_[dst[e] + 1];
    ++out_off_[src[e] + 1];
  }
  for (std::size_t g = 0; g < total_; ++g) {
    in_off_[g + 1] += in_off_[g];
    out_off_[g + 1] += out_off_[g];
  }

  in_edges_.resize(m);
  out_edges_.resize(m);
  std::vector<std::uint32_t> in_fill(in_off_.begin(), in_off_.end() - 1);
  std::vector<std::uint32_t> out_fill(out_off_.begin(), out_off_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    in_edges_[in_fill[dst[e]]++] = {src[e], e >= first_logical, lmin[e]};
    out_edges_[out_fill[src[e]]++] = dst[e];
  }
}

std::uint32_t ReplaySchedule::global_index(const EventRef& ref) const {
  CS_REQUIRE(ref.proc >= 0 && ref.proc < trace_->ranks(), "rank out of range");
  return prefix_[static_cast<std::size_t>(ref.proc)] + ref.index;
}

EventRef ReplaySchedule::event_ref(std::uint32_t gidx) const {
  CS_REQUIRE(gidx < total_, "global index out of range");
  const Rank r = rank_of_[gidx];
  return {r, gidx - prefix_[static_cast<std::size_t>(r)]};
}

}  // namespace chronosync
