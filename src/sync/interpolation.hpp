// Linear offset interpolation (Eq. 3) and its piecewise generalization.
//
// Given two offset measurements (w1, o1) and (w2, o2) per worker — typically
// taken during MPI_Init and MPI_Finalize — the master time for a worker
// timestamp t is
//
//     m(t) = t + (o2 - o1)/(w2 - w1) * (t - w1) + o1                  (Eq. 3)
//
// This removes the initial offset and the *mean* drift over the measurement
// interval; the paper's central result is that the residual (non-constant
// drift) still violates the clock condition on longer runs.
//
// PiecewiseInterpolation consumes more than two measurements (the approach of
// ref. [17]: periodic measurements during global synchronization points) and
// interpolates linearly between consecutive ones.
#pragma once

#include <vector>

#include "common/mathutil.hpp"
#include "measure/offset_probe.hpp"
#include "sync/correction.hpp"

namespace chronosync {

class LinearInterpolation final : public TimestampCorrection {
 public:
  struct RankParams {
    Time w1 = 0.0;
    Duration o1 = 0.0;
    Time w2 = 1.0;
    Duration o2 = 0.0;
  };

  explicit LinearInterpolation(std::vector<RankParams> params);

  /// Uses each rank's first and last measurement (Scalasca's Init/Finalize).
  static LinearInterpolation from_store(const OffsetStore& store);

  Time correct(Rank r, Time local_ts) const override;

  const RankParams& params(Rank r) const;

 private:
  std::vector<RankParams> params_;
};

class PiecewiseInterpolation final : public TimestampCorrection {
 public:
  /// One piecewise map per rank through all of its measurements.
  /// Non-finite samples are skipped with a warning; duplicate worker_time
  /// knots keep the first sample of the instant; a rank left with one knot
  /// degrades to pure offset alignment (unit slope) and one with none to the
  /// identity map.
  static PiecewiseInterpolation from_store(const OffsetStore& store);

  /// Maps a worker-local timestamp to estimated master time.
  ///
  /// Extrapolation policy: timestamps before the first knot extend the
  /// *first* segment's slope; timestamps after the last knot extend the
  /// *last* segment's slope.  This matches Eq. 3 semantics — the measured
  /// mean drift of the nearest interval keeps applying outside the measured
  /// range — and keeps the map continuous and strictly increasing end to
  /// end, so rank-local event order is preserved even for events recorded
  /// outside the probe window.  In the degenerate one-knot fallback the
  /// synthetic unit-slope segment makes both boundary slopes exactly 1
  /// (pure offset alignment everywhere).
  Time correct(Rank r, Time local_ts) const override;

 private:
  explicit PiecewiseInterpolation(std::vector<PiecewiseLinear> maps);
  std::vector<PiecewiseLinear> maps_;
};

}  // namespace chronosync
