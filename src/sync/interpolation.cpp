#include "sync/interpolation.hpp"

#include "common/expect.hpp"
#include "common/log.hpp"

namespace chronosync {

LinearInterpolation::LinearInterpolation(std::vector<RankParams> params)
    : params_(std::move(params)) {
  CS_REQUIRE(!params_.empty(), "interpolation needs at least one rank");
  for (const auto& p : params_) {
    CS_REQUIRE(p.w2 > p.w1, "interpolation interval must have positive length");
  }
}

LinearInterpolation LinearInterpolation::from_store(const OffsetStore& store) {
  std::vector<RankParams> params(static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    CS_REQUIRE(store.of(r).size() >= 2,
               "linear interpolation needs two measurements per rank");
    // A hostile or truncated store can carry NaN/inf samples; folding one into
    // Eq. 3 would poison every corrected timestamp of the rank, so screen
    // first and degrade like the other degenerate cases below.
    std::size_t skipped = 0;
    const auto samples = finite_samples(store.of(r), &skipped);
    if (skipped > 0) {
      CS_LOG_WARN << "LinearInterpolation: rank " << r << " skipped " << skipped
                  << " non-finite offset sample(s)";
    }
    auto& p = params[static_cast<std::size_t>(r)];
    if (samples.empty()) {
      CS_LOG_WARN << "LinearInterpolation: rank " << r
                  << " has no finite offset samples; falling back to identity";
      p = RankParams{};  // o1 == o2 == 0: identity correction
      continue;
    }
    p.w1 = samples.front().worker_time;
    p.o1 = samples.front().offset;
    p.w2 = samples.back().worker_time;
    p.o2 = samples.back().offset;
    if (!(p.w2 > p.w1)) {
      // Degenerate interval: the init and final probes share a worker_time
      // (e.g. an aborted run whose probes all landed in one batch).  Eq. 3's
      // drift term is undefined, so align this rank by the first measured
      // offset alone instead of crashing with an opaque precondition.
      CS_LOG_WARN << "LinearInterpolation: rank " << r
                  << " has a degenerate measurement interval (w1 == w2 == " << p.w1
                  << "); falling back to pure offset alignment for this rank";
      p.w2 = p.w1 + 1.0;
      p.o2 = p.o1;
    }
  }
  return LinearInterpolation(std::move(params));
}

Time LinearInterpolation::correct(Rank r, Time local_ts) const {
  const RankParams& p = params(r);
  // Eq. 3 of the paper.
  return local_ts + (p.o2 - p.o1) / (p.w2 - p.w1) * (local_ts - p.w1) + p.o1;
}

const LinearInterpolation::RankParams& LinearInterpolation::params(Rank r) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < params_.size(), "rank out of range");
  return params_[static_cast<std::size_t>(r)];
}

PiecewiseInterpolation::PiecewiseInterpolation(std::vector<PiecewiseLinear> maps)
    : maps_(std::move(maps)) {}

PiecewiseInterpolation PiecewiseInterpolation::from_store(const OffsetStore& store) {
  std::vector<PiecewiseLinear> maps;
  maps.reserve(static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    CS_REQUIRE(store.of(r).size() >= 2,
               "piecewise interpolation needs two measurements per rank");
    std::size_t skipped = 0;
    const auto samples = finite_samples(store.of(r), &skipped);
    if (skipped > 0) {
      CS_LOG_WARN << "PiecewiseInterpolation: rank " << r << " skipped " << skipped
                  << " non-finite offset sample(s)";
    }
    PiecewiseLinear map;
    std::size_t dropped = 0;
    for (const auto& s : samples) {
      // Knot: worker local time -> estimated master time at that instant.
      // Probes taken in one batch can share a worker_time (the degenerate
      // case LinearInterpolation::from_store already tolerates); appending
      // the duplicate would abort on PiecewiseLinear's strictly-increasing
      // precondition, so keep the first sample of each instant only.
      if (map.size() > 0 && !(s.worker_time > map.knots().back().x)) {
        ++dropped;
        continue;
      }
      map.append(s.worker_time, s.worker_time + s.offset);
    }
    if (dropped > 0) {
      CS_LOG_WARN << "PiecewiseInterpolation: rank " << r << " dropped " << dropped
                  << " offset sample(s) with duplicate worker_time; keeping the first "
                     "sample of each instant";
    }
    if (map.size() == 0) {
      CS_LOG_WARN << "PiecewiseInterpolation: rank " << r
                  << " has no finite offset samples; falling back to identity";
      map.append(0.0, 0.0);
      map.append(1.0, 1.0);
    }
    if (map.size() == 1) {
      // Every probe of this rank landed on one instant: mirror the linear
      // fallback and degrade to pure offset alignment (unit slope).
      CS_LOG_WARN << "PiecewiseInterpolation: rank " << r
                  << " has a degenerate measurement interval (all samples at worker_time "
                  << map.knots().back().x << "); falling back to pure offset alignment";
      map.append(map.knots().back().x + 1.0, map.knots().back().y + 1.0);
    }
    maps.push_back(std::move(map));
  }
  return PiecewiseInterpolation(std::move(maps));
}

Time PiecewiseInterpolation::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < maps_.size(), "rank out of range");
  return maps_[static_cast<std::size_t>(r)](local_ts);
}

}  // namespace chronosync
