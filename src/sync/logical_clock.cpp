#include "sync/logical_clock.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace chronosync {

std::vector<std::vector<std::uint64_t>> lamport_clocks(const Trace& trace,
                                                       const ReplaySchedule& schedule) {
  std::vector<std::uint64_t> by_gidx(schedule.events(), 0);
  std::vector<std::uint64_t> proc_last(static_cast<std::size_t>(trace.ranks()), 0);

  schedule.replay([&](std::uint32_t g, const EventRef& ref) {
    // LC = 1 + max(previous local event, all constraining sends).
    std::uint64_t lc = proc_last[static_cast<std::size_t>(ref.proc)];
    for (const auto& edge : schedule.incoming(g)) {
      lc = std::max(lc, by_gidx[edge.source]);
    }
    by_gidx[g] = lc + 1;
    proc_last[static_cast<std::size_t>(ref.proc)] = lc + 1;
  });

  std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(trace.ranks()));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    auto& v = out[static_cast<std::size_t>(r)];
    v.resize(trace.events(r).size());
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      v[i] = by_gidx[schedule.global_index({r, i})];
    }
  }
  return out;
}

VectorClockIndex::VectorClockIndex(const Trace& trace, const ReplaySchedule& schedule)
    : schedule_(&schedule), ranks_(trace.ranks()) {
  clocks_.assign(schedule.events(),
                 std::vector<std::uint64_t>(static_cast<std::size_t>(ranks_), 0));
  std::vector<std::uint32_t> proc_prev(static_cast<std::size_t>(ranks_), UINT32_MAX);

  schedule.replay([&](std::uint32_t g, const EventRef& ref) {
    auto& vc = clocks_[g];
    const auto p = static_cast<std::size_t>(ref.proc);
    if (proc_prev[p] != UINT32_MAX) vc = clocks_[proc_prev[p]];
    for (const auto& edge : schedule.incoming(g)) {
      const auto& src = clocks_[edge.source];
      for (std::size_t i = 0; i < src.size(); ++i) vc[i] = std::max(vc[i], src[i]);
    }
    ++vc[p];  // local step
    proc_prev[p] = g;
  });
}

const std::vector<std::uint64_t>& VectorClockIndex::clock(const EventRef& ref) const {
  return clocks_[schedule_->global_index(ref)];
}

bool VectorClockIndex::happened_before(const EventRef& a, const EventRef& b) const {
  const auto& va = clock(a);
  const auto& vb = clock(b);
  bool some_less = false;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i] > vb[i]) return false;
    if (va[i] < vb[i]) some_less = true;
  }
  return some_less;
}

bool VectorClockIndex::concurrent(const EventRef& a, const EventRef& b) const {
  return !happened_before(a, b) && !happened_before(b, a);
}

}  // namespace chronosync
