// Model-based Kalman drift estimation (Freris/Borkar/Kumar style).
//
// Eq. 3 linear interpolation removes only the *mean* drift over the
// measurement interval; the paper's central result is that real drift is not
// constant, so the residual still violates the clock condition.  When drift
// is a random walk — which clockmodel simulates and the scenario matrix
// exercises — the statistically right estimator is a per-rank Kalman filter
// over the offset measurements with state
//
//     x = [ offset o (master - worker, s), drift rate d (dimensionless) ]
//
// random-walk process model between measurements Δ apart
//
//     o' = o + d Δ          Q = [ q_o Δ + q_d Δ³/3   q_d Δ²/2 ]
//     d' = d                    [ q_d Δ²/2           q_d Δ    ]
//
// and measurement z = o with noise derived from the probe's round-trip
// uncertainty (Cristian's error bound, Eq. 2): the further a sample's RTT
// sits above the rank's best RTT, the less it is trusted.
//
// Because correction is a *postmortem* problem, the forward pass is followed
// by a Rauch-Tung-Striebel smoothing pass, so every estimate conditions on
// the whole measurement record, not just the past.  The resulting correction
//
//     m(t) = t + ô(t)
//
// interpolates the smoothed offsets linearly between measurement instants and
// extrapolates outside the measured range with the smoothed *drift rate* at
// the boundary (the model-based generalization of Eq. 3's mean-drift slope).
//
// Degenerate stores degrade instead of crashing, mirroring the other
// from_store paths: non-finite samples are skipped with a warning, a rank
// with a single usable sample falls back to pure offset alignment, and a
// rank with none falls back to identity.
//
// The whole construction is deterministic: same store, same options ->
// bit-identical filter states and corrections (no RNG, fixed iteration
// order), which the determinism regression test pins down.
#pragma once

#include <cstddef>
#include <vector>

#include "measure/offset_probe.hpp"
#include "sync/correction.hpp"

namespace chronosync {

struct KalmanOptions {
  /// Drift-rate random-walk intensity: rate change per sqrt-second.  q_d in
  /// the process model is this squared.  The default brackets the simulated
  /// wander presets (intel-tsc ~1.1e-9/sqrt(s), the random-walk-wander
  /// scenario ~1.6e-8/sqrt(s)).
  double drift_process_sigma = 1e-8;
  /// White offset jitter per sqrt-second (read noise, OS noise): q_o.
  double offset_process_sigma = 1e-8;
  /// Prior standard deviations at the first measurement.  Offsets between
  /// unsynchronized nodes reach seconds (counters start at reset); drift
  /// priors span the hardware range (100 ppm).
  double init_offset_sigma = 1.0;
  double init_drift_sigma = 1e-4;
  /// Measurement noise: sigma = max(floor, rtt_excess_scale * (rtt - best
  /// rtt of the rank)).  Min-RTT probe batches land near the floor; stray
  /// high-RTT samples are de-weighted by their asymmetry bound.
  Duration measurement_sigma_floor = 0.5e-6;
  double rtt_excess_scale = 0.5;
};

class KalmanDriftCorrection final : public TimestampCorrection {
 public:
  /// Smoothed filter state at one measurement instant of one rank.
  struct State {
    Time worker_time = 0.0;
    Duration offset = 0.0;    ///< smoothed master-minus-worker offset
    double drift = 0.0;       ///< smoothed drift rate (dimensionless)
    double var_offset = 0.0;  ///< posterior variance of `offset`
    double var_drift = 0.0;   ///< posterior variance of `drift`
  };

  /// Runs the filter + RTS smoother over every rank of the store.  Skips
  /// non-finite and time-reversed samples with a warning; never throws on
  /// degenerate stores (see header comment).
  static KalmanDriftCorrection from_store(const OffsetStore& store,
                                          const KalmanOptions& options = {});

  Time correct(Rank r, Time local_ts) const override;

  /// Smoothed states of one rank, in measurement order (diagnostics/tests).
  const std::vector<State>& states(Rank r) const;

 private:
  struct RankModel {
    std::vector<State> states;  ///< strictly increasing worker_time
    double entry_slope = 1.0;   ///< d master / d worker before the first state
    double exit_slope = 1.0;    ///< ... after the last state
  };

  explicit KalmanDriftCorrection(std::vector<RankModel> models);

  std::vector<RankModel> models_;
};

}  // namespace chronosync
