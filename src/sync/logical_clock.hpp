// Logical clocks: Lamport scalar clocks and Fidge/Mattern vector clocks.
//
// These are the classical devices (Sec. V) for recovering the *order* of
// events when physical timestamps cannot be trusted.  Lamport clocks give a
// total order consistent with happened-before; vector clocks characterize
// happened-before exactly and therefore also detect concurrency.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/replay.hpp"
#include "trace/trace.hpp"

namespace chronosync {

/// Lamport clock values for every event, indexed like the trace
/// (result[rank][event_index]).
std::vector<std::vector<std::uint64_t>> lamport_clocks(const Trace& trace,
                                                       const ReplaySchedule& schedule);

/// Vector clocks for every event.  Memory is O(events * ranks); intended for
/// analysis of moderate traces and for validating other algorithms.
class VectorClockIndex {
 public:
  VectorClockIndex(const Trace& trace, const ReplaySchedule& schedule);

  /// Component-wise vector clock of an event.
  const std::vector<std::uint64_t>& clock(const EventRef& ref) const;

  /// True iff a happened-before b (strictly precedes in the causal order).
  bool happened_before(const EventRef& a, const EventRef& b) const;

  /// True iff neither a -> b nor b -> a (the events are concurrent).
  bool concurrent(const EventRef& a, const EventRef& b) const;

 private:
  const ReplaySchedule* schedule_;
  int ranks_;
  std::vector<std::vector<std::uint64_t>> clocks_;  ///< [global index][rank]
};

}  // namespace chronosync
