// Dependency-ordered trace replay.
//
// The happened-before constraints of a trace form a DAG: per-process program
// order plus one edge per (possibly logical) message from its send to its
// receive.  ReplaySchedule builds dense indexes over that DAG and replays the
// trace so every event is visited after all of its constraint sources — the
// traversal the logical-clock algorithms and the CLC need.
//
// Storage is a flat CSR (compressed sparse row) layout: events are numbered
// globally with each rank's events contiguous (global = rank_begin(r) + i),
// and the incoming/outgoing constraint edges of all events live in two flat
// arrays sliced by offset tables.  This keeps the replay hot path free of
// per-event vector indirections and makes rank/index recovery O(1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "trace/logical_messages.hpp"
#include "trace/trace.hpp"

namespace chronosync {

class ReplaySchedule {
 public:
  /// Constraint edge: the target's timestamp must be >= source's + l_min.
  struct ConstraintEdge {
    std::uint32_t source = 0;   ///< global event index
    bool logical = false;       ///< derived from a collective, not a p2p message
    Duration l_min = 0.0;
  };

  ReplaySchedule(const Trace& trace, const std::vector<MessageRecord>& messages,
                 const std::vector<LogicalMessage>& logical);

  std::size_t events() const { return total_; }
  /// Total number of constraint edges (p2p + logical).
  std::size_t edges() const { return in_edges_.size(); }

  std::uint32_t global_index(const EventRef& ref) const;
  EventRef event_ref(std::uint32_t gidx) const;

  /// Rank owning a global event index (O(1)).
  Rank rank_of(std::uint32_t gidx) const {
    CS_REQUIRE(gidx < total_, "global index out of range");
    return rank_of_[gidx];
  }
  /// Global index of rank r's event 0.
  std::uint32_t rank_begin(Rank r) const {
    return prefix_[static_cast<std::size_t>(r)];
  }
  /// Number of events of rank r.
  std::uint32_t rank_size(Rank r) const {
    return prefix_[static_cast<std::size_t>(r) + 1] - prefix_[static_cast<std::size_t>(r)];
  }

  /// Incoming constraints of one event (empty for non-receives).
  std::span<const ConstraintEdge> incoming(std::uint32_t gidx) const {
    CS_REQUIRE(gidx < total_, "global index out of range");
    return {in_edges_.data() + in_off_[gidx], in_off_[gidx + 1] - in_off_[gidx]};
  }
  /// Events constrained by this one.
  std::span<const std::uint32_t> outgoing(std::uint32_t gidx) const {
    CS_REQUIRE(gidx < total_, "global index out of range");
    return {out_edges_.data() + out_off_[gidx], out_off_[gidx + 1] - out_off_[gidx]};
  }

  // Raw whole-array views for hot loops that index with already-validated
  // global indexes (the parallel replay's edge scan).  The per-event
  // accessors above re-check bounds on every call; a forward pass touching
  // millions of edges streams these flat arrays directly instead.
  /// Owning rank per global index (size events()).
  std::span<const Rank> ranks_of() const { return rank_of_; }
  /// Global index of each rank's event 0, plus a final total-events sentinel
  /// (size ranks + 1).
  std::span<const std::uint32_t> rank_offsets() const { return prefix_; }
  /// CSR offsets into incoming_edges() (size events() + 1).
  std::span<const std::uint32_t> incoming_offsets() const { return in_off_; }
  /// All incoming constraint edges, CSR order.
  std::span<const ConstraintEdge> incoming_edges() const { return in_edges_; }

  /// Visits every event in a dependency-respecting order.  Throws if the
  /// constraint graph has a cycle (a malformed trace).
  template <class Visit>
  void replay(Visit&& visit) const;

 private:
  const Trace* trace_;
  std::vector<std::uint32_t> prefix_;  ///< global index of each rank's event 0
  std::size_t total_ = 0;
  std::vector<Rank> rank_of_;          ///< owning rank per global index

  // CSR adjacency: edges of event g live at [off[g], off[g+1]).
  std::vector<std::uint32_t> in_off_;
  std::vector<ConstraintEdge> in_edges_;
  std::vector<std::uint32_t> out_off_;
  std::vector<std::uint32_t> out_edges_;
};

template <class Visit>
void ReplaySchedule::replay(Visit&& visit) const {
  const int n = trace_->ranks();

  // Remaining unvisited constraint sources per event.
  std::vector<std::uint32_t> pending(total_);
  for (std::uint32_t g = 0; g < total_; ++g) {
    pending[g] = in_off_[g + 1] - in_off_[g];
  }

  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<char> queued(static_cast<std::size_t>(n), 0);
  // FIFO of runnable ranks; a plain vector with a head index (total enqueues
  // are bounded by the edge count, so the tail never rewinds).
  std::vector<Rank> ready;
  ready.reserve(static_cast<std::size_t>(n));
  std::size_t head = 0;

  auto cursor_gidx = [&](Rank r) {
    return prefix_[static_cast<std::size_t>(r)] + cursor[static_cast<std::size_t>(r)];
  };
  auto enqueue_if_ready = [&](Rank r) {
    const auto c = cursor[static_cast<std::size_t>(r)];
    if (c >= rank_size(r)) return;
    if (pending[cursor_gidx(r)] != 0) return;
    if (queued[static_cast<std::size_t>(r)]) return;
    queued[static_cast<std::size_t>(r)] = 1;
    ready.push_back(r);
  };

  for (Rank r = 0; r < n; ++r) enqueue_if_ready(r);

  std::size_t visited = 0;
  while (head < ready.size()) {
    const Rank r = ready[head++];
    queued[static_cast<std::size_t>(r)] = 0;

    // Drain this process until its next event is blocked.
    while (cursor[static_cast<std::size_t>(r)] < rank_size(r) &&
           pending[cursor_gidx(r)] == 0) {
      const std::uint32_t g = cursor_gidx(r);
      const EventRef ref{r, cursor[static_cast<std::size_t>(r)]};
      visit(g, ref);
      ++visited;
      ++cursor[static_cast<std::size_t>(r)];
      for (std::uint32_t dep : outgoing(g)) {
        CS_ENSURE(pending[dep] > 0, "dependency counting corrupted");
        --pending[dep];
        if (pending[dep] == 0) {
          // The dependent becomes processable only once its process cursor
          // reaches it; check and enqueue the owning process.
          const Rank dr = rank_of_[dep];
          if (cursor_gidx(dr) == dep) enqueue_if_ready(dr);
        }
      }
    }
  }

  CS_ENSURE(visited == total_, "constraint graph has a cycle or dangling dependency");
}

}  // namespace chronosync
