// Dependency-ordered trace replay.
//
// The happened-before constraints of a trace form a DAG: per-process program
// order plus one edge per (possibly logical) message from its send to its
// receive.  ReplaySchedule builds dense indexes over that DAG and replays the
// trace so every event is visited after all of its constraint sources — the
// traversal the logical-clock algorithms and the CLC need.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/logical_messages.hpp"
#include "trace/trace.hpp"

namespace chronosync {

class ReplaySchedule {
 public:
  /// Constraint edge: the target's timestamp must be >= source's + l_min.
  struct ConstraintEdge {
    std::uint32_t source = 0;  ///< global event index
    Duration l_min = 0.0;
  };

  ReplaySchedule(const Trace& trace, const std::vector<MessageRecord>& messages,
                 const std::vector<LogicalMessage>& logical);

  std::size_t events() const { return total_; }
  std::uint32_t global_index(const EventRef& ref) const;
  EventRef event_ref(std::uint32_t gidx) const;

  /// Incoming constraints of one event (empty for non-receives).
  const std::vector<ConstraintEdge>& incoming(std::uint32_t gidx) const;
  /// Events constrained by this one.
  const std::vector<std::uint32_t>& outgoing(std::uint32_t gidx) const;

  /// Visits every event in a dependency-respecting order.  Throws if the
  /// constraint graph has a cycle (a malformed trace).
  void replay(const std::function<void(std::uint32_t, const EventRef&)>& visit) const;

 private:
  void add_edge(std::uint32_t src, std::uint32_t dst, Duration l_min);

  const Trace* trace_;
  std::vector<std::uint32_t> prefix_;  ///< global index of each rank's event 0
  std::size_t total_ = 0;
  std::vector<std::vector<ConstraintEdge>> in_;
  std::vector<std::vector<std::uint32_t>> out_;
};

}  // namespace chronosync
