// Parallel replay-based CLC (ref. [31] of the paper).
//
// The forward pass is re-run as a parallel replay: worker threads own
// disjoint sets of ranks and replay their events in program order, blocking
// when a receive's constraining send has not been computed yet.  Because the
// corrected timestamp of an event is a pure function of its constraint
// sources and the per-process state, the parallel result is bit-identical to
// the sequential algorithm, regardless of thread schedule.
#pragma once

#include "sync/clc.hpp"

namespace chronosync {

/// Same contract and result as controlled_logical_clock(), computed with
/// `threads` worker threads (0 = hardware concurrency).
ClcResult controlled_logical_clock_parallel(const Trace& trace, const ReplaySchedule& schedule,
                                            const TimestampArray& input,
                                            const ClcOptions& options = {}, int threads = 0);

}  // namespace chronosync
