// Node-coupled CLC — the paper's second open problem.
//
// Sec. VI: "if the timestamp of a process is modified in the course of
// applying the algorithm, timestamps of processes co-located on the same SMP
// node that are close to the modified time may need to be modified as well"
// — because co-located processes read the *same* (or tightly coupled)
// physical clock, a correction deduced from one process's messages is
// evidence about its neighbours' timestamps too.
//
// This extension post-processes a CLC result: per SMP node, each rank's
// correction profile (correction amount as a function of its input
// timestamp) is lifted to the envelope of all co-located ranks' profiles, so
// a jump discovered on one rank also advances its node neighbours near that
// time.  Safety is preserved exactly as in backward amortization: events are
// only moved forward, sends stay capped below their receives, and
// per-process order is maintained.
#pragma once

#include "sync/clc.hpp"
#include "sync/replay.hpp"

namespace chronosync {

struct NodeCoupledClcResult {
  ClcResult clc;                    ///< final corrected timestamps
  std::size_t coupled_moves = 0;    ///< events moved by coupling (beyond CLC)
  Duration max_coupled_shift = 0.0; ///< largest additional shift (s)
};

/// Runs the CLC and then couples co-located ranks' corrections.
NodeCoupledClcResult node_coupled_clc(const Trace& trace, const ReplaySchedule& schedule,
                                      const TimestampArray& input,
                                      const ClcOptions& options = {});

}  // namespace chronosync
