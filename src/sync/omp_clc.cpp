#include "sync/omp_clc.hpp"

#include <map>
#include <vector>

#include "common/expect.hpp"

namespace chronosync {

Trace split_omp_threads(const Trace& omp_trace, const Placement& thread_placement, Rank loc) {
  // The minimum shared-memory synchronization latencies play the role of
  // l_min; they are inherited from the source trace's domain minimums.
  Trace out(thread_placement, omp_trace.domain_min_latency(),
            omp_trace.timer_name());
  for (const auto& name : omp_trace.regions()) out.intern_region(name);

  for (const Event& e : omp_trace.events(loc)) {
    CS_REQUIRE(e.thread >= 0 && e.thread < thread_placement.ranks(),
               "event thread outside the thread placement");
    out.events(e.thread).push_back(e);
  }
  return out;
}

std::vector<LogicalMessage> derive_omp_logical_messages(const Trace& thread_trace) {
  struct InstanceAcc {
    EventRef fork{-1, 0};
    EventRef join{-1, 0};
    std::map<ThreadId, EventRef> first_of_thread;
    std::map<ThreadId, EventRef> last_of_thread;
    std::vector<EventRef> barrier_enters;
    std::vector<EventRef> barrier_exits;
  };
  std::map<std::int32_t, InstanceAcc> instances;

  for (Rank r = 0; r < thread_trace.ranks(); ++r) {
    const auto& ev = thread_trace.events(r);
    for (std::uint32_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (e.omp_instance < 0) continue;
      auto& acc = instances[e.omp_instance];
      const EventRef ref{r, i};
      if (!acc.first_of_thread.count(e.thread)) acc.first_of_thread[e.thread] = ref;
      acc.last_of_thread[e.thread] = ref;
      switch (e.type) {
        case EventType::Fork: acc.fork = ref; break;
        case EventType::Join: acc.join = ref; break;
        case EventType::BarrierEnter: acc.barrier_enters.push_back(ref); break;
        case EventType::BarrierExit: acc.barrier_exits.push_back(ref); break;
        default: break;
      }
    }
  }

  std::vector<LogicalMessage> out;
  for (const auto& [id, acc] : instances) {
    // fork -> first event of every other thread (1-to-N).
    if (acc.fork.proc >= 0) {
      for (const auto& [thread, first] : acc.first_of_thread) {
        if (first == acc.fork) continue;
        if (thread == thread_trace.at(acc.fork).thread) continue;
        out.push_back({acc.fork, first, id});
      }
    }
    // last event of every other thread -> join (N-to-1).
    if (acc.join.proc >= 0) {
      for (const auto& [thread, last] : acc.last_of_thread) {
        if (last == acc.join) continue;
        if (thread == thread_trace.at(acc.join).thread) continue;
        out.push_back({last, acc.join, id});
      }
    }
    // barrier enter(i) -> barrier exit(j), i != j (N-to-N).
    for (const auto& enter : acc.barrier_enters) {
      for (const auto& exit : acc.barrier_exits) {
        if (thread_trace.at(enter).thread == thread_trace.at(exit).thread) continue;
        out.push_back({enter, exit, id});
      }
    }
  }
  return out;
}

OmpClcResult omp_controlled_logical_clock(const Trace& omp_trace,
                                          const Placement& thread_placement,
                                          const ClcOptions& options, Rank loc) {
  const Trace threads = split_omp_threads(omp_trace, thread_placement, loc);
  const auto logical = derive_omp_logical_messages(threads);
  const ReplaySchedule schedule(threads, {}, logical);
  const ClcResult clc = controlled_logical_clock(threads, schedule,
                                                 TimestampArray::from_local(threads), options);

  // Merge back: replay the same split order to map thread-local indexes onto
  // the original event sequence.
  OmpClcResult result;
  result.corrected = TimestampArray::from_local(omp_trace);
  std::vector<std::uint32_t> cursor(static_cast<std::size_t>(thread_placement.ranks()), 0);
  const auto& events = omp_trace.events(loc);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const ThreadId th = events[i].thread;
    result.corrected.at({loc, i}) =
        clc.corrected.at({th, cursor[static_cast<std::size_t>(th)]++});
  }
  result.violations_repaired = clc.violations_repaired;
  result.max_jump = clc.max_jump;
  return result;
}

}  // namespace chronosync
