// The Controlled Logical Clock (CLC) algorithm.
//
// Rabenseifner's CLC (refs. [28]-[31] of the paper) retroactively restores
// the clock condition in an event trace while approximately preserving the
// lengths of local intervals:
//
//   * If a receive event carries a timestamp earlier than its matching send
//     plus the minimum message latency, the receive is moved forward to
//     send + l_min (a *jump*).
//   * Forward amortization: the events following a jump keep their local
//     distances, with the accumulated correction decaying at a controlled
//     rate so the process gradually returns to its original clock.
//   * Backward amortization: the events immediately preceding a jump are
//     pulled forward along a linear ramp so the jump does not masquerade as
//     a sudden idle phase — bounded so no send may overtake its receive.
//
// The collective extension (ref. [30]) enters through the logical messages
// derived from collective instances (trace/logical_messages.hpp); the
// parallel replay version (ref. [31]) lives in clc_parallel.hpp.
//
// The algorithm consumes *any* initial timestamp array (raw local clocks or
// a pre-synchronization such as linear offset interpolation — the paper
// recommends the latter, since CLC accuracy depends on input accuracy).
#pragma once

#include <cstddef>

#include "sync/replay.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct ClcOptions {
  /// Rate at which the forward correction decays back toward the original
  /// clock, as a fraction of elapsed local time (0 = keep full correction,
  /// i.e. a plain offset shift of the rest of the trace).
  double forward_decay = 0.05;
  /// Enables the pre-jump ramp.
  bool backward_amortization = true;
  /// Maximum fractional stretch of pre-jump intervals: a jump of size d is
  /// smoothed over a window of d / backward_slope.
  double backward_slope = 0.05;
  /// Parallel replay only: a worker publishes its progress counter after at
  /// most this many locally processed events, even mid-drain, so consumers of
  /// a long uninterrupted run are not starved until the run blocks.  Smaller
  /// values pipeline tighter at the cost of more cross-thread stores; the
  /// corrected timestamps are bit-identical for every value >= 1.
  int publish_batch = 128;
  /// Parallel replay only: the requested thread count is clamped so every
  /// worker owns at least this many events.  Spreading a small trace over
  /// many threads is a pure loss (thread startup plus cross-thread handoffs
  /// dwarf the per-event work), so a 3k-event trace asked to use 8 threads
  /// runs on 1–2 instead.  Set to 1 to force the requested thread count
  /// (tests and sanitizer runs that must exercise real concurrency do).
  int min_events_per_thread = 2048;
};

struct ClcResult {
  TimestampArray corrected;
  std::size_t violations_repaired = 0;  ///< receive events that had to jump
  Duration max_jump = 0.0;              ///< largest single correction (s)
  Duration total_jump = 0.0;            ///< sum of all jump sizes (s)
};

/// Runs the CLC over `input` timestamps (sequential reference version).
ClcResult controlled_logical_clock(const Trace& trace, const ReplaySchedule& schedule,
                                   const TimestampArray& input, const ClcOptions& options = {});

}  // namespace chronosync
