#include "sync/clc_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "sync/clc_detail.hpp"

namespace chronosync {

namespace {

struct SharedState {
  std::vector<Time> lc;
  std::vector<Duration> jump;
  std::vector<std::atomic<std::uint8_t>> done;

  // Progress wakeup channel for threads blocked on a remote send.
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t progress = 0;

  explicit SharedState(std::size_t events) : lc(events, 0.0), jump(events, 0.0), done(events) {
    for (auto& d : done) d.store(0, std::memory_order_relaxed);
  }

  void publish() {
    {
      std::lock_guard<std::mutex> lk(mutex);
      ++progress;
    }
    cv.notify_all();
  }
};

struct RankCursor {
  Rank rank;
  std::uint32_t next = 0;
  bool has_prev = false;
  Time prev_input = 0.0;
  Time prev_lc = 0.0;
};

/// One worker's forward replay over its ranks.
void forward_worker(const Trace& trace, const ReplaySchedule& schedule,
                    const TimestampArray& input, const ClcOptions& options,
                    std::vector<RankCursor>& mine, SharedState& shared,
                    clc_detail::ForwardPassResult& stats_out) {
  auto ready = [&](const RankCursor& c) {
    const std::uint32_t g = schedule.global_index({c.rank, c.next});
    for (const auto& edge : schedule.incoming(g)) {
      if (!shared.done[edge.source].load(std::memory_order_acquire)) return false;
    }
    return true;
  };

  std::size_t remaining = 0;
  for (const auto& c : mine) {
    remaining += trace.events(c.rank).size() - c.next;
  }

  while (remaining > 0) {
    bool advanced = false;
    for (auto& c : mine) {
      const auto n = static_cast<std::uint32_t>(trace.events(c.rank).size());
      bool drained_any = false;
      while (c.next < n && ready(c)) {
        const EventRef ref{c.rank, c.next};
        const std::uint32_t g = schedule.global_index(ref);
        const Time t = input.at(ref);

        Time cand = t;
        if (c.has_prev) {
          const Duration dt = std::max(0.0, t - c.prev_input);
          const Duration carried =
              std::max(0.0, (c.prev_lc - c.prev_input) - options.forward_decay * dt);
          cand = std::max(t + carried, c.prev_lc);
        }
        Time bound = -kTimeInfinity;
        for (const auto& edge : schedule.incoming(g)) {
          bound = std::max(bound, shared.lc[edge.source] + edge.l_min);
        }
        Time lc = cand;
        if (bound > cand) {
          lc = bound;
          const Duration jump = bound - cand;
          shared.jump[g] = jump;
          ++stats_out.violations_repaired;
          stats_out.max_jump = std::max(stats_out.max_jump, jump);
          stats_out.total_jump += jump;
        }
        shared.lc[g] = lc;
        shared.done[g].store(1, std::memory_order_release);

        c.prev_input = t;
        c.prev_lc = lc;
        c.has_prev = true;
        ++c.next;
        --remaining;
        advanced = true;
        drained_any = true;
      }
      if (drained_any) shared.publish();
    }

    if (!advanced && remaining > 0) {
      // All of this worker's ranks are blocked on remote sends; wait for
      // someone to publish progress, re-checking readiness under the lock to
      // avoid a missed wakeup.
      std::unique_lock<std::mutex> lk(shared.mutex);
      const std::uint64_t seen = shared.progress;
      bool any_ready = false;
      for (auto& c : mine) {
        if (c.next < trace.events(c.rank).size() && ready(c)) {
          any_ready = true;
          break;
        }
      }
      if (!any_ready) {
        shared.cv.wait(lk, [&] { return shared.progress != seen; });
      }
    }
  }
}

}  // namespace

ClcResult controlled_logical_clock_parallel(const Trace& trace, const ReplaySchedule& schedule,
                                            const TimestampArray& input,
                                            const ClcOptions& options, int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  threads = std::min(threads, trace.ranks());
  CS_REQUIRE(threads >= 1, "need at least one thread");

  SharedState shared(schedule.events());

  // Round-robin rank ownership keeps neighbouring ranks on different
  // threads, which shortens blocking chains for nearest-neighbour patterns.
  std::vector<std::vector<RankCursor>> owned(static_cast<std::size_t>(threads));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    owned[static_cast<std::size_t>(r % threads)].push_back({r, 0, false, 0.0, 0.0});
  }

  std::vector<clc_detail::ForwardPassResult> stats(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      forward_worker(trace, schedule, input, options, owned[static_cast<std::size_t>(t)],
                     shared, stats[static_cast<std::size_t>(t)]);
      shared.publish();  // final wakeup so peers blocked on us re-check
    });
  }
  for (auto& th : pool) th.join();

  clc_detail::ForwardPassResult fwd;
  fwd.lc = std::move(shared.lc);
  fwd.jump = std::move(shared.jump);
  for (const auto& s : stats) {
    fwd.violations_repaired += s.violations_repaired;
    fwd.max_jump = std::max(fwd.max_jump, s.max_jump);
    fwd.total_jump += s.total_jump;
  }

  if (options.backward_amortization) {
    clc_detail::backward_pass(trace, schedule, fwd, options);
  }

  ClcResult result;
  result.corrected = input;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    auto& v = result.corrected.of_rank(r);
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      v[i] = fwd.lc[schedule.global_index({r, i})];
    }
  }
  result.violations_repaired = fwd.violations_repaired;
  result.max_jump = fwd.max_jump;
  result.total_jump = fwd.total_jump;
  return result;
}

}  // namespace chronosync
