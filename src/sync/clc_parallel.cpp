#include "sync/clc_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sync/clc_detail.hpp"

namespace chronosync {

namespace {

// The parallel forward pass replays each rank's event stream on its owning
// worker thread.  Cross-rank constraint edges are the only synchronization
// points: an event may be processed once every constraining send has been
// *published* by its owner.
//
// Work is partitioned by *contiguous* CSR rank ranges: thread t owns ranks
// [rank_lo, rank_hi) chosen so every thread carries a near-equal share of the
// event total.  Because global event numbering is rank-major, each thread
// then reads and writes one contiguous slice of the flat lc[]/jump[]/input
// arrays — the Eq.-1 edge scan and the amortization updates stream linearly
// through memory, and cross-thread false sharing is confined to the single
// cache line at each partition boundary.  Ownership tests reduce to one
// range comparison on the global index, with no per-edge rank lookup needed
// to skip the atomics on thread-local edges.
//
// Publication is epoch-based: one cache-line-padded atomic counter per rank
// holds the number of that rank's events whose corrected timestamps are
// visible (the counter store/loads carry the release/acquire edge covering
// the lc[] writes).  Owners publish in batches — after every
// options.publish_batch events of an uninterrupted drain, and always when a
// rank blocks or finishes — never per event.  The mid-drain batch point
// bounds how stale a long-running producer may appear to its consumers; the
// on-block publish keeps the protocol live (a fully blocked system always
// has every processed event published, so some thread can run).
//
// Wakeups are per-thread doorbells (an eventcount), not a global
// mutex/condition_variable: a worker whose ranks are all blocked re-checks
// readiness against its doorbell value and then waits on the doorbell alone.
// A publisher of rank X rings only the doorbells of *sleeping* threads that
// own a rank constrained by X (the subscriber list is precomputed from the
// CSR edges), so a publication wakes exactly the threads whose blocking
// edges it can satisfy.
//
// Waiting on the blocking edge's counter directly would be even narrower but
// has a liveness hole when a thread owns several ranks: a publication can
// make one of its *other* ranks runnable while it sleeps on a counter that
// never advances.  The doorbell covers "any of my ranks may have become
// ready" with a single waitable word per thread.
struct alignas(64) RankProgress {
  std::atomic<std::uint32_t> completed{0};
};

struct alignas(64) Doorbell {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint8_t> asleep{0};
};

struct SharedState {
  // Structure-of-arrays event state, indexed by global event index: the
  // corrected timestamps and jump sizes live in two parallel flat arrays
  // sliced contiguously per thread.  (The input timestamps stay in the
  // TimestampArray's per-rank rows — each row is already contiguous, each
  // value is read exactly once, and flattening them up front was measured to
  // cost more than it saves.)
  std::vector<Time> lc;
  std::vector<Duration> jump;
  std::vector<RankProgress> progress;  // one epoch counter per rank
  std::vector<Doorbell> doorbell;      // one per worker thread
  // subscribers[x]: worker threads owning a rank constrained by rank x.
  std::vector<std::vector<int>> subscribers;

  SharedState(std::size_t events, std::size_t ranks, std::size_t threads)
      : lc(events, 0.0), jump(events, 0.0), progress(ranks), doorbell(threads) {}
};

struct RankCursor {
  Rank rank;
  std::uint32_t next = 0;       ///< events processed (locally visible)
  std::uint32_t published = 0;  ///< events published to other threads
  bool has_prev = false;
  Time prev_input = 0.0;
  Time prev_lc = 0.0;
};

/// One worker's forward replay over its contiguous rank range
/// [mine.front().rank, mine.back().rank].
void forward_worker(const ReplaySchedule& schedule, const TimestampArray& input,
                    const ClcOptions& options, int self, std::vector<RankCursor>& mine,
                    SharedState& shared) {
  // Observability: the level is latched once per worker (it does not change
  // mid-run), hot-loop tallies stay in plain locals, and the registry is
  // touched exactly once at worker exit — with obs off the only residue is
  // a handful of dead register increments.
  const bool tracing = obs::trace_enabled();
  CS_SPAN("clc.forward_worker");
  std::uint64_t spin_iters = 0;
  std::uint64_t doorbell_sleeps = 0;
  std::uint64_t doorbell_wakeups = 0;
  std::uint64_t published_batches = 0;
  std::uint64_t events_done = 0;

  if (mine.empty()) return;  // skewed partitions can leave a thread idle

  // A solo worker has no consumers: skip the progress stores entirely (the
  // owned-range fast path in edge_done() never reads them).
  const bool solo = shared.doorbell.size() == 1;

  // Raw views over the schedule's CSR arrays: the per-edge hot path must not
  // pay the bounds-checked accessors' branches or span re-construction.
  const Rank* const ranks_of = schedule.ranks_of().data();
  const std::uint32_t* const rank_off = schedule.rank_offsets().data();
  const std::uint32_t* const in_off = schedule.incoming_offsets().data();
  const ReplaySchedule::ConstraintEdge* const in_edges = schedule.incoming_edges().data();

  // Owned global-index range: contiguous because ownership is a contiguous
  // rank range and global numbering is rank-major.
  const std::uint32_t g_lo = rank_off[static_cast<std::size_t>(mine.front().rank)];
  const std::uint32_t g_hi = rank_off[static_cast<std::size_t>(mine.back().rank) + 1];

  // Local watermark per owned rank, so self-edges never touch atomics.
  const Rank rank_lo = mine.front().rank;
  std::vector<std::uint32_t> self_next(mine.size(), 0);

  const std::uint32_t batch = static_cast<std::uint32_t>(options.publish_batch);

  // seq_cst loads cost the same as acquire on mainstream targets and make
  // the sleep protocol's "publisher sees my asleep flag or I see its
  // counter" argument a plain total-order one.
  auto edge_done = [&](std::uint32_t src) {
    const Rank rs = ranks_of[src];
    const std::uint32_t is = src - rank_off[static_cast<std::size_t>(rs)];
    if (src >= g_lo && src < g_hi) {
      return self_next[static_cast<std::size_t>(rs - rank_lo)] > is;
    }
    return shared.progress[static_cast<std::size_t>(rs)].completed.load(
               std::memory_order_seq_cst) > is;
  };
  auto ready = [&](const RankCursor& c) {
    const std::uint32_t g = rank_off[static_cast<std::size_t>(c.rank)] + c.next;
    for (std::uint32_t e = in_off[g]; e < in_off[g + 1]; ++e) {
      if (!edge_done(in_edges[e].source)) return false;
    }
    return true;
  };
  // Readiness check and clock-condition bound in one sweep over the event's
  // incoming edges; `bound` is only meaningful when the return value is true.
  auto ready_bound = [&](std::uint32_t g, Time& bound) {
    bound = -kTimeInfinity;
    for (std::uint32_t e = in_off[g]; e < in_off[g + 1]; ++e) {
      const auto& edge = in_edges[e];
      if (!edge_done(edge.source)) return false;
      bound = std::max(bound, shared.lc[edge.source] + edge.l_min);
    }
    return true;
  };

  auto publish = [&](RankCursor& c) {
    // Batched publication: one store + a ring of the (usually empty) set of
    // sleeping subscriber threads, never per event.
    auto& ctr = shared.progress[static_cast<std::size_t>(c.rank)].completed;
    ctr.store(c.next, std::memory_order_seq_cst);
    ++published_batches;
    if (tracing) obs::counter_sample("clc.published_batch", c.next - c.published);
    c.published = c.next;
    for (const int t : shared.subscribers[static_cast<std::size_t>(c.rank)]) {
      if (t == self) continue;
      auto& bell = shared.doorbell[static_cast<std::size_t>(t)];
      if (bell.asleep.load(std::memory_order_seq_cst) != 0) {
        bell.epoch.fetch_add(1, std::memory_order_seq_cst);
        bell.epoch.notify_one();
      }
    }
  };

  std::size_t remaining = 0;
  for (const auto& c : mine) {
    remaining += schedule.rank_size(c.rank) - c.next;
  }

  auto& bell = shared.doorbell[static_cast<std::size_t>(self)];
  // Blocked workers yield a few times before committing to a futex sleep:
  // on oversubscribed machines the publisher usually runs within one
  // quantum, which turns most sleep/ring/wake syscall triples into a single
  // yield; on idle cores the bounded spin costs microseconds at worst.
  const int max_spins = 4 * static_cast<int>(shared.doorbell.size());
  int spins = 0;
  while (remaining > 0) {
    bool advanced = false;
    for (auto& c : mine) {
      const std::uint32_t n = schedule.rank_size(c.rank);
      const std::uint32_t base = rank_off[static_cast<std::size_t>(c.rank)];
      const Time* const in_row = input.of_rank(c.rank).data();
      Time bound;
      while (c.next < n && ready_bound(base + c.next, bound)) {
        const std::uint32_t g = base + c.next;
        const Time t = in_row[c.next];

        Time cand = t;
        if (c.has_prev) {
          const Duration dt = std::max(0.0, t - c.prev_input);
          const Duration carried =
              std::max(0.0, (c.prev_lc - c.prev_input) - options.forward_decay * dt);
          cand = std::max(t + carried, c.prev_lc);
        }
        Time lc = cand;
        if (bound > cand) {
          lc = bound;
          shared.jump[g] = bound - cand;
        }
        shared.lc[g] = lc;

        c.prev_input = t;
        c.prev_lc = lc;
        c.has_prev = true;
        ++c.next;
        self_next[static_cast<std::size_t>(c.rank - rank_lo)] = c.next;
        --remaining;
        ++events_done;
        advanced = true;
        // Mid-drain batch point: a long uninterrupted run publishes every
        // `batch` events so its consumers can pipeline behind it.
        if (!solo && c.next - c.published >= batch) publish(c);
      }
      // A finished rank publishes its final count immediately: this worker
      // may stay busy (and thus never reach the blocked-flush below) for a
      // long time while others still wait on the tail of this rank.
      if (!solo && c.next == n && c.next != c.published) publish(c);
    }

    if (advanced) {
      spins = 0;
    } else if (remaining > 0) {
      // A full pass made no progress: every owned rank is blocked on a
      // remote send.  Flush all unpublished progress first — the threads we
      // are about to wait on may in turn be waiting on exactly these events,
      // so batching must never withhold them across a blocking boundary.
      // (This is what keeps batched publication deadlock-free: a blocked or
      // sleeping worker always has everything it processed published.)
      for (auto& c : mine) {
        if (c.next != c.published) publish(c);
      }
      if (spins < max_spins) {
        ++spins;
        ++spin_iters;
        std::this_thread::yield();
        continue;
      }
      // All owned ranks are blocked on remote sends.  Announce the sleep,
      // re-check readiness (a publisher either saw the asleep flag and rings
      // the doorbell, or its counter store precedes our re-check and we see
      // it — no missed wakeup either way), then wait on the doorbell.
      const std::uint64_t seen = bell.epoch.load(std::memory_order_seq_cst);
      bell.asleep.store(1, std::memory_order_seq_cst);
      bool any_ready = false;
      for (const auto& c : mine) {
        if (c.next < schedule.rank_size(c.rank) && ready(c)) {
          any_ready = true;
          break;
        }
      }
      if (!any_ready) {
        ++doorbell_sleeps;
        if (tracing) {
          // Epoch lag: how much of this worker's assignment is still blocked
          // behind remote publications at the moment it gives up the CPU.
          obs::counter_sample("clc.epoch_lag", static_cast<double>(remaining));
        }
        bell.epoch.wait(seen, std::memory_order_seq_cst);
        ++doorbell_wakeups;
        if (tracing) {
          obs::counter_sample("clc.doorbell_wakeups", static_cast<double>(doorbell_wakeups));
        }
      }
      bell.asleep.store(0, std::memory_order_seq_cst);
      spins = 0;
    }
  }

  if (tracing) obs::counter_sample("clc.spin_iters", static_cast<double>(spin_iters));
  if (obs::metrics_enabled()) {
    obs::counter("clc.spin_iters").add(static_cast<std::int64_t>(spin_iters));
    obs::counter("clc.doorbell_sleeps").add(static_cast<std::int64_t>(doorbell_sleeps));
    obs::counter("clc.doorbell_wakeups").add(static_cast<std::int64_t>(doorbell_wakeups));
    obs::counter("clc.published_batches").add(static_cast<std::int64_t>(published_batches));
    obs::counter("clc.worker_events").add(static_cast<std::int64_t>(events_done));
  }
}

/// Contiguous, event-balanced rank partition: rank r goes to the thread
/// whose cumulative-event quota the rank's midpoint falls into, which keeps
/// every thread's share within one rank of the ideal events/threads split
/// while preserving rank order (and therefore global-index contiguity).
std::vector<int> partition_ranks(const ReplaySchedule& schedule, int ranks, int threads) {
  std::vector<int> owner(static_cast<std::size_t>(ranks), 0);
  const auto total = static_cast<double>(schedule.events());
  const auto rank_off = schedule.rank_offsets();
  for (Rank r = 0; r < ranks; ++r) {
    const double mid = (static_cast<double>(rank_off[static_cast<std::size_t>(r)]) +
                        static_cast<double>(rank_off[static_cast<std::size_t>(r) + 1])) /
                       2.0;
    int t = total > 0.0 ? static_cast<int>(mid * threads / total) : 0;
    t = std::clamp(t, 0, threads - 1);
    // Monotone by construction (mid is increasing), so ranges stay contiguous.
    owner[static_cast<std::size_t>(r)] = t;
  }
  return owner;
}

}  // namespace

ClcResult controlled_logical_clock_parallel(const Trace& trace, const ReplaySchedule& schedule,
                                            const TimestampArray& input,
                                            const ClcOptions& options, int threads) {
  CS_SPAN("clc.parallel");
  if (trace.ranks() == 0 || schedule.events() == 0) {
    // Empty traces: nothing to replay, and clamping threads to the rank count
    // must not end up demanding a zero-thread pool.
    ClcResult empty;
    empty.corrected = input;
    return empty;
  }
  CS_REQUIRE(options.forward_decay >= 0.0 && options.forward_decay < 1.0,
             "forward_decay must be in [0, 1)");
  CS_REQUIRE(options.publish_batch >= 1, "publish_batch must be >= 1");
  CS_REQUIRE(options.min_events_per_thread >= 1, "min_events_per_thread must be >= 1");

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  threads = std::max(1, std::min(threads, trace.ranks()));
  // Small traces do not amortize per-thread costs: cap the pool so each
  // worker owns at least min_events_per_thread events.
  const auto event_cap = static_cast<int>(
      schedule.events() / static_cast<std::size_t>(options.min_events_per_thread));
  threads = std::max(1, std::min(threads, event_cap));

  // One phase span alive at a time; emplace() closes the previous phase.
  std::optional<obs::Span> phase_span;
  phase_span.emplace("clc.partition");
  SharedState shared(schedule.events(), static_cast<std::size_t>(trace.ranks()),
                     static_cast<std::size_t>(threads));

  const std::vector<int> owner = partition_ranks(schedule, trace.ranks(), threads);
  std::vector<std::vector<RankCursor>> owned(static_cast<std::size_t>(threads));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    owned[static_cast<std::size_t>(owner[static_cast<std::size_t>(r)])].push_back(
        {r, 0, 0, false, 0.0, 0.0});
  }

  // Subscriber lists: thread t subscribes to rank x when some edge runs from
  // an event of x into an event of a rank t owns.  A solo run never
  // publishes, so the edge sweep would be pure setup cost.
  shared.subscribers.resize(static_cast<std::size_t>(trace.ranks()));
  if (threads > 1) {
    std::vector<char> seen(static_cast<std::size_t>(trace.ranks()) *
                               static_cast<std::size_t>(threads),
                           0);
    const auto ranks_of = schedule.ranks_of();
    for (std::uint32_t g = 0; g < schedule.events(); ++g) {
      const int t = owner[static_cast<std::size_t>(ranks_of[g])];
      for (const auto& edge : schedule.incoming(g)) {
        const auto x = static_cast<std::size_t>(ranks_of[edge.source]);
        auto& flag =
            seen[x * static_cast<std::size_t>(threads) + static_cast<std::size_t>(t)];
        if (!flag) {
          flag = 1;
          shared.subscribers[x].push_back(t);
        }
      }
    }
  }

  phase_span.emplace("clc.forward_parallel");

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      obs::set_thread_name("clc-worker-" + std::to_string(t));
      forward_worker(schedule, input, options, t, owned[static_cast<std::size_t>(t)],
                     shared);
    });
  }
  for (auto& th : pool) th.join();
  phase_span.emplace("clc.merge");

  clc_detail::ForwardPassResult fwd;
  fwd.lc = std::move(shared.lc);
  fwd.jump = std::move(shared.jump);
  // Aggregates come from the deterministic per-event jump[] array, never from
  // per-thread accumulation, so the reported statistics are independent of
  // the thread count and bit-identical to the sequential implementation.
  clc_detail::finalize_stats(fwd);

  if (options.backward_amortization) {
    clc_detail::backward_pass(trace, schedule, fwd, options);
  }

  ClcResult result;
  result.corrected = input;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    auto& v = result.corrected.of_rank(r);
    const std::uint32_t base = schedule.rank_begin(r);
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      v[i] = fwd.lc[base + i];
    }
  }
  result.violations_repaired = fwd.violations_repaired;
  result.max_jump = fwd.max_jump;
  result.total_jump = fwd.total_jump;
  return result;
}

}  // namespace chronosync
