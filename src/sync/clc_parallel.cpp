#include "sync/clc_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sync/clc_detail.hpp"

namespace chronosync {

namespace {

// The parallel forward pass replays each rank's event stream on its owning
// worker thread.  Cross-rank constraint edges are the only synchronization
// points: an event may be processed once every constraining send has been
// *published* by its owner.
//
// Publication is epoch-based: one cache-line-padded atomic counter per rank
// holds the number of that rank's events whose corrected timestamps are
// visible (the counter store/loads carry the release/acquire edge covering
// the lc[] writes).  Owners publish once per drained run — not per event.
//
// Wakeups are per-thread doorbells (an eventcount), not a global
// mutex/condition_variable: a worker whose ranks are all blocked re-checks
// readiness against its doorbell value and then waits on the doorbell alone.
// A publisher of rank X rings only the doorbells of *sleeping* threads that
// own a rank constrained by X (the subscriber list is precomputed from the
// CSR edges), so a publication wakes exactly the threads whose blocking
// edges it can satisfy.
//
// Waiting on the blocking edge's counter directly would be even narrower but
// has a liveness hole when a thread owns several ranks: a publication can
// make one of its *other* ranks runnable while it sleeps on a counter that
// never advances.  The doorbell covers "any of my ranks may have become
// ready" with a single waitable word per thread.
struct alignas(64) RankProgress {
  std::atomic<std::uint32_t> completed{0};
};

struct alignas(64) Doorbell {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint8_t> asleep{0};
};

struct SharedState {
  std::vector<Time> lc;
  std::vector<Duration> jump;
  std::vector<RankProgress> progress;  // one epoch counter per rank
  std::vector<Doorbell> doorbell;      // one per worker thread
  // subscribers[x]: worker threads owning a rank constrained by rank x.
  std::vector<std::vector<int>> subscribers;

  SharedState(std::size_t events, std::size_t ranks, std::size_t threads)
      : lc(events, 0.0), jump(events, 0.0), progress(ranks), doorbell(threads) {}
};

struct RankCursor {
  Rank rank;
  std::uint32_t next = 0;       ///< events processed (locally visible)
  std::uint32_t published = 0;  ///< events published to other threads
  bool has_prev = false;
  Time prev_input = 0.0;
  Time prev_lc = 0.0;
};

/// One worker's forward replay over its ranks.
void forward_worker(const ReplaySchedule& schedule, const TimestampArray& input,
                    const ClcOptions& options, int self,
                    std::vector<RankCursor>& mine, const std::vector<char>& owned_by_me,
                    SharedState& shared) {
  // Observability: the level is latched once per worker (it does not change
  // mid-run), hot-loop tallies stay in plain locals, and the registry is
  // touched exactly once at worker exit — with obs off the only residue is
  // a handful of dead register increments.
  const bool tracing = obs::trace_enabled();
  CS_SPAN("clc.forward_worker");
  std::uint64_t spin_iters = 0;
  std::uint64_t doorbell_sleeps = 0;
  std::uint64_t doorbell_wakeups = 0;
  std::uint64_t published_batches = 0;
  std::uint64_t events_done = 0;

  // Local view of our own ranks' progress, so self-edges never touch atomics.
  std::vector<std::uint32_t> self_next(owned_by_me.size(), 0);

  // seq_cst loads cost the same as acquire on mainstream targets and make
  // the sleep protocol's "publisher sees my asleep flag or I see its
  // counter" argument a plain total-order one.
  auto edge_done = [&](std::uint32_t src) {
    const Rank rs = schedule.rank_of(src);
    const std::uint32_t is = src - schedule.rank_begin(rs);
    if (owned_by_me[static_cast<std::size_t>(rs)]) {
      return self_next[static_cast<std::size_t>(rs)] > is;
    }
    return shared.progress[static_cast<std::size_t>(rs)].completed.load(
               std::memory_order_seq_cst) > is;
  };
  auto ready = [&](const RankCursor& c) {
    const std::uint32_t g = schedule.rank_begin(c.rank) + c.next;
    for (const auto& edge : schedule.incoming(g)) {
      if (!edge_done(edge.source)) return false;
    }
    return true;
  };
  // Readiness check and clock-condition bound in one sweep over the event's
  // incoming edges; `bound` is only meaningful when the return value is true.
  auto ready_bound = [&](std::uint32_t g, Time& bound) {
    bound = -kTimeInfinity;
    for (const auto& edge : schedule.incoming(g)) {
      if (!edge_done(edge.source)) return false;
      bound = std::max(bound, shared.lc[edge.source] + edge.l_min);
    }
    return true;
  };

  auto publish = [&](RankCursor& c) {
    // Batched publication: one store + a ring of the (usually empty) set of
    // sleeping subscriber threads per drained run, never per event.
    auto& ctr = shared.progress[static_cast<std::size_t>(c.rank)].completed;
    ctr.store(c.next, std::memory_order_seq_cst);
    ++published_batches;
    if (tracing) obs::counter_sample("clc.published_batch", c.next - c.published);
    c.published = c.next;
    for (const int t : shared.subscribers[static_cast<std::size_t>(c.rank)]) {
      if (t == self) continue;
      auto& bell = shared.doorbell[static_cast<std::size_t>(t)];
      if (bell.asleep.load(std::memory_order_seq_cst) != 0) {
        bell.epoch.fetch_add(1, std::memory_order_seq_cst);
        bell.epoch.notify_one();
      }
    }
  };

  std::size_t remaining = 0;
  for (const auto& c : mine) {
    remaining += schedule.rank_size(c.rank) - c.next;
  }

  auto& bell = shared.doorbell[static_cast<std::size_t>(self)];
  // Blocked workers yield a few times before committing to a futex sleep:
  // on oversubscribed machines the publisher usually runs within one
  // quantum, which turns most sleep/ring/wake syscall triples into a single
  // yield; on idle cores the bounded spin costs microseconds at worst.
  const int max_spins = 4 * static_cast<int>(shared.doorbell.size());
  int spins = 0;
  while (remaining > 0) {
    bool advanced = false;
    for (auto& c : mine) {
      const std::uint32_t n = schedule.rank_size(c.rank);
      const std::uint32_t base = schedule.rank_begin(c.rank);
      const std::vector<Time>& in_row = input.of_rank(c.rank);
      Time bound;
      while (c.next < n && ready_bound(base + c.next, bound)) {
        const std::uint32_t g = base + c.next;
        const Time t = in_row[c.next];

        Time cand = t;
        if (c.has_prev) {
          const Duration dt = std::max(0.0, t - c.prev_input);
          const Duration carried =
              std::max(0.0, (c.prev_lc - c.prev_input) - options.forward_decay * dt);
          cand = std::max(t + carried, c.prev_lc);
        }
        Time lc = cand;
        if (bound > cand) {
          lc = bound;
          shared.jump[g] = bound - cand;
        }
        shared.lc[g] = lc;

        c.prev_input = t;
        c.prev_lc = lc;
        c.has_prev = true;
        ++c.next;
        self_next[static_cast<std::size_t>(c.rank)] = c.next;
        --remaining;
        ++events_done;
        advanced = true;
      }
      if (c.next != c.published) publish(c);
    }

    if (advanced) {
      spins = 0;
    } else if (remaining > 0) {
      if (spins < max_spins) {
        ++spins;
        ++spin_iters;
        std::this_thread::yield();
        continue;
      }
      // All owned ranks are blocked on remote sends.  Announce the sleep,
      // re-check readiness (a publisher either saw the asleep flag and rings
      // the doorbell, or its counter store precedes our re-check and we see
      // it — no missed wakeup either way), then wait on the doorbell.
      const std::uint64_t seen = bell.epoch.load(std::memory_order_seq_cst);
      bell.asleep.store(1, std::memory_order_seq_cst);
      bool any_ready = false;
      for (const auto& c : mine) {
        if (c.next < schedule.rank_size(c.rank) && ready(c)) {
          any_ready = true;
          break;
        }
      }
      if (!any_ready) {
        ++doorbell_sleeps;
        if (tracing) {
          // Epoch lag: how much of this worker's assignment is still blocked
          // behind remote publications at the moment it gives up the CPU.
          obs::counter_sample("clc.epoch_lag", static_cast<double>(remaining));
        }
        bell.epoch.wait(seen, std::memory_order_seq_cst);
        ++doorbell_wakeups;
        if (tracing) {
          obs::counter_sample("clc.doorbell_wakeups", static_cast<double>(doorbell_wakeups));
        }
      }
      bell.asleep.store(0, std::memory_order_seq_cst);
      spins = 0;
    }
  }

  if (tracing) obs::counter_sample("clc.spin_iters", static_cast<double>(spin_iters));
  if (obs::metrics_enabled()) {
    obs::counter("clc.spin_iters").add(static_cast<std::int64_t>(spin_iters));
    obs::counter("clc.doorbell_sleeps").add(static_cast<std::int64_t>(doorbell_sleeps));
    obs::counter("clc.doorbell_wakeups").add(static_cast<std::int64_t>(doorbell_wakeups));
    obs::counter("clc.published_batches").add(static_cast<std::int64_t>(published_batches));
    obs::counter("clc.worker_events").add(static_cast<std::int64_t>(events_done));
  }
}

}  // namespace

ClcResult controlled_logical_clock_parallel(const Trace& trace, const ReplaySchedule& schedule,
                                            const TimestampArray& input,
                                            const ClcOptions& options, int threads) {
  CS_SPAN("clc.parallel");
  if (trace.ranks() == 0 || schedule.events() == 0) {
    // Empty traces: nothing to replay, and clamping threads to the rank count
    // must not end up demanding a zero-thread pool.
    ClcResult empty;
    empty.corrected = input;
    return empty;
  }
  CS_REQUIRE(options.forward_decay >= 0.0 && options.forward_decay < 1.0,
             "forward_decay must be in [0, 1)");

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  threads = std::max(1, std::min(threads, trace.ranks()));

  // One phase span alive at a time; emplace() closes the previous phase.
  std::optional<obs::Span> phase_span;
  phase_span.emplace("clc.partition");
  SharedState shared(schedule.events(), static_cast<std::size_t>(trace.ranks()),
                     static_cast<std::size_t>(threads));

  // Round-robin rank ownership keeps neighbouring ranks on different
  // threads, which shortens blocking chains for nearest-neighbour patterns.
  std::vector<std::vector<RankCursor>> owned(static_cast<std::size_t>(threads));
  std::vector<std::vector<char>> owned_by(
      static_cast<std::size_t>(threads),
      std::vector<char>(static_cast<std::size_t>(trace.ranks()), 0));
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto t = static_cast<std::size_t>(r % threads);
    owned[t].push_back({r, 0, 0, false, 0.0, 0.0});
    owned_by[t][static_cast<std::size_t>(r)] = 1;
  }

  // Subscriber lists: thread t subscribes to rank x when some edge runs from
  // an event of x into an event of a rank t owns.
  {
    std::vector<char> seen(static_cast<std::size_t>(trace.ranks()) *
                               static_cast<std::size_t>(threads),
                           0);
    shared.subscribers.resize(static_cast<std::size_t>(trace.ranks()));
    for (std::uint32_t g = 0; g < schedule.events(); ++g) {
      const int owner = static_cast<int>(schedule.rank_of(g)) % threads;
      for (const auto& edge : schedule.incoming(g)) {
        const auto x = static_cast<std::size_t>(schedule.rank_of(edge.source));
        auto& flag = seen[x * static_cast<std::size_t>(threads) +
                          static_cast<std::size_t>(owner)];
        if (!flag) {
          flag = 1;
          shared.subscribers[x].push_back(owner);
        }
      }
    }
  }

  phase_span.emplace("clc.forward_parallel");

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      obs::set_thread_name("clc-worker-" + std::to_string(t));
      forward_worker(schedule, input, options, t, owned[static_cast<std::size_t>(t)],
                     owned_by[static_cast<std::size_t>(t)], shared);
    });
  }
  for (auto& th : pool) th.join();
  phase_span.emplace("clc.merge");

  clc_detail::ForwardPassResult fwd;
  fwd.lc = std::move(shared.lc);
  fwd.jump = std::move(shared.jump);
  // Aggregates come from the deterministic per-event jump[] array, never from
  // per-thread accumulation, so the reported statistics are independent of
  // the thread count and bit-identical to the sequential implementation.
  clc_detail::finalize_stats(fwd);

  if (options.backward_amortization) {
    clc_detail::backward_pass(trace, schedule, fwd, options);
  }

  ClcResult result;
  result.corrected = input;
  for (Rank r = 0; r < trace.ranks(); ++r) {
    auto& v = result.corrected.of_rank(r);
    const std::uint32_t base = schedule.rank_begin(r);
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      v[i] = fwd.lc[base + i];
    }
  }
  result.violations_repaired = fwd.violations_repaired;
  result.max_jump = fwd.max_jump;
  result.total_jump = fwd.total_jump;
  return result;
}

}  // namespace chronosync
