// Internal pieces of the CLC shared between the sequential and the parallel
// implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "sync/clc.hpp"
#include "sync/replay.hpp"
#include "trace/trace.hpp"

namespace chronosync::clc_detail {

struct ForwardPassResult {
  std::vector<Time> lc;        ///< corrected timestamp per global event index
  std::vector<Duration> jump;  ///< jump size per event (0 if no violation)
  std::size_t violations_repaired = 0;
  Duration max_jump = 0.0;
  Duration total_jump = 0.0;
};

ForwardPassResult forward_pass(const Trace& trace, const ReplaySchedule& schedule,
                               const TimestampArray& input, const ClcOptions& options);

/// Recomputes the jump aggregates (count, max, total) from the per-event
/// jump[] array in global-index order — deterministic across replay orders
/// and thread counts.
void finalize_stats(ForwardPassResult& fwd);

/// Applies backward amortization in place on the forward result.
void backward_pass(const Trace& trace, const ReplaySchedule& schedule, ForwardPassResult& fwd,
                   const ClcOptions& options);

}  // namespace chronosync::clc_detail
