#include "sync/kalman_drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace chronosync {

namespace {

/// Symmetric 2x2 covariance; the state is small enough that spelling the
/// algebra out beats a matrix library and keeps every operation deterministic.
struct Cov {
  double oo = 0.0;  // var(offset)
  double od = 0.0;  // cov(offset, drift)
  double dd = 0.0;  // var(drift)
};

struct Vec {
  double o = 0.0;
  double d = 0.0;
};

struct Step {
  Time worker_time = 0.0;
  Duration dt = 0.0;  ///< gap to the previous step (0 for the first)
  Vec pred_x;         ///< x_{k|k-1}
  Cov pred_p;         ///< P_{k|k-1}
  Vec filt_x;         ///< x_{k|k}
  Cov filt_p;         ///< P_{k|k}
};

/// Predict across dt: x -> F x, P -> F P F^T + Q with F = [[1, dt], [0, 1]].
void predict(Vec& x, Cov& p, Duration dt, const KalmanOptions& opt) {
  if (dt <= 0.0) return;
  x.o += x.d * dt;
  const double q_d = opt.drift_process_sigma * opt.drift_process_sigma;
  const double q_o = opt.offset_process_sigma * opt.offset_process_sigma;
  const double oo = p.oo + 2.0 * dt * p.od + dt * dt * p.dd;
  const double od = p.od + dt * p.dd;
  p.oo = oo + q_o * dt + q_d * dt * dt * dt / 3.0;
  p.od = od + q_d * dt * dt / 2.0;
  p.dd = p.dd + q_d * dt;
}

/// Measurement update with z = offset, H = [1 0], noise variance r2.
void update(Vec& x, Cov& p, Duration z, double r2) {
  const double s = p.oo + r2;           // innovation variance (> 0: r2 > 0)
  const double k_o = p.oo / s;          // Kalman gain
  const double k_d = p.od / s;
  const double innov = z - x.o;
  x.o += k_o * innov;
  x.d += k_d * innov;
  // Joseph-free standard form is fine at this scale; keep symmetry explicit.
  const double oo = (1.0 - k_o) * p.oo;
  const double od = (1.0 - k_o) * p.od;
  const double dd = p.dd - k_d * p.od;
  p.oo = oo;
  p.od = od;
  p.dd = dd;
}

/// Clamp a smoothed drift rate to a physically plausible slope: hardware and
/// even stormed clocks stay within a few percent of true rate, and the
/// boundary extrapolation must keep d master / d worker positive so the
/// correction preserves rank-local event order.
double boundary_slope(double drift) { return 1.0 + std::clamp(drift, -0.01, 0.01); }

}  // namespace

KalmanDriftCorrection::KalmanDriftCorrection(std::vector<RankModel> models)
    : models_(std::move(models)) {
  CS_REQUIRE(!models_.empty(), "kalman drift correction needs at least one rank");
}

KalmanDriftCorrection KalmanDriftCorrection::from_store(const OffsetStore& store,
                                                        const KalmanOptions& options) {
  CS_REQUIRE(options.drift_process_sigma > 0.0 && options.offset_process_sigma > 0.0,
             "kalman process noise must be positive");
  CS_REQUIRE(options.measurement_sigma_floor > 0.0,
             "kalman measurement noise floor must be positive");
  std::vector<RankModel> models(static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    const auto& samples = store.of(r);
    RankModel& model = models[static_cast<std::size_t>(r)];

    // Screen the record once: non-finite samples (a hostile or truncated
    // store) and time-reversed samples are unusable; the best finite RTT
    // anchors the per-sample measurement noise.
    std::size_t skipped = 0;
    Duration best_rtt = kTimeInfinity;
    for (const auto& m : samples) {
      if (is_finite_sample(m)) best_rtt = std::min(best_rtt, m.rtt);
    }

    std::vector<Step> steps;
    steps.reserve(samples.size());
    Vec x;
    Cov p;
    bool started = false;
    for (const auto& m : samples) {
      if (!is_finite_sample(m)) {
        ++skipped;
        continue;
      }
      if (started && m.worker_time < steps.back().worker_time) {
        ++skipped;  // time-reversed sample: the model cannot rewind
        continue;
      }
      const Duration excess = std::max(0.0, m.rtt - best_rtt);
      const double sigma = std::max(options.measurement_sigma_floor,
                                    options.rtt_excess_scale * excess);
      const double r2 = sigma * sigma;
      if (!started) {
        x = {m.offset, 0.0};
        p = {options.init_offset_sigma * options.init_offset_sigma, 0.0,
             options.init_drift_sigma * options.init_drift_sigma};
        Step s;
        s.worker_time = m.worker_time;
        s.dt = 0.0;
        s.pred_x = x;
        s.pred_p = p;
        update(x, p, m.offset, r2);
        s.filt_x = x;
        s.filt_p = p;
        steps.push_back(s);
        started = true;
        continue;
      }
      const Duration dt = m.worker_time - steps.back().worker_time;
      if (dt == 0.0) {
        // Batched probes sharing one instant: a second measurement of the
        // same state.  Update in place instead of growing a zero-length
        // segment (knots must stay strictly increasing).
        Step& s = steps.back();
        update(x, p, m.offset, r2);
        s.filt_x = x;
        s.filt_p = p;
        continue;
      }
      predict(x, p, dt, options);
      Step s;
      s.worker_time = m.worker_time;
      s.dt = dt;
      s.pred_x = x;
      s.pred_p = p;
      update(x, p, m.offset, r2);
      s.filt_x = x;
      s.filt_p = p;
      steps.push_back(s);
    }
    if (skipped > 0) {
      CS_LOG_WARN << "KalmanDriftCorrection: rank " << r << " skipped " << skipped
                  << " non-finite or time-reversed offset sample(s)";
    }

    if (steps.empty()) {
      CS_LOG_WARN << "KalmanDriftCorrection: rank " << r
                  << " has no usable offset samples; falling back to identity";
      model.states.push_back({0.0, 0.0, 0.0, 0.0, 0.0});
      continue;
    }

    // RTS smoothing pass: condition every state on the full record.
    std::vector<Vec> sx(steps.size());
    std::vector<Cov> sp(steps.size());
    sx.back() = steps.back().filt_x;
    sp.back() = steps.back().filt_p;
    for (std::size_t k = steps.size() - 1; k-- > 0;) {
      const Step& cur = steps[k];
      const Step& next = steps[k + 1];
      // C = P_filt F^T P_pred^{-1} with F = [[1, dt], [0, 1]].
      const double dt = next.dt;
      // P_filt F^T.
      const double a_oo = cur.filt_p.oo + dt * cur.filt_p.od;
      const double a_od = cur.filt_p.od;
      const double a_do = cur.filt_p.od + dt * cur.filt_p.dd;
      const double a_dd = cur.filt_p.dd;
      // Inverse of the (symmetric, PD) predicted covariance.
      const Cov& pp = next.pred_p;
      const double det = pp.oo * pp.dd - pp.od * pp.od;
      if (!(det > 0.0) || !std::isfinite(det)) {
        // Numerically degenerate (e.g. all probes at one instant): keep the
        // filtered estimate for this and earlier states.
        for (std::size_t j = 0; j <= k; ++j) {
          sx[j] = steps[j].filt_x;
          sp[j] = steps[j].filt_p;
        }
        break;
      }
      const double i_oo = pp.dd / det;
      const double i_od = -pp.od / det;
      const double i_dd = pp.oo / det;
      const double c_oo = a_oo * i_oo + a_od * i_od;
      const double c_od = a_oo * i_od + a_od * i_dd;
      const double c_do = a_do * i_oo + a_dd * i_od;
      const double c_dd = a_do * i_od + a_dd * i_dd;
      // x_s = x_filt + C (x_s[k+1] - x_pred[k+1]).
      const double r_o = sx[k + 1].o - next.pred_x.o;
      const double r_d = sx[k + 1].d - next.pred_x.d;
      sx[k].o = cur.filt_x.o + c_oo * r_o + c_od * r_d;
      sx[k].d = cur.filt_x.d + c_do * r_o + c_dd * r_d;
      // P_s = P_filt + C (P_s[k+1] - P_pred[k+1]) C^T.
      const double d_oo = sp[k + 1].oo - pp.oo;
      const double d_od = sp[k + 1].od - pp.od;
      const double d_dd = sp[k + 1].dd - pp.dd;
      const double t_oo = c_oo * d_oo + c_od * d_od;
      const double t_od = c_oo * d_od + c_od * d_dd;
      const double t_do = c_do * d_oo + c_dd * d_od;
      const double t_dd = c_do * d_od + c_dd * d_dd;
      sp[k].oo = cur.filt_p.oo + t_oo * c_oo + t_od * c_od;
      sp[k].od = cur.filt_p.od + t_oo * c_do + t_od * c_dd;
      sp[k].dd = cur.filt_p.dd + t_do * c_do + t_dd * c_dd;
    }

    model.states.reserve(steps.size());
    for (std::size_t k = 0; k < steps.size(); ++k) {
      State st;
      st.worker_time = steps[k].worker_time;
      st.offset = sx[k].o;
      st.drift = sx[k].d;
      st.var_offset = sp[k].oo;
      st.var_drift = sp[k].dd;
      // The interpolation knots are master-time estimates w + o(w); they must
      // stay strictly increasing for the correction to preserve local order.
      // Offsets move by microseconds over second-scale gaps, so an inversion
      // only happens on hostile input — drop the later knot then.
      if (!model.states.empty() &&
          st.worker_time + st.offset <=
              model.states.back().worker_time + model.states.back().offset) {
        CS_LOG_WARN << "KalmanDriftCorrection: rank " << r
                    << " dropped a non-monotone smoothed knot at worker_time "
                    << st.worker_time;
        continue;
      }
      model.states.push_back(st);
    }
    model.entry_slope = boundary_slope(model.states.front().drift);
    model.exit_slope = boundary_slope(model.states.back().drift);
    if (model.states.size() == 1 && samples.size() >= 2) {
      CS_LOG_WARN << "KalmanDriftCorrection: rank " << r
                  << " has a single usable measurement instant; falling back to "
                     "pure offset alignment";
    }
  }
  return KalmanDriftCorrection(std::move(models));
}

Time KalmanDriftCorrection::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < models_.size(), "rank out of range");
  const RankModel& model = models_[static_cast<std::size_t>(r)];
  const auto& st = model.states;
  const State& first = st.front();
  if (st.size() == 1 || local_ts <= first.worker_time) {
    // Before the record (or a degenerate single-knot rank): extrapolate with
    // the smoothed boundary drift — the model-based analogue of extending
    // Eq. 3's mean-drift slope.
    return first.worker_time + first.offset +
           (local_ts - first.worker_time) * model.entry_slope;
  }
  const State& last = st.back();
  if (local_ts >= last.worker_time) {
    return last.worker_time + last.offset + (local_ts - last.worker_time) * model.exit_slope;
  }
  auto it = std::lower_bound(st.begin(), st.end(), local_ts,
                             [](const State& s, Time t) { return s.worker_time < t; });
  const State& b = *it;
  const State& a = *(it - 1);
  const double t = (local_ts - a.worker_time) / (b.worker_time - a.worker_time);
  const Time ma = a.worker_time + a.offset;
  const Time mb = b.worker_time + b.offset;
  return ma + (mb - ma) * t;
}

const std::vector<KalmanDriftCorrection::State>& KalmanDriftCorrection::states(Rank r) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < models_.size(), "rank out of range");
  return models_[static_cast<std::size_t>(r)].states;
}

}  // namespace chronosync
