#include "sync/offset_alignment.hpp"

#include "common/expect.hpp"
#include "common/log.hpp"

namespace chronosync {

OffsetAlignment::OffsetAlignment(std::vector<Duration> offsets) : offsets_(std::move(offsets)) {
  CS_REQUIRE(!offsets_.empty(), "alignment needs at least one rank");
}

OffsetAlignment OffsetAlignment::from_store(const OffsetStore& store) {
  std::vector<Duration> offsets(static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    CS_REQUIRE(!store.of(r).empty(), "no offset measurement for rank");
    // Use the first *finite* sample; a poisoned leading sample must not leak
    // NaN/inf into every corrected timestamp of the rank.
    std::size_t skipped = 0;
    const auto samples = finite_samples(store.of(r), &skipped);
    if (skipped > 0) {
      CS_LOG_WARN << "OffsetAlignment: rank " << r << " skipped " << skipped
                  << " non-finite offset sample(s)";
    }
    if (samples.empty()) {
      CS_LOG_WARN << "OffsetAlignment: rank " << r
                  << " has no finite offset samples; falling back to identity";
      offsets[static_cast<std::size_t>(r)] = 0.0;
      continue;
    }
    offsets[static_cast<std::size_t>(r)] = samples.front().offset;
  }
  return OffsetAlignment(std::move(offsets));
}

Time OffsetAlignment::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < offsets_.size(), "rank out of range");
  return local_ts + offsets_[static_cast<std::size_t>(r)];
}

}  // namespace chronosync
