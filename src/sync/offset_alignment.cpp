#include "sync/offset_alignment.hpp"

#include "common/expect.hpp"

namespace chronosync {

OffsetAlignment::OffsetAlignment(std::vector<Duration> offsets) : offsets_(std::move(offsets)) {
  CS_REQUIRE(!offsets_.empty(), "alignment needs at least one rank");
}

OffsetAlignment OffsetAlignment::from_store(const OffsetStore& store) {
  std::vector<Duration> offsets(static_cast<std::size_t>(store.ranks()));
  for (Rank r = 0; r < store.ranks(); ++r) {
    CS_REQUIRE(!store.of(r).empty(), "no offset measurement for rank");
    offsets[static_cast<std::size_t>(r)] = store.of(r).front().offset;
  }
  return OffsetAlignment(std::move(offsets));
}

Time OffsetAlignment::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < offsets_.size(), "rank out of range");
  return local_ts + offsets_[static_cast<std::size_t>(r)];
}

}  // namespace chronosync
