// Collective-anchored synchronization (Babaoglu & Drummond, refs. [22]/[23]).
//
// Their observation: if the application performs a full message exchange
// among all processors "in sufficiently short intervals", clocks can be
// synchronized at (almost) no extra cost — the exchange itself bounds every
// pairwise offset.  chronosync's N-to-N collectives (barrier, allreduce,
// allgather, alltoall) are exactly such exchanges: within one instance,
// every member's end happens after every other member's begin, so for ranks
// a (master) and b,
//
//     end_b   >= begin_a + l_min   ->   delta_ab <= end_b's bound
//     end_a   >= begin_b + l_min   ->   delta_ab >= ...
//
// Each instance therefore yields an interval estimate of the master-minus-
// worker offset at that moment; chaining the interval midpoints across
// instances gives a piecewise-linear correction that tracks non-constant
// drift wherever the application synchronizes globally.
#pragma once

#include <memory>

#include "common/mathutil.hpp"
#include "sync/correction.hpp"
#include "trace/trace.hpp"

namespace chronosync {

class CollectiveAnchorCorrection final : public TimestampCorrection {
 public:
  /// Builds the correction from all N-to-N collective instances that include
  /// both the master (rank 0) and the respective worker.  Workers that never
  /// share such a collective with the master keep the identity correction.
  static CollectiveAnchorCorrection build(const Trace& trace);

  Time correct(Rank r, Time local_ts) const override;

  /// Number of anchor points (collective instances) used per rank.
  std::size_t anchors(Rank r) const;

 private:
  CollectiveAnchorCorrection() = default;
  std::vector<PiecewiseLinear> maps_;  ///< worker local time -> master time
};

}  // namespace chronosync
