// Message-based error estimation (Sec. V of the paper).
//
// The send/receive timestamps of the application's own messages bound the
// pairwise clock difference: a message a->b sent at local x and received at
// local y implies, with delta_ab(t) = L_a(t) - L_b(t),
//
//     delta_ab >= x - y + l_min        (from a->b traffic: lower bound)
//     delta_ab <= y' - x' - l_min      (from b->a traffic: upper bound)
//
// The estimators differ in how they pick a line inside the feasible band:
//   * Regression  (Duda):      least-squares line through each bound cloud,
//                              then the medial line of the two fits;
//   * ConvexHull  (Duda):      hull of each cloud facing the band, medial
//                              line between the two support chains;
//   * MinMax      (Hofmann):   tightest bound in the first and last time
//                              window, line through the two midpoints.
//
// Pairwise estimates are chained to the master (rank 0) along a spanning
// tree that prefers message-rich pairs (Jezequel's construction).
#pragma once

#include <optional>
#include <vector>

#include "common/mathutil.hpp"
#include "sync/correction.hpp"
#include "trace/trace.hpp"

namespace chronosync {

enum class EstimationMethod { Regression, ConvexHull, MinMax };

std::string to_string(EstimationMethod m);

/// Linear estimate of delta_ab(t) = L_a(t) - L_b(t) on edge (a, b).
struct PairEstimate {
  Rank a = -1;
  Rank b = -1;
  LinearFit line;               ///< delta_ab as a function of (approx.) time
  std::size_t messages_ab = 0;  ///< samples contributing the lower bound
  std::size_t messages_ba = 0;  ///< samples contributing the upper bound
};

/// Estimates one pair from the matched messages between a and b.
/// Returns nullopt when either direction has no traffic.
std::optional<PairEstimate> estimate_pair(const Trace& trace,
                                          const std::vector<MessageRecord>& messages, Rank a,
                                          Rank b, EstimationMethod method);

/// Per-rank linear correction to the master built by chaining pair estimates
/// along a maximum-traffic spanning tree.
class ErrorEstimationCorrection final : public TimestampCorrection {
 public:
  /// Builds the correction from a trace.  Ranks unreachable from rank 0 via
  /// bidirectional traffic keep the identity correction.
  static ErrorEstimationCorrection build(const Trace& trace,
                                         const std::vector<MessageRecord>& messages,
                                         EstimationMethod method);

  Time correct(Rank r, Time local_ts) const override;

  /// Ranks that could not be chained to the master.
  const std::vector<Rank>& unreachable() const { return unreachable_; }

  /// Spanning-tree parent per rank (-1 for the master and unreachable
  /// ranks).  The tree is deterministic: equal-traffic candidate edges are
  /// broken toward the smallest (from, to) pair.
  const std::vector<Rank>& tree_parent() const { return parent_; }

 private:
  ErrorEstimationCorrection() = default;
  /// Per-rank line: master_time = local + line(local).
  std::vector<LinearFit> delta_to_master_;
  std::vector<Rank> unreachable_;
  std::vector<Rank> parent_;
};

}  // namespace chronosync
