#include "sync/error_estimation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "common/expect.hpp"
#include "common/log.hpp"

namespace chronosync {

std::string to_string(EstimationMethod m) {
  switch (m) {
    case EstimationMethod::Regression: return "regression";
    case EstimationMethod::ConvexHull: return "convex-hull";
    case EstimationMethod::MinMax: return "min-max";
  }
  return "?";
}

namespace {

/// delta_ab must lie above `lower` and below `upper` (point clouds in
/// (approximate time, bound) coordinates).
struct BoundClouds {
  std::vector<Point2> lower;
  std::vector<Point2> upper;
};

BoundClouds gather_bounds(const Trace& trace, const std::vector<MessageRecord>& messages,
                          Rank a, Rank b) {
  BoundClouds clouds;
  const Duration l_min = trace.min_latency(a, b);
  for (const auto& m : messages) {
    const Time x = trace.at(m.send).local_ts;
    const Time y = trace.at(m.recv).local_ts;
    if (m.send.proc == a && m.recv.proc == b) {
      clouds.lower.push_back({x, x - y + l_min});
    } else if (m.send.proc == b && m.recv.proc == a) {
      clouds.upper.push_back({y, y - x - l_min});
    }
  }
  return clouds;
}

LinearFit fit_constant(double value, std::size_t n) {
  LinearFit f;
  f.slope = 0.0;
  f.intercept = value;
  f.n = n;
  return f;
}

/// Least-squares fit that degrades gracefully for tiny clouds.
LinearFit robust_fit(const std::vector<Point2>& pts) {
  CS_ENSURE(!pts.empty(), "fitting an empty cloud");
  if (pts.size() == 1) return fit_constant(pts.front().y, 1);
  // All x equal would make the regression singular; fall back to a constant.
  const double x0 = pts.front().x;
  bool distinct = false;
  for (const auto& p : pts) {
    if (p.x != x0) {
      distinct = true;
      break;
    }
  }
  if (!distinct) {
    double sum = 0.0;
    for (const auto& p : pts) sum += p.y;
    return fit_constant(sum / static_cast<double>(pts.size()), pts.size());
  }
  return fit_line(pts);
}

LinearFit average_lines(const LinearFit& lo, const LinearFit& hi) {
  LinearFit f;
  f.slope = 0.5 * (lo.slope + hi.slope);
  f.intercept = 0.5 * (lo.intercept + hi.intercept);
  f.n = lo.n + hi.n;
  return f;
}

LinearFit estimate_regression(const BoundClouds& clouds) {
  return average_lines(robust_fit(clouds.lower), robust_fit(clouds.upper));
}

LinearFit estimate_convex_hull(const BoundClouds& clouds) {
  // The feasible band's floor is the upper convex hull of the lower bounds;
  // its ceiling is the lower convex hull of the upper bounds.  A line fitted
  // through each support chain weights the extremal (tightest) samples only.
  const std::vector<Point2> floor_chain = upper_convex_hull(clouds.lower);
  const std::vector<Point2> ceil_chain = lower_convex_hull(clouds.upper);
  return average_lines(robust_fit(floor_chain), robust_fit(ceil_chain));
}

LinearFit estimate_minmax(const BoundClouds& clouds) {
  // Hofmann: tightest bounds within the first and the last quarter of the
  // common time range give two midpoints; the estimate is the line through
  // them.
  Time lo_t = std::numeric_limits<Time>::infinity();
  Time hi_t = -std::numeric_limits<Time>::infinity();
  for (const auto& p : clouds.lower) {
    lo_t = std::min(lo_t, p.x);
    hi_t = std::max(hi_t, p.x);
  }
  for (const auto& p : clouds.upper) {
    lo_t = std::min(lo_t, p.x);
    hi_t = std::max(hi_t, p.x);
  }
  const Time span = hi_t - lo_t;

  // The midpoint's time coordinate must be that of the extreme samples
  // themselves: averaging over the whole window would pair an early-window
  // bound value with a mid-window time and bias the slope under drift.
  auto window_mid = [&](Time wlo, Time whi) -> std::optional<Point2> {
    const Point2* best_lower = nullptr;
    const Point2* best_upper = nullptr;
    for (const auto& p : clouds.lower) {
      if (p.x >= wlo && p.x <= whi && (!best_lower || p.y > best_lower->y)) best_lower = &p;
    }
    for (const auto& p : clouds.upper) {
      if (p.x >= wlo && p.x <= whi && (!best_upper || p.y < best_upper->y)) best_upper = &p;
    }
    if (!best_lower || !best_upper) return std::nullopt;
    return Point2{0.5 * (best_lower->x + best_upper->x),
                  0.5 * (best_lower->y + best_upper->y)};
  };

  const auto first = window_mid(lo_t, lo_t + span / 4.0);
  const auto last = window_mid(hi_t - span / 4.0, hi_t);
  if (!first || !last || last->x <= first->x) {
    // Not enough spread for a slope estimate: fall back to the regression.
    return estimate_regression(clouds);
  }
  LinearFit f;
  f.slope = (last->y - first->y) / (last->x - first->x);
  f.intercept = first->y - f.slope * first->x;
  f.n = clouds.lower.size() + clouds.upper.size();
  return f;
}

}  // namespace

std::optional<PairEstimate> estimate_pair(const Trace& trace,
                                          const std::vector<MessageRecord>& messages, Rank a,
                                          Rank b, EstimationMethod method) {
  BoundClouds clouds = gather_bounds(trace, messages, a, b);
  if (clouds.lower.empty() || clouds.upper.empty()) return std::nullopt;

  PairEstimate est;
  est.a = a;
  est.b = b;
  est.messages_ab = clouds.lower.size();
  est.messages_ba = clouds.upper.size();
  switch (method) {
    case EstimationMethod::Regression: est.line = estimate_regression(clouds); break;
    case EstimationMethod::ConvexHull: est.line = estimate_convex_hull(clouds); break;
    case EstimationMethod::MinMax: est.line = estimate_minmax(clouds); break;
  }
  return est;
}

ErrorEstimationCorrection ErrorEstimationCorrection::build(
    const Trace& trace, const std::vector<MessageRecord>& messages, EstimationMethod method) {
  const int n = trace.ranks();

  // Count traffic per unordered pair to pick the best-supported edges.
  std::map<std::pair<Rank, Rank>, std::pair<std::size_t, std::size_t>> traffic;
  for (const auto& m : messages) {
    Rank s = m.send.proc, r = m.recv.proc;
    const bool forward = s < r;
    auto key = forward ? std::make_pair(s, r) : std::make_pair(r, s);
    auto& [ab, ba] = traffic[key];
    (forward ? ab : ba) += 1;
  }

  // Maximum-traffic spanning tree from rank 0 (Prim); edges need both
  // directions, as one-sided traffic bounds the offset only from one side.
  struct Edge {
    Rank to;
    std::size_t weight;
  };
  std::vector<std::vector<Edge>> adj(static_cast<std::size_t>(n));
  for (const auto& [key, counts] : traffic) {
    if (counts.first == 0 || counts.second == 0) continue;
    const std::size_t w = counts.first + counts.second;
    adj[static_cast<std::size_t>(key.first)].push_back({key.second, w});
    adj[static_cast<std::size_t>(key.second)].push_back({key.first, w});
  }

  ErrorEstimationCorrection corr;
  corr.delta_to_master_.assign(static_cast<std::size_t>(n), fit_constant(0.0, 0));
  corr.parent_.assign(static_cast<std::size_t>(n), -1);

  std::vector<bool> reached(static_cast<std::size_t>(n), false);
  if (n > 0) reached[0] = true;
  // Max-heap on traffic weight; deterministic tie-break on rank: among
  // equal-weight candidates the *smallest* (from, to) pair wins, so the heap
  // order inverts the rank comparisons (a plain tuple max-heap would prefer
  // the largest ranks).
  struct Cand {
    std::size_t weight;
    Rank from;
    Rank to;
    bool operator<(const Cand& o) const {
      if (weight != o.weight) return weight < o.weight;
      if (from != o.from) return from > o.from;
      return to > o.to;
    }
  };
  std::priority_queue<Cand> heap;
  if (n > 0) {
    for (const auto& e : adj[0]) heap.push({e.weight, 0, e.to});
  }

  while (!heap.empty()) {
    auto [w, from, to] = heap.top();
    heap.pop();
    if (reached[static_cast<std::size_t>(to)]) continue;
    // delta_to_master_[r](t) estimates L_0(t) - L_r(t).  For the tree edge
    // (from -> to): L_0 - L_to = (L_0 - L_from) + delta_{from,to}.
    auto est = estimate_pair(trace, messages, from, to, method);
    if (!est) continue;
    LinearFit combined;
    const LinearFit& parent = corr.delta_to_master_[static_cast<std::size_t>(from)];
    combined.slope = parent.slope + est->line.slope;
    combined.intercept = parent.intercept + est->line.intercept;
    combined.n = est->line.n;
    corr.delta_to_master_[static_cast<std::size_t>(to)] = combined;
    corr.parent_[static_cast<std::size_t>(to)] = from;
    reached[static_cast<std::size_t>(to)] = true;
    for (const auto& e : adj[static_cast<std::size_t>(to)]) {
      if (!reached[static_cast<std::size_t>(e.to)]) heap.push({e.weight, to, e.to});
    }
  }

  for (Rank r = 0; r < n; ++r) {
    if (!reached[static_cast<std::size_t>(r)]) corr.unreachable_.push_back(r);
  }
  if (!corr.unreachable_.empty()) {
    CS_LOG_WARN << corr.unreachable_.size()
                << " ranks unreachable via bidirectional traffic; left uncorrected";
  }
  return corr;
}

Time ErrorEstimationCorrection::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < delta_to_master_.size(),
             "rank out of range");
  // master = local + delta_to_master(local); evaluating the line at the local
  // timestamp instead of true time costs only a second-order (drift^2) error.
  return local_ts + delta_to_master_[static_cast<std::size_t>(r)](local_ts);
}

}  // namespace chronosync
