// CLC extension to OpenMP (shared-memory) traces.
//
// The paper's conclusion names this as an open limitation of the CLC: "the
// non-observance of shared-memory clock conditions related to OpenMP
// constructs".  This module closes that gap for POMP traces by mapping the
// OpenMP happened-before rules onto logical messages, exactly as the
// collective extension does for MPI collectives:
//
//   * fork -> first event of every worker thread in the region   (1-to-N)
//   * last event of every thread in the region -> join           (N-to-1)
//   * barrier enter(i) -> barrier exit(j) for all i != j         (N-to-N)
//
// Threads of the (single-location) OpenMP trace are split into per-thread
// pseudo-processes so the CLC's program-order constraint applies per thread,
// then the corrected timestamps are merged back into trace layout.
#pragma once

#include "sync/clc.hpp"
#include "topology/pinning.hpp"
#include "trace/logical_messages.hpp"
#include "trace/trace.hpp"

namespace chronosync {

/// Splits a single-location POMP trace into one pseudo-rank per thread.
/// `thread_placement` supplies the per-thread core locations (it determines
/// the minimum synchronization latencies used as l_min).
Trace split_omp_threads(const Trace& omp_trace, const Placement& thread_placement, Rank loc = 0);

/// Derives the POMP happened-before edges on a thread-split trace.
std::vector<LogicalMessage> derive_omp_logical_messages(const Trace& thread_trace);

struct OmpClcResult {
  TimestampArray corrected;  ///< in the layout of the *original* trace
  std::size_t violations_repaired = 0;
  Duration max_jump = 0.0;
};

/// Runs the CLC with OpenMP semantics over a POMP trace and returns corrected
/// timestamps in the original single-location layout.
OmpClcResult omp_controlled_logical_clock(const Trace& omp_trace,
                                          const Placement& thread_placement,
                                          const ClcOptions& options = {}, Rank loc = 0);

}  // namespace chronosync
