// Offset alignment: subtract per-rank initial offsets so all clocks "start
// from zero" relative to the master.  This is step (i) of the paper's
// evaluation (Fig. 4) — it removes the initial offset but none of the drift.
#pragma once

#include <vector>

#include "measure/offset_probe.hpp"
#include "sync/correction.hpp"

namespace chronosync {

class OffsetAlignment final : public TimestampCorrection {
 public:
  /// offsets[r] is the master-minus-worker offset measured at start.
  explicit OffsetAlignment(std::vector<Duration> offsets);

  /// Uses each rank's first measurement in the store.
  static OffsetAlignment from_store(const OffsetStore& store);

  Time correct(Rank r, Time local_ts) const override;

 private:
  std::vector<Duration> offsets_;
};

}  // namespace chronosync
