// Timestamp correction interface.
//
// A correction maps a rank's local timestamp onto the (estimated) global time
// of the master clock.  Corrections are pure functions, so they can be
// applied non-destructively to a trace, compared against each other, and
// composed with the CLC postprocessing step.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace chronosync {

class TimestampCorrection {
 public:
  virtual ~TimestampCorrection() = default;

  /// Estimated master/global time for a local timestamp of rank r.
  virtual Time correct(Rank r, Time local_ts) const = 0;
};

/// No-op correction (raw local timestamps).
class IdentityCorrection final : public TimestampCorrection {
 public:
  Time correct(Rank, Time local_ts) const override { return local_ts; }
};

/// Applies a correction to every event of a trace.
TimestampArray apply_correction(const Trace& trace, const TimestampCorrection& c);

}  // namespace chronosync
