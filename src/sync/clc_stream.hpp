// Out-of-core windowed streaming CLC.
//
// The in-memory CLC (clc.hpp) materializes the trace, the message index, the
// CSR replay schedule, and two Time arrays — ~150+ bytes per event.  The
// long-run regime the paper cares about (1800–3600 s, 10^7–10^9 events) does
// not fit that budget, so this variant consumes a v2 trace file chunk by
// chunk and keeps only a sliding window resident:
//
//   * one read-ahead chunk queue per rank (events read but not processed),
//   * the forward-pass scalar state per rank,
//   * the outstanding message/collective pairing backlog (half-open edges),
//   * a bounded retention deque per rank of processed-but-unemitted events
//     over which backward amortization is re-swept before emission.
//
// Corrected timestamps stream to an on-disk side file as they become final
// and are merged into a sealed v2 output in one last pass, so peak RSS is
// bounded by window size plus edge backlog — never by trace length.
//
// -- Equivalence contract -----------------------------------------------------
//
// The forward pass is replayed in a dependency-respecting order, and the
// forward correction of an event depends only on its same-rank predecessor
// and a max over its incoming edges, so forward values are bit-identical to
// controlled_logical_clock() on the materialized trace in every case.  Two
// bounds make the windowed run finite, and each is a documented divergence
// source when exceeded (never silent — counted in StreamClcStats):
//
//   * `horizon` (seconds of local time): an edge whose endpoints record
//     timestamps further apart than the horizon may be dropped
//     (`horizon_dropped`).  Pick horizon >= the largest send->receive
//     timestamp skew and collective instance spread; the defaults cover any
//     realistic drift magnitude.
//   * `backward_window` (seconds): backward-amortization ramps are clamped
//     to min(jump / backward_slope, backward_window).  Jumps whose natural
//     ramp exceeds the window are counted in `ramp_clamped`.
//
// With ramp_clamped == horizon_dropped == forced == 0 the emitted trace is
// bit-identical — timestamps and jump statistics — to the in-memory
//   controlled_logical_clock(trace, schedule, TimestampArray::from_local(t)).
// src/verify/differential.hpp::cross_check_windowed_clc asserts exactly this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "sync/clc.hpp"

namespace chronosync {

struct StreamClcOptions {
  /// Kernel parameters shared with the in-memory CLC (decay, slope, ...).
  ClcOptions clc;
  /// Edge-resolution horizon in seconds of local time: how far apart the two
  /// endpoint timestamps of one message/collective may be before the edge is
  /// abandoned (and counted) to keep the window finite.
  Duration horizon = 10.0;
  /// Backward-amortization ramp clamp in seconds (see file comment).
  Duration backward_window = 1.0;
  /// Retention growth between backward re-sweeps; smaller emits earlier,
  /// larger sweeps less often.  Purely a performance knob — emitted values
  /// are independent of batching.
  std::size_t emit_batch = 4096;
  /// In-memory message-table high-water before processed half-open entries
  /// (sends still awaiting their receive) spill to the on-disk side file.
  std::size_t max_outstanding_msgs = std::size_t{1} << 20;
  /// Chunk size of the corrected output trace.
  std::size_t events_per_chunk = 0;  ///< 0 = kDefaultEventsPerChunk
};

struct StreamClcStats {
  std::uint64_t events = 0;          ///< events processed (== trace total)
  std::uint64_t p2p_edges = 0;       ///< matched send->receive constraints
  std::uint64_t logical_edges = 0;   ///< collective-derived constraints
  // Mirrors of ClcResult's jump statistics (bit-identical under the contract).
  std::size_t violations_repaired = 0;
  Duration max_jump = 0.0;
  Duration total_jump = 0.0;
  // Divergence counters: all zero <=> output bit-identical to in-memory CLC.
  std::uint64_t ramp_clamped = 0;    ///< jumps whose ramp hit backward_window
  std::uint64_t horizon_dropped = 0; ///< edges abandoned past the horizon
  std::uint64_t forced = 0;          ///< events force-processed (cyclic input)
  // Resource telemetry.
  std::uint64_t spilled_msgs = 0;       ///< message entries moved to disk
  std::size_t peak_resident_events = 0; ///< read-ahead + retention high-water
  std::size_t peak_outstanding_msgs = 0;///< in-memory message-table high-water
};

/// Corrects `in_path` (a sealed v2 trace) into `out_path` (v2, same events
/// with local_ts replaced by the corrected timestamps; true_ts preserved).
/// The output is written to a temporary file and atomically renamed on
/// success, so a crash or thrown error never leaves a silently truncated
/// trace at `out_path`.  Throws TraceIoError on any input defect — including
/// a missing footer — before the output file is created.
StreamClcStats clc_stream_file(const std::string& in_path, const std::string& out_path,
                               const StreamClcOptions& options = {});

}  // namespace chronosync
