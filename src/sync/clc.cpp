#include "sync/clc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sync/clc_detail.hpp"

namespace chronosync {

namespace clc_detail {

ForwardPassResult forward_pass(const Trace& trace, const ReplaySchedule& schedule,
                               const TimestampArray& input, const ClcOptions& options) {
  CS_SPAN("clc.forward_pass");
  CS_REQUIRE(options.forward_decay >= 0.0 && options.forward_decay < 1.0,
             "forward_decay must be in [0, 1)");

  ForwardPassResult res;
  res.lc.assign(schedule.events(), 0.0);
  res.jump.assign(schedule.events(), 0.0);

  struct ProcState {
    bool has_prev = false;
    Time prev_input = 0.0;
    Time prev_lc = 0.0;
  };
  std::vector<ProcState> state(static_cast<std::size_t>(trace.ranks()));

  schedule.replay([&](std::uint32_t g, const EventRef& ref) {
    auto& st = state[static_cast<std::size_t>(ref.proc)];
    const Time t = input.at(ref);

    // Forward amortization: carry the previous correction forward, decayed
    // by forward_decay per unit of elapsed local time, and never below zero
    // (the CLC only moves events forward).
    Time cand = t;
    if (st.has_prev) {
      const Duration dt = std::max(0.0, t - st.prev_input);
      const Duration carried =
          std::max(0.0, (st.prev_lc - st.prev_input) - options.forward_decay * dt);
      cand = std::max(t + carried, st.prev_lc);  // local order is inviolable
    }

    // Clock condition against every constraining send.
    Time bound = -kTimeInfinity;
    for (const auto& edge : schedule.incoming(g)) {
      bound = std::max(bound, res.lc[edge.source] + edge.l_min);
    }

    Time lc = cand;
    if (bound > cand) {
      lc = bound;
      res.jump[g] = bound - cand;
    }

    res.lc[g] = lc;
    st.prev_input = t;
    st.prev_lc = lc;
    st.has_prev = true;
  });

  finalize_stats(res);
  return res;
}

void finalize_stats(ForwardPassResult& fwd) {
  // Jump aggregates are derived from the jump[] array in global-index order,
  // so serial and parallel replays (whose per-event jumps are bit-identical)
  // report bit-identical statistics regardless of visit or thread order.
  fwd.violations_repaired = 0;
  fwd.max_jump = 0.0;
  fwd.total_jump = 0.0;
  for (const Duration j : fwd.jump) {
    if (j > 0.0) {
      ++fwd.violations_repaired;
      fwd.max_jump = std::max(fwd.max_jump, j);
      fwd.total_jump += j;
    }
  }
}

void backward_pass(const Trace& trace, const ReplaySchedule& schedule,
                   ForwardPassResult& fwd, const ClcOptions& options) {
  CS_SPAN("clc.backward_pass");
  CS_REQUIRE(options.backward_slope > 0.0, "backward_slope must be positive");

  // Upper caps for send events: a send may be raised at most to its
  // receive's (forward-pass) timestamp minus l_min, or it would introduce a
  // fresh violation.  Receives and local events have no cap.
  std::vector<Time> cap(schedule.events(), kTimeInfinity);
  constexpr Duration kFpMargin = 1e-12;  // keeps rounded re-checks strictly safe
  for (std::uint32_t g = 0; g < schedule.events(); ++g) {
    for (const auto& edge : schedule.incoming(g)) {
      cap[edge.source] = std::min(cap[edge.source], fwd.lc[g] - edge.l_min - kFpMargin);
    }
  }

  // Per process, sweep backwards applying the ramp of the nearest following
  // jump; monotonicity is maintained by clamping against the successor.
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto n = static_cast<std::uint32_t>(trace.events(r).size());
    if (n == 0) continue;

    bool have_jump = false;
    Time jump_at = 0.0;      // corrected timestamp of the jump event
    Duration jump_size = 0.0;
    Duration window = 0.0;

    Time successor = kTimeInfinity;
    for (std::uint32_t i = n; i-- > 0;) {
      const std::uint32_t g = schedule.global_index({r, i});
      const Time lc = fwd.lc[g];

      if (fwd.jump[g] > 0.0) {
        // This event is itself a jump: events before it are smoothed toward
        // it.  (The jump event keeps its forward-pass value.)
        have_jump = true;
        jump_at = lc;
        jump_size = fwd.jump[g];
        window = jump_size / options.backward_slope;
        successor = std::min(successor, lc);
        continue;
      }

      if (have_jump) {
        const Duration dist = jump_at - lc;
        if (dist >= 0.0 && dist < window) {
          const Duration shift = jump_size * (1.0 - dist / window);
          Time moved = lc + shift;
          moved = std::min(moved, cap[g]);      // never break a send's condition
          moved = std::min(moved, successor);   // keep local order
          fwd.lc[g] = std::max(moved, lc);      // only ever move forward
        } else if (dist >= window) {
          have_jump = false;  // out of the amortization window
        }
      }
      successor = std::min(successor, fwd.lc[g]);
    }
  }
}

}  // namespace clc_detail

ClcResult controlled_logical_clock(const Trace& trace, const ReplaySchedule& schedule,
                                   const TimestampArray& input, const ClcOptions& options) {
  CS_SPAN("clc.sequential");
  if (trace.ranks() == 0 || schedule.events() == 0) {
    // Nothing to replay: hand the input back unchanged (0-rank and 0-event
    // traces used to trip thread-count assertions downstream).
    ClcResult empty;
    empty.corrected = input;
    return empty;
  }
  clc_detail::ForwardPassResult fwd =
      clc_detail::forward_pass(trace, schedule, input, options);
  if (options.backward_amortization) {
    clc_detail::backward_pass(trace, schedule, fwd, options);
  }

  ClcResult result;
  result.corrected = input;  // same shape
  for (Rank r = 0; r < trace.ranks(); ++r) {
    auto& v = result.corrected.of_rank(r);
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      v[i] = fwd.lc[schedule.global_index({r, i})];
    }
  }
  result.violations_repaired = fwd.violations_repaired;
  result.max_jump = fwd.max_jump;
  result.total_jump = fwd.total_jump;

  if (obs::metrics_enabled()) {
    static obs::Counter& events = obs::counter("clc.events_processed");
    static obs::Counter& repaired = obs::counter("clc.violations_repaired");
    events.add(static_cast<std::int64_t>(schedule.events()));
    repaired.add(static_cast<std::int64_t>(result.violations_repaired));
  }
  return result;
}

}  // namespace chronosync
