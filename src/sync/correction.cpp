#include "sync/correction.hpp"

namespace chronosync {

TimestampArray apply_correction(const Trace& trace, const TimestampCorrection& c) {
  TimestampArray out = TimestampArray::from_local(trace);
  for (Rank r = 0; r < trace.ranks(); ++r) {
    for (Time& t : out.of_rank(r)) t = c.correct(r, t);
  }
  return out;
}

}  // namespace chronosync
