#include "sync/collective_anchor.hpp"

#include <algorithm>
#include <map>

#include "common/expect.hpp"

namespace chronosync {

CollectiveAnchorCorrection CollectiveAnchorCorrection::build(const Trace& trace) {
  CollectiveAnchorCorrection corr;
  const int n = trace.ranks();
  corr.maps_.resize(static_cast<std::size_t>(n));

  // Collect (worker_time, offset interval midpoint) anchors per rank.
  std::vector<std::vector<Point2>> anchors(static_cast<std::size_t>(n));

  for (const auto& inst : trace.collect_collectives()) {
    if (flavor_of(inst.kind) != CollectiveFlavor::NToN) continue;

    // Per-rank begin/end timestamps of this instance.
    std::map<Rank, Time> begin, end;
    for (const auto& ref : inst.begins) begin[ref.proc] = trace.at(ref).local_ts;
    for (const auto& ref : inst.ends) end[ref.proc] = trace.at(ref).local_ts;
    if (!begin.count(0) || !end.count(0)) continue;  // master not involved

    for (const auto& [w, wbegin] : begin) {
      if (w == 0 || !end.count(w)) continue;
      const Duration l_min = trace.min_latency(0, w);
      // delta = master local - worker local at a common instant.
      //   end_w   >= (begin_0 in w's clock) + l_min  ->  delta <= end_w - begin_0 ... sign care:
      //   master begin -> worker end:  end_w - delta_shift ...
      // Lower bound: master's end is at least worker's begin + l_min:
      //   end_0 >= wbegin + delta + l_min  ->  delta <= end_0 - wbegin - l_min
      // Upper bound mirrored:
      //   end_w >= begin_0 - delta + l_min ->  delta >= begin_0 + l_min - end_w
      const Duration upper = end.at(0) - wbegin - l_min;
      const Duration lower = begin.at(0) + l_min - end.at(w);
      if (upper < lower) continue;  // inconsistent instance (should not happen)
      const Duration mid = 0.5 * (lower + upper);
      // Anchor at the middle of the worker's participation window.
      const Time wmid = 0.5 * (wbegin + end.at(w));
      anchors[static_cast<std::size_t>(w)].push_back({wmid, mid});
    }
  }

  for (Rank w = 0; w < n; ++w) {
    auto& pts = anchors[static_cast<std::size_t>(w)];
    std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
      return a.x < b.x;
    });
    PiecewiseLinear map;
    for (const auto& p : pts) {
      // Knot: worker local time -> estimated master time.
      if (!map.empty() && p.x <= map.knots().back().x) continue;
      map.append(p.x, p.x + p.y);
    }
    corr.maps_[static_cast<std::size_t>(w)] = std::move(map);
  }
  return corr;
}

Time CollectiveAnchorCorrection::correct(Rank r, Time local_ts) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < maps_.size(), "rank out of range");
  const PiecewiseLinear& map = maps_[static_cast<std::size_t>(r)];
  if (map.size() < 2) {
    // No or a single anchor: constant-offset correction at best.
    return map.empty() ? local_ts : local_ts + (map.knots().front().y - map.knots().front().x);
  }
  return map(local_ts);
}

std::size_t CollectiveAnchorCorrection::anchors(Rank r) const {
  CS_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < maps_.size(), "rank out of range");
  return maps_[static_cast<std::size_t>(r)].size();
}

}  // namespace chronosync
