#include "sync/clc_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {

namespace {

constexpr Duration kFpMargin = 1e-12;  // matches clc_detail::backward_pass

/// Pairing state of one point-to-point message.  Entries are created when an
/// endpoint's chunk is *read* (so processability can distinguish "send not
/// yet seen" from "send later in the file") and die when the receive has
/// consumed the edge — or, for receive-less sends past the horizon, when the
/// entry spills to disk.
struct MsgState {
  Time send_ts = 0.0;
  Time send_lc = 0.0;
  Rank send_rank = -1;
  std::uint32_t send_seq = 0;
  bool send_registered = false;
  bool send_processed = false;
  bool recv_registered = false;
  bool recv_dropped = false;  ///< receive went ahead unconstrained (horizon)
};

/// One processed CollBegin of an instance: enough to build the logical edges
/// and to apply backward caps to its retention entry later.
struct BeginRec {
  Rank rank = -1;
  std::uint32_t seq = 0;
  Time lc = 0.0;
};

/// One collective instance.  kind/root follow registration order (last one
/// wins, like Trace::collect_collectives); for well-formed traces every
/// participant agrees so the order cannot matter.  The instance closes when
/// the read frontier of every rank has passed last_ts + horizon: after that
/// no further participant can appear (under the horizon contract), so
/// partiality and the edge set are settled.
struct CollInst {
  CollectiveKind kind{};
  Rank root = -1;
  Time last_ts = -kTimeInfinity;
  std::vector<BeginRec> begins;  ///< processed begins, processing order
  std::uint32_t begins_registered = 0;
  std::uint32_t ends_registered = 0;
  std::uint32_t ends_processed = 0;
  bool closed = false;
  bool root_end_taken = false;  ///< NToOne: the first root end owns the edges
};

/// A processed event awaiting emission.  `lc` is the forward-pass value and
/// is never mutated: every backward sweep recomputes candidate values from
/// scratch, so emitted timestamps are independent of sweep/batch timing.
struct Pending {
  Time ts = 0.0;  ///< original local timestamp (horizon release checks)
  Time lc = 0.0;
  Duration jump = 0.0;
  Time cap = kTimeInfinity;
  std::int64_t id = -1;  ///< msg_id for sends (hold-release lookups)
  std::uint8_t holds = 0;
  bool is_send = false;
};

struct RankState {
  std::vector<std::uint32_t> chunks;  ///< indices into TraceIndex::chunks
  std::size_t next_chunk = 0;
  std::deque<Event> ahead;  ///< read but not yet processed

  // Forward-pass scalar state (mirrors clc_detail::forward_pass).
  bool has_prev = false;
  Time prev_input = 0.0;
  Time prev_lc = 0.0;

  std::uint32_t seq = 0;  ///< events processed so far
  std::deque<Pending> pend;
  std::uint32_t front_seq = 0;  ///< seq of pend.front()
  std::uint64_t emitted = 0;
  std::size_t sweep_trigger = 0;
  Time read_ts = -kTimeInfinity;  ///< read frontier (max local_ts read)
  std::uint64_t base = 0;         ///< rank's first slot in the ts side file

  // Sweep scratch, reused across sweeps.
  std::vector<double> val;
  std::vector<char> fin;

  bool read_eof() const { return next_chunk >= chunks.size(); }
  bool done() const { return read_eof() && ahead.empty(); }
};

class StreamEngine {
 public:
  StreamEngine(std::istream& in, TraceIndex index, const std::string& out_path,
               const StreamClcOptions& opts)
      : reader_(in, index), index_(std::move(index)), opts_(opts), out_path_(out_path) {
    CS_REQUIRE(opts_.clc.forward_decay >= 0.0 && opts_.clc.forward_decay < 1.0,
               "forward_decay must be in [0, 1)");
    CS_REQUIRE(!opts_.clc.backward_amortization || opts_.clc.backward_slope > 0.0,
               "backward_slope must be positive");
    CS_REQUIRE(opts_.horizon > 0.0, "horizon must be positive");
    CS_REQUIRE(opts_.backward_window > 0.0, "backward_window must be positive");
    CS_REQUIRE(opts_.emit_batch > 0, "emit_batch must be positive");

    ranks_.resize(static_cast<std::size_t>(index_.meta.ranks()));
    for (std::uint32_t c = 0; c < index_.chunks.size(); ++c) {
      ranks_[static_cast<std::size_t>(index_.chunks[c].rank)].chunks.push_back(c);
    }
    std::uint64_t base = 0;
    for (Rank r = 0; r < index_.meta.ranks(); ++r) {
      ranks_[static_cast<std::size_t>(r)].base = base;
      base += index_.rank_events[static_cast<std::size_t>(r)];
    }

    ts_spill_path_ = out_path_ + ".ts-spill";
    msg_spill_path_ = out_path_ + ".msg-spill";
    ts_spill_.open(ts_spill_path_, std::ios::binary | std::ios::in | std::ios::out |
                                       std::ios::trunc);
    if (!ts_spill_.good()) {
      throw TraceIoError(TraceIoErrorKind::Io,
                         "cannot open spill file for writing: " + ts_spill_path_);
    }
    update_read_frontier();
  }

  ~StreamEngine() {
    ts_spill_.close();
    msg_spill_.close();
    std::remove(ts_spill_path_.c_str());
    std::remove(msg_spill_path_.c_str());
  }

  StreamClcStats run(std::istream& raw_in) {
    CS_SPAN("clc.stream");
    {
      CS_SPAN("clc.stream.correct");
      for (;;) {
        drain();
        if (all_done()) break;
        if (!all_read_eof_) {
          read_next_chunk();
          continue;
        }
        // Everything is read but some head is still blocked: the instance
        // closures implied by the (now infinite) read frontier may unblock
        // it; if not, the input's constraint graph is cyclic or dangling and
        // we force progress on the earliest blocked event.
        closure_scan();
        drain();
        if (all_done()) break;
        if (!drained_something_) force_one();
      }
      release_leftovers();
      for (Rank r = 0; r < index_.meta.ranks(); ++r) sweep_and_emit(r);
      for (const RankState& rs : ranks_) {
        CS_ENSURE(rs.pend.empty() && rs.ahead.empty(),
                  "streaming CLC failed to drain its window");
      }
    }
    CS_ENSURE(stats_.events == index_.total_events,
              "streaming CLC processed a different event count than the index");
    merge_output(raw_in);

    if (obs::metrics_enabled()) {
      static obs::Counter& events = obs::counter("clc.events_processed");
      static obs::Counter& repaired = obs::counter("clc.violations_repaired");
      events.add(static_cast<std::int64_t>(stats_.events));
      repaired.add(static_cast<std::int64_t>(stats_.violations_repaired));
    }

    return stats_;
  }

 private:
  // -- read side --------------------------------------------------------------

  void update_read_frontier() {
    read_low_ = kTimeInfinity;
    all_read_eof_ = true;
    for (const RankState& rs : ranks_) {
      if (rs.read_eof()) continue;
      all_read_eof_ = false;
      read_low_ = std::min(read_low_, rs.read_ts);
    }
    if (all_read_eof_) read_low_ = kTimeInfinity;
  }

  void read_next_chunk() {
    CS_SPAN("clc.stream.read");
    Rank pick = -1;
    Time lowest = kTimeInfinity;
    for (Rank r = 0; r < index_.meta.ranks(); ++r) {
      const RankState& rs = ranks_[static_cast<std::size_t>(r)];
      if (rs.read_eof()) continue;
      if (pick < 0 || rs.read_ts < lowest) {
        pick = r;
        lowest = rs.read_ts;
      }
    }
    CS_ENSURE(pick >= 0, "read_next_chunk called with all ranks at EOF");
    RankState& rs = ranks_[static_cast<std::size_t>(pick)];
    reader_.read(index_.chunks[rs.chunks[rs.next_chunk]], block_);
    ++rs.next_chunk;
    for (const Event& e : block_.events) {
      register_event(pick, e);
      rs.read_ts = std::max(rs.read_ts, e.local_ts);
      rs.ahead.push_back(e);
    }
    resident_ += block_.events.size();
    stats_.peak_resident_events = std::max(stats_.peak_resident_events, resident_);
    update_read_frontier();
    maybe_spill_msgs();
    closure_scan();
  }

  void register_event(Rank r, const Event& e) {
    switch (e.type) {
      case EventType::Send: {
        MsgState& m = msgs_[e.msg_id];
        if (m.recv_dropped) ++stats_.horizon_dropped;  // edge already abandoned
        m.send_registered = true;
        m.send_ts = e.local_ts;
        m.send_rank = r;
        break;
      }
      case EventType::Recv:
        msgs_[e.msg_id].recv_registered = true;
        break;
      case EventType::CollBegin:
      case EventType::CollEnd: {
        CollInst& inst = colls_[e.coll_id];
        if (inst.closed) ++stats_.horizon_dropped;  // straggler past closure
        inst.kind = e.coll;
        inst.root = e.root;
        inst.last_ts = std::max(inst.last_ts, e.local_ts);
        if (e.type == EventType::CollBegin) {
          ++inst.begins_registered;
        } else {
          ++inst.ends_registered;
        }
        break;
      }
      default:
        break;
    }
    stats_.peak_outstanding_msgs = std::max(stats_.peak_outstanding_msgs, msgs_.size());
  }

  void closure_scan() {
    for (auto it = colls_.begin(); it != colls_.end();) {
      CollInst& inst = it->second;
      if (!inst.closed && read_low_ > inst.last_ts + opts_.horizon) inst.closed = true;
      if (inst.closed && instance_done(inst)) {
        release_instance(inst);
        it = colls_.erase(it);
      } else {
        ++it;
      }
    }
  }

  static bool instance_done(const CollInst& inst) {
    return inst.ends_processed == inst.ends_registered &&
           inst.begins.size() == inst.begins_registered;
  }

  static bool instance_partial(const CollInst& inst) {
    return inst.begins_registered == 0 || inst.begins_registered != inst.ends_registered;
  }

  void release_instance(const CollInst& inst) {
    for (const BeginRec& b : inst.begins) hold_release(b.rank, b.seq);
  }

  /// Safety valve for malformed inputs: whatever pairing state survived the
  /// full drain can constrain nothing anymore, so free its holds.
  void release_leftovers() {
    for (auto& [id, inst] : colls_) release_instance(inst);
    colls_.clear();
  }

  // -- processing -------------------------------------------------------------

  bool all_done() const {
    for (const RankState& rs : ranks_) {
      if (!rs.done()) return false;
    }
    return true;
  }

  void drain() {
    drained_something_ = false;
    bool progress = true;
    while (progress) {
      progress = false;
      for (Rank r = 0; r < index_.meta.ranks(); ++r) {
        RankState& rs = ranks_[static_cast<std::size_t>(r)];
        while (!rs.ahead.empty() && head_processable(r, rs.ahead.front())) {
          process_head(r, /*force=*/false);
          progress = true;
          drained_something_ = true;
        }
      }
    }
  }

  void force_one() {
    Rank pick = -1;
    Time lowest = kTimeInfinity;
    for (Rank r = 0; r < index_.meta.ranks(); ++r) {
      const RankState& rs = ranks_[static_cast<std::size_t>(r)];
      if (rs.ahead.empty()) continue;
      if (pick < 0 || rs.ahead.front().local_ts < lowest) {
        pick = r;
        lowest = rs.ahead.front().local_ts;
      }
    }
    CS_ENSURE(pick >= 0, "force_one called with nothing left to process");
    process_head(pick, /*force=*/true);
    ++stats_.forced;
  }

  bool head_processable(Rank r, const Event& e) {
    switch (e.type) {
      case EventType::Recv: {
        const MsgState* m = msgs_find(e.msg_id);
        if (m != nullptr && m->send_processed) return true;
        if (m != nullptr && m->send_registered) return false;  // send is coming
        return all_read_eof_ || read_low_ > e.local_ts + opts_.horizon;
      }
      case EventType::CollEnd: {
        auto it = colls_.find(e.coll_id);
        if (it == colls_.end()) return true;  // retired instance straggler
        const CollInst& inst = it->second;
        switch (flavor_of(inst.kind)) {
          case CollectiveFlavor::OneToN:
            if (r == inst.root) return true;  // root end takes no edges
            break;
          case CollectiveFlavor::NToOne:
            if (r != inst.root) return true;  // non-root ends take no edges
            if (inst.root_end_taken) return true;  // duplicate root end
            break;
          case CollectiveFlavor::NToN:
            break;
        }
        // Closure settles partiality and guarantees the begin set is
        // complete; all processed guarantees their forward values exist.
        return inst.closed && inst.begins.size() == inst.begins_registered;
      }
      default:
        return true;  // sends, begins, and local events never have incoming edges
    }
  }

  void process_head(Rank r, bool force) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const Event e = rs.ahead.front();
    rs.ahead.pop_front();

    // Forward amortization, exactly as clc_detail::forward_pass.
    const Time t = e.local_ts;
    Time cand = t;
    if (rs.has_prev) {
      const Duration dt = std::max(0.0, t - rs.prev_input);
      const Duration carried =
          std::max(0.0, (rs.prev_lc - rs.prev_input) - opts_.clc.forward_decay * dt);
      cand = std::max(t + carried, rs.prev_lc);
    }

    Time bound = -kTimeInfinity;
    Pending p;
    p.ts = t;
    CollInst* inst = nullptr;
    const MsgState* send = nullptr;
    switch (e.type) {
      case EventType::Recv: {
        MsgState* m = msgs_find(e.msg_id);
        if (m != nullptr && m->send_processed) {
          const Duration l_min = index_.meta.min_latency(m->send_rank, r);
          bound = m->send_lc + l_min;
          ++stats_.p2p_edges;
          send = m;
        } else if (m != nullptr) {
          // Going ahead without the edge: the matching send (seen or future)
          // must neither expect a cap nor hold its emission for one.
          m->recv_dropped = true;
        } else if (!all_read_eof_) {
          msgs_[e.msg_id].recv_dropped = true;
        }
        break;
      }
      case EventType::Send: {
        MsgState& m = msgs_[e.msg_id];
        m.send_registered = true;  // forced paths may reach here unregistered
        m.send_rank = r;
        m.send_ts = t;
        m.send_seq = rs.seq;
        p.is_send = true;
        p.id = e.msg_id;
        // The receive will cap this send's backward motion; hold until the
        // cap arrives (or the horizon proves no receive is coming).
        p.holds = (m.recv_registered || !all_read_eof_) && !m.recv_dropped ? 1 : 0;
        break;
      }
      case EventType::CollBegin: {
        auto it = colls_.find(e.coll_id);
        if (it != colls_.end()) {
          inst = &it->second;
          p.holds = 1;  // released when the instance's edges are all applied
          p.id = e.coll_id;
        }
        break;
      }
      case EventType::CollEnd: {
        auto it = colls_.find(e.coll_id);
        if (it != colls_.end()) {
          inst = &it->second;
          if (inst->closed && !force && !instance_partial(*inst)) {
            bound = std::max(bound, coll_end_bound(r, *inst));
          }
        }
        break;
      }
      default:
        break;
    }

    Time lc = cand;
    if (bound > cand) {
      lc = bound;
      p.jump = bound - cand;
      ++stats_.violations_repaired;
      stats_.max_jump = std::max(stats_.max_jump, p.jump);
      if (opts_.clc.backward_amortization &&
          p.jump / opts_.clc.backward_slope > opts_.backward_window) {
        ++stats_.ramp_clamped;
      }
    }
    p.lc = lc;

    // Post-lc bookkeeping: caps flow backward from this event onto the
    // sources of the edges just applied (cap = lc - l_min - margin, exactly
    // the in-memory backward_pass pre-computation).
    if (send != nullptr) {
      const Duration l_min = index_.meta.min_latency(send->send_rank, r);
      cap_apply(send->send_rank, send->send_seq, lc - l_min - kFpMargin);
      hold_release(send->send_rank, send->send_seq);
      msgs_erase(e.msg_id);
    }
    if (e.type == EventType::Send) {
      MsgState& m = msgs_[e.msg_id];
      m.send_lc = lc;
      m.send_processed = true;
    }
    if (e.type == EventType::CollBegin && inst != nullptr) {
      inst->begins.push_back({r, rs.seq, lc});
    }
    if (e.type == EventType::CollEnd && inst != nullptr) {
      if (inst->closed && !force && !instance_partial(*inst)) {
        coll_end_caps(r, *inst, lc);
      }
      ++inst->ends_processed;
      if (inst->closed && instance_done(*inst)) {
        release_instance(*inst);
        colls_.erase(e.coll_id);
      }
    }

    rs.prev_input = t;
    rs.prev_lc = lc;
    rs.has_prev = true;
    ++rs.seq;
    ++stats_.events;
    rs.pend.push_back(p);
    if (rs.pend.size() >= std::max(opts_.emit_batch, rs.sweep_trigger)) sweep_and_emit(r);
  }

  /// Max over the logical edges into a collective end, mirroring the edge set
  /// derive_logical_messages builds (first-match roots, partials excluded
  /// before this is called).
  Time coll_end_bound(Rank r, const CollInst& inst) {
    Time bound = -kTimeInfinity;
    switch (flavor_of(inst.kind)) {
      case CollectiveFlavor::OneToN: {
        const BeginRec* root = find_root_begin(inst);
        if (root != nullptr && r != inst.root) {
          bound = root->lc + index_.meta.min_latency(root->rank, r);
          ++stats_.logical_edges;
        }
        break;
      }
      case CollectiveFlavor::NToOne:
        for (const BeginRec& b : inst.begins) {
          if (b.rank == inst.root) continue;
          bound = std::max(bound, b.lc + index_.meta.min_latency(b.rank, r));
          ++stats_.logical_edges;
        }
        break;
      case CollectiveFlavor::NToN:
        for (const BeginRec& b : inst.begins) {
          if (b.rank == r) continue;
          bound = std::max(bound, b.lc + index_.meta.min_latency(b.rank, r));
          ++stats_.logical_edges;
        }
        break;
    }
    return bound;
  }

  void coll_end_caps(Rank r, CollInst& inst, Time lc) {
    switch (flavor_of(inst.kind)) {
      case CollectiveFlavor::OneToN: {
        const BeginRec* root = find_root_begin(inst);
        if (root != nullptr && r != inst.root) {
          cap_apply(root->rank, root->seq, lc - index_.meta.min_latency(root->rank, r) - kFpMargin);
        }
        break;
      }
      case CollectiveFlavor::NToOne:
        if (r != inst.root || inst.root_end_taken) break;
        inst.root_end_taken = true;
        for (const BeginRec& b : inst.begins) {
          if (b.rank == inst.root) continue;
          cap_apply(b.rank, b.seq, lc - index_.meta.min_latency(b.rank, r) - kFpMargin);
        }
        break;
      case CollectiveFlavor::NToN:
        for (const BeginRec& b : inst.begins) {
          if (b.rank == r) continue;
          cap_apply(b.rank, b.seq, lc - index_.meta.min_latency(b.rank, r) - kFpMargin);
        }
        break;
    }
  }

  static const BeginRec* find_root_begin(const CollInst& inst) {
    for (const BeginRec& b : inst.begins) {
      if (b.rank == inst.root) return &b;  // first match, like derive_logical_messages
    }
    return nullptr;
  }

  // NToOne edges all point at the *first* root end; a duplicate root end must
  // be edge-free, which coll_end_caps enforces via root_end_taken — but the
  // bound, too, must only be taken once.
  // (coll_end_bound is only reached for a root end when !root_end_taken,
  // because head_processable short-circuits duplicates to edge-free.)

  void cap_apply(Rank r, std::uint32_t seq, Time cap) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (seq < rs.front_seq) {
      // The target was already emitted.  Only out-of-ramp entries can be
      // emitted while their cap is still pending (in-ramp finality demands
      // holds == 0), and a cap on an out-of-ramp entry is a no-op in the
      // in-memory backward pass too — its value is the forward value either
      // way.  Safe to ignore.
      return;
    }
    Pending& p = rs.pend[seq - rs.front_seq];
    p.cap = std::min(p.cap, cap);
  }

  void hold_release(Rank r, std::uint32_t seq) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (seq < rs.front_seq) return;  // already emitted (cap was a no-op)
    Pending& p = rs.pend[seq - rs.front_seq];
    if (p.holds > 0) --p.holds;
  }

  // -- message table spill ----------------------------------------------------

  struct SpillRecord {
    std::int64_t id;
    Time send_ts;
    Time send_lc;
    std::int32_t send_rank;
    std::uint32_t send_seq;
  };

  void maybe_spill_msgs() {
    if (msgs_.size() <= opts_.max_outstanding_msgs) return;
    if (!msg_spill_.is_open()) {
      msg_spill_.open(msg_spill_path_, std::ios::binary | std::ios::in | std::ios::out |
                                           std::ios::trunc);
      if (!msg_spill_.good()) {
        throw TraceIoError(TraceIoErrorKind::Io,
                           "cannot open spill file for writing: " + msg_spill_path_);
      }
    }
    // Spill processed sends whose receive is both unseen and already beyond
    // the horizon: no receive can legitimately appear anymore, so the
    // backward hold is released and only the compact send record is kept on
    // disk in case a (contract-breaking) receive shows up after all.
    for (auto it = msgs_.begin(); it != msgs_.end();) {
      const MsgState& m = it->second;
      if (m.send_processed && !m.recv_registered && !m.recv_dropped &&
          read_low_ > m.send_ts + opts_.horizon) {
        hold_release(m.send_rank, m.send_seq);
        SpillRecord rec{it->first, m.send_ts, m.send_lc, m.send_rank, m.send_seq};
        msg_spill_.seekp(0, std::ios::end);
        const auto off = static_cast<std::uint64_t>(msg_spill_.tellp());
        msg_spill_.write(reinterpret_cast<const char*>(&rec), sizeof rec);
        if (!msg_spill_.good()) {
          throw TraceIoError(TraceIoErrorKind::Io, "spill write failed: " + msg_spill_path_);
        }
        spill_index_[it->first] = off;
        ++stats_.spilled_msgs;
        it = msgs_.erase(it);
      } else {
        ++it;
      }
    }
  }

  MsgState* msgs_find(std::int64_t id) {
    auto it = msgs_.find(id);
    if (it != msgs_.end()) return &it->second;
    auto sit = spill_index_.find(id);
    if (sit == spill_index_.end()) return nullptr;
    msg_spill_.seekg(static_cast<std::streamoff>(sit->second));
    SpillRecord rec;
    msg_spill_.read(reinterpret_cast<char*>(&rec), sizeof rec);
    if (!msg_spill_.good()) {
      throw TraceIoError(TraceIoErrorKind::Io, "spill read failed: " + msg_spill_path_);
    }
    spill_index_.erase(sit);
    MsgState m;
    m.send_ts = rec.send_ts;
    m.send_lc = rec.send_lc;
    m.send_rank = rec.send_rank;
    m.send_seq = rec.send_seq;
    m.send_registered = true;
    m.send_processed = true;
    return &msgs_.emplace(id, m).first->second;
  }

  void msgs_erase(std::int64_t id) {
    msgs_.erase(id);
    spill_index_.erase(id);
  }

  // -- backward amortization & emission ---------------------------------------

  /// Recomputes backward-amortized values over the retention deque (newest to
  /// oldest), decides which entries are *final* — provably equal to what the
  /// in-memory backward pass (with the window clamp) would produce no matter
  /// what is processed later — and emits the maximal final prefix.
  ///
  /// Finality rules (B = backward_window, prev_lc = newest forward value):
  ///   * jump events are final (the backward pass never moves them);
  ///   * an entry with lc < prev_lc - B is "B-safe": every future jump's
  ///     clamped ramp (window <= B) starts at >= prev_lc and cannot reach it;
  ///   * a B-safe entry outside every retained ramp keeps its forward value;
  ///   * a B-safe in-ramp entry is final once its caps can no longer change
  ///     (holds == 0) and its candidate value cannot be clamped by any
  ///     *future* successor: candidate <= succ_lb, a lower bound built from
  ///     final values (exact), non-final forward values (final >= forward),
  ///     and prev_lc for everything not yet processed — or the entire newer
  ///     suffix is final with the rank fully processed, making the successor
  ///     chain itself exact.
  void sweep_and_emit(Rank r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const std::size_t n = rs.pend.size();
    if (n == 0) return;
    CS_SPAN("clc.stream.sweep");

    rs.val.resize(n);
    rs.fin.resize(n);
    const bool rank_final = rs.done();

    if (!opts_.clc.backward_amortization) {
      for (std::size_t i = 0; i < n; ++i) {
        rs.val[i] = rs.pend[i].lc;
        rs.fin[i] = 1;
      }
    } else {
      const double slope = opts_.clc.backward_slope;
      const double B = opts_.backward_window;
      double succ_est = kTimeInfinity;
      double succ_lb = rank_final ? kTimeInfinity : rs.prev_lc;
      bool suffix_exact = rank_final;
      bool have_jump = false;
      double jump_at = 0.0;
      double jump_size = 0.0;
      double window = 0.0;
      for (std::size_t i = n; i-- > 0;) {
        Pending& p = rs.pend[i];
        // Horizon release of send holds: once the read frontier proves no
        // receive is coming, the cap is settled at +inf.
        if (p.holds > 0 && p.is_send) {
          const MsgState* m = msgs_find(p.id);
          if ((m == nullptr || !m->recv_registered || m->recv_dropped) &&
              read_low_ > p.ts + opts_.horizon) {
            p.holds = 0;
          }
        }

        if (p.jump > 0.0) {
          have_jump = true;
          jump_at = p.lc;
          jump_size = p.jump;
          window = std::min(jump_size / slope, B);
          rs.val[i] = p.lc;
          rs.fin[i] = 1;
          succ_est = std::min(succ_est, p.lc);
          succ_lb = std::min(succ_lb, p.lc);
          continue;
        }

        double v = p.lc;
        bool in_ramp = false;
        double uncapped = 0.0;  // candidate before the successor clamp
        if (have_jump) {
          const double dist = jump_at - p.lc;
          if (dist >= 0.0 && dist < window) {
            in_ramp = true;
            const double shift = jump_size * (1.0 - dist / window);
            uncapped = std::min(p.lc + shift, p.cap);
            v = std::max(std::min(uncapped, succ_est), p.lc);
          } else if (dist >= window) {
            have_jump = false;
          }
        }
        const bool b_safe = rank_final || p.lc < rs.prev_lc - B;
        bool final_entry;
        if (!in_ramp) {
          final_entry = b_safe;
        } else {
          final_entry =
              b_safe && p.holds == 0 && (uncapped <= succ_lb || suffix_exact);
        }
        rs.val[i] = v;
        rs.fin[i] = final_entry ? 1 : 0;
        suffix_exact = suffix_exact && final_entry;
        succ_est = std::min(succ_est, v);
        succ_lb = std::min(succ_lb, final_entry ? v : p.lc);
      }
    }

    std::size_t k = 0;
    while (k < n && rs.fin[k]) ++k;
    if (k > 0) {
      // Records are (corrected_ts, jump) pairs: the jump rides along so the
      // merge pass can fold total_jump in global (rank-major) order, giving
      // the exact same floating-point accumulation as finalize_stats.
      emit_buf_.resize(2 * k);
      for (std::size_t i = 0; i < k; ++i) {
        emit_buf_[2 * i] = rs.val[i];
        emit_buf_[2 * i + 1] = rs.pend[i].jump;
      }
      ts_spill_.seekp(static_cast<std::streamoff>((rs.base + rs.emitted) * 16));
      ts_spill_.write(reinterpret_cast<const char*>(emit_buf_.data()),
                      static_cast<std::streamsize>(k * 16));
      if (!ts_spill_.good()) {
        throw TraceIoError(TraceIoErrorKind::Io, "spill write failed: " + ts_spill_path_);
      }
      rs.pend.erase(rs.pend.begin(), rs.pend.begin() + static_cast<std::ptrdiff_t>(k));
      rs.front_seq += static_cast<std::uint32_t>(k);
      rs.emitted += k;
      resident_ -= k;
      rs.sweep_trigger = rs.pend.size() + opts_.emit_batch;
    } else {
      // Nothing was emittable: back off so a long-blocked window does not
      // degenerate into a re-sweep per appended event.
      rs.sweep_trigger = rs.pend.size() * 2 + opts_.emit_batch;
    }
  }

  // -- output merge -----------------------------------------------------------

  /// Second pass over the input: re-reads every chunk in file order,
  /// substitutes the corrected timestamps from the side file, and streams the
  /// result through TraceWriter into out_path + ".tmp", renamed into place
  /// only after finish() sealed the footer — a crash mid-merge leaves no
  /// half-written trace behind under the output name.
  void merge_output(std::istream& raw_in) {
    CS_SPAN("clc.stream.merge");
    ts_spill_.flush();
    ts_spill_.seekg(0);

    const std::string tmp_path = out_path_ + ".tmp";
    std::ofstream outf(tmp_path, std::ios::binary | std::ios::trunc);
    if (!outf.good()) {
      throw TraceIoError(TraceIoErrorKind::Io,
                         "cannot open trace file for writing: " + tmp_path);
    }
    {
      const std::size_t epc =
          opts_.events_per_chunk > 0 ? opts_.events_per_chunk : kDefaultEventsPerChunk;
      TraceWriter writer(outf, index_.meta, epc);
      ChunkReader merge_reader(raw_in, index_);
      EventBlock block;
      std::vector<double> vals;
      // File order is rank-major (the writer enforces it), so this fold over
      // the per-event jumps reproduces finalize_stats' accumulation exactly.
      double total_jump = 0.0;
      for (const ChunkRef& ref : index_.chunks) {
        merge_reader.read(ref, block);
        vals.resize(2 * block.events.size());
        ts_spill_.read(reinterpret_cast<char*>(vals.data()),
                       static_cast<std::streamsize>(vals.size() * 8));
        if (static_cast<std::size_t>(ts_spill_.gcount()) != vals.size() * 8) {
          throw TraceIoError(TraceIoErrorKind::Io, "spill read failed: " + ts_spill_path_);
        }
        for (std::size_t i = 0; i < block.events.size(); ++i) {
          Event e = block.events[i];
          e.local_ts = vals[2 * i];
          if (vals[2 * i + 1] > 0.0) total_jump += vals[2 * i + 1];
          writer.append(block.rank, e);
        }
      }
      stats_.total_jump = total_jump;
      writer.finish();
    }
    outf.close();
    if (!outf.good()) {
      throw TraceIoError(TraceIoErrorKind::Io, "trace write failed: " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), out_path_.c_str()) != 0) {
      throw TraceIoError(TraceIoErrorKind::Io,
                         "cannot move corrected trace into place: " + out_path_);
    }
  }

  ChunkReader reader_;
  TraceIndex index_;
  StreamClcOptions opts_;
  std::string out_path_;
  std::string ts_spill_path_;
  std::string msg_spill_path_;
  std::fstream ts_spill_;
  std::fstream msg_spill_;
  std::vector<RankState> ranks_;
  std::unordered_map<std::int64_t, MsgState> msgs_;
  std::unordered_map<std::int64_t, std::uint64_t> spill_index_;
  std::unordered_map<std::int64_t, CollInst> colls_;
  EventBlock block_;
  std::vector<double> emit_buf_;
  StreamClcStats stats_;
  Time read_low_ = kTimeInfinity;
  bool all_read_eof_ = false;
  bool drained_something_ = false;
  std::size_t resident_ = 0;
};

}  // namespace

StreamClcStats clc_stream_file(const std::string& in_path, const std::string& out_path,
                               const StreamClcOptions& options) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in.good()) {
    throw TraceIoError(TraceIoErrorKind::Io, "cannot open trace file for reading: " + in_path);
  }
  // One sequential validation pass: any input defect — bad CRC, missing
  // footer, reordered chunks — throws here, before any output exists.
  TraceIndex index = index_trace_v2(in);
  StreamEngine engine(in, std::move(index), out_path, options);
  return engine.run(in);
}

}  // namespace chronosync
