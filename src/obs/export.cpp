#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "benchkit/json.hpp"
#include "benchkit/metrics.hpp"
#include "common/expect.hpp"

namespace chronosync::obs {

namespace {

// %.17g with integral values printed without a decimal point — the same
// contract as JsonValue::dump(), so parse(write(x)) reproduces x exactly.
void put_number(std::string& out, double v) {
  char buf[32];
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

// JSON has no literal for non-finite numbers; emit null so a reader sees a
// typed schema violation instead of silently mangled text.
void put_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  put_number(out, v);
}

// Prometheus names allow [a-zA-Z_:][a-zA-Z0-9_:]*; everything else (the
// registry's dots in particular) becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
                    (!out.empty() && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) return "_";
  return out;
}

void put_prom_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    put_number(out, v);
  }
}

template <class Writer>
void write_file_or_throw(const std::string& path, Writer&& writer) {
  std::ofstream out(path, std::ios::trunc);
  CS_REQUIRE(out.good(), "cannot open metrics output file '" + path + "'");
  writer(out);
  out.flush();
  CS_REQUIRE(out.good(), "writing metrics output file '" + path + "' failed");
}

}  // namespace

void write_metrics_json(std::ostream& out, const std::string& suite, Level level) {
  const auto metrics = metrics_snapshot();
  std::string buf;
  buf.reserve(64 + metrics.size() * 48);
  buf += "{\"schema\":";
  buf += benchkit::json_escape(kMetricsSchema);
  buf += ",\"suite\":";
  buf += benchkit::json_escape(suite);
  buf += ",\"obs_level\":";
  buf += benchkit::json_escape(to_string(level));
  buf += ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) buf += ',';
    first = false;
    buf += benchkit::json_escape(name);
    buf += ':';
    put_json_number(buf, value);
  }
  buf += "}}\n";
  out << buf;
}

void write_metrics_json_file(const std::string& path, const std::string& suite, Level level) {
  write_file_or_throw(path,
                      [&](std::ostream& out) { write_metrics_json(out, suite, level); });
}

void write_metrics_prometheus(std::ostream& out) {
  const RegistryDump dump = dump_registry();
  std::string buf;

  for (const auto& [name, value] : dump.counters) {
    const std::string p = prom_name(name);
    buf += "# TYPE " + p + " counter\n" + p + " ";
    put_number(buf, static_cast<double>(value));
    buf += '\n';
  }
  for (const auto& [name, value] : dump.gauges) {
    const std::string p = prom_name(name);
    buf += "# TYPE " + p + " gauge\n" + p + " ";
    put_prom_value(buf, value);
    buf += '\n';
  }
  for (const auto& h : dump.histograms) {
    const std::string p = prom_name(h.name);
    buf += "# TYPE " + p + " gauge\n";
    const std::pair<const char*, double> fields[] = {
        {"count", static_cast<double>(h.count)}, {"mean", h.mean}, {"min", h.min}, {"max", h.max}};
    for (const auto& [field, value] : fields) {
      buf += p + "{stat=\"" + field + "\"} ";
      put_prom_value(buf, value);
      buf += '\n';
    }
  }
  for (const auto& q : dump.quantiles) {
    const std::string p = prom_name(q.name);
    buf += "# TYPE " + p + " gauge\n";
    const std::pair<const char*, double> qs[] = {{"0.5", q.snap.quantile(0.50)},
                                                 {"0.9", q.snap.quantile(0.90)},
                                                 {"0.99", q.snap.quantile(0.99)},
                                                 {"0.999", q.snap.quantile(0.999)}};
    for (const auto& [label, value] : qs) {
      buf += p + "{quantile=\"" + label + "\"} ";
      put_prom_value(buf, value);
      buf += '\n';
    }
    buf += p + "_count ";
    put_number(buf, static_cast<double>(q.snap.count));
    buf += '\n';
  }
  out << buf;
}

void write_metrics_prometheus_file(const std::string& path) {
  write_file_or_throw(path, [](std::ostream& out) { write_metrics_prometheus(out); });
}

void write_metrics_file(const std::string& path, const std::string& suite, Level level) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".prom" || ext == ".txt") {
    write_metrics_prometheus_file(path);
  } else {
    write_metrics_json_file(path, suite, level);
  }
}

std::vector<std::pair<std::string, double>> read_metrics_json(const std::string& text) {
  benchkit::JsonValue doc;
  try {
    doc = benchkit::JsonValue::parse(text);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("metrics snapshot is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw std::invalid_argument("metrics snapshot is not a JSON object");
  const benchkit::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string())
    throw std::invalid_argument("metrics snapshot is missing its \"schema\" marker");
  if (schema->as_string() != kMetricsSchema)
    throw std::invalid_argument("metrics snapshot has schema '" + schema->as_string() +
                                "' (expected '" + kMetricsSchema + "')");
  const benchkit::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object())
    throw std::invalid_argument("metrics snapshot is missing its \"metrics\" object");

  std::vector<std::pair<std::string, double>> out;
  out.reserve(metrics->members().size());
  for (const auto& [name, value] : metrics->members()) {
    if (!value.is_number())
      throw std::invalid_argument("metric '" + name + "' is not a number");
    out.emplace_back(name, value.as_number());
  }
  return out;
}

ResourceSampler::ResourceSampler(std::chrono::milliseconds period) {
  if (period < std::chrono::milliseconds(1)) period = std::chrono::milliseconds(1);
  worker_ = std::thread([this, period] {
    Gauge& rss = gauge("process.rss_bytes");
    Gauge& peak = gauge("process.peak_rss_bytes");
    Gauge& cpu_user = gauge("process.cpu_user_s");
    Gauge& cpu_sys = gauge("process.cpu_sys_s");
    Counter& ticks = counter("obs.sampler_ticks");
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      lock.unlock();
      const benchkit::ResourceUsage u = benchkit::sample_resource_usage();
      rss.set(static_cast<double>(u.current_rss_bytes));
      peak.set(static_cast<double>(u.peak_rss_bytes));
      cpu_user.set(static_cast<double>(u.cpu_user_ns) * 1e-9);
      cpu_sys.set(static_cast<double>(u.cpu_sys_ns) * 1e-9);
      ticks.add(1);
      lock.lock();
      if (cv_.wait_for(lock, period, [this] { return stopping_; })) return;
    }
  });
}

void ResourceSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

ResourceSampler::~ResourceSampler() { stop(); }

}  // namespace chronosync::obs
