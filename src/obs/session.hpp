// CLI/environment glue shared by the bench and tool binaries: one ObsSession
// per process parses the observability options, sets the global level, and
// writes the requested outputs at the end of the run.
//
// Options (all optional):
//   --obs-level {off,metrics,trace}   explicit level; unknown values throw
//   --trace-out <file>                Chrome trace JSON; implies `trace`
//                                     when --obs-level is absent
//   --metrics-out <file>              benchkit JSON-lines metrics snapshot;
//                                     implies at least `metrics`
//   CHRONOSYNC_OBS={off,metrics,trace}  fallback when --obs-level is absent
//                                       (outputs still imply their level)
#pragma once

#include <string>

#include "common/cli.hpp"
#include "obs/obs.hpp"

namespace chronosync::obs {

class ObsSession {
 public:
  /// Parses the options above and calls obs::set_level().  `suite` names the
  /// metrics records written by finish() (conventionally the binary name).
  ObsSession(const Cli& cli, std::string suite);

  /// Writes --trace-out and --metrics-out if requested; idempotent, so an
  /// explicit call (preferred: it propagates I/O errors) makes the
  /// destructor a no-op.
  void finish();

  /// finish() swallowing exceptions (logged), for abnormal exits.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  Level level() const { return level_; }
  const std::string& trace_out() const { return trace_out_; }
  const std::string& metrics_out() const { return metrics_out_; }

 private:
  std::string suite_;
  std::string trace_out_;
  std::string metrics_out_;
  Level level_ = Level::Off;
  bool finished_ = false;
};

}  // namespace chronosync::obs
