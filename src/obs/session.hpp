// CLI/environment glue shared by the bench and tool binaries: one ObsSession
// per process parses the observability options, sets the global level, and
// writes the requested outputs at the end of the run.
//
// Options (all optional):
//   --obs-level {off,metrics,trace}   explicit level; unknown values throw
//   --trace-out <file>                Chrome trace JSON; implies `trace`
//                                     when --obs-level is absent
//   --metrics-out <file>              metrics snapshot (chronosync-metrics-v1
//                                     JSON, or Prometheus text when the file
//                                     ends in .prom/.txt); implies at least
//                                     `metrics`
//   --obs-sample-ms <n>               background RSS/CPU sampler period; runs
//                                     only when the level is at least
//                                     `metrics` (n must be positive)
//   CHRONOSYNC_OBS={off,metrics,trace}  fallback when --obs-level is absent
//                                       (outputs still imply their level)
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/cli.hpp"
#include "obs/obs.hpp"

namespace chronosync::obs {

class ResourceSampler;

class ObsSession {
 public:
  /// Parses the options above and calls obs::set_level().  `suite` names the
  /// metrics records written by finish() (conventionally the binary name).
  ObsSession(const Cli& cli, std::string suite);

  /// Stops the sampler and writes --trace-out and --metrics-out if still
  /// owned (see claim_outputs); idempotent, so an explicit call (preferred:
  /// it propagates I/O errors) makes the destructor a no-op.
  void finish();

  /// finish() swallowing exceptions (logged), for abnormal exits.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Transfers ownership of the requested output paths to the caller and
  /// clears them here, so finish() writes nothing.  Battery mode uses this to
  /// emit one artifact pair per scenario (derived from the claimed paths)
  /// instead of a single cumulative artifact at exit.
  std::pair<std::string, std::string> claim_outputs();

  /// Writes the trace and/or metrics artifacts for the current registry/ring
  /// state to the given paths (either may be empty to skip).  `suite` tags
  /// the metrics document; used by battery mode between scenarios.
  void write_artifacts(const std::string& trace_path, const std::string& metrics_path) const;

  Level level() const { return level_; }
  const std::string& trace_out() const { return trace_out_; }
  const std::string& metrics_out() const { return metrics_out_; }

 private:
  std::string suite_;
  std::string trace_out_;
  std::string metrics_out_;
  Level level_ = Level::Off;
  bool finished_ = false;
  std::unique_ptr<ResourceSampler> sampler_;
};

}  // namespace chronosync::obs
