#include "obs/session.hpp"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {

namespace {

Level resolve_level(const Cli& cli, const std::string& trace_out,
                    const std::string& metrics_out) {
  std::string text = cli.get("obs-level", "");
  if (text.empty()) {
    if (const char* env = std::getenv("CHRONOSYNC_OBS")) text = env;
  }
  if (!text.empty()) {
    Level parsed = Level::Off;
    CS_REQUIRE(parse_level(text, parsed),
               "invalid observability level '" + text + "' (expected off, metrics, or trace)");
    return parsed;
  }
  // No explicit level: the requested outputs imply the level they need.
  if (!trace_out.empty()) return Level::Trace;
  if (!metrics_out.empty()) return Level::Metrics;
  return Level::Off;
}

}  // namespace

ObsSession::ObsSession(const Cli& cli, std::string suite)
    : suite_(std::move(suite)),
      trace_out_(cli.get("trace-out", "")),
      metrics_out_(cli.get("metrics-out", "")) {
  level_ = resolve_level(cli, trace_out_, metrics_out_);
  set_level(level_);

  const std::int64_t sample_ms = cli.get_int("obs-sample-ms", 0);
  CS_REQUIRE(sample_ms >= 0, "invalid --obs-sample-ms " + std::to_string(sample_ms) +
                                 " (expected a positive period in milliseconds)");
  if (sample_ms > 0 && level_ >= Level::Metrics) {
    sampler_ = std::make_unique<ResourceSampler>(std::chrono::milliseconds(sample_ms));
  }
}

std::pair<std::string, std::string> ObsSession::claim_outputs() {
  return {std::exchange(trace_out_, std::string()), std::exchange(metrics_out_, std::string())};
}

void ObsSession::write_artifacts(const std::string& trace_path,
                                 const std::string& metrics_path) const {
  if (!trace_path.empty()) {
    write_chrome_trace_file(trace_path);
    const TraceStats stats = trace_stats();
    CS_LOG_INFO << "obs: wrote " << trace_path << " (" << stats.spans << " spans, "
                << stats.counter_samples << " counter samples, " << stats.dropped
                << " dropped, " << stats.threads << " threads)";
  }
  if (!metrics_path.empty()) {
    write_metrics_file(metrics_path, suite_, level_);
    CS_LOG_INFO << "obs: wrote " << metrics_path;
  }
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  sampler_.reset();  // joins the sampler thread; its last tick lands first
  write_artifacts(trace_out_, metrics_out_);
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (const std::exception& e) {
    CS_LOG_ERROR << "obs: flush failed: " << e.what();
  }
}

}  // namespace chronosync::obs
