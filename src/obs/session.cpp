#include "obs/session.hpp"

#include <cstdlib>
#include <ctime>
#include <utility>

#include "benchkit/metrics.hpp"
#include "benchkit/reporter.hpp"
#include "benchkit/runner.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {

namespace {

Level resolve_level(const Cli& cli, const std::string& trace_out,
                    const std::string& metrics_out) {
  std::string text = cli.get("obs-level", "");
  if (text.empty()) {
    if (const char* env = std::getenv("CHRONOSYNC_OBS")) text = env;
  }
  if (!text.empty()) {
    Level parsed = Level::Off;
    CS_REQUIRE(parse_level(text, parsed),
               "invalid observability level '" + text + "' (expected off, metrics, or trace)");
    return parsed;
  }
  // No explicit level: the requested outputs imply the level they need.
  if (!trace_out.empty()) return Level::Trace;
  if (!metrics_out.empty()) return Level::Metrics;
  return Level::Off;
}

}  // namespace

ObsSession::ObsSession(const Cli& cli, std::string suite)
    : suite_(std::move(suite)),
      trace_out_(cli.get("trace-out", "")),
      metrics_out_(cli.get("metrics-out", "")) {
  level_ = resolve_level(cli, trace_out_, metrics_out_);
  set_level(level_);
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;

  if (!trace_out_.empty()) {
    write_chrome_trace_file(trace_out_);
    const TraceStats stats = trace_stats();
    CS_LOG_INFO << "obs: wrote " << trace_out_ << " (" << stats.spans << " spans, "
                << stats.counter_samples << " counter samples, " << stats.dropped
                << " dropped, " << stats.threads << " threads)";
  }

  if (!metrics_out_.empty()) {
    benchkit::BenchRecord record;
    record.suite = suite_;
    record.name = "obs_metrics";
    record.kind = "metric";
    record.config = {{"obs_level", to_string(level_)}};
    record.metrics = metrics_snapshot();
    record.peak_rss_bytes =
        static_cast<std::int64_t>(benchkit::sample_resource_usage().peak_rss_bytes);
    record.git_sha = benchkit::Harness::git_sha();
    record.timestamp = static_cast<std::int64_t>(std::time(nullptr));
    benchkit::JsonReporter(metrics_out_).append(record);
    CS_LOG_INFO << "obs: wrote " << metrics_out_ << " (" << record.metrics.size()
                << " metrics)";
  }
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (const std::exception& e) {
    CS_LOG_ERROR << "obs: flush failed: " << e.what();
  }
}

}  // namespace chronosync::obs
