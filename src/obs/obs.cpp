#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "benchkit/json.hpp"
#include "common/expect.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::Off)};
}  // namespace detail

namespace {

constexpr std::uint8_t kKindSpan = 0;
constexpr std::uint8_t kKindCounter = 1;

struct Record {
  const char* name;
  std::uint64_t t0;  // span begin / counter sample timestamp
  std::uint64_t t1;  // span end (spans only)
  double value;      // counter value (counters only)
  std::uint8_t kind;
};

// One per instrumented thread.  The owner thread is the only writer of
// `ring`; `count` is published with release stores so a flush on another
// thread reads a consistent prefix (the intended protocol is still to flush
// at quiesce points).  Overflow drops the *newest* record and counts it:
// children finish (and record) before their parent span does, so dropping a
// late parent never orphans an already-recorded child — output stays
// well-nested, only truncated.
struct ThreadState {
  explicit ThreadState(int id, std::size_t capacity) : tid(id), ring(capacity) {}

  const int tid;
  std::vector<Record> ring;
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::string name;  // guarded by Registry::mu
};

struct ThreadRegistry {
  std::mutex mu;
  std::vector<ThreadState*> threads;  // owned; leaked with the registry
};

// Leaked so worker threads and atexit flushes can never observe teardown.
ThreadRegistry& registry() {
  static ThreadRegistry* r = new ThreadRegistry();
  return *r;
}

std::atomic<std::size_t> g_ring_capacity{1u << 15};

ThreadState* register_thread() {
  ThreadRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  auto* st = new ThreadState(static_cast<int>(reg.threads.size()),
                             g_ring_capacity.load(std::memory_order_relaxed));
  reg.threads.push_back(st);
  return st;
}

ThreadState& thread_state() {
  thread_local ThreadState* st = register_thread();
  return *st;
}

Counter& dropped_counter() {
  static Counter& c = counter("obs.dropped_spans");
  return c;
}

void push_record(const Record& rec) {
  ThreadState& st = thread_state();
  const std::uint32_t n = st.count.load(std::memory_order_relaxed);
  if (n >= st.ring.size()) {
    st.dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().add(1);
    return;
  }
  st.ring[n] = rec;
  st.count.store(n + 1, std::memory_order_release);
}

/// Microsecond timestamp field for the Chrome trace format.
void put_ts(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void put_value(std::string& out, double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

}  // namespace

void set_level(Level level) {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

const char* to_string(Level level) {
  switch (level) {
    case Level::Off: return "off";
    case Level::Metrics: return "metrics";
    case Level::Trace: return "trace";
  }
  return "?";
}

bool parse_level(const std::string& text, Level& out) {
  if (text == "off") {
    out = Level::Off;
  } else if (text == "metrics") {
    out = Level::Metrics;
  } else if (text == "trace") {
    out = Level::Trace;
  } else {
    return false;
  }
  return true;
}

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

void set_ring_capacity(std::size_t records) {
  g_ring_capacity.store(std::max<std::size_t>(records, 8), std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  // No-op with observability off: naming must not register (and allocate) a
  // ring for every short-lived worker thread of an uninstrumented run.
  if (!metrics_enabled()) return;
  ThreadState& st = thread_state();
  ThreadRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  st.name = name;
}

void counter_sample(const char* name, double value) {
  if (!trace_enabled()) return;
  push_record({name, now_ns(), 0, value, kKindCounter});
}

namespace detail {

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  push_record({name, t0_ns, t1_ns, 0.0, kKindSpan});
}

void record_counter(const char* name, std::uint64_t ts_ns, double value) {
  push_record({name, ts_ns, 0, value, kKindCounter});
}

}  // namespace detail

TraceStats trace_stats() {
  TraceStats stats;
  ThreadRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  stats.threads = static_cast<int>(reg.threads.size());
  for (const ThreadState* st : reg.threads) {
    const std::uint32_t n = st->count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (st->ring[i].kind == kKindSpan) {
        ++stats.spans;
      } else {
        ++stats.counter_samples;
      }
    }
    stats.dropped += st->dropped.load(std::memory_order_relaxed);
  }
  return stats;
}

void write_chrome_trace(std::ostream& out) {
  using benchkit::json_escape;

  ThreadRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);

  std::string buf;
  buf.reserve(1u << 16);
  buf += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"chronosync-obs\"},";
  buf += "\"traceEvents\":[\n";
  buf += "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"chronosync\"}}";

  auto flush_buf = [&] {
    if (buf.size() >= (1u << 16)) {
      out << buf;
      buf.clear();
    }
  };

  std::uint64_t max_ts = 0;
  std::uint64_t total_dropped = 0;
  std::vector<Record> spans;
  std::vector<Record> samples;

  for (const ThreadState* st : reg.threads) {
    const std::uint32_t n = st->count.load(std::memory_order_acquire);
    total_dropped += st->dropped.load(std::memory_order_relaxed);

    buf += ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":";
    put_value(buf, st->tid);
    buf += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    buf += json_escape(st->name.empty() ? "thread-" + std::to_string(st->tid) : st->name);
    buf += "}}";

    spans.clear();
    samples.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      const Record& r = st->ring[i];
      (r.kind == kKindSpan ? spans : samples).push_back(r);
      max_ts = std::max(max_ts, std::max(r.t0, r.t1));
    }

    // Span lifetimes on one thread nest properly (RAII scopes), so sorting
    // by (begin asc, end desc) and running a close-before-open stack yields
    // a well-formed B/E sequence with non-decreasing timestamps.
    std::sort(spans.begin(), spans.end(), [](const Record& a, const Record& b) {
      if (a.t0 != b.t0) return a.t0 < b.t0;
      return a.t1 > b.t1;
    });
    std::vector<const Record*> stack;
    auto emit_end = [&](const Record& r) {
      buf += ",\n{\"ph\":\"E\",\"pid\":0,\"tid\":";
      put_value(buf, st->tid);
      buf += ",\"ts\":";
      put_ts(buf, r.t1);
      buf += ",\"name\":";
      buf += json_escape(r.name);
      buf += "}";
      flush_buf();
    };
    for (const Record& r : spans) {
      while (!stack.empty() && stack.back()->t1 <= r.t0) {
        emit_end(*stack.back());
        stack.pop_back();
      }
      buf += ",\n{\"ph\":\"B\",\"pid\":0,\"tid\":";
      put_value(buf, st->tid);
      buf += ",\"ts\":";
      put_ts(buf, r.t0);
      buf += ",\"name\":";
      buf += json_escape(r.name);
      buf += "}";
      flush_buf();
      stack.push_back(&r);
    }
    while (!stack.empty()) {
      emit_end(*stack.back());
      stack.pop_back();
    }

    // Counter samples land on per-thread tracks via the series id.
    std::stable_sort(samples.begin(), samples.end(),
                     [](const Record& a, const Record& b) { return a.t0 < b.t0; });
    for (const Record& r : samples) {
      buf += ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":";
      put_value(buf, st->tid);
      buf += ",\"ts\":";
      put_ts(buf, r.t0);
      buf += ",\"name\":";
      buf += json_escape(r.name);
      buf += ",\"id\":";
      buf += json_escape("t" + std::to_string(st->tid));
      buf += ",\"args\":{\"value\":";
      put_value(buf, r.value);
      buf += "}}";
      flush_buf();
    }
  }

  buf += ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":";
  put_ts(buf, max_ts);
  buf += ",\"name\":\"obs.dropped_spans\",\"args\":{\"value\":";
  put_value(buf, static_cast<double>(total_dropped));
  buf += "}}\n]}\n";
  out << buf;
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  CS_REQUIRE(out.good(), "cannot open trace output file '" + path + "'");
  write_chrome_trace(out);
  out.flush();
  CS_REQUIRE(out.good(), "writing trace output file '" + path + "' failed");
}

void reset() {
  ThreadRegistry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (ThreadState* st : reg.threads) {
      st->count.store(0, std::memory_order_relaxed);
      st->dropped.store(0, std::memory_order_relaxed);
    }
  }
  reset_registry_values();
}

}  // namespace chronosync::obs
