// Sharded metrics registry: named counters, gauges, and histograms that are
// cheap to update from many threads and snapshot into a benchkit MetricList.
//
// Counters spread contended updates over a fixed set of cache-line-padded
// atomic shards (a thread picks its shard once, from a sequential thread id);
// gauges are a single atomic last-writer-wins cell; histograms reuse
// common/statistics.hpp bins, one Histogram + RunningStats per shard merged
// at snapshot time under per-shard mutexes.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime; look them up once (function-local static or member) and
// update through the handle on the hot path.  All updates are gated on
// obs::metrics_enabled() internally, so call sites may update
// unconditionally — with observability off the cost is one relaxed load.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/statistics.hpp"

namespace chronosync::obs {

inline constexpr std::size_t kMetricShards = 16;

/// Monotonically increasing sum, sharded per thread group.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::int64_t delta);
  void operator+=(std::int64_t delta) { add(delta); }

  std::int64_t value() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];

  friend void reset_registry_values();
};

/// Last-writer-wins scalar.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double value);
  double value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};

  friend void reset_registry_values();
};

/// Fixed-bin distribution (common/statistics.hpp bins) plus running
/// mean/min/max, sharded like Counter.
class Histo {
 public:
  Histo(std::string name, double lo, double hi, std::size_t bins);

  void add(double x);

  /// Merged view across shards.
  Histogram merged_bins() const;
  RunningStats merged_stats() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    Histogram bins;
    RunningStats stats;
    explicit Shard(double lo, double hi, std::size_t n) : bins(lo, hi, n) {}
  };
  std::string name_;
  double lo_, hi_;
  std::size_t nbins_;
  std::vector<std::unique_ptr<Shard>> shards_;

  friend void reset_registry_values();
};

/// Interned lookup; creates on first use.  Thread-safe; the returned
/// reference is valid for the process lifetime.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
/// lo/hi/bins are fixed by the first registration of `name`; later lookups
/// with different parameters get the existing histogram.
Histo& histogram(const std::string& name, double lo, double hi, std::size_t bins);

/// Flat snapshot of every registered metric, sorted by name:
///   counters as `<name>`, gauges as `<name>`, histograms as
///   `<name>.count/.mean/.min/.max`.
std::vector<std::pair<std::string, double>> metrics_snapshot();

/// Zeroes every registered metric's value (registrations survive).
void reset_registry_values();

}  // namespace chronosync::obs
