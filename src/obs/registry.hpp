// Sharded metrics registry: named counters, gauges, and histograms that are
// cheap to update from many threads and snapshot into a benchkit MetricList.
//
// Counters spread contended updates over a fixed set of cache-line-padded
// atomic shards (a thread picks its shard once, from a sequential thread id);
// gauges are a single atomic last-writer-wins cell; histograms reuse
// common/statistics.hpp bins, one Histogram + RunningStats per shard merged
// at snapshot time under per-shard mutexes.  QuantileHisto is the lock-free
// variant for latency distributions: log-bucketed atomic counts whose merged
// snapshot (and therefore every extracted quantile) is a pure function of the
// multiset of added values — deterministic under any concurrent interleaving.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime; look them up once (function-local static or member) and
// update through the handle on the hot path.  All updates are gated on
// obs::metrics_enabled() internally, so call sites may update
// unconditionally — with observability off the cost is one relaxed load.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/statistics.hpp"

namespace chronosync::obs {

inline constexpr std::size_t kMetricShards = 16;

/// Monotonically increasing sum, sharded per thread group.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::int64_t delta);
  void operator+=(std::int64_t delta) { add(delta); }

  std::int64_t value() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];

  friend void reset_registry_values();
};

/// Last-writer-wins scalar.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double value);
  double value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};

  friend void reset_registry_values();
};

/// Fixed-bin distribution (common/statistics.hpp bins) plus running
/// mean/min/max, sharded like Counter.
class Histo {
 public:
  Histo(std::string name, double lo, double hi, std::size_t bins);

  void add(double x);

  /// Merged view across shards.
  Histogram merged_bins() const;
  RunningStats merged_stats() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    Histogram bins;
    RunningStats stats;
    explicit Shard(double lo, double hi, std::size_t n) : bins(lo, hi, n) {}
  };
  std::string name_;
  double lo_, hi_;
  std::size_t nbins_;
  std::vector<std::unique_ptr<Shard>> shards_;

  friend void reset_registry_values();
};

/// Log-bucketed quantile layout shared by QuantileHisto and its snapshots:
/// each power-of-two octave in [2^kQuantileMinExp, 2^kQuantileMaxExp) is
/// split into kQuantileSubBuckets linear-in-mantissa sub-buckets (HdrHistogram
/// style), covering sub-picoseconds to months when the unit is seconds.
/// Values below the range (including zero and negatives) fall into a
/// dedicated underflow bucket, values above are clamped into the top bucket,
/// and NaN is tallied separately.  The widest bucket spans a ratio of 17/16,
/// so a geometric-midpoint estimate has worst-case relative error
/// sqrt(17/16) - 1, about 3.1%.
inline constexpr int kQuantileSubBuckets = 16;
inline constexpr int kQuantileMinExp = -40;
inline constexpr int kQuantileMaxExp = 24;
inline constexpr std::size_t kQuantileBuckets =
    static_cast<std::size_t>(kQuantileMaxExp - kQuantileMinExp) * kQuantileSubBuckets;

/// Merged, immutable view of a QuantileHisto: integer bucket counts plus
/// exact min/max.  Because the counts are integers, the snapshot — and every
/// quantile read from it — depends only on the multiset of added values,
/// never on thread interleaving or shard assignment.
struct QuantileSnapshot {
  std::uint64_t count = 0;      ///< finite samples (underflow included)
  std::uint64_t underflow = 0;  ///< samples below the bucketed range (<= 0 too)
  std::uint64_t invalid = 0;    ///< NaN samples; never in count or a bucket
  double min = 0.0;             ///< exact smallest finite sample (0 when empty)
  double max = 0.0;             ///< exact largest finite sample (0 when empty)
  std::vector<std::uint64_t> buckets;  ///< kQuantileBuckets merged counts

  bool empty() const { return count == 0; }
  /// Quantile by bucket walk: the value returned is the geometric midpoint
  /// of the bucket holding the ceil(q*count)-th smallest sample, clamped
  /// into [min, max]; q in [0, 1].  0 when empty.
  double quantile(double q) const;

  /// Bucket geometry, exposed for golden tests and exporters.
  static std::size_t bucket_index(double x);
  static double bucket_lo(std::size_t i);
  static double bucket_hi(std::size_t i);
  static double bucket_mid(std::size_t i);
};

/// Lock-free sharded quantile histogram: add() is one relaxed fetch_add on
/// the caller's shard (plus CAS min/max maintenance), snapshot() merges the
/// integer counts deterministically.  There is deliberately no mean/sum —
/// a floating-point accumulation would make the merge order-dependent.
class QuantileHisto {
 public:
  explicit QuantileHisto(std::string name);

  void add(double x);
  QuantileSnapshot snapshot() const;
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> underflow{0};
    std::atomic<std::uint64_t> invalid{0};
    Shard() : buckets(kQuantileBuckets) {}
  };
  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;

  friend void reset_registry_values();
};

/// Interned lookup; creates on first use.  Thread-safe; the returned
/// reference is valid for the process lifetime.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
/// lo/hi/bins are fixed by the first registration of `name`; later lookups
/// with different parameters get the existing histogram.
Histo& histogram(const std::string& name, double lo, double hi, std::size_t bins);
QuantileHisto& quantile_histogram(const std::string& name);

/// Typed snapshot of the whole registry (every metric family separately),
/// the substrate for the JSON/Prometheus exporters in obs/export.hpp.
struct RegistryDump {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct HistoDump {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0, min = 0.0, max = 0.0;
  };
  std::vector<HistoDump> histograms;
  struct QuantileDump {
    std::string name;
    QuantileSnapshot snap;
  };
  std::vector<QuantileDump> quantiles;
};
RegistryDump dump_registry();

/// Flat snapshot of every registered metric, sorted by name:
///   counters as `<name>`, gauges as `<name>`, histograms as
///   `<name>.count/.mean/.min/.max`, quantile histograms as
///   `<name>.count/.min/.max/.p50/.p90/.p99/.p999`.
std::vector<std::pair<std::string, double>> metrics_snapshot();

/// Zeroes every registered metric's value (registrations survive).
void reset_registry_values();

}  // namespace chronosync::obs
