#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/expect.hpp"
#include "obs/obs.hpp"

namespace chronosync::obs {

namespace {

/// min/max maintenance for QuantileHisto: a CAS loop whose result depends
/// only on the set of values offered, not the order they race in.
void atomic_fmin(std::atomic<std::uint64_t>& bits, double x) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (x < std::bit_cast<double>(cur)) {
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(x),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_fmax(std::atomic<std::uint64_t>& bits, double x) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (x > std::bit_cast<double>(cur)) {
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(x),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Sequential id per thread; shard index = id % kMetricShards.  Ids are
/// assigned lazily so short-lived helper threads don't exhaust anything.
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % kMetricShards;
}

struct RegistryStore {
  std::mutex mu;
  // std::map: stable addresses (node-based) + snapshot already name-sorted.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histo>> histograms;
  std::map<std::string, std::unique_ptr<QuantileHisto>> quantiles;
};

RegistryStore& store() {
  static RegistryStore* s = new RegistryStore();  // leaked: usable during exit
  return *s;
}

}  // namespace

void Counter::add(std::int64_t delta) {
  if (!metrics_enabled()) return;
  shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::value() const {
  std::int64_t sum = 0;
  for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Gauge::set(double value) {
  if (!metrics_enabled()) return;
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

Histo::Histo(std::string name, double lo, double hi, std::size_t bins)
    : name_(std::move(name)), lo_(lo), hi_(hi), nbins_(bins) {
  CS_REQUIRE(bins > 0 && hi > lo, "histogram needs hi > lo and at least one bin");
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(lo, hi, bins));
  }
}

void Histo::add(double x) {
  if (!metrics_enabled()) return;
  Shard& s = *shards_[shard_index()];
  const std::lock_guard<std::mutex> lock(s.mu);
  s.bins.add(x);
  s.stats.add(x);
}

Histogram Histo::merged_bins() const {
  Histogram out(lo_, hi_, nbins_);
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    for (std::size_t b = 0; b < nbins_; ++b) {
      out.add_bin_count(b, s->bins.bin_count(b));
    }
  }
  return out;
}

RunningStats Histo::merged_stats() const {
  RunningStats out;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    out.merge(s->stats);
  }
  return out;
}

std::size_t QuantileSnapshot::bucket_index(double x) {
  // frexp writes x = m * 2^e with m in [0.5, 1); the sub-bucket is the
  // mantissa scaled linearly across the octave.  Exact powers of two land on
  // sub-bucket 0 of their own octave, so bucket_lo is an inclusive bound.
  if (!std::isfinite(x)) return kQuantileBuckets - 1;  // +inf clamps to the top
  int e = 0;
  const double m = std::frexp(x, &e);
  const int octave = e - 1 - kQuantileMinExp;  // x in [2^(e-1), 2^e)
  if (octave < 0) return 0;
  if (octave >= kQuantileMaxExp - kQuantileMinExp) return kQuantileBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kQuantileSubBuckets);
  sub = std::min(sub, kQuantileSubBuckets - 1);
  return static_cast<std::size_t>(octave) * kQuantileSubBuckets +
         static_cast<std::size_t>(sub);
}

double QuantileSnapshot::bucket_lo(std::size_t i) {
  // Must mirror bucket_index exactly: sub-buckets split each octave linearly
  // in the mantissa, so sub-bucket s of octave o covers
  // [2^(minexp+o) * (1 + s/16), 2^(minexp+o) * (1 + (s+1)/16)).
  const std::size_t octave = i / kQuantileSubBuckets;
  const std::size_t sub = i % kQuantileSubBuckets;
  return std::exp2(kQuantileMinExp + static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub) / static_cast<double>(kQuantileSubBuckets));
}

double QuantileSnapshot::bucket_hi(std::size_t i) { return bucket_lo(i + 1); }

double QuantileSnapshot::bucket_mid(std::size_t i) {
  // Geometric midpoint: halves the worst-case relative error either way
  // (largest bucket ratio is 17/16, so the estimate is within ~3.1%).
  return std::sqrt(bucket_lo(i) * bucket_hi(i));
}

double QuantileSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  rank = std::max<std::uint64_t>(rank, 1);
  if (rank <= underflow) return min;
  std::uint64_t cum = underflow;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) return std::clamp(bucket_mid(i), min, max);
  }
  return max;  // unreachable when count is consistent with the buckets
}

QuantileHisto::QuantileHisto(std::string name)
    : name_(std::move(name)),
      min_bits_(std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity())) {
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void QuantileHisto::add(double x) {
  if (!metrics_enabled()) return;
  Shard& s = *shards_[shard_index()];
  if (std::isnan(x)) {
    s.invalid.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x < QuantileSnapshot::bucket_lo(0)) {
    s.underflow.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.buckets[QuantileSnapshot::bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  }
  atomic_fmin(min_bits_, x);
  atomic_fmax(max_bits_, x);
}

QuantileSnapshot QuantileHisto::snapshot() const {
  QuantileSnapshot snap;
  snap.buckets.assign(kQuantileBuckets, 0);
  for (const auto& s : shards_) {
    snap.underflow += s->underflow.load(std::memory_order_relaxed);
    snap.invalid += s->invalid.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kQuantileBuckets; ++i) {
      snap.buckets[i] += s->buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.count = snap.underflow;
  for (const std::uint64_t c : snap.buckets) snap.count += c;
  const double lo = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  const double hi = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  snap.min = snap.count > 0 ? lo : 0.0;
  snap.max = snap.count > 0 ? hi : 0.0;
  return snap;
}

Counter& counter(const std::string& name) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.counters[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& gauge(const std::string& name) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histo& histogram(const std::string& name, double lo, double hi, std::size_t bins) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.histograms[name];
  if (!slot) slot = std::make_unique<Histo>(name, lo, hi, bins);
  return *slot;
}

QuantileHisto& quantile_histogram(const std::string& name) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.quantiles[name];
  if (!slot) slot = std::make_unique<QuantileHisto>(name);
  return *slot;
}

RegistryDump dump_registry() {
  RegistryStore& s = store();
  RegistryDump dump;
  const std::lock_guard<std::mutex> lock(s.mu);
  dump.counters.reserve(s.counters.size());
  for (const auto& [name, c] : s.counters) dump.counters.emplace_back(name, c->value());
  dump.gauges.reserve(s.gauges.size());
  for (const auto& [name, g] : s.gauges) dump.gauges.emplace_back(name, g->value());
  dump.histograms.reserve(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    const RunningStats st = h->merged_stats();
    dump.histograms.push_back({name, st.count(), st.empty() ? 0.0 : st.mean(),
                               st.empty() ? 0.0 : st.min(), st.empty() ? 0.0 : st.max()});
  }
  dump.quantiles.reserve(s.quantiles.size());
  for (const auto& [name, q] : s.quantiles) dump.quantiles.push_back({name, q->snapshot()});
  return dump;
}

std::vector<std::pair<std::string, double>> metrics_snapshot() {
  const RegistryDump dump = dump_registry();
  std::vector<std::pair<std::string, double>> out;
  out.reserve(dump.counters.size() + dump.gauges.size() + 4 * dump.histograms.size() +
              7 * dump.quantiles.size());
  for (const auto& [name, v] : dump.counters) {
    out.emplace_back(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : dump.gauges) out.emplace_back(name, v);
  for (const auto& h : dump.histograms) {
    out.emplace_back(h.name + ".count", static_cast<double>(h.count));
    out.emplace_back(h.name + ".mean", h.mean);
    out.emplace_back(h.name + ".min", h.min);
    out.emplace_back(h.name + ".max", h.max);
  }
  for (const auto& q : dump.quantiles) {
    out.emplace_back(q.name + ".count", static_cast<double>(q.snap.count));
    out.emplace_back(q.name + ".min", q.snap.min);
    out.emplace_back(q.name + ".max", q.snap.max);
    out.emplace_back(q.name + ".p50", q.snap.quantile(0.50));
    out.emplace_back(q.name + ".p90", q.snap.quantile(0.90));
    out.emplace_back(q.name + ".p99", q.snap.quantile(0.99));
    out.emplace_back(q.name + ".p999", q.snap.quantile(0.999));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void reset_registry_values() {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (auto& [name, c] : s.counters) {
    for (auto& shard : c->shards_) shard.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : s.gauges) {
    g->bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
  for (auto& [name, h] : s.histograms) {
    for (auto& shard : h->shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->bins = Histogram(h->lo_, h->hi_, h->nbins_);
      shard->stats = RunningStats();
    }
  }
  for (auto& [name, q] : s.quantiles) {
    for (auto& shard : q->shards_) {
      shard->underflow.store(0, std::memory_order_relaxed);
      shard->invalid.store(0, std::memory_order_relaxed);
      for (auto& bucket : shard->buckets) bucket.store(0, std::memory_order_relaxed);
    }
    q->min_bits_.store(
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
    q->max_bits_.store(
        std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity()),
        std::memory_order_relaxed);
  }
}

}  // namespace chronosync::obs
