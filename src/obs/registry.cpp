#include "obs/registry.hpp"

#include <algorithm>
#include <map>

#include "common/expect.hpp"
#include "obs/obs.hpp"

namespace chronosync::obs {

namespace {

/// Sequential id per thread; shard index = id % kMetricShards.  Ids are
/// assigned lazily so short-lived helper threads don't exhaust anything.
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % kMetricShards;
}

struct RegistryStore {
  std::mutex mu;
  // std::map: stable addresses (node-based) + snapshot already name-sorted.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histo>> histograms;
};

RegistryStore& store() {
  static RegistryStore* s = new RegistryStore();  // leaked: usable during exit
  return *s;
}

}  // namespace

void Counter::add(std::int64_t delta) {
  if (!metrics_enabled()) return;
  shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::value() const {
  std::int64_t sum = 0;
  for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Gauge::set(double value) {
  if (!metrics_enabled()) return;
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

Histo::Histo(std::string name, double lo, double hi, std::size_t bins)
    : name_(std::move(name)), lo_(lo), hi_(hi), nbins_(bins) {
  CS_REQUIRE(bins > 0 && hi > lo, "histogram needs hi > lo and at least one bin");
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(lo, hi, bins));
  }
}

void Histo::add(double x) {
  if (!metrics_enabled()) return;
  Shard& s = *shards_[shard_index()];
  const std::lock_guard<std::mutex> lock(s.mu);
  s.bins.add(x);
  s.stats.add(x);
}

Histogram Histo::merged_bins() const {
  Histogram out(lo_, hi_, nbins_);
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    for (std::size_t b = 0; b < nbins_; ++b) {
      out.add_bin_count(b, s->bins.bin_count(b));
    }
  }
  return out;
}

RunningStats Histo::merged_stats() const {
  RunningStats out;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    out.merge(s->stats);
  }
  return out;
}

Counter& counter(const std::string& name) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.counters[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& gauge(const std::string& name) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histo& histogram(const std::string& name, double lo, double hi, std::size_t bins) {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto& slot = s.histograms[name];
  if (!slot) slot = std::make_unique<Histo>(name, lo, hi, bins);
  return *slot;
}

std::vector<std::pair<std::string, double>> metrics_snapshot() {
  RegistryStore& s = store();
  std::vector<std::pair<std::string, double>> out;
  const std::lock_guard<std::mutex> lock(s.mu);
  out.reserve(s.counters.size() + s.gauges.size() + 4 * s.histograms.size());
  for (const auto& [name, c] : s.counters) {
    out.emplace_back(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : s.gauges) out.emplace_back(name, g->value());
  for (const auto& [name, h] : s.histograms) {
    const RunningStats st = h->merged_stats();
    out.emplace_back(name + ".count", static_cast<double>(st.count()));
    out.emplace_back(name + ".mean", st.empty() ? 0.0 : st.mean());
    out.emplace_back(name + ".min", st.empty() ? 0.0 : st.min());
    out.emplace_back(name + ".max", st.empty() ? 0.0 : st.max());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void reset_registry_values() {
  RegistryStore& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (auto& [name, c] : s.counters) {
    for (auto& shard : c->shards_) shard.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : s.gauges) {
    g->bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
  for (auto& [name, h] : s.histograms) {
    for (auto& shard : h->shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->bins = Histogram(h->lo_, h->hi_, h->nbins_);
      shard->stats = RunningStats();
    }
  }
}

}  // namespace chronosync::obs
