// Metrics export: serializes one registry snapshot as a standalone JSON
// document (schema "chronosync-metrics-v1", validated by `chronoscope
// --metrics` and diffable by `chronoscope --diff`) or as Prometheus text
// exposition for scrape-style consumers, plus an optional background sampler
// that records process RSS/CPU gauges at a fixed cadence.
//
// The JSON form is the canonical artifact: values are printed with enough
// precision that parse(write(snapshot)) reproduces every value bit-for-bit,
// which the exporter round-trip test pins.
#pragma once

#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {

/// Schema marker carried by every JSON metrics snapshot.
inline constexpr const char* kMetricsSchema = "chronosync-metrics-v1";

/// One flat metrics document:
///   {"schema":"chronosync-metrics-v1","suite":"...","obs_level":"...",
///    "metrics":{"<name>":<number>,...}}
/// `metrics` carries exactly what registry metrics_snapshot() reports
/// (histogram/quantile sub-keys included), name-sorted.
void write_metrics_json(std::ostream& out, const std::string& suite, Level level);
void write_metrics_json_file(const std::string& path, const std::string& suite, Level level);

/// Prometheus text exposition (version 0.0.4): names sanitized to
/// [a-zA-Z0-9_:], counters as `# TYPE ... counter`, gauges and histogram
/// summary fields as gauges, quantile histograms as one gauge family with
/// `quantile` labels plus a `_count` line.
void write_metrics_prometheus(std::ostream& out);
void write_metrics_prometheus_file(const std::string& path);

/// Writes one snapshot to `path`, picking the format from the extension:
/// ".prom" / ".txt" get Prometheus text exposition, everything else the
/// canonical JSON document.
void write_metrics_file(const std::string& path, const std::string& suite, Level level);

/// Parses a JSON snapshot written by write_metrics_json back into its
/// name-sorted (name, value) pairs.  Throws std::invalid_argument on any
/// schema violation (wrong/missing schema marker, non-object metrics,
/// non-numeric values) — the validation `chronoscope --metrics` relies on.
std::vector<std::pair<std::string, double>> read_metrics_json(const std::string& text);

/// Background resource sampler: while running, sets the gauges
/// `process.rss_bytes`, `process.peak_rss_bytes`, `process.cpu_user_s`,
/// `process.cpu_sys_s` and bumps the counter `obs.sampler_ticks` once per
/// period (gauges no-op below Level::Metrics like every registry update).
/// stop() joins the thread; the destructor stops implicitly.
class ResourceSampler {
 public:
  explicit ResourceSampler(std::chrono::milliseconds period);
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void stop();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace chronosync::obs
