// In-process tracing: runtime-switchable observability levels, RAII spans
// recorded into per-thread lock-free ring buffers, and counter samples on the
// same timeline.  The recorded data flushes to Chrome trace-event JSON
// (chrome://tracing / Perfetto) via write_chrome_trace().
//
// Design constraints, in order:
//   1. Runtime-off must cost (almost) nothing: every entry point is gated on
//      one relaxed atomic load; CS_SPAN with tracing off is a load + branch.
//   2. Recording must never block or allocate on the hot path: each thread
//      owns a fixed-capacity ring of POD records; a full ring drops new
//      records and counts the drops (`obs.dropped_spans`) — output is never
//      corrupted, only truncated.
//   3. Flushing happens at quiesce points (after joins / at process end).
//      Record counts are published with release stores so a concurrent flush
//      reads a consistent prefix, but the intended protocol is: stop the
//      workers, then write the trace.
//
// Span and counter names must be string literals (or otherwise outlive the
// flush): the ring stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace chronosync::obs {

/// Observability level, ordered: Off < Metrics < Trace.
///   Off     - spans and counters compile in but do nothing.
///   Metrics - the sharded metrics registry accumulates; no timeline.
///   Trace   - metrics plus span/counter-sample recording for trace export.
enum class Level : int { Off = 0, Metrics = 1, Trace = 2 };

void set_level(Level level);
Level level();

const char* to_string(Level level);
/// Parses "off" / "metrics" / "trace"; returns false on anything else.
bool parse_level(const std::string& text, Level& out);

namespace detail {
extern std::atomic<int> g_level;
void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);
void record_counter(const char* name, std::uint64_t ts_ns, double value);
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_level.load(std::memory_order_relaxed) >= static_cast<int>(Level::Metrics);
}
inline bool trace_enabled() {
  return detail::g_level.load(std::memory_order_relaxed) >= static_cast<int>(Level::Trace);
}

/// Monotonic nanoseconds since process start (steady clock).
std::uint64_t now_ns();

/// Ring capacity (records per thread) for threads that register *after* the
/// call; threads that already recorded keep their ring.  Minimum 8.
void set_ring_capacity(std::size_t records);

/// Names the calling thread's track in the exported trace ("thread-N" when
/// never set).  No-op with observability off, so worker threads of an
/// uninstrumented run never register (or allocate) a ring.
void set_thread_name(const std::string& name);

/// Records a counter sample at the current timestamp on the calling thread's
/// counter track (Chrome 'C' event).  No-op unless trace_enabled().
void counter_sample(const char* name, double value);

/// RAII span: records [construction, destruction) on the calling thread when
/// tracing is enabled at construction time.
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::record_span(name_, t0_, now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
};

/// Aggregate statistics of the recorded trace data.
struct TraceStats {
  std::uint64_t spans = 0;
  std::uint64_t counter_samples = 0;
  std::uint64_t dropped = 0;  ///< records rejected by full rings
  int threads = 0;            ///< threads that registered a ring
};

TraceStats trace_stats();

/// Writes everything recorded so far as one Chrome trace-event JSON document:
/// process/thread metadata, one B/E pair per span (properly nested per
/// thread), 'C' events per counter sample, and a final `obs.dropped_spans`
/// counter.  Call at a quiesce point (instrumented threads joined).
void write_chrome_trace(std::ostream& out);
void write_chrome_trace_file(const std::string& path);

/// Clears all recorded spans/samples, drop counts, and registry metric
/// values (thread registrations survive).  Intended for tests; call only
/// while no instrumented thread is running.
void reset();

}  // namespace chronosync::obs

#define CS_OBS_CONCAT2(a, b) a##b
#define CS_OBS_CONCAT(a, b) CS_OBS_CONCAT2(a, b)

/// RAII scope span: CS_SPAN("clc.forward_pass");
#define CS_SPAN(name) ::chronosync::obs::Span CS_OBS_CONCAT(cs_obs_span_, __LINE__)(name)
