#include "ompsim/omp_bench.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/expect.hpp"

namespace chronosync {

namespace {

/// Binary-tree depth of thread i in wakeup/signal fan-out (master = 0).
int tree_level(int thread) {
  int level = 0;
  while (thread > 0) {
    thread = (thread - 1) / 2;
    ++level;
  }
  return level;
}

}  // namespace

Placement omp_thread_placement(const ClusterSpec& node, int threads) {
  CS_REQUIRE(threads >= 1 && threads <= node.cores_per_node(),
             "thread count exceeds the node");
  std::vector<CoreLocation> locs;
  locs.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    // Scatter across chips first, as OS load balancing does: with few
    // threads every thread sits on its own chip (own drifting ITC), which is
    // what exposes the Fig. 3 / Fig. 8 violations at low thread counts.
    locs.push_back({0, t % node.chips_per_node, t / node.chips_per_node});
  }
  return Placement(std::move(locs));
}

Duration omp_barrier_latency(const OmpBenchConfig& cfg, int threads) {
  return cfg.barrier_release_coeff * static_cast<double>(threads) *
         static_cast<double>(threads);
}

OmpBenchResult run_omp_benchmark(const OmpBenchConfig& cfg) {
  CS_REQUIRE(cfg.threads >= 1, "need at least one thread");
  CS_REQUIRE(cfg.regions >= 1, "need at least one region");

  const Placement threads_placement = omp_thread_placement(cfg.node, cfg.threads);
  const RngTree rng_root{cfg.seed};
  auto clocks = std::make_shared<ClockEnsemble>(threads_placement, cfg.timer,
                                                rng_root.child("clocks"));
  Rng noise = rng_root.stream("omp-noise");

  // The *process* occupies core 0; threads are identified per event.  The
  // domain minimums are the guaranteed shared-memory signalling latencies
  // (l_min for the OpenMP clock condition); they must not exceed the
  // smallest synchronization gap the runtime model can produce.
  Trace trace(Placement({{0, 0, 0}}),
              {0.01 * units::us, 0.02 * units::us, 1.0 * units::us}, cfg.timer.name);
  const std::int32_t region_id = trace.intern_region("parallel_for");

  auto jitter = [&] { return std::abs(noise.normal(0.0, cfg.sched_jitter)); };

  std::vector<Event> events;  // across all threads; sorted by true time below
  auto emit = [&](EventType type, ThreadId thread, Time true_t, std::int32_t instance) {
    Event e;
    e.type = type;
    e.thread = thread;
    e.true_ts = true_t;
    e.local_ts = clocks->clock(thread).read(true_t);
    e.omp_instance = instance;
    if (type == EventType::Enter || type == EventType::Exit) e.region = region_id;
    events.push_back(e);
  };

  const Duration join_cost = cfg.join_cost_coeff * static_cast<double>(cfg.threads) *
                             static_cast<double>(cfg.threads);
  const Duration release_cost = omp_barrier_latency(cfg, cfg.threads);

  Time t = 1.0 * units::ms;  // job start
  for (int k = 0; k < cfg.regions; ++k) {
    // Master forks; workers wake along a binary tree.
    const Time fork_t = t + jitter();
    emit(EventType::Fork, 0, fork_t, k);

    // Team startup grows with the thread count (runtime bookkeeping and
    // wakeup contention), like the other synchronization latencies.
    const Duration fork_base = cfg.fork_base_coeff * static_cast<double>(cfg.threads) *
                               static_cast<double>(cfg.threads);
    std::vector<Time> start(static_cast<std::size_t>(cfg.threads));
    std::vector<Time> barrier_enter(static_cast<std::size_t>(cfg.threads));
    for (int th = 0; th < cfg.threads; ++th) {
      start[static_cast<std::size_t>(th)] =
          fork_t + (th == 0 ? 0.0 : fork_base + cfg.fork_wake_per_level * tree_level(th)) +
          jitter();
      emit(EventType::Enter, th, start[static_cast<std::size_t>(th)], k);
    }

    // Chunk work, then arrival at the implicit barrier.
    Time last_arrival = -kTimeInfinity;
    for (int th = 0; th < cfg.threads; ++th) {
      const Duration work = std::max(
          0.0, noise.normal(cfg.work_mean, cfg.work_imbalance * cfg.work_mean));
      barrier_enter[static_cast<std::size_t>(th)] =
          start[static_cast<std::size_t>(th)] + work + jitter();
      emit(EventType::BarrierEnter, th, barrier_enter[static_cast<std::size_t>(th)], k);
      last_arrival = std::max(last_arrival, barrier_enter[static_cast<std::size_t>(th)]);
    }

    // Release once all arrived; the signal fans out along the tree.
    const Time release = last_arrival + release_cost;
    Time last_exit = -kTimeInfinity;
    for (int th = 0; th < cfg.threads; ++th) {
      const Time exit_t = release + cfg.exit_signal_per_level * tree_level(th) + jitter();
      emit(EventType::BarrierExit, th, exit_t, k);
      const Time region_end = exit_t + jitter();
      emit(EventType::Exit, th, region_end, k);
      last_exit = std::max(last_exit, region_end);
    }

    // Join on the master after the region is fully torn down.
    const Time join_t = last_exit + join_cost + jitter();
    emit(EventType::Join, 0, join_t, k);

    t = join_t + cfg.region_gap;
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.true_ts < b.true_ts; });
  trace.events(0) = std::move(events);

  return {std::move(trace), std::move(clocks)};
}

}  // namespace chronosync
