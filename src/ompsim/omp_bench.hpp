// OpenMP SMP-node simulation in the POMP event model.
//
// Reproduces the paper's Fig. 3 / Fig. 8 experiment: a loop whose body is a
// single parallel-for construct, executed by 4..16 threads on an SMP node
// whose chips carry individually-drifting, imperfectly-aligned timestamp
// counters.  Per region instance the runtime model is:
//
//   fork (master) -> tree wakeup of workers -> per-thread chunk work
//   -> implicit barrier (gather, release, tree signal) -> join (master)
//
// Synchronization latencies grow with the thread count, while the clock
// disagreement between cores does not — which is exactly why the paper finds
// *fewer* violations at higher thread counts.
//
// Threads of one process share a trace location; events carry thread ids.
#pragma once

#include "clockmodel/clock_ensemble.hpp"
#include "clockmodel/timer_spec.hpp"
#include "common/rng.hpp"
#include "topology/cluster.hpp"
#include "trace/trace.hpp"

namespace chronosync {

struct OmpBenchConfig {
  int threads = 4;
  int regions = 1000;            ///< loop iterations (one parallel-for each)
  Duration work_mean = 5 * units::us;   ///< per-thread chunk duration
  double work_imbalance = 0.10;  ///< relative spread of chunk durations

  // Runtime cost model.  Exponents > 1 make synchronization latency rise
  // faster than linearly with the thread count (cache-line contention),
  // producing Fig. 8's drop in violations at high thread counts.
  Duration fork_wake_per_level = 0.08 * units::us;  ///< tree wakeup per level
  Duration fork_base_coeff = 0.007 * units::us;     ///< team startup, * threads^2
  Duration barrier_release_coeff = 0.0035 * units::us;  ///< * threads^2
  Duration exit_signal_per_level = 0.03 * units::us;    ///< release fan-out
  Duration join_cost_coeff = 0.0035 * units::us;        ///< * threads^2
  Duration region_gap = 2 * units::us;   ///< serial time between regions
  Duration sched_jitter = 0.02 * units::us;  ///< per-event OS noise (true time)

  ClusterSpec node = clusters::itanium_smp_node();
  TimerSpec timer = timer_specs::itanium_tsc();
  std::uint64_t seed = 42;
};

struct OmpBenchResult {
  Trace trace;
  /// Clock ensemble used for the threads (thread i = ensemble rank i), kept
  /// for deviation inspection.
  std::shared_ptr<ClockEnsemble> thread_clocks;
};

/// Runs the benchmark and returns the POMP trace (single location, per-event
/// thread ids, omp_instance grouping).
OmpBenchResult run_omp_benchmark(const OmpBenchConfig& cfg);

/// The model's barrier completion latency for a given thread count.
Duration omp_barrier_latency(const OmpBenchConfig& cfg, int threads);

/// Maps threads onto the node's cores scattered across chips first
/// (thread i -> chip i % chips_per_node), mirroring OS load balancing.
Placement omp_thread_placement(const ClusterSpec& node, int threads);

}  // namespace chronosync
