#include "sync/interpolation.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "sync/offset_alignment.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

TEST(OffsetAlignment, ShiftsByMeasuredOffset) {
  OffsetAlignment align({0.0, 2.5, -1.0});
  EXPECT_DOUBLE_EQ(align.correct(0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(align.correct(1, 10.0), 12.5);
  EXPECT_DOUBLE_EQ(align.correct(2, 10.0), 9.0);
  EXPECT_THROW(align.correct(3, 0.0), std::invalid_argument);
}

TEST(OffsetAlignment, FromStoreUsesFirstSample) {
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(1, {5.0, 1.5, 1e-5});
  store.add(1, {50.0, 1.9, 1e-5});  // later sample must be ignored
  OffsetAlignment align = OffsetAlignment::from_store(store);
  EXPECT_DOUBLE_EQ(align.correct(1, 0.0), 1.5);
}

TEST(OffsetAlignment, FromStoreRequiresSamples) {
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  EXPECT_THROW(OffsetAlignment::from_store(store), std::invalid_argument);
}

TEST(LinearInterpolation, Eq3ExactAtMeasurementPoints) {
  // (w1,o1) = (10, 1.0), (w2,o2) = (110, 2.0)
  LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, {10.0, 1.0, 110.0, 2.0}});
  EXPECT_DOUBLE_EQ(interp.correct(1, 10.0), 11.0);    // w1 + o1
  EXPECT_DOUBLE_EQ(interp.correct(1, 110.0), 112.0);  // w2 + o2
}

TEST(LinearInterpolation, InterpolatesBetween) {
  LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, {0.0, 0.0, 100.0, 1.0}});
  // Offset grows linearly 0 -> 1 over [0, 100].
  EXPECT_DOUBLE_EQ(interp.correct(1, 50.0), 50.5);
}

TEST(LinearInterpolation, ExtrapolatesOutside) {
  LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, {0.0, 0.0, 100.0, 1.0}});
  EXPECT_DOUBLE_EQ(interp.correct(1, 200.0), 202.0);
  EXPECT_DOUBLE_EQ(interp.correct(1, -100.0), -101.0);
}

TEST(LinearInterpolation, RemovesConstantDriftExactly) {
  // Worker clock runs 10 ppm fast with 1 ms initial offset: two perfect
  // offset measurements let Eq. 3 invert the affine map exactly.
  const double drift = 10e-6;
  const double off = 1e-3;
  auto worker_local = [&](Time t) { return t + off + drift * t; };
  // Master == true time.  Offsets measured at local times w = worker_local(t).
  const Time t1 = 10.0, t2 = 3600.0;
  LinearInterpolation::RankParams p;
  p.w1 = worker_local(t1);
  p.o1 = t1 - worker_local(t1);
  p.w2 = worker_local(t2);
  p.o2 = t2 - worker_local(t2);
  LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, p});
  for (Time t : {100.0, 1000.0, 1800.0, 3000.0}) {
    EXPECT_NEAR(interp.correct(1, worker_local(t)), t, 1e-9);
  }
}

TEST(LinearInterpolation, RejectsDegenerateInterval) {
  EXPECT_THROW(LinearInterpolation({{5.0, 0.0, 5.0, 0.0}}), std::invalid_argument);
}

TEST(LinearInterpolation, FromStoreUsesFirstAndLast) {
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 1.0, 1e-5});
  store.add(1, {50.0, 1.6, 1e-5});  // middle sample ignored by the linear map
  store.add(1, {100.0, 2.0, 1e-5});
  LinearInterpolation interp = LinearInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.params(1).o1, 1.0);
  EXPECT_DOUBLE_EQ(interp.params(1).o2, 2.0);
  EXPECT_DOUBLE_EQ(interp.correct(1, 0.0), 1.0);
}

TEST(LinearInterpolation, FromStoreDegenerateIntervalFallsBackToOffset) {
  // Regression: when a rank's first and last probes share a worker_time
  // (e.g. an aborted run whose probes landed in one batch), Eq. 3's drift
  // term is undefined and from_store used to abort.  It now falls back to
  // pure offset alignment for that rank.
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {5.0, 1.5, 1e-5});
  store.add(1, {5.0, 1.9, 1e-5});  // same worker_time: zero-length interval
  LinearInterpolation interp = LinearInterpolation::from_store(store);
  // Pure offset: the first measured offset shifts every timestamp, with no
  // drift term regardless of how far the query is from the probe.
  EXPECT_DOUBLE_EQ(interp.correct(1, 5.0), 6.5);
  EXPECT_DOUBLE_EQ(interp.correct(1, 1000.0), 1001.5);
  // The healthy rank is untouched by the fallback.
  EXPECT_DOUBLE_EQ(interp.correct(0, 50.0), 50.0);
}

TEST(LinearInterpolation, FromStoreNeedsTwoSamples) {
  OffsetStore store(1);
  store.add(0, {0.0, 0.0, 0.0});
  EXPECT_THROW(LinearInterpolation::from_store(store), std::invalid_argument);
}

TEST(PiecewiseInterpolation, FollowsAllKnots) {
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 0.0, 0.0});
  store.add(1, {50.0, 1.0, 0.0});   // offset jumps to 1 by local 50
  store.add(1, {100.0, 1.0, 0.0});  // then stays
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interp.correct(1, 25.0), 25.5);   // halfway up the ramp
  EXPECT_DOUBLE_EQ(interp.correct(1, 75.0), 76.0);   // flat segment
  EXPECT_DOUBLE_EQ(interp.correct(1, 100.0), 101.0);
}

TEST(PiecewiseInterpolation, FromStoreDropsDuplicateWorkerTimes) {
  // Regression: a batched probe pair sharing one worker_time used to abort
  // from_store (PiecewiseLinear rejects non-increasing knots).  Duplicates
  // are dropped now; the first sample of each batch wins.
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 0.0, 0.0});
  store.add(1, {50.0, 1.0, 0.0});
  store.add(1, {50.0, 9.0, 0.0});  // duplicate worker_time: must be ignored
  store.add(1, {100.0, 1.0, 0.0});
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(1, 25.0), 25.5);
  EXPECT_DOUBLE_EQ(interp.correct(1, 75.0), 76.0);
  EXPECT_DOUBLE_EQ(interp.correct(1, 100.0), 101.0);
}

TEST(PiecewiseInterpolation, FromStoreDegenerateIntervalFallsBackToOffset) {
  // All of a rank's probes in one batch: mirrors the linear fallback — pure
  // offset alignment from the first sample, unit slope everywhere.
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {5.0, 1.5, 1e-5});
  store.add(1, {5.0, 1.9, 1e-5});
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(1, 5.0), 6.5);
  EXPECT_DOUBLE_EQ(interp.correct(1, 1000.0), 1001.5);
  EXPECT_DOUBLE_EQ(interp.correct(0, 50.0), 50.0);
}

TEST(PiecewiseInterpolation, BeatsLinearOnPiecewiseDrift) {
  // A clock with an abrupt drift change halfway (the NTP turning point of
  // Fig. 4): piecewise interpolation with a mid-run measurement reconstructs
  // it, the two-point linear map cannot.
  auto worker_local = [](Time t) {
    return t <= 500.0 ? t + 20e-6 * t : (500.0 + 20e-6 * 500.0) + (t - 500.0) * (1.0 - 30e-6);
  };
  OffsetStore store(2);
  for (Time t : {0.0, 1000.0}) store.add(0, {t, 0.0, 0.0});
  for (Time t : {0.0, 500.0, 1000.0}) {
    store.add(1, {worker_local(t), t - worker_local(t), 0.0});
  }
  LinearInterpolation lin = LinearInterpolation::from_store(store);
  PiecewiseInterpolation pw = PiecewiseInterpolation::from_store(store);
  double lin_err = 0.0, pw_err = 0.0;
  for (Time t = 50.0; t < 1000.0; t += 50.0) {
    lin_err = std::max(lin_err, std::abs(lin.correct(1, worker_local(t)) - t));
    pw_err = std::max(pw_err, std::abs(pw.correct(1, worker_local(t)) - t));
  }
  EXPECT_LT(pw_err, lin_err / 5.0);
}

TEST(OffsetAlignment, FromStoreSkipsPoisonedLeadingSample) {
  // Regression: a NaN first sample used to become the rank's offset verbatim,
  // poisoning every corrected timestamp.  The first *finite* sample wins now.
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(1, {5.0, std::numeric_limits<double>::quiet_NaN(), 1e-5});
  store.add(1, {6.0, 1.5, 1e-5});
  OffsetAlignment align = OffsetAlignment::from_store(store);
  EXPECT_DOUBLE_EQ(align.correct(1, 0.0), 1.5);
}

TEST(OffsetAlignment, FromStoreAllPoisonedFallsBackToIdentity) {
  OffsetStore store(1);
  store.add(0, {0.0, std::numeric_limits<double>::infinity(), 0.0});
  OffsetAlignment align = OffsetAlignment::from_store(store);
  EXPECT_DOUBLE_EQ(align.correct(0, 42.0), 42.0);
}

TEST(LinearInterpolation, FromStoreSkipsPoisonedSamples) {
  // Regression: a non-finite trailing sample used to land in (w2, o2) and
  // make every corrected timestamp NaN.  Poisoned samples are skipped; the
  // surviving finite first/last pair defines the Eq. 3 line.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 1.0, 1e-5});
  store.add(1, {50.0, nan, 1e-5});   // poisoned offset mid-record
  store.add(1, {100.0, 2.0, 1e-5});
  store.add(1, {inf, 9.0, 1e-5});    // poisoned worker_time at the tail
  LinearInterpolation interp = LinearInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.params(1).o1, 1.0);
  EXPECT_DOUBLE_EQ(interp.params(1).o2, 2.0);
  EXPECT_TRUE(std::isfinite(interp.correct(1, 5000.0)));
  EXPECT_DOUBLE_EQ(interp.correct(1, 0.0), 1.0);
}

TEST(LinearInterpolation, FromStoreAllPoisonedFallsBackToIdentity) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  OffsetStore store(1);
  store.add(0, {0.0, nan, 0.0});
  store.add(0, {1.0, nan, 0.0});
  LinearInterpolation interp = LinearInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(0, 42.0), 42.0);
}

TEST(PiecewiseInterpolation, FromStoreSkipsPoisonedSamples) {
  // Same poison shapes through the piecewise path: NaN/inf knots would make
  // whole segments non-finite.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 0.0, 0.0});
  store.add(1, {25.0, nan, 0.0});
  store.add(1, {50.0, 1.0, 0.0});
  store.add(1, {inf, 2.0, 0.0});
  store.add(1, {100.0, 1.0, 0.0});
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(1, 25.0), 25.5);  // ramp unaffected by poison
  EXPECT_DOUBLE_EQ(interp.correct(1, 75.0), 76.0);
  EXPECT_TRUE(std::isfinite(interp.correct(1, 5000.0)));
}

TEST(PiecewiseInterpolation, FromStoreAllPoisonedFallsBackToIdentity) {
  const double inf = std::numeric_limits<double>::infinity();
  OffsetStore store(1);
  store.add(0, {0.0, inf, 0.0});
  store.add(0, {1.0, -inf, 0.0});
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(0, 42.0), 42.0);
}

TEST(PiecewiseInterpolation, ExtrapolatesBoundarySegmentSlopes) {
  // The documented extrapolation policy: before the first knot the *first*
  // segment's slope extends backward; after the last knot the *last*
  // segment's slope extends forward (Eq. 3 semantics at the boundaries).
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {0.0, 0.0, 0.0});     // -> master 0
  store.add(1, {50.0, 1.0, 0.0});    // -> master 51: first slope 51/50
  store.add(1, {100.0, 1.0, 0.0});   // -> master 101: last slope 50/50
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  // Before: 0 - 10 * (51/50) = -10.2.
  EXPECT_DOUBLE_EQ(interp.correct(1, -10.0), -10.2);
  // After: 101 + 10 * 1.0 = 111.
  EXPECT_DOUBLE_EQ(interp.correct(1, 110.0), 111.0);
}

TEST(PiecewiseInterpolation, OneKnotFallbackHasUnitSlopeBothSides) {
  // The degenerate one-knot fallback appends a synthetic unit-slope segment;
  // both boundary extrapolations must then be pure offset alignment.
  OffsetStore store(1);
  store.add(0, {5.0, 1.5, 1e-5});
  store.add(0, {5.0, 1.9, 1e-5});
  PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(store);
  EXPECT_DOUBLE_EQ(interp.correct(0, -95.0), -93.5);   // before the knot
  EXPECT_DOUBLE_EQ(interp.correct(0, 1000.0), 1001.5); // after it
}

TEST(IdentityCorrection, IsIdentity) {
  IdentityCorrection id;
  EXPECT_DOUBLE_EQ(id.correct(3, 42.0), 42.0);
}

TEST(ApplyCorrection, MapsAllEvents) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {1e-6, 2e-6, 4e-6}, "test");
  Event e;
  e.type = EventType::Send;
  e.msg_id = 1;
  e.peer = 1;
  e.local_ts = 10.0;
  t.events(0).push_back(e);
  OffsetAlignment align({0.5, 0.0});
  auto ts = apply_correction(t, align);
  EXPECT_DOUBLE_EQ(ts.at({0, 0}), 10.5);
}

}  // namespace
}  // namespace chronosync
