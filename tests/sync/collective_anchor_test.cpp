#include "sync/collective_anchor.hpp"

#include <gtest/gtest.h>

#include "analysis/interval_stats.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

AppRunResult barrier_heavy_run(std::uint64_t seed, TimerSpec timer, int rounds = 300) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  cfg.gap_mean = 2.0;
  cfg.collective_every = 10;  // frequent full exchanges: Babaoglu's premise
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
  job.timer = std::move(timer);
  job.seed = seed;
  return run_sweep(cfg, std::move(job));
}

TEST(CollectiveAnchor, AnchorsCollectedPerRank) {
  auto res = barrier_heavy_run(1, timer_specs::intel_tsc());
  const auto corr = CollectiveAnchorCorrection::build(res.trace);
  for (Rank r = 1; r < 8; ++r) {
    EXPECT_GE(corr.anchors(r), 25u) << r;  // ~30 barriers in the run
  }
}

TEST(CollectiveAnchor, RecoversDriftToMicroseconds) {
  auto res = barrier_heavy_run(2, timer_specs::intel_tsc());
  const auto msgs = res.trace.match_messages();
  const auto raw_err =
      message_sync_error(res.trace, TimestampArray::from_local(res.trace), msgs);
  const auto corr = CollectiveAnchorCorrection::build(res.trace);
  const auto fixed = apply_correction(res.trace, corr);
  const auto err = message_sync_error(res.trace, fixed, msgs);
  // Raw clocks are ~0.5 s apart; the anchors bring pairs to ~collective-skew
  // accuracy.
  EXPECT_LT(err.mean(), 100 * units::us);
  EXPECT_LT(err.mean(), raw_err.mean() / 1000.0);
}

TEST(CollectiveAnchor, TracksNonConstantDriftBetterThanTwoPointLinear) {
  // NTP clocks change slope mid-run; per-collective anchors follow, a single
  // line cannot.  (This is the Babaoglu advantage the paper describes.)
  auto res = barrier_heavy_run(3, timer_specs::gettimeofday_ntp(), 600);
  const auto msgs = res.trace.match_messages();
  const auto corr = CollectiveAnchorCorrection::build(res.trace);
  const auto anchored_err =
      message_sync_error(res.trace, apply_correction(res.trace, corr), msgs);
  const LinearInterpolation lin = LinearInterpolation::from_store(res.offsets);
  const auto linear_err =
      message_sync_error(res.trace, apply_correction(res.trace, lin), msgs);
  EXPECT_LT(anchored_err.mean(), linear_err.mean());
}

TEST(CollectiveAnchor, MasterIsIdentity) {
  auto res = barrier_heavy_run(4, timer_specs::intel_tsc(), 100);
  const auto corr = CollectiveAnchorCorrection::build(res.trace);
  EXPECT_DOUBLE_EQ(corr.correct(0, 123.456), 123.456);
}

TEST(CollectiveAnchor, NoCollectivesMeansIdentity) {
  SweepConfig cfg;
  cfg.rounds = 50;
  cfg.collective_every = 0;  // p2p only
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 5;
  auto res = run_sweep(cfg, std::move(job));
  const auto corr = CollectiveAnchorCorrection::build(res.trace);
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(corr.anchors(r), 0u);
    EXPECT_DOUBLE_EQ(corr.correct(r, 42.0), 42.0);
  }
}

TEST(CollectiveAnchor, RootedCollectivesIgnored) {
  // Bcast/reduce are not full exchanges and must not produce anchors.
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 6;
  Job j(std::move(job));
  j.run([&](Proc& p) -> Coro<void> {
    for (int i = 0; i < 10; ++i) {
      co_await p.bcast(0, 64);
      co_await p.reduce(0, 64);
    }
  });
  Trace trace = j.take_trace();
  const auto corr = CollectiveAnchorCorrection::build(trace);
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(corr.anchors(r), 0u);
}

}  // namespace
}  // namespace chronosync
