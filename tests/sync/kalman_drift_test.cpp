#include "sync/kalman_drift.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "measure/offset_probe.hpp"
#include "sync/interpolation.hpp"

namespace chronosync {
namespace {

// Seeds rank 0 as the (exact) master reference, mirroring how probe batches
// record the master's self-measurements.
void seed_master(OffsetStore& store) {
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
}

double rms(const std::vector<double>& errors) {
  double acc = 0.0;
  for (double e : errors) acc += e * e;
  return std::sqrt(acc / static_cast<double>(errors.size()));
}

// Golden: under pure constant drift Eq. 3's two-point line is the exact
// model, so the Kalman filter must reproduce it (and the true master time)
// to within the measurement-noise floor, not just compete with it.
TEST(KalmanDriftCorrection, MatchesLinearInterpolationOnConstantDrift) {
  const double drift = 5e-6;  // 5 ppm
  const double offset0 = 0.25;
  OffsetStore store(2);
  seed_master(store);
  for (int k = 0; k <= 20; ++k) {
    const double w = 5.0 * k;
    store.add(1, {w, offset0 + drift * w, 2e-6});
  }
  const auto kalman = KalmanDriftCorrection::from_store(store);
  const auto linear = LinearInterpolation::from_store(store);
  for (double w : {0.0, 13.7, 50.0, 77.3, 100.0}) {
    const double truth = w + offset0 + drift * w;
    EXPECT_NEAR(kalman.correct(1, w), truth, 1e-6) << "w=" << w;
    EXPECT_NEAR(kalman.correct(1, w), linear.correct(1, w), 1e-6) << "w=" << w;
  }
  // Extrapolation slope is the boundary drift estimate, i.e. ~1 + drift.
  EXPECT_NEAR(kalman.correct(1, 120.0), 120.0 + offset0 + drift * 120.0, 1e-5);
  EXPECT_NEAR(kalman.correct(1, -20.0), -20.0 + offset0 + drift * -20.0, 1e-5);
}

// Property: when drift is a random walk — the paper's core premise — the
// smoothed filter must beat the single mean-drift line of Eq. 3 on RMS error
// against ground truth, evaluated *between* measurement instants where the
// constant-drift assumption is maximally wrong.
TEST(KalmanDriftCorrection, BeatsLinearInterpolationOnRandomWalkDrift) {
  std::mt19937 rng(12345);
  std::normal_distribution<double> step(0.0, 4e-7);
  const double dt = 5.0;
  double drift = 2e-6;
  double offset = 0.1;
  // knots[k] = {worker_time, true offset, drift over the following interval}.
  struct Knot {
    double w, o, d;
  };
  std::vector<Knot> knots;
  OffsetStore store(2);
  seed_master(store);
  for (int k = 0; k <= 40; ++k) {
    const double w = dt * k;
    knots.push_back({w, offset, drift});
    store.add(1, {w, offset, 2e-6});
    offset += drift * dt;
    drift += step(rng);
  }
  const auto kalman = KalmanDriftCorrection::from_store(store);
  const auto linear = LinearInterpolation::from_store(store);
  std::vector<double> kalman_err, linear_err;
  for (std::size_t k = 0; k + 1 < knots.size(); ++k) {
    const double w = knots[k].w + dt / 2.0;
    const double truth = w + knots[k].o + knots[k].d * dt / 2.0;
    kalman_err.push_back(kalman.correct(1, w) - truth);
    linear_err.push_back(linear.correct(1, w) - truth);
  }
  EXPECT_LT(rms(kalman_err), rms(linear_err));
  // Not marginal: the random walk wanders far from the mean line.
  EXPECT_LT(rms(kalman_err), 0.5 * rms(linear_err));
}

// Determinism: same store, same options -> bit-identical states and
// corrections.  The correction ships in the differential suite, whose
// cross-checks assume reproducible outputs.
TEST(KalmanDriftCorrection, IsBitwiseDeterministic) {
  std::mt19937 rng(777);
  std::normal_distribution<double> noise(0.0, 1e-6);
  OffsetStore store(3);
  seed_master(store);
  for (Rank r = 1; r < 3; ++r) {
    for (int k = 0; k <= 30; ++k) {
      const double w = 3.0 * k;
      store.add(r, {w, 0.01 * r + 3e-6 * w + noise(rng), 2e-6 + std::abs(noise(rng))});
    }
  }
  const auto a = KalmanDriftCorrection::from_store(store);
  const auto b = KalmanDriftCorrection::from_store(store);
  for (Rank r = 0; r < 3; ++r) {
    ASSERT_EQ(a.states(r).size(), b.states(r).size());
    for (std::size_t i = 0; i < a.states(r).size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.states(r)[i].offset),
                std::bit_cast<std::uint64_t>(b.states(r)[i].offset));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.states(r)[i].drift),
                std::bit_cast<std::uint64_t>(b.states(r)[i].drift));
    }
    for (double w : {-5.0, 0.0, 17.3, 44.4, 90.0, 123.0}) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.correct(r, w)),
                std::bit_cast<std::uint64_t>(b.correct(r, w)));
    }
  }
}

// Degenerate stores degrade instead of crashing, matching the documented
// from_store contract shared with the interpolation backends.
TEST(KalmanDriftCorrection, SkipsPoisonedSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  OffsetStore store(2);
  seed_master(store);
  for (int k = 0; k <= 10; ++k) store.add(1, {10.0 * k, 0.5, 2e-6});
  store.add(1, {55.0, nan, 2e-6});
  store.add(1, {inf, 1.0, 2e-6});
  const auto kalman = KalmanDriftCorrection::from_store(store);
  for (double w : {0.0, 50.0, 100.0, 500.0}) {
    EXPECT_TRUE(std::isfinite(kalman.correct(1, w)));
    EXPECT_NEAR(kalman.correct(1, w), w + 0.5, 1e-5);
  }
}

TEST(KalmanDriftCorrection, SingleSampleFallsBackToOffsetAlignment) {
  OffsetStore store(2);
  seed_master(store);
  store.add(1, {50.0, 1.25, 2e-6});
  const auto kalman = KalmanDriftCorrection::from_store(store);
  EXPECT_DOUBLE_EQ(kalman.correct(1, 0.0), 1.25);
  EXPECT_DOUBLE_EQ(kalman.correct(1, 200.0), 201.25);
}

TEST(KalmanDriftCorrection, EmptyRankFallsBackToIdentity) {
  OffsetStore store(2);
  seed_master(store);
  const auto kalman = KalmanDriftCorrection::from_store(store);
  EXPECT_DOUBLE_EQ(kalman.correct(1, 42.0), 42.0);
  EXPECT_DOUBLE_EQ(kalman.correct(1, -7.0), -7.0);
  // The fallback is represented as a single zero-offset, zero-drift knot.
  ASSERT_EQ(kalman.states(1).size(), 1u);
  EXPECT_DOUBLE_EQ(kalman.states(1)[0].offset, 0.0);
  EXPECT_DOUBLE_EQ(kalman.states(1)[0].drift, 0.0);
}

TEST(KalmanDriftCorrection, TimeReversedSamplesAreSkippedInPlaceOrDropped) {
  // Samples at the same worker_time update the same state in place; strictly
  // earlier stragglers cannot create a non-monotone knot sequence.
  OffsetStore store(2);
  seed_master(store);
  store.add(1, {0.0, 0.5, 2e-6});
  store.add(1, {10.0, 0.5, 2e-6});
  store.add(1, {10.0, 0.5, 2e-6});
  store.add(1, {20.0, 0.5, 2e-6});
  const auto kalman = KalmanDriftCorrection::from_store(store);
  const auto& st = kalman.states(1);
  for (std::size_t i = 1; i < st.size(); ++i) {
    EXPECT_GT(st[i].worker_time, st[i - 1].worker_time);
  }
  EXPECT_NEAR(kalman.correct(1, 15.0), 15.5, 1e-5);
}

}  // namespace
}  // namespace chronosync
