#include "sync/error_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

/// Synthesizes a two-rank trace whose clocks differ by offset(t) =
/// base + slope * t, with bidirectional messages and random true delays.
struct PairFixture {
  Trace trace{pinning::inter_node(clusters::xeon_rwth(), 2),
              {0.47e-6, 0.86e-6, 4.29e-6},
              "test"};
  double base;
  double slope;

  PairFixture(double base_offset, double drift_slope, int messages, std::uint64_t seed = 7)
      : base(base_offset), slope(drift_slope) {
    Rng rng(seed);
    const Duration l_min = 4.29e-6;
    std::int64_t id = 0;
    Time t = 1.0;
    for (int i = 0; i < messages; ++i) {
      // Alternate directions.
      const Rank from = i % 2;
      const Rank to = 1 - from;
      const Duration delay = l_min + rng.exponential(1.0 / (2 * units::us));
      const Time send_true = t;
      const Time recv_true = t + delay;

      Event s;
      s.type = EventType::Send;
      s.peer = to;
      s.tag = 0;
      s.msg_id = id;
      s.true_ts = send_true;
      s.local_ts = local(from, send_true);
      trace.events(from).push_back(s);

      Event r;
      r.type = EventType::Recv;
      r.peer = from;
      r.tag = 0;
      r.msg_id = id;
      r.true_ts = recv_true;
      r.local_ts = local(to, recv_true);
      trace.events(to).push_back(r);

      ++id;
      t += rng.uniform(0.5, 2.0);
    }
  }

  /// Rank 0 shows true time; rank 1 is offset by base + slope * t.
  Time local(Rank rank, Time t) const {
    return rank == 0 ? t : t + base + slope * t;
  }
};

TEST(EstimatePair, RecoversConstantOffset) {
  PairFixture fx(5 * units::ms, 0.0, 400);
  const auto msgs = fx.trace.match_messages();
  for (auto method :
       {EstimationMethod::Regression, EstimationMethod::ConvexHull, EstimationMethod::MinMax}) {
    const auto est = estimate_pair(fx.trace, msgs, 0, 1, method);
    ASSERT_TRUE(est.has_value()) << to_string(method);
    // delta_01(t) = L_0 - L_1 = -base.
    EXPECT_NEAR(est->line(100.0), -5e-3, 3 * units::us) << to_string(method);
  }
}

TEST(EstimatePair, RecoversDriftSlope) {
  PairFixture fx(1 * units::ms, 20e-6, 600);
  const auto msgs = fx.trace.match_messages();
  for (auto method :
       {EstimationMethod::Regression, EstimationMethod::ConvexHull, EstimationMethod::MinMax}) {
    const auto est = estimate_pair(fx.trace, msgs, 0, 1, method);
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->line.slope, -20e-6, 5e-6) << to_string(method);
  }
}

TEST(EstimatePair, DirectionMattersForSign) {
  PairFixture fx(2 * units::ms, 0.0, 300);
  const auto msgs = fx.trace.match_messages();
  const auto est01 = estimate_pair(fx.trace, msgs, 0, 1, EstimationMethod::Regression);
  const auto est10 = estimate_pair(fx.trace, msgs, 1, 0, EstimationMethod::Regression);
  ASSERT_TRUE(est01 && est10);
  EXPECT_NEAR(est01->line(10.0), -est10->line(10.0), 5 * units::us);
}

TEST(EstimatePair, OneSidedTrafficGivesNothing) {
  PairFixture fx(0.0, 0.0, 100);
  // Strip all messages from 1 to 0.
  auto msgs = fx.trace.match_messages();
  std::erase_if(msgs, [](const MessageRecord& m) { return m.send.proc == 1; });
  EXPECT_FALSE(estimate_pair(fx.trace, msgs, 0, 1, EstimationMethod::Regression).has_value());
}

TEST(EstimatePair, SampleCountsReported) {
  PairFixture fx(0.0, 0.0, 100);
  const auto est =
      estimate_pair(fx.trace, fx.trace.match_messages(), 0, 1, EstimationMethod::Regression);
  ASSERT_TRUE(est);
  EXPECT_EQ(est->messages_ab + est->messages_ba, 100u);
}

TEST(ErrorEstimationCorrection, CorrectsTwoRankTrace) {
  PairFixture fx(3 * units::ms, 15e-6, 500);
  const auto msgs = fx.trace.match_messages();
  const auto corr =
      ErrorEstimationCorrection::build(fx.trace, msgs, EstimationMethod::Regression);
  EXPECT_TRUE(corr.unreachable().empty());
  // Corrected rank-1 timestamps must approximate true time.
  for (Time t : {10.0, 100.0, 200.0}) {
    EXPECT_NEAR(corr.correct(1, fx.local(1, t)), t, 5 * units::us);
  }
  // Rank 0 (master) is untouched.
  EXPECT_DOUBLE_EQ(corr.correct(0, 55.0), 55.0);
}

TEST(ErrorEstimationCorrection, ChainsThroughSpanningTree) {
  // Three ranks in a line: 0 <-> 1 <-> 2, no direct 0 <-> 2 traffic.  Rank 2
  // must still be corrected by composing the two edges.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  Rng rng(11);
  const Duration l_min = 4.29e-6;
  const double off1 = 2 * units::ms, off2 = 5 * units::ms;
  auto local = [&](Rank r, Time t) {
    return t + (r == 1 ? off1 : r == 2 ? off2 : 0.0);
  };
  std::int64_t id = 0;
  Time t = 1.0;
  for (int i = 0; i < 300; ++i) {
    for (auto [a, b] : {std::pair<Rank, Rank>{0, 1}, {1, 2}}) {
      const Rank from = i % 2 ? a : b;
      const Rank to = i % 2 ? b : a;
      const Duration delay = l_min + rng.exponential(1.0 / (2 * units::us));
      Event s;
      s.type = EventType::Send;
      s.peer = to;
      s.msg_id = id;
      s.true_ts = t;
      s.local_ts = local(from, t);
      trace.events(from).push_back(s);
      Event r;
      r.type = EventType::Recv;
      r.peer = from;
      r.msg_id = id;
      r.true_ts = t + delay;
      r.local_ts = local(to, t + delay);
      trace.events(to).push_back(r);
      ++id;
      t += rng.uniform(0.1, 0.5);
    }
  }
  const auto corr = ErrorEstimationCorrection::build(trace, trace.match_messages(),
                                                     EstimationMethod::Regression);
  EXPECT_TRUE(corr.unreachable().empty());
  EXPECT_NEAR(corr.correct(2, local(2, 50.0)), 50.0, 10 * units::us);
}

TEST(ErrorEstimationCorrection, UnreachableRanksKeptIdentity) {
  // Rank 2 never talks: it must be flagged and left identity-corrected.
  PairFixture fx(1 * units::ms, 0.0, 100);
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  for (Rank r = 0; r < 2; ++r) trace.events(r) = fx.trace.events(r);
  const auto corr = ErrorEstimationCorrection::build(trace, trace.match_messages(),
                                                     EstimationMethod::Regression);
  ASSERT_EQ(corr.unreachable().size(), 1u);
  EXPECT_EQ(corr.unreachable()[0], 2);
  EXPECT_DOUBLE_EQ(corr.correct(2, 77.0), 77.0);
}

TEST(ErrorEstimationCorrection, ConvexHullAndMinMaxAlsoWork) {
  PairFixture fx(4 * units::ms, 10e-6, 500);
  const auto msgs = fx.trace.match_messages();
  for (auto method : {EstimationMethod::ConvexHull, EstimationMethod::MinMax}) {
    const auto corr = ErrorEstimationCorrection::build(fx.trace, msgs, method);
    EXPECT_NEAR(corr.correct(1, fx.local(1, 150.0)), 150.0, 10 * units::us)
        << to_string(method);
  }
}

}  // namespace
}  // namespace chronosync
