#include "sync/logical_clock.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

/// Two ranks, one message 0 -> 1 between local events.
struct SmallFixture {
  Trace trace{pinning::inter_node(clusters::xeon_rwth(), 2),
              {0.47e-6, 0.86e-6, 4.29e-6},
              "test"};

  SmallFixture() {
    auto ev = [](EventType ty, Time t, std::int64_t id = -1, Rank peer = -1) {
      Event e;
      e.type = ty;
      e.local_ts = e.true_ts = t;
      e.msg_id = id;
      e.peer = peer;
      return e;
    };
    // rank 0: Enter(1.0), Send(2.0, id 0), Exit(3.0)
    trace.events(0).push_back(ev(EventType::Enter, 1.0));
    trace.events(0).push_back(ev(EventType::Send, 2.0, 0, 1));
    trace.events(0).push_back(ev(EventType::Exit, 3.0));
    // rank 1: Enter(0.5), Recv(2.5, id 0), Exit(4.0)
    trace.events(1).push_back(ev(EventType::Enter, 0.5));
    trace.events(1).push_back(ev(EventType::Recv, 2.5, 0, 0));
    trace.events(1).push_back(ev(EventType::Exit, 4.0));
  }

  ReplaySchedule schedule() const {
    return ReplaySchedule(trace, trace.match_messages(), {});
  }
};

TEST(ReplaySchedule, GlobalIndexRoundTrip) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  EXPECT_EQ(s.events(), 6u);
  for (Rank r = 0; r < 2; ++r) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const auto g = s.global_index({r, i});
      const EventRef back = s.event_ref(g);
      EXPECT_EQ(back.proc, r);
      EXPECT_EQ(back.index, i);
    }
  }
}

TEST(ReplaySchedule, RecvHasIncomingEdge) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const auto recv_g = s.global_index({1, 1});
  ASSERT_EQ(s.incoming(recv_g).size(), 1u);
  EXPECT_EQ(s.incoming(recv_g)[0].source, s.global_index({0, 1}));
  EXPECT_DOUBLE_EQ(s.incoming(recv_g)[0].l_min, 4.29e-6);
}

TEST(ReplaySchedule, ReplayRespectsDependencies) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  std::vector<std::uint32_t> order;
  s.replay([&](std::uint32_t g, const EventRef&) { order.push_back(g); });
  EXPECT_EQ(order.size(), 6u);
  // The send must come before the recv.
  const auto send_g = s.global_index({0, 1});
  const auto recv_g = s.global_index({1, 1});
  const auto pos = [&](std::uint32_t g) {
    return std::find(order.begin(), order.end(), g) - order.begin();
  };
  EXPECT_LT(pos(send_g), pos(recv_g));
  // Per-process order preserved.
  EXPECT_LT(pos(s.global_index({0, 0})), pos(s.global_index({0, 1})));
  EXPECT_LT(pos(s.global_index({1, 0})), pos(s.global_index({1, 1})));
}

TEST(LamportClocks, MessageInducesOrdering) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const auto lc = lamport_clocks(fx.trace, s);
  // Recv's clock exceeds both the send's and its local predecessor's.
  EXPECT_GT(lc[1][1], lc[0][1]);
  EXPECT_GT(lc[1][1], lc[1][0]);
  // Local order strictly increases.
  EXPECT_LT(lc[0][0], lc[0][1]);
  EXPECT_LT(lc[0][1], lc[0][2]);
}

TEST(LamportClocks, IndependentEventsMayShareValues) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const auto lc = lamport_clocks(fx.trace, s);
  EXPECT_EQ(lc[0][0], 1u);
  EXPECT_EQ(lc[1][0], 1u);
}

TEST(VectorClocks, HappenedBeforeAcrossMessage) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const VectorClockIndex vc(fx.trace, s);
  // Send (0,1) happened before recv (1,1) and its successor (1,2).
  EXPECT_TRUE(vc.happened_before({0, 1}, {1, 1}));
  EXPECT_TRUE(vc.happened_before({0, 1}, {1, 2}));
  EXPECT_TRUE(vc.happened_before({0, 0}, {1, 1}));  // transitive via local order
  EXPECT_FALSE(vc.happened_before({1, 1}, {0, 1}));
}

TEST(VectorClocks, ConcurrencyDetected) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const VectorClockIndex vc(fx.trace, s);
  // rank0 Enter and rank1 Enter are unrelated.
  EXPECT_TRUE(vc.concurrent({0, 0}, {1, 0}));
  // rank0 Exit and rank1 Recv: no path either way.
  EXPECT_TRUE(vc.concurrent({0, 2}, {1, 1}));
  // An event is not concurrent with itself's successors.
  EXPECT_FALSE(vc.concurrent({1, 0}, {1, 2}));
}

TEST(VectorClocks, LocalComponentCounts) {
  SmallFixture fx;
  const ReplaySchedule s = fx.schedule();
  const VectorClockIndex vc(fx.trace, s);
  EXPECT_EQ(vc.clock({0, 2})[0], 3u);
  EXPECT_EQ(vc.clock({0, 2})[1], 0u);
  // Recv merges the sender's component.
  EXPECT_EQ(vc.clock({1, 1})[0], 2u);
  EXPECT_EQ(vc.clock({1, 1})[1], 2u);
}

TEST(VectorClocks, LogicalMessagesInduceOrder) {
  // Barrier via logical messages: end events happen after all begins.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  for (Rank r = 0; r < 3; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = CollectiveKind::Barrier;
    b.coll_id = 0;
    b.local_ts = b.true_ts = 1.0;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 2.0;
    trace.events(r).push_back(b);
    trace.events(r).push_back(e);
  }
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule s(trace, {}, logical);
  const VectorClockIndex vc(trace, s);
  EXPECT_TRUE(vc.happened_before({0, 0}, {1, 1}));
  EXPECT_TRUE(vc.happened_before({2, 0}, {0, 1}));
  EXPECT_TRUE(vc.concurrent({0, 0}, {1, 0}));
}

}  // namespace
}  // namespace chronosync
