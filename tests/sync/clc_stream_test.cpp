#include "sync/clc_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "../testutil/random_trace.hpp"
#include "analysis/clock_condition_stream.hpp"
#include "sync/clc.hpp"
#include "sync/replay.hpp"
#include "topology/cluster.hpp"
#include "trace/logical_messages.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io_error.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

/// A trace with real message + collective traffic and genuine clock-condition
/// violations (TSC drift across nodes).
Trace sweep_fixture(std::uint64_t seed, int rounds = 30) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job)).trace;
}

ClcResult in_memory_clc(const Trace& t, const ClcOptions& opt) {
  const auto messages = t.match_messages();
  const auto logical = derive_logical_messages(t);
  const ReplaySchedule schedule(t, messages, logical);
  return controlled_logical_clock(t, schedule, TimestampArray::from_local(t), opt);
}

void expect_bit_identical(const Trace& trace, const std::string& out_path,
                          const StreamClcStats& stats, const ClcResult& mem) {
  EXPECT_EQ(stats.ramp_clamped, 0u);
  EXPECT_EQ(stats.horizon_dropped, 0u);
  EXPECT_EQ(stats.forced, 0u);
  EXPECT_EQ(stats.violations_repaired, mem.violations_repaired);
  EXPECT_TRUE(testutil::same_bits(stats.max_jump, mem.max_jump));
  EXPECT_TRUE(testutil::same_bits(stats.total_jump, mem.total_jump));

  const Trace out = read_trace_v2_file(out_path);
  ASSERT_EQ(out.ranks(), trace.ranks());
  for (Rank r = 0; r < trace.ranks(); ++r) {
    const auto& in_ev = trace.events(r);
    const auto& out_ev = out.events(r);
    ASSERT_EQ(out_ev.size(), in_ev.size()) << "rank " << r;
    const auto& lc = mem.corrected.of_rank(r);
    for (std::size_t i = 0; i < in_ev.size(); ++i) {
      ASSERT_TRUE(testutil::same_bits(out_ev[i].local_ts, lc[i]))
          << "rank " << r << " event " << i << ": " << out_ev[i].local_ts << " vs " << lc[i];
      ASSERT_TRUE(testutil::same_bits(out_ev[i].true_ts, in_ev[i].true_ts))
          << "true_ts must survive untouched";
      ASSERT_EQ(out_ev[i].type, in_ev[i].type);
      ASSERT_EQ(out_ev[i].msg_id, in_ev[i].msg_id);
    }
  }
}

TEST(ClcStream, SweepWorkloadBitIdenticalToInMemory) {
  const Trace trace = sweep_fixture(5);
  const std::string in_path = testing::TempDir() + "/cs_clcstream_in.cstr";
  const std::string out_path = testing::TempDir() + "/cs_clcstream_out.cstr";
  write_trace_v2_file(trace, in_path, /*events_per_chunk=*/64);

  StreamClcOptions opt;
  opt.emit_batch = 32;       // many interim sweeps, small retention
  opt.backward_window = 1e3;  // larger than any ramp: no clamping, bit-exact
  const StreamClcStats stats = clc_stream_file(in_path, out_path, opt);

  EXPECT_EQ(stats.events, trace.total_events());
  EXPECT_GT(stats.p2p_edges, 0u);
  EXPECT_GT(stats.violations_repaired, 0u);
  expect_bit_identical(trace, out_path, stats, in_memory_clc(trace, opt.clc));
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ClcStream, EmitBatchingDoesNotChangeTheOutput) {
  const Trace trace = sweep_fixture(11, /*rounds=*/20);
  const std::string in_path = testing::TempDir() + "/cs_clcstream_batch_in.cstr";
  write_trace_v2_file(trace, in_path, /*events_per_chunk=*/48);

  StreamClcOptions tiny;
  tiny.emit_batch = 4;         // sweep after nearly every event
  tiny.backward_window = 1e-3;  // small window: entries become final early
  StreamClcOptions huge;
  huge.emit_batch = std::size_t{1} << 20;  // one final sweep only
  huge.backward_window = 1e-3;
  const std::string out_a = testing::TempDir() + "/cs_clcstream_batch_a.cstr";
  const std::string out_b = testing::TempDir() + "/cs_clcstream_batch_b.cstr";
  const StreamClcStats sa = clc_stream_file(in_path, out_a, tiny);
  const StreamClcStats sb = clc_stream_file(in_path, out_b, huge);

  EXPECT_EQ(sa.violations_repaired, sb.violations_repaired);
  EXPECT_TRUE(testutil::traces_equal(read_trace_v2_file(out_a), read_trace_v2_file(out_b)));
  // The tiny batch must actually have bounded the window.
  EXPECT_LT(sa.peak_resident_events, sb.peak_resident_events);
  std::remove(in_path.c_str());
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
}

TEST(ClcStream, BackwardAmortizationOffMatchesInMemory) {
  const Trace trace = sweep_fixture(7, /*rounds=*/15);
  const std::string in_path = testing::TempDir() + "/cs_clcstream_ba_in.cstr";
  const std::string out_path = testing::TempDir() + "/cs_clcstream_ba_out.cstr";
  write_trace_v2_file(trace, in_path, /*events_per_chunk=*/64);

  StreamClcOptions opt;
  opt.clc.backward_amortization = false;
  opt.emit_batch = 16;
  const StreamClcStats stats = clc_stream_file(in_path, out_path, opt);
  expect_bit_identical(trace, out_path, stats, in_memory_clc(trace, opt.clc));
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ClcStream, ClampedRampStillRepairsEveryViolation) {
  const Trace trace = sweep_fixture(3);
  const std::string in_path = testing::TempDir() + "/cs_clcstream_clamp_in.cstr";
  const std::string out_path = testing::TempDir() + "/cs_clcstream_clamp_out.cstr";
  write_trace_v2_file(trace, in_path);

  StreamClcOptions opt;
  opt.backward_window = 1e-9;  // far smaller than any jump's natural ramp
  opt.emit_batch = 16;
  const StreamClcStats stats = clc_stream_file(in_path, out_path, opt);
  EXPECT_GT(stats.violations_repaired, 0u);
  EXPECT_GT(stats.ramp_clamped, 0u);  // divergence is declared, not silent

  // Even with the ramps clamped, the corrected trace must satisfy the clock
  // condition: amortization never un-repairs a violation.
  const auto rep = scan_clock_condition_file(out_path);
  EXPECT_EQ(rep.p2p_violations, 0u);
  EXPECT_EQ(rep.logical_violations, 0u);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ClcStream, EmptyTraceRoundTrips) {
  Trace t(pinning::block(clusters::xeon_rwth(), 3), {1e-7, 1e-6, 5e-6}, "empty");
  const std::string in_path = testing::TempDir() + "/cs_clcstream_empty_in.cstr";
  const std::string out_path = testing::TempDir() + "/cs_clcstream_empty_out.cstr";
  write_trace_v2_file(t, in_path);
  const StreamClcStats stats = clc_stream_file(in_path, out_path, {});
  EXPECT_EQ(stats.events, 0u);
  const Trace out = read_trace_v2_file(out_path);
  EXPECT_EQ(out.ranks(), 3);
  EXPECT_EQ(out.total_events(), 0u);
  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ClcStream, TruncatedInputThrowsBeforeAnyOutputExists) {
  const Trace trace = testutil::random_trace(21);
  const std::string in_path = testing::TempDir() + "/cs_clcstream_trunc_in.cstr";
  const std::string out_path = testing::TempDir() + "/cs_clcstream_trunc_out.cstr";
  write_trace_v2_file(trace, in_path);

  // Chop the tail off: the footer (and possibly part of the last chunk) is
  // gone.  The index pass must reject the file before any output is created.
  std::ifstream f(in_path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::string bytes(size, '\0');
  f.read(bytes.data(), static_cast<std::streamsize>(size));
  f.close();
  std::ofstream(in_path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(size - 10));

  EXPECT_THROW(clc_stream_file(in_path, out_path, {}), TraceIoError);
  std::ifstream probe(out_path);
  EXPECT_FALSE(probe.good()) << "no output file may exist after a failed run";
  std::remove(in_path.c_str());
}

TEST(ClcStream, MissingInputThrowsIoError) {
  try {
    clc_stream_file("/nonexistent/in.cstr", testing::TempDir() + "/unused.cstr", {});
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Io);
  }
}

}  // namespace
}  // namespace chronosync
