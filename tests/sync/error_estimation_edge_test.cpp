// Edge cases of the message-based error estimators: degenerate clouds,
// collinear hull chains, disconnected rank graphs, extreme asymmetry.
#include <gtest/gtest.h>

#include "sync/error_estimation.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Trace base_trace(int ranks) {
  return Trace(pinning::inter_node(clusters::xeon_rwth(), ranks),
               {0.47e-6, 0.86e-6, 4.29e-6}, "test");
}

void add_message(Trace& t, Rank from, Rank to, Time send_ts, Time recv_ts,
                 std::int64_t id) {
  Event s;
  s.type = EventType::Send;
  s.peer = to;
  s.msg_id = id;
  s.local_ts = s.true_ts = send_ts;
  t.events(from).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = from;
  r.local_ts = r.true_ts = recv_ts;
  t.events(to).push_back(r);
}

TEST(ErrorEstimationEdge, SingleMessageEachDirection) {
  Trace t = base_trace(2);
  add_message(t, 0, 1, 1.0, 1.00001, 0);
  add_message(t, 1, 0, 2.0, 2.00001, 1);
  const auto msgs = t.match_messages();
  for (auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                      EstimationMethod::MinMax}) {
    const auto est = estimate_pair(t, msgs, 0, 1, method);
    ASSERT_TRUE(est.has_value()) << to_string(method);
    // One bound each way at ~zero offset: estimate within the delay spread.
    EXPECT_NEAR(est->line(1.5), 0.0, 10e-6) << to_string(method);
  }
}

TEST(ErrorEstimationEdge, AllSamplesAtSameTime) {
  // Same send timestamp for every message: the regression falls back to a
  // constant instead of dividing by zero.
  Trace t = base_trace(2);
  for (int i = 0; i < 5; ++i) {
    add_message(t, 0, 1, 1.0, 1.00001, 2 * i);
    add_message(t, 1, 0, 1.0, 1.00001, 2 * i + 1);
  }
  const auto msgs = t.match_messages();
  const auto est = estimate_pair(t, msgs, 0, 1, EstimationMethod::Regression);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->line.slope, 0.0);
}

TEST(ErrorEstimationEdge, CollinearBoundsConvexHull) {
  // Perfectly regular traffic: all bound points collinear; the hull chains
  // degenerate to their endpoints but the fit must still work.
  Trace t = base_trace(2);
  for (int i = 0; i < 10; ++i) {
    const Time base = 1.0 + i;
    add_message(t, 0, 1, base, base + 1e-5, 2 * i);
    add_message(t, 1, 0, base + 0.5, base + 0.5 + 1e-5, 2 * i + 1);
  }
  const auto est =
      estimate_pair(t, t.match_messages(), 0, 1, EstimationMethod::ConvexHull);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->line.slope, 0.0, 1e-9);
  EXPECT_NEAR(est->line(5.0), 0.0, 1e-5);
}

TEST(ErrorEstimationEdge, HeavilyAsymmetricTraffic) {
  // 100 messages one way, 1 the other: still a valid (if loose) estimate.
  Trace t = base_trace(2);
  for (int i = 0; i < 100; ++i) {
    add_message(t, 0, 1, 1.0 + i * 0.1, 1.0 + i * 0.1 + 1e-5, i);
  }
  add_message(t, 1, 0, 5.0, 5.0 + 1e-5, 1000);
  const auto est =
      estimate_pair(t, t.match_messages(), 0, 1, EstimationMethod::Regression);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->messages_ab, 100u);
  EXPECT_EQ(est->messages_ba, 1u);
  EXPECT_NEAR(est->line(5.0), 0.0, 20e-6);
}

TEST(ErrorEstimationEdge, DisconnectedComponentsPartiallyCorrected) {
  // Ranks {0,1} talk; ranks {2,3} talk; no bridge.  2 and 3 stay identity.
  Trace t = base_trace(4);
  for (int i = 0; i < 20; ++i) {
    add_message(t, 0, 1, 1.0 + i, 1.0 + i + 1e-5, 4 * i);
    add_message(t, 1, 0, 1.5 + i, 1.5 + i + 1e-5, 4 * i + 1);
    add_message(t, 2, 3, 1.0 + i, 1.0 + i + 1e-5, 4 * i + 2);
    add_message(t, 3, 2, 1.5 + i, 1.5 + i + 1e-5, 4 * i + 3);
  }
  const auto corr = ErrorEstimationCorrection::build(t, t.match_messages(),
                                                     EstimationMethod::Regression);
  ASSERT_EQ(corr.unreachable().size(), 2u);
  EXPECT_DOUBLE_EQ(corr.correct(2, 9.0), 9.0);
  EXPECT_DOUBLE_EQ(corr.correct(3, 9.0), 9.0);
  EXPECT_NEAR(corr.correct(1, 9.0), 9.0, 1e-4);
}

TEST(ErrorEstimationEdge, SpanningTreeTieBreakIsDeterministic) {
  // Regression: with equal traffic on every edge, the old tuple max-heap
  // preferred the *largest* ranks, so the tree shape depended on nothing but
  // heap internals.  Ties now resolve to the smallest (from, to) pair: in an
  // equal-weight triangle both leaves chain directly to the master.
  Trace t = base_trace(3);
  std::int64_t id = 0;
  const std::pair<Rank, Rank> pairs[] = {{0, 1}, {0, 2}, {1, 2}};
  for (auto [a, b] : pairs) {
    for (int i = 0; i < 10; ++i) {
      add_message(t, a, b, 1.0 + i, 1.0 + i + 1e-5, id++);
      add_message(t, b, a, 1.5 + i, 1.5 + i + 1e-5, id++);
    }
  }
  const auto corr = ErrorEstimationCorrection::build(t, t.match_messages(),
                                                     EstimationMethod::Regression);
  ASSERT_EQ(corr.tree_parent().size(), 3u);
  EXPECT_EQ(corr.tree_parent()[0], -1);  // master is the root
  EXPECT_EQ(corr.tree_parent()[1], 0);
  EXPECT_EQ(corr.tree_parent()[2], 0);

  // Same trace, same build: byte-identical tree on every run.
  const auto again = ErrorEstimationCorrection::build(t, t.match_messages(),
                                                      EstimationMethod::Regression);
  EXPECT_EQ(corr.tree_parent(), again.tree_parent());
}

TEST(ErrorEstimationEdge, StarTopologyChainsEveryLeaf) {
  // Rank 0 talks to every other rank; estimation must reach all leaves.
  Trace t = base_trace(5);
  std::int64_t id = 0;
  for (Rank leaf = 1; leaf < 5; ++leaf) {
    for (int i = 0; i < 10; ++i) {
      add_message(t, 0, leaf, 1.0 + i, 1.0 + i + 1e-5, id++);
      add_message(t, leaf, 0, 1.5 + i, 1.5 + i + 1e-5, id++);
    }
  }
  const auto corr = ErrorEstimationCorrection::build(t, t.match_messages(),
                                                     EstimationMethod::MinMax);
  EXPECT_TRUE(corr.unreachable().empty());
}

}  // namespace
}  // namespace chronosync
