#include "sync/clc.hpp"

#include <gtest/gtest.h>

#include "analysis/clock_condition.hpp"
#include "common/rng.hpp"
#include "sync/clc_parallel.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Event make_event(EventType ty, Time t, std::int64_t id = -1, Rank peer = -1) {
  Event e;
  e.type = ty;
  e.local_ts = e.true_ts = t;
  e.msg_id = id;
  e.peer = peer;
  return e;
}

/// Two ranks; message 0->1 whose recv timestamp violates the clock condition.
struct ViolatedFixture {
  Trace trace{pinning::inter_node(clusters::xeon_rwth(), 2),
              {0.47e-6, 0.86e-6, 4.29e-6},
              "test"};
  ViolatedFixture() {
    trace.events(0).push_back(make_event(EventType::Enter, 1.0));
    trace.events(0).push_back(make_event(EventType::Send, 2.0, 0, 1));
    trace.events(0).push_back(make_event(EventType::Exit, 3.0));
    // Recv at 1.9999: *before* the send -- a reversed message.
    trace.events(1).push_back(make_event(EventType::Enter, 1.0));
    trace.events(1).push_back(make_event(EventType::Recv, 1.9999, 0, 0));
    trace.events(1).push_back(make_event(EventType::Exit, 2.5));
    trace.events(1).push_back(make_event(EventType::Enter, 2.6));
  }
};

TEST(Clc, RepairsViolation) {
  ViolatedFixture fx;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const auto input = TimestampArray::from_local(fx.trace);
  const ClcResult res = controlled_logical_clock(fx.trace, s, input);

  EXPECT_EQ(res.violations_repaired, 1u);
  EXPECT_GT(res.max_jump, 0.0);
  // Clock condition restored.
  EXPECT_GE(res.corrected.at({1, 1}), res.corrected.at({0, 1}) + 4.29e-6 - 1e-15);
  // A clean report afterwards.
  const auto rep = check_clock_condition(fx.trace, res.corrected);
  EXPECT_EQ(rep.violations(), 0u);
}

TEST(Clc, PreservesMonotonicityPerProcess) {
  ViolatedFixture fx;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const ClcResult res =
      controlled_logical_clock(fx.trace, s, TimestampArray::from_local(fx.trace));
  for (Rank r = 0; r < 2; ++r) {
    const auto& v = res.corrected.of_rank(r);
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_GE(v[i], v[i - 1]) << "rank " << r << " idx " << i;
    }
  }
}

TEST(Clc, CleanTraceIsUntouched) {
  ViolatedFixture fx;
  fx.trace.events(1)[1].local_ts = 2.1;  // now consistent
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const auto input = TimestampArray::from_local(fx.trace);
  const ClcResult res = controlled_logical_clock(fx.trace, s, input);
  EXPECT_EQ(res.violations_repaired, 0u);
  for (Rank r = 0; r < 2; ++r) {
    for (std::uint32_t i = 0; i < fx.trace.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(res.corrected.at({r, i}), input.at({r, i}));
    }
  }
}

TEST(Clc, ForwardAmortizationPreservesIntervals) {
  ViolatedFixture fx;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  ClcOptions opt;
  opt.forward_decay = 0.0;  // pure interval preservation after the jump
  opt.backward_amortization = false;
  const auto input = TimestampArray::from_local(fx.trace);
  const ClcResult res = controlled_logical_clock(fx.trace, s, input, opt);
  // The interval between recv and its successors must be preserved exactly.
  const Duration want = input.at({1, 2}) - input.at({1, 1});
  const Duration got = res.corrected.at({1, 2}) - res.corrected.at({1, 1});
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(Clc, ForwardDecayReturnsTowardOriginal) {
  ViolatedFixture fx;
  // Move the later events far out so the correction has room to decay.
  fx.trace.events(1)[2].local_ts = 1000.0;
  fx.trace.events(1)[3].local_ts = 2000.0;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  ClcOptions opt;
  opt.forward_decay = 0.01;
  opt.backward_amortization = false;
  const ClcResult res =
      controlled_logical_clock(fx.trace, s, TimestampArray::from_local(fx.trace), opt);
  // By t=1000 the (microsecond-scale) correction has fully decayed.
  EXPECT_DOUBLE_EQ(res.corrected.at({1, 2}), 1000.0);
  EXPECT_DOUBLE_EQ(res.corrected.at({1, 3}), 2000.0);
}

TEST(Clc, BackwardAmortizationSmoothsPreJumpEvents) {
  ViolatedFixture fx;
  // Put a local event just before the violated recv.
  fx.trace.events(1)[0].local_ts = fx.trace.events(1)[0].true_ts = 1.99985;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const auto input = TimestampArray::from_local(fx.trace);

  ClcOptions without;
  without.backward_amortization = false;
  ClcOptions with;
  with.backward_amortization = true;
  const ClcResult r0 = controlled_logical_clock(fx.trace, s, input, without);
  const ClcResult r1 = controlled_logical_clock(fx.trace, s, input, with);

  // Without: the Enter stays; with: it is pulled toward the jump.
  EXPECT_DOUBLE_EQ(r0.corrected.at({1, 0}), 1.99985);
  EXPECT_GT(r1.corrected.at({1, 0}), 1.99985);
  // Still monotone and below the recv.
  EXPECT_LE(r1.corrected.at({1, 0}), r1.corrected.at({1, 1}));
}

TEST(Clc, BackwardAmortizationNeverBreaksSends) {
  // The pre-jump ramp must not push a send beyond recv - l_min.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  // rank1: Send to rank2 at 1.0, then violated Recv from rank0.
  trace.events(0).push_back(make_event(EventType::Send, 1.00005, 0, 1));
  trace.events(1).push_back(make_event(EventType::Send, 1.0, 1, 2));
  trace.events(1).push_back(make_event(EventType::Recv, 1.00001, 0, 0));  // violated
  trace.events(2).push_back(make_event(EventType::Recv, 1.00002, 1, 1));
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const ClcResult res =
      controlled_logical_clock(trace, s, TimestampArray::from_local(trace));
  const auto rep = check_clock_condition(trace, res.corrected, msgs, {});
  EXPECT_EQ(rep.violations(), 0u);
}

TEST(Clc, HandlesCollectiveLogicalMessages) {
  // Barrier whose end on rank 1 is measured before rank 0 entered.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  for (Rank r = 0; r < 2; ++r) {
    Event b = make_event(EventType::CollBegin, r == 0 ? 1.0 : 0.9);
    b.coll = CollectiveKind::Barrier;
    b.coll_id = 0;
    Event e = make_event(EventType::CollEnd, r == 0 ? 1.1 : 0.95);  // rank1 too early
    e.coll = CollectiveKind::Barrier;
    e.coll_id = 0;
    trace.events(r).push_back(b);
    trace.events(r).push_back(e);
  }
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule s(trace, {}, logical);
  const ClcResult res =
      controlled_logical_clock(trace, s, TimestampArray::from_local(trace));
  EXPECT_GE(res.violations_repaired, 1u);
  const auto rep = check_clock_condition(trace, res.corrected, {}, logical);
  EXPECT_EQ(rep.logical_violations, 0u);
}

TEST(Clc, ChainOfViolationsAllRepaired) {
  // A relay 0 -> 1 -> 2 -> 3 where every hop's recv is reversed.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 4), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  trace.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  trace.events(1).push_back(make_event(EventType::Recv, 0.9, 0, 0));
  trace.events(1).push_back(make_event(EventType::Send, 0.91, 1, 2));
  trace.events(2).push_back(make_event(EventType::Recv, 0.8, 1, 1));
  trace.events(2).push_back(make_event(EventType::Send, 0.81, 2, 3));
  trace.events(3).push_back(make_event(EventType::Recv, 0.7, 2, 2));
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const ClcResult res =
      controlled_logical_clock(trace, s, TimestampArray::from_local(trace));
  EXPECT_EQ(res.violations_repaired, 3u);
  EXPECT_EQ(check_clock_condition(trace, res.corrected, msgs, {}).violations(), 0u);
  // The chain accumulates: each hop is at least l_min later.
  EXPECT_GE(res.corrected.at({3, 0}), 1.0 + 3 * 4.29e-6 - 1e-12);
}

TEST(Clc, StatisticsAccumulate) {
  ViolatedFixture fx;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const ClcResult res =
      controlled_logical_clock(fx.trace, s, TimestampArray::from_local(fx.trace));
  EXPECT_GT(res.total_jump, 0.0);
  EXPECT_GE(res.total_jump, res.max_jump);
}

TEST(Clc, OptionValidation) {
  ViolatedFixture fx;
  const ReplaySchedule s(fx.trace, fx.trace.match_messages(), {});
  const auto input = TimestampArray::from_local(fx.trace);
  ClcOptions bad;
  bad.forward_decay = 1.5;
  EXPECT_THROW(controlled_logical_clock(fx.trace, s, input, bad), std::invalid_argument);
  ClcOptions bad2;
  bad2.backward_slope = 0.0;
  EXPECT_THROW(controlled_logical_clock(fx.trace, s, input, bad2), std::invalid_argument);
}

// ---------------------------------------------------------------- parallel

/// Last recorded local timestamp of a rank (keeps generated traces monotone).
Time last_ts(const Trace& trace, Rank r) {
  const auto& ev = trace.events(r);
  return ev.empty() ? 0.0 : ev.back().local_ts;
}

/// Random many-rank trace with sprinkled violations for equivalence checks.
Trace random_trace(int ranks, int rounds, std::uint64_t seed) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), ranks),
              {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  Rng rng(seed);
  std::int64_t id = 0;
  Time t = 1.0;
  for (int round = 0; round < rounds; ++round) {
    const auto shift = static_cast<Rank>(rng.uniform_int(1, ranks - 1));
    for (Rank r = 0; r < ranks; ++r) {
      const Rank to = (r + shift) % ranks;
      const Time st = t + rng.uniform(0.0, 1e-4);
      trace.events(r).push_back(make_event(EventType::Send, st, id + r, to));
    }
    for (Rank r = 0; r < ranks; ++r) {
      const Rank from = (r - shift + ranks) % ranks;
      // Around 20% of receives get a timestamp *before* the send.
      const Time base = t + rng.uniform(0.0, 1e-4);
      const Time rt = rng.bernoulli(0.2) ? base - rng.uniform(0.0, 5e-5)
                                         : base + 2e-4 + rng.uniform(0.0, 1e-4);
      trace.events(r).push_back(
          make_event(EventType::Recv, std::max(rt, last_ts(trace, r)), id + from, from));
    }
    id += ranks;
    t += 1e-3;
  }
  return trace;
}

// Forces the parallel path to actually run concurrent: the production clamp
// (min_events_per_thread) would collapse these small synthetic traces to a
// solo run, and a solo run trivially matches the sequential pass.
ClcOptions concurrent_options() {
  ClcOptions opt;
  opt.min_events_per_thread = 1;
  return opt;
}

TEST(ParallelClc, MatchesSequentialBitExact) {
  Trace trace = random_trace(8, 40, 99);
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const auto input = TimestampArray::from_local(trace);
  const ClcResult seq = controlled_logical_clock(trace, s, input);
  for (int threads : {1, 2, 4, 8}) {
    const ClcResult par =
        controlled_logical_clock_parallel(trace, s, input, concurrent_options(), threads);
    EXPECT_EQ(par.violations_repaired, seq.violations_repaired) << threads;
    for (Rank r = 0; r < trace.ranks(); ++r) {
      for (std::uint32_t i = 0; i < trace.events(r).size(); ++i) {
        ASSERT_DOUBLE_EQ(par.corrected.at({r, i}), seq.corrected.at({r, i}))
            << "threads=" << threads << " rank=" << r << " idx=" << i;
      }
    }
  }
}

TEST(ParallelClc, BitExactAcrossPublishBatchSizes) {
  // The batched epoch publication is pure scheduling: whether progress is
  // announced per event (batch 1), in small batches, or only at rank
  // completion (huge batch) must never change the fixed-point the workers
  // converge to.  Batch 1 also exercises the pre-batching protocol shape.
  Trace trace = random_trace(8, 60, 2024);
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const auto input = TimestampArray::from_local(trace);
  const ClcResult seq = controlled_logical_clock(trace, s, input);
  ASSERT_GT(seq.violations_repaired, 0u);
  for (int batch : {1, 3, 128, 1 << 20}) {
    ClcOptions opt = concurrent_options();
    opt.publish_batch = batch;
    for (int threads : {2, 4, 8}) {
      const ClcResult par = controlled_logical_clock_parallel(trace, s, input, opt, threads);
      EXPECT_EQ(par.violations_repaired, seq.violations_repaired)
          << "batch=" << batch << " threads=" << threads;
      for (Rank r = 0; r < trace.ranks(); ++r) {
        const auto& a = par.corrected.of_rank(r);
        const auto& b = seq.corrected.of_rank(r);
        ASSERT_TRUE(a == b) << "batch=" << batch << " threads=" << threads << " rank=" << r;
      }
    }
  }
}

TEST(ParallelClc, ThreadClampKeepsSmallTracesSoloButStaysExact) {
  // Production default: a trace far below min_events_per_thread per worker
  // must still produce the exact sequential answer (via the clamp) — the
  // clamp is a performance guard, never a semantics switch.
  Trace trace = random_trace(4, 20, 5);
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const auto input = TimestampArray::from_local(trace);
  const ClcResult seq = controlled_logical_clock(trace, s, input);
  const ClcResult par = controlled_logical_clock_parallel(trace, s, input, {}, 8);
  EXPECT_EQ(par.violations_repaired, seq.violations_repaired);
  for (Rank r = 0; r < trace.ranks(); ++r) {
    ASSERT_TRUE(par.corrected.of_rank(r) == seq.corrected.of_rank(r)) << r;
  }
}

TEST(Clc, ZeroRankTraceReturnsInputUnchanged) {
  // Regression: a trace with no ranks used to trip the thread-count
  // precondition in the parallel path; both paths must be graceful no-ops.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 0),
              {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  const ReplaySchedule s(trace, {}, {});
  const auto input = TimestampArray::from_local(trace);

  const ClcResult seq = controlled_logical_clock(trace, s, input);
  EXPECT_EQ(seq.violations_repaired, 0u);
  EXPECT_EQ(seq.corrected.ranks(), 0);

  for (int threads : {0, 1, 8}) {
    const ClcResult par = controlled_logical_clock_parallel(trace, s, input, {}, threads);
    EXPECT_EQ(par.violations_repaired, 0u) << "threads=" << threads;
    EXPECT_EQ(par.corrected.ranks(), 0) << "threads=" << threads;
  }
}

TEST(Clc, EventlessTraceReturnsInputUnchanged) {
  // Ranks exist but none recorded an event: the schedule is empty and the
  // result must be the input, with zeroed statistics.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 4),
              {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  const ReplaySchedule s(trace, trace.match_messages(), {});
  ASSERT_EQ(s.events(), 0u);
  const auto input = TimestampArray::from_local(trace);

  const ClcResult seq = controlled_logical_clock(trace, s, input);
  EXPECT_EQ(seq.violations_repaired, 0u);
  EXPECT_DOUBLE_EQ(seq.total_jump, 0.0);

  for (int threads : {0, 1, 8}) {
    const ClcResult par = controlled_logical_clock_parallel(trace, s, input, {}, threads);
    EXPECT_EQ(par.violations_repaired, 0u) << "threads=" << threads;
    EXPECT_EQ(par.corrected.ranks(), trace.ranks()) << "threads=" << threads;
  }
}

TEST(ParallelClc, StatisticsIndependentOfThreadCount) {
  // Aggregates are derived from the final jump[] array in global-event
  // order, so they must be bit-identical to the sequential run for every
  // thread count — not merely close.
  Trace trace = random_trace(8, 50, 7);
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const auto input = TimestampArray::from_local(trace);
  const ClcResult seq = controlled_logical_clock(trace, s, input);
  ASSERT_GT(seq.violations_repaired, 0u);
  for (int threads : {1, 2, 3, 4, 8}) {
    const ClcResult par =
        controlled_logical_clock_parallel(trace, s, input, concurrent_options(), threads);
    EXPECT_EQ(par.violations_repaired, seq.violations_repaired) << threads;
    EXPECT_EQ(par.max_jump, seq.max_jump) << threads;
    EXPECT_EQ(par.total_jump, seq.total_jump) << threads;
  }
}

TEST(ParallelClc, RepairsEverything) {
  Trace trace = random_trace(6, 60, 123);
  const auto msgs = trace.match_messages();
  const ReplaySchedule s(trace, msgs, {});
  const ClcResult res = controlled_logical_clock_parallel(
      trace, s, TimestampArray::from_local(trace), concurrent_options(), 3);
  EXPECT_GT(res.violations_repaired, 0u);
  EXPECT_EQ(check_clock_condition(trace, res.corrected, msgs, {}).violations(), 0u);
}

}  // namespace
}  // namespace chronosync
