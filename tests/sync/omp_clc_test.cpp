#include "sync/omp_clc.hpp"

#include <gtest/gtest.h>

#include "analysis/omp_semantics.hpp"
#include "ompsim/omp_bench.hpp"

namespace chronosync {
namespace {

OmpBenchResult violated_bench(int threads = 4, int regions = 200, std::uint64_t seed = 5) {
  OmpBenchConfig cfg;
  cfg.threads = threads;
  cfg.regions = regions;
  cfg.seed = seed;
  return run_omp_benchmark(cfg);
}

TEST(SplitOmpThreads, PartitionsByThread) {
  const auto res = violated_bench(4, 10);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const Trace threads = split_omp_threads(res.trace, pl);
  ASSERT_EQ(threads.ranks(), 4);
  std::size_t total = 0;
  for (Rank r = 0; r < 4; ++r) {
    for (const Event& e : threads.events(r)) EXPECT_EQ(e.thread, r);
    total += threads.events(r).size();
  }
  EXPECT_EQ(total, res.trace.total_events());
  // Thread 0 carries fork+join+its 4 region events per instance.
  EXPECT_EQ(threads.events(0).size(), 10u * 6u);
  EXPECT_EQ(threads.events(1).size(), 10u * 4u);
}

TEST(SplitOmpThreads, PerThreadOrderPreserved) {
  const auto res = violated_bench(4, 20);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const Trace threads = split_omp_threads(res.trace, pl);
  for (Rank r = 0; r < 4; ++r) {
    const auto& ev = threads.events(r);
    for (std::size_t i = 1; i < ev.size(); ++i) {
      EXPECT_GE(ev[i].local_ts, ev[i - 1].local_ts);
    }
  }
}

TEST(SplitOmpThreads, RejectsOutOfRangeThread) {
  const auto res = violated_bench(4, 5);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 2);
  EXPECT_THROW(split_omp_threads(res.trace, pl), std::invalid_argument);
}

TEST(DeriveOmpLogical, EdgeKindsPresent) {
  const auto res = violated_bench(4, 1);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const Trace threads = split_omp_threads(res.trace, pl);
  const auto logical = derive_omp_logical_messages(threads);
  // fork->3 workers, 3 workers->join, barrier 4x3.
  EXPECT_EQ(logical.size(), 3u + 3u + 12u);
  for (const auto& lm : logical) {
    EXPECT_NE(lm.send.proc, lm.recv.proc);
  }
}

TEST(OmpClc, RemovesAllPompViolations) {
  const auto res = violated_bench(4, 300);
  const auto before =
      check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
  ASSERT_GT(before.with_any, 0u);  // the Fig. 8 scenario

  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
  EXPECT_GT(fixed.violations_repaired, 0u);

  const auto after = check_omp_semantics(res.trace, fixed.corrected);
  EXPECT_EQ(after.with_any, 0u);
  EXPECT_EQ(after.with_entry, 0u);
  EXPECT_EQ(after.with_exit, 0u);
  EXPECT_EQ(after.with_barrier, 0u);
}

TEST(OmpClc, PerThreadMonotonicityPreserved) {
  const auto res = violated_bench(8, 100, 9);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 8);
  const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
  std::map<ThreadId, Time> last;
  const auto& events = res.trace.events(0);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    const Time t = fixed.corrected.at({0, i});
    auto it = last.find(events[i].thread);
    if (it != last.end()) {
      EXPECT_GE(t, it->second);
    }
    last[events[i].thread] = t;
  }
}

TEST(OmpClc, CleanTraceUntouched) {
  // Ground-truth timestamps have no violations: CLC must not move anything.
  auto res = violated_bench(4, 50);
  for (Event& e : res.trace.events(0)) e.local_ts = e.true_ts;
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
  EXPECT_EQ(fixed.violations_repaired, 0u);
  const auto& events = res.trace.events(0);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(fixed.corrected.at({0, i}), events[i].true_ts);
  }
}

TEST(OmpClc, WorksAcrossThreadCounts) {
  for (int threads : {4, 8, 12, 16}) {
    const auto res = violated_bench(threads, 100, 11);
    const Placement pl =
        omp_thread_placement(clusters::itanium_smp_node(), threads);
    const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
    const auto after = check_omp_semantics(res.trace, fixed.corrected);
    EXPECT_EQ(after.with_any, 0u) << threads << " threads";
  }
}

TEST(OmpClc, IntervalsApproximatelyPreserved) {
  const auto res = violated_bench(4, 200);
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), 4);
  const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
  // Corrections are sub-microsecond; corrected timestamps stay within ~1 us
  // of the measured ones.
  const auto& events = res.trace.events(0);
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    EXPECT_NEAR(fixed.corrected.at({0, i}), events[i].local_ts, 1.5 * units::us);
  }
}

}  // namespace
}  // namespace chronosync
