#include "sync/node_coupling.hpp"

#include <gtest/gtest.h>

#include "analysis/clock_condition.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Event make_event(EventType ty, Time t, std::int64_t id = -1, Rank peer = -1) {
  Event e;
  e.type = ty;
  e.local_ts = e.true_ts = t;
  e.msg_id = id;
  e.peer = peer;
  return e;
}

/// Ranks 0 (node A), 1 and 2 (node B).  Rank 1 has a violated receive from
/// rank 0; rank 2 is co-located with rank 1 but has only local events near
/// the jump time.
struct CoupledFixture {
  Trace trace{Placement({{0, 0, 0}, {1, 0, 0}, {1, 0, 1}}),
              {0.47e-6, 0.86e-6, 4.29e-6},
              "test"};
  CoupledFixture() {
    trace.events(0).push_back(make_event(EventType::Send, 2.0, 0, 1));
    // Rank 1: recv 100 us too early -> a 100 us jump.
    trace.events(1).push_back(make_event(EventType::Enter, 1.5));
    trace.events(1).push_back(make_event(EventType::Recv, 1.9999, 0, 0));
    trace.events(1).push_back(make_event(EventType::Exit, 2.1));
    // Rank 2 shares node B's clock: its events near t=2 carry the same error.
    trace.events(2).push_back(make_event(EventType::Enter, 1.9998));
    trace.events(2).push_back(make_event(EventType::Exit, 2.0002));
  }
};

TEST(NodeCoupling, PropagatesJumpToColocatedRank) {
  CoupledFixture fx;
  const auto msgs = fx.trace.match_messages();
  const ReplaySchedule schedule(fx.trace, msgs, {});
  const auto input = TimestampArray::from_local(fx.trace);

  const ClcResult plain = controlled_logical_clock(fx.trace, schedule, input);
  const NodeCoupledClcResult coupled = node_coupled_clc(fx.trace, schedule, input);

  // Plain CLC never touches rank 2 (it has no messages).
  EXPECT_DOUBLE_EQ(plain.corrected.at({2, 0}), 1.9998);
  // Coupling moves rank 2's events near the jump forward like rank 1's.
  EXPECT_GT(coupled.coupled_moves, 0u);
  EXPECT_GT(coupled.clc.corrected.at({2, 0}), 1.9998);
  EXPECT_GT(coupled.max_coupled_shift, 10 * units::us);
}

TEST(NodeCoupling, RemoteRankUnaffected) {
  CoupledFixture fx;
  const auto msgs = fx.trace.match_messages();
  const ReplaySchedule schedule(fx.trace, msgs, {});
  const auto input = TimestampArray::from_local(fx.trace);
  const NodeCoupledClcResult coupled = node_coupled_clc(fx.trace, schedule, input);
  // Rank 0 sits alone on node A: coupling cannot change it.
  EXPECT_DOUBLE_EQ(coupled.clc.corrected.at({0, 0}), 2.0);
}

TEST(NodeCoupling, NoNewViolations) {
  CoupledFixture fx;
  // Give rank 2 a send whose receive (on rank 0) sits just above it, so the
  // coupling shift must be capped.
  fx.trace.events(2).push_back(make_event(EventType::Send, 2.0003, 1, 0));
  fx.trace.events(0).push_back(make_event(EventType::Recv, 2.001, 1, 2));
  const auto msgs = fx.trace.match_messages();
  const ReplaySchedule schedule(fx.trace, msgs, {});
  const auto input = TimestampArray::from_local(fx.trace);

  const NodeCoupledClcResult coupled = node_coupled_clc(fx.trace, schedule, input);
  const auto rep = check_clock_condition(fx.trace, coupled.clc.corrected, msgs, {});
  EXPECT_EQ(rep.violations(), 0u);
}

TEST(NodeCoupling, MonotonicityPreserved) {
  CoupledFixture fx;
  const auto msgs = fx.trace.match_messages();
  const ReplaySchedule schedule(fx.trace, msgs, {});
  const NodeCoupledClcResult coupled =
      node_coupled_clc(fx.trace, schedule, TimestampArray::from_local(fx.trace));
  for (Rank r = 0; r < 3; ++r) {
    const auto& v = coupled.clc.corrected.of_rank(r);
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i], v[i - 1]);
  }
}

TEST(NodeCoupling, OneRankPerNodeEqualsPlainClc) {
  // Inter-node placement: no co-location, coupling must be a no-op.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  trace.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  trace.events(1).push_back(make_event(EventType::Recv, 0.9, 0, 0));
  const auto msgs = trace.match_messages();
  const ReplaySchedule schedule(trace, msgs, {});
  const auto input = TimestampArray::from_local(trace);
  const ClcResult plain = controlled_logical_clock(trace, schedule, input);
  const NodeCoupledClcResult coupled = node_coupled_clc(trace, schedule, input);
  EXPECT_EQ(coupled.coupled_moves, 0u);
  for (Rank r = 0; r < 2; ++r) {
    for (std::uint32_t i = 0; i < trace.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(coupled.clc.corrected.at({r, i}), plain.corrected.at({r, i}));
    }
  }
}

TEST(NodeCoupling, CleanTraceUntouched) {
  CoupledFixture fx;
  fx.trace.events(1)[1].local_ts = 2.1;  // remove the violation
  fx.trace.events(1)[2].local_ts = 2.2;  // keep monotone
  const auto msgs = fx.trace.match_messages();
  const ReplaySchedule schedule(fx.trace, msgs, {});
  const NodeCoupledClcResult coupled =
      node_coupled_clc(fx.trace, schedule, TimestampArray::from_local(fx.trace));
  EXPECT_EQ(coupled.clc.violations_repaired, 0u);
  EXPECT_EQ(coupled.coupled_moves, 0u);
}

}  // namespace
}  // namespace chronosync
