#include "ompsim/omp_bench.hpp"

#include <gtest/gtest.h>

#include "analysis/omp_semantics.hpp"

namespace chronosync {
namespace {

TEST(OmpThreadPlacement, ScattersAcrossChips) {
  const ClusterSpec node = clusters::itanium_smp_node();
  const Placement p = omp_thread_placement(node, 8);
  EXPECT_EQ(p.location(0).chip, 0);
  EXPECT_EQ(p.location(3).chip, 3);
  EXPECT_EQ(p.location(4).chip, 0);
  EXPECT_EQ(p.location(4).core, 1);
  EXPECT_EQ(p.location(7).chip, 3);
  // Four threads land on four distinct chips (the Fig. 8 low-thread case).
  const Placement four = omp_thread_placement(node, 4);
  for (Rank a = 0; a < 4; ++a) {
    for (Rank b = a + 1; b < 4; ++b) {
      EXPECT_EQ(four.domain(a, b), CommDomain::SameNode);
    }
  }
  EXPECT_THROW(omp_thread_placement(node, 17), std::invalid_argument);
}

TEST(OmpBench, ProducesExpectedEventCounts) {
  OmpBenchConfig cfg;
  cfg.threads = 4;
  cfg.regions = 10;
  const auto res = run_omp_benchmark(cfg);
  // Per region: fork + join + threads * (enter, barr-enter, barr-exit, exit).
  EXPECT_EQ(res.trace.total_events(), 10u * (2 + 4u * 4));
}

TEST(OmpBench, GroundTruthIsSemanticallyClean) {
  // With ground-truth timestamps no POMP rule may be violated: the runtime
  // model itself is causal; only clock error creates violations.
  OmpBenchConfig cfg;
  cfg.threads = 8;
  cfg.regions = 200;
  const auto res = run_omp_benchmark(cfg);
  const auto rep =
      check_omp_semantics(res.trace, TimestampArray::from_truth(res.trace));
  EXPECT_EQ(rep.with_any, 0u);
  EXPECT_EQ(rep.regions, 200u);
}

TEST(OmpBench, MeasuredTimestampsShowViolationsAtFourThreads) {
  OmpBenchConfig cfg;
  cfg.threads = 4;
  cfg.regions = 300;
  cfg.seed = 5;
  const auto res = run_omp_benchmark(cfg);
  const auto rep =
      check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
  // The Fig. 8 effect: a large share of regions affected at 4 threads.
  EXPECT_GT(rep.any_pct(), 20.0);
}

TEST(OmpBench, ViolationsDropWithThreadCount) {
  double pct4 = 0.0, pct16 = 0.0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int threads : {4, 16}) {
      OmpBenchConfig cfg;
      cfg.threads = threads;
      cfg.regions = 200;
      cfg.seed = seed;
      const auto res = run_omp_benchmark(cfg);
      const auto rep =
          check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
      (threads == 4 ? pct4 : pct16) += rep.any_pct() / 3.0;
    }
  }
  EXPECT_GT(pct4, pct16);
}

TEST(OmpBench, BarrierLatencyGrowsWithThreads) {
  OmpBenchConfig cfg;
  EXPECT_LT(omp_barrier_latency(cfg, 4), omp_barrier_latency(cfg, 8));
  EXPECT_LT(omp_barrier_latency(cfg, 8), omp_barrier_latency(cfg, 16));
}

TEST(OmpBench, DeterministicForSeed) {
  OmpBenchConfig cfg;
  cfg.threads = 4;
  cfg.regions = 20;
  const auto a = run_omp_benchmark(cfg);
  const auto b = run_omp_benchmark(cfg);
  ASSERT_EQ(a.trace.total_events(), b.trace.total_events());
  for (std::size_t i = 0; i < a.trace.events(0).size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace.events(0)[i].local_ts, b.trace.events(0)[i].local_ts);
  }
}

TEST(OmpBench, TraceValidates) {
  OmpBenchConfig cfg;
  cfg.threads = 6;
  cfg.regions = 50;
  const auto res = run_omp_benchmark(cfg);
  EXPECT_NO_THROW(res.trace.validate());
}

TEST(OmpBench, ConfigValidation) {
  OmpBenchConfig cfg;
  cfg.threads = 0;
  EXPECT_THROW(run_omp_benchmark(cfg), std::invalid_argument);
  cfg.threads = 4;
  cfg.regions = 0;
  EXPECT_THROW(run_omp_benchmark(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
