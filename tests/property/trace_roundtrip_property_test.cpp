// Property suite: both trace serializations (binary and text) round-trip
// randomized traces exactly, and postmortem analyses are invariant under a
// round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/clock_condition.hpp"
#include "common/rng.hpp"
#include "topology/cluster.hpp"
#include "trace/otf_text.hpp"
#include "trace/trace_io.hpp"

namespace chronosync {
namespace {

/// Generates a random but structurally valid trace.
Trace random_trace(std::uint64_t seed) {
  Rng rng(seed);
  const int ranks = static_cast<int>(rng.uniform_int(1, 6));
  Trace t(pinning::block(clusters::xeon_rwth(), ranks),
          {rng.uniform(1e-7, 1e-6), rng.uniform(1e-6, 2e-6), rng.uniform(2e-6, 9e-6)},
          "fuzz-timer");
  const int nregions = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < nregions; ++i) t.intern_region("region_" + std::to_string(i));

  // Message ids are rank-scoped so a random Recv can never pair with a Send
  // on the same rank (self-messages have no defined latency).
  std::vector<std::int64_t> next_send(static_cast<std::size_t>(ranks), 0);
  for (Rank r = 0; r < ranks; ++r) {
    Time now = rng.uniform(0.0, 1.0);
    const int n = static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < n; ++i) {
      Event e;
      const int kind = static_cast<int>(rng.uniform_int(0, 4));
      switch (kind) {
        case 0:
          e.type = EventType::Enter;
          e.region = nregions ? static_cast<std::int32_t>(rng.uniform_int(0, nregions - 1)) : -1;
          break;
        case 1:
          e.type = EventType::Exit;
          e.region = nregions ? static_cast<std::int32_t>(rng.uniform_int(0, nregions - 1)) : -1;
          break;
        case 2:
          e.type = EventType::Send;
          e.peer = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          e.tag = static_cast<Tag>(rng.uniform_int(0, 9));
          e.bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
          e.msg_id = 1000000LL * r + next_send[static_cast<std::size_t>(r)]++;
          break;
        case 3: {
          e.type = EventType::Recv;
          e.peer = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          // Maybe match a send of another rank; otherwise stay half-matched.
          const Rank other = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          const std::int64_t sent = next_send[static_cast<std::size_t>(other)];
          e.msg_id = (other != r && sent > 0 && rng.bernoulli(0.5))
                         ? 1000000LL * other + rng.uniform_int(0, sent - 1)
                         : 1000000000LL + 1000000LL * r +
                               next_send[static_cast<std::size_t>(r)]++;
          break;
        }
        default:
          e.type = EventType::CollBegin;
          e.coll = static_cast<CollectiveKind>(rng.uniform_int(0, 7));
          e.coll_id = rng.uniform_int(0, 5);
          e.root = 0;
          break;
      }
      now += rng.uniform(0.0, 1e-3);
      e.local_ts = now;
      e.true_ts = now + rng.normal(0.0, 1e-6);
      e.thread = static_cast<ThreadId>(rng.uniform_int(0, 2));
      t.events(r).push_back(e);
    }
  }
  return t;
}

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.ranks() != b.ranks() || a.timer_name() != b.timer_name()) return false;
  if (a.regions() != b.regions()) return false;
  for (int d = 0; d < 3; ++d) {
    if (a.domain_min_latency()[static_cast<std::size_t>(d)] !=
        b.domain_min_latency()[static_cast<std::size_t>(d)]) {
      return false;
    }
  }
  for (Rank r = 0; r < a.ranks(); ++r) {
    const auto& ea = a.events(r);
    const auto& eb = b.events(r);
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      const Event& x = ea[i];
      const Event& y = eb[i];
      if (x.type != y.type || x.local_ts != y.local_ts || x.true_ts != y.true_ts ||
          x.region != y.region || x.peer != y.peer || x.tag != y.tag || x.bytes != y.bytes ||
          x.msg_id != y.msg_id || x.coll != y.coll || x.coll_id != y.coll_id ||
          x.root != y.root || x.omp_instance != y.omp_instance || x.thread != y.thread) {
        return false;
      }
    }
  }
  return true;
}

class TraceRoundTrip : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTrip, BinaryExact) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace(t, buf);
  EXPECT_TRUE(traces_equal(t, read_trace(buf)));
}

TEST_P(TraceRoundTrip, TextExact) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_text_trace(t, buf);
  EXPECT_TRUE(traces_equal(t, read_text_trace(buf)));
}

TEST_P(TraceRoundTrip, AnalysisInvariant) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace(t, buf);
  Trace back = read_trace(buf);
  const auto a = check_clock_condition(t, TimestampArray::from_local(t));
  const auto b = check_clock_condition(back, TimestampArray::from_local(back));
  EXPECT_EQ(a.p2p_messages, b.p2p_messages);
  EXPECT_EQ(a.p2p_violations, b.p2p_violations);
  EXPECT_EQ(a.logical_violations, b.logical_violations);
  EXPECT_EQ(a.total_events, b.total_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip, testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace chronosync
