// Property suite: all three trace serializations (binary v1, binary v2,
// text) round-trip randomized traces bit-exactly, the formats agree with each
// other (differential loads), and postmortem analyses — including the
// streaming out-of-core scan — are invariant under a round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "../testutil/random_trace.hpp"
#include "analysis/clock_condition.hpp"
#include "analysis/clock_condition_stream.hpp"
#include "trace/otf_text.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"

namespace chronosync {
namespace {

using testutil::random_trace;
using testutil::traces_equal;

class TraceRoundTrip : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTrip, BinaryV1Exact) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace(t, buf);
  EXPECT_TRUE(traces_equal(t, read_trace(buf)));
}

TEST_P(TraceRoundTrip, BinaryV2Exact) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace_v2(t, buf);
  EXPECT_TRUE(traces_equal(t, read_trace_v2(buf)));
}

TEST_P(TraceRoundTrip, BinaryV2ExactThroughDispatch) {
  // v2 blobs read back through the generic read_trace entry point too.
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace_v2(t, buf);
  EXPECT_TRUE(traces_equal(t, read_trace(buf)));
}

TEST_P(TraceRoundTrip, BinaryV2SmallChunksExact) {
  // Tiny chunks force many chunk boundaries and per-chunk delta resets.
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace_v2(t, buf, /*events_per_chunk=*/3);
  EXPECT_TRUE(traces_equal(t, read_trace_v2(buf)));
}

TEST_P(TraceRoundTrip, TextExact) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_text_trace(t, buf);
  EXPECT_TRUE(traces_equal(t, read_text_trace(buf)));
}

TEST_P(TraceRoundTrip, DifferentialBinaryVsText) {
  // The binary and text loads of one trace must produce identical objects.
  Trace t = random_trace(GetParam());
  std::stringstream bin;
  std::stringstream bin2;
  std::stringstream txt;
  write_trace(t, bin);
  write_trace_v2(t, bin2);
  write_text_trace(t, txt);
  const Trace from_v1 = read_trace(bin);
  const Trace from_v2 = read_trace(bin2);
  const Trace from_txt = read_text_trace(txt);
  EXPECT_TRUE(traces_equal(from_v1, from_txt));
  EXPECT_TRUE(traces_equal(from_v1, from_v2));
}

TEST_P(TraceRoundTrip, ExtremeDoublesAllFormats) {
  // Signed zeros, denormals, and range-end doubles survive every format.
  Trace t = random_trace(GetParam(), /*extreme_doubles=*/true);
  {
    std::stringstream buf;
    write_trace(t, buf);
    EXPECT_TRUE(traces_equal(t, read_trace(buf)));
  }
  {
    std::stringstream buf;
    write_trace_v2(t, buf);
    EXPECT_TRUE(traces_equal(t, read_trace_v2(buf)));
  }
  {
    std::stringstream buf;
    write_text_trace(t, buf);
    EXPECT_TRUE(traces_equal(t, read_text_trace(buf)));
  }
}

TEST_P(TraceRoundTrip, AnalysisInvariant) {
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace(t, buf);
  Trace back = read_trace(buf);
  const auto a = check_clock_condition(t, TimestampArray::from_local(t));
  const auto b = check_clock_condition(back, TimestampArray::from_local(back));
  EXPECT_EQ(a.p2p_messages, b.p2p_messages);
  EXPECT_EQ(a.p2p_violations, b.p2p_violations);
  EXPECT_EQ(a.logical_violations, b.logical_violations);
  EXPECT_EQ(a.total_events, b.total_events);
}

TEST_P(TraceRoundTrip, StreamingScanMatchesInMemory) {
  // The out-of-core scan over a v2 stream equals the in-memory pipeline.
  Trace t = random_trace(GetParam());
  std::stringstream buf;
  write_trace_v2(t, buf, /*events_per_chunk=*/7);
  TraceReader reader(buf);
  const auto streamed = scan_clock_condition(reader);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  EXPECT_EQ(streamed.p2p_messages, in_memory.p2p_messages);
  EXPECT_EQ(streamed.p2p_reversed, in_memory.p2p_reversed);
  EXPECT_EQ(streamed.p2p_violations, in_memory.p2p_violations);
  EXPECT_DOUBLE_EQ(streamed.p2p_worst, in_memory.p2p_worst);
  EXPECT_EQ(streamed.logical_messages, in_memory.logical_messages);
  EXPECT_EQ(streamed.logical_reversed, in_memory.logical_reversed);
  EXPECT_EQ(streamed.logical_violations, in_memory.logical_violations);
  EXPECT_DOUBLE_EQ(streamed.logical_worst, in_memory.logical_worst);
  EXPECT_EQ(streamed.total_events, in_memory.total_events);
  EXPECT_EQ(streamed.message_events, in_memory.message_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip, testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace chronosync
