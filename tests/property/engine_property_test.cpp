// Property suite: discrete-event engine determinism and ordering guarantees
// over randomized schedules of callbacks, delays, and triggers.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace chronosync {
namespace {

/// Runs a randomized scenario and records the firing log.
std::vector<std::pair<double, int>> run_scenario(std::uint64_t seed) {
  Rng rng(seed);
  Engine e;
  std::vector<std::pair<double, int>> log;

  // A batch of callbacks at random times.
  const int callbacks = 50;
  for (int i = 0; i < callbacks; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    e.schedule(t, [&log, &e, i] { log.push_back({e.now(), i}); });
  }

  // A few coroutine processes taking random-length random hops.  NOTE: a
  // loop-local lambda coroutine would dangle (the closure dies before the
  // frame runs), so the body is a free function with by-value parameters.
  struct Hopper {
    static Coro<void> run(Engine& eng, std::vector<std::pair<double, int>>& out, int p,
                          int hops, std::uint64_t s) {
      Rng local(s);  // private stream: resume order cannot change draws
      for (int h = 0; h < hops; ++h) {
        co_await eng.delay(local.uniform(0.1, 5.0));
        out.push_back({eng.now(), 1000 + p});
      }
    }
  };
  const int procs = 8;
  for (int p = 0; p < procs; ++p) {
    const int hops = static_cast<int>(rng.uniform_int(1, 20));
    e.spawn(Hopper::run(e, log, p, hops, rng.next()));
  }

  // Triggers fired from callbacks, awaited by processes.
  auto tr = std::make_shared<Trigger>(e);
  auto waiter = [&log, &e, tr]() -> Coro<void> {
    co_await *tr;
    log.push_back({e.now(), 9999});
  };
  e.spawn(waiter());
  e.schedule(rng.uniform(0.0, 100.0), [tr, &e] { tr->fire(e.now()); });

  e.run();
  return log;
}

class EngineFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, DeterministicReplay) {
  const auto a = run_scenario(GetParam());
  const auto b = run_scenario(GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "index " << i;
  }
}

TEST_P(EngineFuzz, TimeNeverGoesBackwards) {
  const auto log = run_scenario(GetParam());
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].first, log[i - 1].first);
  }
}

TEST_P(EngineFuzz, EverythingFires) {
  const auto log = run_scenario(GetParam());
  // 50 callbacks + all process hops + the trigger waiter.
  int callbacks = 0, hops = 0, waiters = 0;
  for (const auto& [t, id] : log) {
    if (id < 1000) {
      ++callbacks;
    } else if (id == 9999) {
      ++waiters;
    } else {
      ++hops;
    }
  }
  EXPECT_EQ(callbacks, 50);
  EXPECT_EQ(waiters, 1);
  EXPECT_GE(hops, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace chronosync
