// Property: the windowed streaming CLC may DIVERGE from the in-memory CLC
// when its backward-amortization window is too small (ramp_clamped > 0 — the
// clamped ramps are steeper than the in-memory ones), but its output must
// still be a *valid correction*: finite timestamps, rank-local order
// preserved, and Eq. 1 exactly satisfied (zero slack).  Bit-identity is a
// luxury; the invariants are the contract.  Horizon drops are excluded —
// dropping a constraint edge genuinely abandons the Eq. 1 guarantee for that
// edge, so the property quantifies over window sizes with an ample horizon.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sync/clc_stream.hpp"
#include "sync/replay.hpp"
#include "topology/cluster.hpp"
#include "trace/logical_messages.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

Trace drifting_trace(std::uint64_t seed, int ranks, int rounds) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  cfg.gap_mean = 3.0;  // long gaps: drift accumulates, Eq. 1 violations abound
  cfg.collective_every = 25;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job)).trace;
}

TEST(StreamClampProperty, ClampedRunsStillSatisfyAllInvariants) {
  // Windows far below the fixture's multi-second amortization ramps force
  // clamping; every clamped run must still audit clean at zero slack.
  const std::vector<Duration> windows = {1e-4, 1e-2, 1.0};
  int clamped_runs = 0;
  for (const std::uint64_t seed : {11ull, 29ull}) {
    const Trace trace = drifting_trace(seed, 4, 120);
    const auto messages = trace.match_messages();
    const auto logical = derive_logical_messages(trace);
    const ReplaySchedule schedule(trace, messages, logical);
    const verify::InvariantChecker checker(trace, schedule, {});

    const std::string in_path = testing::TempDir() + "/clamp_in_" +
                                std::to_string(seed) + ".v2";
    write_trace_v2_file(trace, in_path);

    for (const Duration window : windows) {
      StreamClcOptions opt;
      opt.backward_window = window;
      opt.horizon = 1e6;  // never drop an edge: Eq. 1 must stay guaranteed
      opt.emit_batch = 64;
      const std::string out_path = in_path + "." + std::to_string(window) + ".out";
      const StreamClcStats stats = clc_stream_file(in_path, out_path, opt);

      EXPECT_EQ(stats.horizon_dropped, 0u);
      EXPECT_EQ(stats.forced, 0u);
      EXPECT_GT(stats.violations_repaired, 0u) << "fixture has nothing to repair";
      if (stats.ramp_clamped > 0) ++clamped_runs;

      const Trace corrected = read_trace_file(out_path);
      const verify::VerifyReport report =
          checker.check(TimestampArray::from_local(corrected));
      EXPECT_TRUE(report.ok())
          << "window " << window << " (ramp_clamped=" << stats.ramp_clamped
          << "):\n" << report.summary();
      std::remove(out_path.c_str());
    }
    std::remove(in_path.c_str());
  }
  // The property is vacuous unless small windows actually clamped.
  EXPECT_GE(clamped_runs, 2);
}

}  // namespace
}  // namespace chronosync
