// Property suite: every timer preset must build a ClockEnsemble that honours
// the SimClock contract — strictly increasing local time, monotone reads,
// bounded drift rates, determinism — and the correlation structure promised
// by its oscillator scope.
#include <gtest/gtest.h>

#include <cmath>

#include "clockmodel/clock_ensemble.hpp"
#include "clockmodel/timer_spec.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

class TimerPresetContract : public testing::TestWithParam<std::size_t> {
 protected:
  static std::vector<TimerSpec> specs_;
  const TimerSpec& spec() const { return specs_[GetParam()]; }

  Placement mixed_placement() const {
    // Two ranks on node 0 (different chips), one on node 1.
    return Placement({{0, 0, 0}, {0, 1, 0}, {1, 0, 0}});
  }
};
std::vector<TimerSpec> TimerPresetContract::specs_ = timer_specs::all();

TEST_P(TimerPresetContract, LocalTimeStrictlyIncreases) {
  ClockEnsemble ens(mixed_placement(), spec(), RngTree(3));
  for (Rank r = 0; r < 3; ++r) {
    Time prev = ens.clock(r).local_time(0.0);
    for (Time t = 0.5; t < 4000.0; t += 13.7) {
      const Time now = ens.clock(r).local_time(t);
      EXPECT_GT(now, prev) << spec().name << " rank " << r << " t=" << t;
      prev = now;
    }
  }
}

TEST_P(TimerPresetContract, ReadsAreMonotone) {
  ClockEnsemble ens(mixed_placement(), spec(), RngTree(4));
  for (Rank r = 0; r < 3; ++r) {
    Time prev = -kTimeInfinity;
    for (Time t = 0.0; t < 50.0; t += 0.01) {
      const Time now = ens.clock(r).read(t);
      EXPECT_GE(now, prev) << spec().name;
      prev = now;
    }
  }
}

TEST_P(TimerPresetContract, DriftRatesBounded) {
  ClockEnsemble ens(mixed_placement(), spec(), RngTree(5));
  // Even the DVFS-afflicted cycle counter stays within ~1100 ppm of true
  // rate; NTP slews are capped at 500 ppm.
  for (Rank r = 0; r < 3; ++r) {
    for (Time t = 0.0; t < 4000.0; t += 111.1) {
      EXPECT_LT(std::abs(ens.clock(r).drift(t)), 1.2e-3) << spec().name;
    }
  }
}

TEST_P(TimerPresetContract, DeterministicAcrossConstruction) {
  ClockEnsemble a(mixed_placement(), spec(), RngTree(6));
  ClockEnsemble b(mixed_placement(), spec(), RngTree(6));
  for (Rank r = 0; r < 3; ++r) {
    for (Time t : {0.0, 123.4, 2718.2}) {
      EXPECT_DOUBLE_EQ(a.clock(r).local_time(t), b.clock(r).local_time(t)) << spec().name;
    }
  }
}

TEST_P(TimerPresetContract, IntraNodeTighterThanCrossNode) {
  if (spec().kind == TimerKind::PerfectGlobal) GTEST_SKIP();
  ClockEnsemble ens(mixed_placement(), spec(), RngTree(7));
  // Relative drift accumulated over an hour: ranks 0/1 share the node (for
  // PerNode scopes, the oscillator), rank 2 lives elsewhere.
  auto wander = [&](Rank a, Rank b) {
    return std::abs(ens.deviation(a, b, 3600.0) - ens.deviation(a, b, 0.0));
  };
  EXPECT_LE(wander(0, 1), wander(0, 2) + 1 * units::us) << spec().name;
}

TEST_P(TimerPresetContract, DeviationContinuityUnderSampling) {
  ClockEnsemble ens(mixed_placement(), spec(), RngTree(8));
  // Deviation change per second is bounded by the worst-case rate difference
  // (~1100 ppm for DVFS counters, 500 ppm NTP slew): nothing *steps* the
  // clock.
  Duration prev = ens.deviation(2, 0, 0.0);
  for (Time t = 1.0; t < 600.0; t += 1.0) {
    const Duration now = ens.deviation(2, 0, t);
    EXPECT_LT(std::abs(now - prev), 2.5e-3) << spec().name << " t=" << t;
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, TimerPresetContract,
                         testing::Range<std::size_t>(0, timer_specs::all().size()),
                         [](const testing::TestParamInfo<std::size_t>& tpi) {
                           std::string name = timer_specs::all()[tpi.param].name;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace chronosync
