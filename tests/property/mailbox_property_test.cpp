// Property suite: the Mailbox's matching must agree with a straightforward
// reference model (linear scan with MPI rules) over randomized sequences of
// deliveries and receives, including wildcards.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "mpisim/mailbox.hpp"
#include "sim/engine.hpp"

namespace chronosync {
namespace {

/// Reference matcher: the MPI rules, written as naively as possible.
struct ReferenceModel {
  struct Arrived {
    Message msg;
    Time at;
  };
  struct Pending {
    Rank src;
    Tag tag;
    int id;
  };
  std::deque<Arrived> unexpected;
  std::deque<Pending> posted;
  // (recv id, message id) pairs in match order.
  std::vector<std::pair<int, std::int64_t>> matches;

  static bool match(Rank ws, Tag wt, const Message& m) {
    return (ws == kAnySource || ws == m.src) && (wt == kAnyTag || wt == m.tag);
  }

  void deliver(Message m, Time t) {
    for (auto it = posted.begin(); it != posted.end(); ++it) {
      if (match(it->src, it->tag, m)) {
        matches.emplace_back(it->id, m.id);
        posted.erase(it);
        return;
      }
    }
    unexpected.push_back({std::move(m), t});
  }

  void recv(Rank src, Tag tag, int id) {
    for (auto it = unexpected.begin(); it != unexpected.end(); ++it) {
      if (match(src, tag, it->msg)) {
        matches.emplace_back(id, it->msg.id);
        unexpected.erase(it);
        return;
      }
    }
    posted.push_back({src, tag, id});
  }
};

class MailboxFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MailboxFuzz, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  Engine engine;
  Mailbox mailbox;
  ReferenceModel model;

  struct LiveRecv {
    int id;
    Message out;
    Time arrival = 0.0;
    bool complete = false;
    std::unique_ptr<Trigger> trigger;
  };
  std::vector<std::unique_ptr<LiveRecv>> recvs;
  std::vector<std::pair<int, std::int64_t>> matches;

  std::int64_t next_msg = 0;
  int next_recv = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.bernoulli(0.5)) {
      Message m;
      m.src = static_cast<Rank>(rng.uniform_int(0, 3));
      m.tag = static_cast<Tag>(rng.uniform_int(0, 2));
      m.id = next_msg++;
      model.deliver(m, static_cast<Time>(step));
      mailbox.deliver(m, static_cast<Time>(step));
    } else {
      const Rank src = rng.bernoulli(0.25) ? kAnySource : static_cast<Rank>(rng.uniform_int(0, 3));
      const Tag tag = rng.bernoulli(0.25) ? kAnyTag : static_cast<Tag>(rng.uniform_int(0, 2));
      const int id = next_recv++;
      model.recv(src, tag, id);
      if (auto hit = mailbox.try_match(src, tag, static_cast<Time>(step))) {
        matches.emplace_back(id, hit->first.id);
      } else {
        auto live = std::make_unique<LiveRecv>();
        live->id = id;
        live->trigger = std::make_unique<Trigger>(engine);
        mailbox.post(src, tag, &live->out, &live->arrival, live->trigger.get(),
                     &live->complete);
        recvs.push_back(std::move(live));
      }
    }
    // Collect asynchronous completions in posting order for comparability.
    for (auto& live : recvs) {
      if (live && live->complete) {
        matches.emplace_back(live->id, live->out.id);
        live.reset();
      }
    }
  }

  // The reference records matches at the moment they happen; the mailbox via
  // our collection loop. Sort both by recv id: each recv matches exactly one
  // message, so order normalization is safe.
  auto norm = [](std::vector<std::pair<int, std::int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(norm(matches), norm(model.matches));
  EXPECT_EQ(mailbox.unexpected_count(), model.unexpected.size());
  EXPECT_EQ(mailbox.posted_count(),
            static_cast<std::size_t>(std::count_if(
                recvs.begin(), recvs.end(), [](const auto& r) { return r != nullptr; })));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MailboxFuzz, testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace chronosync
