// Property suite: linear offset interpolation (Eq. 3) inverts *any* affine
// clock map exactly, for randomized offsets, drifts, and measurement points —
// and degrades gracefully (bounded by measurement error) when the
// measurements themselves carry Cristian-style errors.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sync/interpolation.hpp"

namespace chronosync {
namespace {

class AffineInversion : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AffineInversion, ExactForPerfectMeasurements) {
  Rng rng(GetParam());
  const double offset = rng.uniform(-1.0, 1.0);
  const double drift = rng.uniform(-100e-6, 100e-6);
  auto local = [&](Time t) { return t + offset + drift * t; };

  const Time t1 = rng.uniform(0.0, 100.0);
  const Time t2 = t1 + rng.uniform(100.0, 4000.0);
  LinearInterpolation::RankParams p;
  p.w1 = local(t1);
  p.o1 = t1 - local(t1);
  p.w2 = local(t2);
  p.o2 = t2 - local(t2);
  const LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, p});

  for (int k = 0; k < 50; ++k) {
    const Time t = rng.uniform(0.0, 5000.0);  // also outside [t1, t2]
    EXPECT_NEAR(interp.correct(1, local(t)), t, 1e-8);
  }
}

TEST_P(AffineInversion, MeasurementErrorBoundsResidual) {
  Rng rng(GetParam() + 1000);
  const double offset = rng.uniform(-1e-3, 1e-3);
  const double drift = rng.uniform(-50e-6, 50e-6);
  auto local = [&](Time t) { return t + offset + drift * t; };

  // Perturb the two offset measurements by up to +/- eps.
  const double eps = 2e-6;
  const Time t1 = 10.0, t2 = 1800.0;
  LinearInterpolation::RankParams p;
  p.w1 = local(t1);
  p.o1 = t1 - local(t1) + rng.uniform(-eps, eps);
  p.w2 = local(t2);
  p.o2 = t2 - local(t2) + rng.uniform(-eps, eps);
  const LinearInterpolation interp({{0.0, 0.0, 1.0, 0.0}, p});

  // Inside the measurement interval, the residual of an affine clock is a
  // convex combination of the two endpoint errors: |residual| <= eps.
  for (int k = 0; k < 50; ++k) {
    const Time t = rng.uniform(t1, t2);
    EXPECT_LE(std::abs(interp.correct(1, local(t)) - t), eps + 1e-9);
  }
}

TEST_P(AffineInversion, PiecewiseAgreesWithLinearOnTwoKnots) {
  Rng rng(GetParam() + 2000);
  const double offset = rng.uniform(-1e-2, 1e-2);
  const double drift = rng.uniform(-80e-6, 80e-6);
  auto local = [&](Time t) { return t + offset + drift * t; };

  OffsetStore store(2);
  for (Time t : {5.0, 1200.0}) {
    store.add(0, {t, 0.0, 0.0});
    store.add(1, {local(t), t - local(t), 0.0});
  }
  const LinearInterpolation lin = LinearInterpolation::from_store(store);
  const PiecewiseInterpolation pw = PiecewiseInterpolation::from_store(store);
  for (int k = 0; k < 30; ++k) {
    const Time t = rng.uniform(0.0, 1500.0);
    EXPECT_NEAR(lin.correct(1, local(t)), pw.correct(1, local(t)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineInversion, testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace chronosync
